// vdmsql — interactive SQL shell for the vdmqo engine.
//
//   $ ./tools/vdmsql
//   vdmsql> .load tpch 1
//   vdmsql> select count(*) from lineitem;
//   vdmsql> .profile postgres
//   vdmsql> .explain select o_orderkey from orders o left join customer c
//           on o.o_custkey = c.c_custkey;
//
// Dot-commands:
//   .help                  this text
//   .tables / .views       list catalog objects
//   .profile <name>        hana | postgres | systemx | systemy | systemz | none
//   .explain <sql>         optimized plan
//   .explainraw <sql>      bound plan before optimization (Fig. 3 form)
//   .analyze <sql>         run + plan with compile/execute timing split
//                          and plan-cache outcome (DESIGN.md §9)
//   .cache on|off|stats    parameterized plan cache control
//   .timing on|off         print execution time per query
//   .load tpch [scale]     create + load the TPC-H workload
//   .load s4               create + load the S/4-like schema + JEIB stack
//   .import <table> <csv>  append CSV rows to a table
//   .export <csv> <sql>    run a query and write the result as CSV
//   .materialize <view> [dynamic]   cache a view (SCV / DCV)
//   .refresh <view>        refresh a static cached view
//   .begin / .commit / .rollback    explicit snapshot-isolation transaction
//                          (SQL `begin; ... commit;` works too); while a
//                          transaction is open the prompt shows `txn>`
//   .quit
//
// Exit codes: 0 clean, 1 on any error, 3 when a statement failed with a
// serialization conflict (after the auto-commit retry budget,
// VDM_TXN_RETRIES, was exhausted) — scripted callers re-run on 3.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/csv.h"
#include "engine/database.h"
#include "plan/plan_printer.h"
#include "vdm/jeib.h"
#include "workload/s4.h"
#include "workload/tpch.h"

using namespace vdm;

namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream stream(line);
  std::string word;
  while (stream >> word) words.push_back(word);
  return words;
}

// Sticky failure flags: the shell keeps accepting input after an error but
// exits nonzero, so scripted runs (vdmsql < file.sql) fail loudly. A
// serialization conflict that survived the retry budget is reported with
// its own exit code (3) so callers can distinguish "retry me" from "fix
// your SQL".
bool g_had_error = false;
bool g_had_conflict = false;

void PrintStatus(const Status& status) {
  if (status.ok()) return;
  // status.ToString() leads with the typed code (e.g. "DeadlineExceeded:",
  // "SerializationFailure:"), which scripts match on.
  std::printf("error: %s\n", status.ToString().c_str());
  g_had_error = true;
  if (status.code() == StatusCode::kSerializationFailure) {
    g_had_conflict = true;
  }
}

// Runs a transaction-control statement against the shell's session.
void RunTxnControl(Database* db, const char* sql, Transaction** session) {
  Result<Chunk> r = db->ExecuteSession(sql, session);
  if (r.ok()) {
    std::printf("ok\n");
  } else {
    PrintStatus(r.status());
  }
}

bool HandleDotCommand(Database* db, const std::string& line, bool* timing,
                      Transaction** session) {
  std::vector<std::string> words = SplitWords(line);
  if (words.empty()) return true;
  const std::string& cmd = words[0];

  if (cmd == ".quit" || cmd == ".exit") return false;
  if (cmd == ".help") {
    std::printf(
        ".tables .views .profile <p> .explain <sql> .explainraw <sql>\n"
        ".analyze <sql>  .cache on|off|stats  .timing on|off\n"
        ".load tpch [scale] | s4  .import <table> <csv>\n"
        ".export <csv> <sql>  .materialize <view> [dynamic]  "
        ".refresh <view>\n"
        ".begin .commit .rollback  .quit\n");
    return true;
  }
  if (cmd == ".begin" || cmd == ".commit" || cmd == ".rollback") {
    RunTxnControl(db, cmd.c_str() + 1, session);
    return true;
  }
  if (cmd == ".tables") {
    for (const std::string& name : db->catalog().TableNames()) {
      std::printf("%s\n", name.c_str());
    }
    return true;
  }
  if (cmd == ".views") {
    for (const std::string& name : db->catalog().ViewNames()) {
      const ViewDef* view = db->catalog().FindView(name);
      std::printf("%s%s\n", name.c_str(),
                  view != nullptr && !view->materialized_table.empty()
                      ? " [cached]"
                      : "");
    }
    return true;
  }
  if (cmd == ".profile" && words.size() >= 2) {
    std::string p = ToLower(words[1]);
    if (p == "hana") db->SetProfile(SystemProfile::kHana);
    else if (p == "postgres") db->SetProfile(SystemProfile::kPostgres);
    else if (p == "systemx") db->SetProfile(SystemProfile::kSystemX);
    else if (p == "systemy") db->SetProfile(SystemProfile::kSystemY);
    else if (p == "systemz") db->SetProfile(SystemProfile::kSystemZ);
    else if (p == "none") db->SetProfile(SystemProfile::kNone);
    else {
      std::printf("unknown profile: %s\n", p.c_str());
      return true;
    }
    std::printf("profile set to %s\n", p.c_str());
    return true;
  }
  if (cmd == ".timing" && words.size() >= 2) {
    *timing = EqualsIgnoreCase(words[1], "on");
    return true;
  }
  if (cmd == ".explain" || cmd == ".explainraw") {
    std::string sql = line.substr(cmd.size());
    Result<std::string> plan = cmd == ".explain" ? db->Explain(sql)
                                                 : db->ExplainRaw(sql);
    if (plan.ok()) {
      std::printf("%s", plan->c_str());
    } else {
      PrintStatus(plan.status());
    }
    return true;
  }
  if (cmd == ".analyze") {
    std::string sql = line.substr(cmd.size());
    Result<std::string> out = db->ExplainAnalyze(sql);
    if (out.ok()) {
      std::printf("%s", out->c_str());
    } else {
      PrintStatus(out.status());
    }
    return true;
  }
  if (cmd == ".cache" && words.size() >= 2) {
    const std::string& arg = words[1];
    if (EqualsIgnoreCase(arg, "on")) {
      db->EnablePlanCache();
      std::printf("plan cache enabled (capacity %zu)\n",
                  Database::kDefaultPlanCacheCapacity);
    } else if (EqualsIgnoreCase(arg, "off")) {
      db->DisablePlanCache();
      std::printf("plan cache disabled\n");
    } else if (EqualsIgnoreCase(arg, "stats")) {
      PlanCacheStats stats = db->plan_cache_stats();
      std::printf(
          "plan cache: %s, %zu cached; hits %llu misses %llu "
          "insertions %llu evictions %llu invalidations %llu\n",
          db->plan_cache_enabled() ? "on" : "off", db->plan_cache_size(),
          static_cast<unsigned long long>(stats.hits),
          static_cast<unsigned long long>(stats.misses),
          static_cast<unsigned long long>(stats.insertions),
          static_cast<unsigned long long>(stats.evictions),
          static_cast<unsigned long long>(stats.invalidations));
    } else {
      std::printf("usage: .cache on|off|stats\n");
    }
    return true;
  }
  if (cmd == ".load" && words.size() >= 2) {
    if (EqualsIgnoreCase(words[1], "tpch")) {
      TpchOptions options;
      if (words.size() >= 3) options.scale = std::stod(words[2]);
      PrintStatus(CreateTpchSchema(db, options));
      PrintStatus(LoadTpchData(db, options));
      std::printf("TPC-H loaded at scale %.2f\n", options.scale);
    } else if (EqualsIgnoreCase(words[1], "s4")) {
      S4Options options;
      PrintStatus(CreateS4Schema(db, options));
      PrintStatus(LoadS4Data(db, options));
      PrintStatus(BuildJournalEntryItemBrowser(db));
      std::printf("S/4-like schema + journalentryitembrowser loaded\n");
    } else {
      std::printf("unknown workload: %s\n", words[1].c_str());
    }
    return true;
  }
  if (cmd == ".import" && words.size() >= 3) {
    Result<size_t> imported = ImportCsv(db, words[1], words[2]);
    if (imported.ok()) {
      std::printf("imported %zu rows into %s\n", *imported,
                  words[1].c_str());
    } else {
      PrintStatus(imported.status());
    }
    return true;
  }
  if (cmd == ".export" && words.size() >= 3) {
    size_t sql_start = line.find(words[1]) + words[1].size();
    std::string sql = line.substr(sql_start);
    Result<Chunk> result = db->Query(sql);
    if (!result.ok()) {
      PrintStatus(result.status());
      return true;
    }
    PrintStatus(ExportCsv(*result, words[1]));
    std::printf("wrote %zu rows to %s\n", result->NumRows(),
                words[1].c_str());
    return true;
  }
  if (cmd == ".materialize" && words.size() >= 2) {
    ViewDef::CacheMode mode =
        words.size() >= 3 && EqualsIgnoreCase(words[2], "dynamic")
            ? ViewDef::CacheMode::kDynamic
            : ViewDef::CacheMode::kStatic;
    PrintStatus(db->MaterializeView(words[1], mode));
    return true;
  }
  if (cmd == ".refresh" && words.size() >= 2) {
    PrintStatus(db->RefreshMaterializedView(words[1]));
    return true;
  }
  std::printf("unknown command (try .help)\n");
  return true;
}

}  // namespace

int main() {
  Database db;
  bool timing = false;
  // One explicit transaction at a time; null = auto-commit. BEGIN /
  // COMMIT / ROLLBACK (SQL or dot-command) manage it via ExecuteSession.
  Transaction* session = nullptr;
  std::printf("vdmsql — VDM/HTAP engine shell (.help for commands)\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? (session != nullptr ? "   txn> "
                                                     : "vdmsql> ")
                               : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Dot-commands are single-line.
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (!HandleDotCommand(&db, line, &timing, &session)) break;
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute on ';'.
    size_t semi = buffer.find(';');
    if (semi == std::string::npos) continue;
    std::string sql = buffer.substr(0, semi);
    buffer.clear();
    if (sql.find_first_not_of(" \t\n") == std::string::npos) continue;
    auto start = std::chrono::steady_clock::now();
    Result<Chunk> result = db.ExecuteSession(sql, &session);
    auto end = std::chrono::steady_clock::now();
    if (!result.ok()) {
      PrintStatus(result.status());
      continue;
    }
    if (result->NumColumns() > 0) {
      std::printf("%s", result->ToString(50).c_str());
      std::printf("(%zu rows)\n", result->NumRows());
    } else {
      std::printf("ok\n");
    }
    if (timing) {
      std::printf("elapsed: %.3f ms\n",
                  std::chrono::duration<double, std::milli>(end - start)
                      .count());
    }
  }
  // An open transaction at EOF rolls back (Database teardown); say so.
  if (session != nullptr) {
    std::printf("rolling back open transaction\n");
  }
  if (g_had_conflict) return 3;
  return g_had_error ? 1 : 0;
}
