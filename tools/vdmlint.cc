// vdmlint: static analyzer for VDM view stacks (see analysis/view_lint.h
// and analysis/catalog_audit.h).
//
// Builds the paper's example view populations and lints them:
//  * the §5/§6 synthetic custom-fields views (v_fig14_NN) plus their
//    extension views — half extended with the §6.3 case join, half without,
//    so the asj-no-case-join finding has something to fire on,
//  * optionally (--jeib) the full JournalEntryItemBrowser stack of §3,
//  * optionally (--fixture) the seeded self-join fixture views.
//
// Two modes:
//  * default: per-view shape lint + profile probe (view_lint.h),
//  * --catalog-audit: whole-catalog static inference audit with stable
//    finding fingerprints, baseline suppression, and SARIF 2.1 output for
//    CI gating on NEW findings only (catalog_audit.h, DESIGN.md §12).
//
// Usage: vdmlint [--views N] [--jeib] [--no-matrix] [--fail-on-findings]
//               [--catalog-audit] [--fixture] [--format text|sarif]
//               [--baseline FILE] [--write-baseline FILE]
//               [--fail-on note|warning|error] [--no-profile-probe]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/catalog_audit.h"
#include "analysis/view_lint.h"
#include "engine/database.h"
#include "vdm/generator.h"
#include "vdm/jeib.h"
#include "workload/s4.h"

using namespace vdm;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--views N] [--jeib] [--no-matrix] "
               "[--fail-on-findings]\n"
               "          [--catalog-audit] [--fixture] "
               "[--format text|sarif]\n"
               "          [--baseline FILE] [--write-baseline FILE]\n"
               "          [--fail-on note|warning|error] "
               "[--no-profile-probe]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  int num_views = 6;
  bool with_jeib = false;
  bool with_matrix = true;
  bool fail_on_findings = false;
  bool catalog_audit = false;
  bool with_fixture = false;
  bool profile_probe = true;
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string fail_on;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--views") == 0 && i + 1 < argc) {
      num_views = std::atoi(argv[++i]);
      if (num_views <= 0) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--jeib") == 0) {
      with_jeib = true;
    } else if (std::strcmp(argv[i], "--no-matrix") == 0) {
      with_matrix = false;
    } else if (std::strcmp(argv[i], "--fail-on-findings") == 0) {
      fail_on_findings = true;
    } else if (std::strcmp(argv[i], "--catalog-audit") == 0) {
      catalog_audit = true;
    } else if (std::strcmp(argv[i], "--fixture") == 0) {
      with_fixture = true;
    } else if (std::strcmp(argv[i], "--no-profile-probe") == 0) {
      profile_probe = false;
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "sarif") return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-baseline") == 0 &&
               i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fail-on") == 0 && i + 1 < argc) {
      fail_on = argv[++i];
      if (!ParseAuditSeverity(fail_on).has_value()) return Usage(argv[0]);
    } else {
      return Usage(argv[0]);
    }
  }

  Database db;
  SyntheticVdmOptions options;
  options.num_views = num_views;
  options.base_rows = 200;  // lint is static; keep data tiny
  options.dim_rows = 50;
  Status status = CreateSyntheticVdmSchema(&db, options);
  if (status.ok()) status = LoadSyntheticVdmData(&db, options);
  if (!status.ok()) {
    std::fprintf(stderr, "schema setup failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  Result<std::vector<SyntheticViewSpec>> specs =
      GenerateSyntheticViews(&db, options);
  if (!specs.ok()) {
    std::fprintf(stderr, "view generation failed: %s\n",
                 specs.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> lint_targets;
  int draft_seen = 0;
  for (size_t i = 0; i < specs->size(); ++i) {
    SyntheticViewSpec& spec = (*specs)[i];
    lint_targets.push_back(spec.view_name);
    // The case-join declaration only matters for draft-pattern views (their
    // augmenter is a UNION ALL); alternate it across those so both the
    // declared and the undeclared ASJ shape appear in the report.
    bool use_case_join = spec.draft_pattern && draft_seen++ % 2 == 0;
    Status extended = ExtendSyntheticView(&db, &spec, use_case_join);
    if (!extended.ok()) {
      std::fprintf(stderr, "extension of %s failed: %s\n",
                   spec.view_name.c_str(), extended.ToString().c_str());
      return 1;
    }
    lint_targets.push_back(spec.ext_view_name);
  }

  if (with_jeib) {
    S4Options s4;
    s4.acdoca_rows = 500;
    s4.dimension_rows = 50;
    status = CreateS4Schema(&db, s4);
    if (status.ok()) status = LoadS4Data(&db, s4);
    if (status.ok()) status = BuildJournalEntryItemBrowser(&db);
    if (!status.ok()) {
      std::fprintf(stderr, "JEIB setup failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    lint_targets.push_back("journalentryitembrowser");
  }

  if (with_fixture) {
    Result<SelfJoinFixture> fixture = CreateSelfJoinFixtureViews(&db);
    if (!fixture.ok()) {
      std::fprintf(stderr, "fixture setup failed: %s\n",
                   fixture.status().ToString().c_str());
      return 1;
    }
  }

  if (catalog_audit) {
    CatalogAuditOptions audit_options;
    audit_options.probe_profiles = profile_probe;
    Result<CatalogAuditReport> report =
        AuditCatalog(db.catalog(), audit_options);
    if (!report.ok()) {
      std::fprintf(stderr, "catalog audit failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (!write_baseline_path.empty()) {
      if (!WriteFile(write_baseline_path, RenderBaseline(*report))) {
        std::fprintf(stderr, "cannot write baseline %s\n",
                     write_baseline_path.c_str());
        return 1;
      }
      std::printf("wrote baseline with %zu finding(s) to %s\n",
                  report->findings.size(), write_baseline_path.c_str());
    }
    std::set<std::string> baseline;
    if (!baseline_path.empty()) {
      std::string text;
      if (!ReadFile(baseline_path, &text)) {
        std::fprintf(stderr, "cannot read baseline %s\n",
                     baseline_path.c_str());
        return 1;
      }
      baseline = ParseBaseline(text);
    }
    std::vector<AuditFinding> fresh = FilterNewFindings(*report, baseline);
    if (format == "sarif") {
      // SARIF reports everything; the baseline only drives the exit code.
      std::printf("%s", RenderSarif(*report).c_str());
    } else {
      std::printf("%s", report->ToString().c_str());
      if (!baseline.empty()) {
        std::printf("%zu finding(s) new relative to baseline (%zu "
                    "suppressed)\n",
                    fresh.size(), report->findings.size() - fresh.size());
      }
    }
    if (!report->errors.empty()) return 1;
    if (!fail_on.empty() &&
        AnyAtOrAbove(fresh, *ParseAuditSeverity(fail_on))) {
      std::fprintf(stderr,
                   "vdmlint: new findings at or above --fail-on %s\n",
                   fail_on.c_str());
      return 1;
    }
    return 0;
  }

  std::vector<ViewLintReport> reports;
  size_t total_findings = 0;
  for (const std::string& name : lint_targets) {
    Result<ViewLintReport> report = LintView(db.catalog(), name);
    if (!report.ok()) {
      std::fprintf(stderr, "lint of %s failed: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    total_findings += report->findings.size();
    std::printf("%s\n", report->ToString().c_str());
    reports.push_back(std::move(*report));
  }

  if (with_matrix) {
    std::printf("== rewrite matrix (Y = paging probe removed joins) ==\n%s",
                RenderRewriteMatrix(reports).c_str());
  }
  std::printf("\n%zu view(s) linted, %zu finding(s).\n", reports.size(),
              total_findings);
  return (fail_on_findings && total_findings > 0) ? 1 : 0;
}
