// vdmload — open-loop load driver for vdmserve (DESIGN.md §16).
//
//   $ ./tools/vdmload --connections 32 --qps 1000 --duration 10 --verify
//
// Spins up an in-process vdmserve over a freshly loaded database (or
// targets an external server via --host/--port), opens N loopback
// connections, and replays a workload mix at a fixed aggregate arrival
// rate. The schedule is OPEN-LOOP: request i has an arrival time of
// t0 + i/QPS regardless of how the server keeps up, and latency is
// measured from that scheduled arrival — so queueing delay under
// saturation is charged to the server, not hidden by the driver.
//
// Mixes:
//   paging  (default) the paper's §4.4 / Fig. 6 paging query over a TPC-H
//           population, issued through per-connection PREPAREd handles
//           with rotating (limit, offset) pages
//   gen     seeded query_gen SELECTs over the pinned fuzz corpus, issued
//           as QUERY frames
//
// Flags:
//   --connections N   client connections (default 32)
//   --qps N           target aggregate arrival rate (default 1000)
//   --duration S      measured-run length in seconds (default 10)
//   --mix M           paging | gen (default paging)
//   --scale F         TPC-H scale for the paging mix (default 0.2)
//   --seed N          query_gen seed for the gen mix (default 42)
//   --tenants SPEC    VDM_TENANT_CLASSES-format tenant classes; the
//                     connections round-robin across the declared names
//   --verify          precompute every item's expected rows in-process and
//                     diff each response (normalized multiset compare)
//   --knee            sweep doubling QPS targets (short runs) until the
//                     achieved rate falls under 90% of target; reports the
//                     last sustained target as the saturation knee
//   --out FILE        JSON report path (default BENCH_server.json)
//   --host H --port P drive an external vdmserve instead of the
//                     in-process one (--verify then snapshots expected
//                     rows through a warm-up connection)
//
// Exit status: 0 clean, 1 wrong results or excessive errors, 2 usage or
// setup error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/differential.h"
#include "testing/query_gen.h"
#include "workload/tpch.h"

using namespace vdm;

namespace {

using Clock = std::chrono::steady_clock;

struct LoadOptions {
  int connections = 32;
  double qps = 1000.0;
  double duration_s = 10.0;
  std::string mix = "paging";
  double scale = 0.2;
  uint64_t seed = 42;
  std::string tenants_spec;
  bool verify = false;
  bool knee = false;
  double knee_duration_s = 3.0;
  std::string out = "BENCH_server.json";
  std::string host;
  int port = 0;
};

/// One schedulable request: either an EXECUTE on the per-connection paging
/// handle (paging mix) or a QUERY frame (gen mix).
struct WorkItem {
  std::string sql;           // gen mix: the statement; paging mix: unused
  int64_t limit = -1;        // paging mix: page geometry
  int64_t offset = -1;
  bool ordered = false;      // row-order-comparable result
  std::vector<std::string> expected;  // --verify: normalized oracle rows
};

struct RunResult {
  std::vector<double> latencies_ms;  // sorted on return
  int64_t scheduled = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  int64_t serialization_retries = 0;
  int64_t wrong_results = 0;
  double achieved_qps = 0;
  double wall_s = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Runs one open-loop interval: `qps` aggregate across the connections,
/// request k owned by connection k % N, arrival time t0 + k/qps.
RunResult RunLoad(const LoadOptions& opts, const std::string& host, int port,
                  const std::vector<WorkItem>& items,
                  const std::vector<std::string>& tenant_names, double qps,
                  double duration_s, bool verify) {
  const int n = opts.connections;
  const int64_t total =
      static_cast<int64_t>(std::llround(qps * duration_s));
  std::vector<RunResult> per_conn(static_cast<size_t>(n));
  std::atomic<bool> setup_failed{false};

  auto conn_main = [&](int ci) {
    RunResult& r = per_conn[static_cast<size_t>(ci)];
    VdmClient client;
    if (!client.Connect(host, port).ok()) {
      setup_failed.store(true);
      return;
    }
    HelloMsg hello;
    hello.timeout_ms = 30000;
    if (!tenant_names.empty()) {
      hello.tenant =
          tenant_names[static_cast<size_t>(ci) % tenant_names.size()];
    }
    if (!client.Hello(hello).ok()) {
      setup_failed.store(true);
      return;
    }
    uint32_t paging_stmt = 0;
    if (opts.mix == "paging") {
      Result<PreparedMsg> prep = client.Prepare(PagingQuerySql(10, 0));
      if (!prep.ok() || !prep->has_limit || !prep->has_offset) {
        setup_failed.store(true);
        return;
      }
      paging_stmt = prep->stmt_id;
    }

    const Clock::time_point t0 = Clock::now();
    const Clock::time_point t_end =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(duration_s));
    r.latencies_ms.reserve(static_cast<size_t>(total / n + 1));
    for (int64_t k = ci; k < total; k += n) {
      const Clock::time_point arrival =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(k) /
                                                 qps));
      if (arrival >= t_end) break;
      std::this_thread::sleep_until(arrival);
      ++r.scheduled;
      const WorkItem& item = items[static_cast<size_t>(k) % items.size()];
      Result<Chunk> result =
          opts.mix == "paging"
              ? client.Execute(paging_stmt, {}, item.limit, item.offset)
              : client.Query(item.sql);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - arrival)
              .count();
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kSerializationFailure) {
          ++r.serialization_retries;
        } else {
          ++r.errors;
        }
        continue;
      }
      ++r.completed;
      r.latencies_ms.push_back(ms);
      if (verify &&
          NormalizeChunk(*result, item.ordered) != item.expected) {
        ++r.wrong_results;
      }
    }
    client.Close();
  };

  const Clock::time_point wall0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int ci = 0; ci < n; ++ci) threads.emplace_back(conn_main, ci);
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  RunResult agg;
  for (RunResult& r : per_conn) {
    agg.scheduled += r.scheduled;
    agg.completed += r.completed;
    agg.errors += r.errors;
    agg.serialization_retries += r.serialization_retries;
    agg.wrong_results += r.wrong_results;
    agg.latencies_ms.insert(agg.latencies_ms.end(), r.latencies_ms.begin(),
                            r.latencies_ms.end());
  }
  if (setup_failed.load()) agg.errors += 1;
  std::sort(agg.latencies_ms.begin(), agg.latencies_ms.end());
  agg.wall_s = wall_s;
  agg.achieved_qps =
      wall_s > 0 ? static_cast<double>(agg.completed) / wall_s : 0;
  return agg;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--connections N] [--qps N] [--duration S] "
               "[--mix paging|gen] [--scale F] [--seed N] [--tenants SPEC] "
               "[--verify] [--knee] [--out FILE] [--host H --port P]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--connections" && (v = next())) {
      opts.connections = std::atoi(v);
    } else if (arg == "--qps" && (v = next())) {
      opts.qps = std::atof(v);
    } else if (arg == "--duration" && (v = next())) {
      opts.duration_s = std::atof(v);
    } else if (arg == "--mix" && (v = next())) {
      opts.mix = v;
    } else if (arg == "--scale" && (v = next())) {
      opts.scale = std::atof(v);
    } else if (arg == "--seed" && (v = next())) {
      opts.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--tenants" && (v = next())) {
      opts.tenants_spec = v;
    } else if (arg == "--verify") {
      opts.verify = true;
    } else if (arg == "--knee") {
      opts.knee = true;
    } else if (arg == "--knee-duration" && (v = next())) {
      opts.knee_duration_s = std::atof(v);
    } else if (arg == "--out" && (v = next())) {
      opts.out = v;
    } else if (arg == "--host" && (v = next())) {
      opts.host = v;
    } else if (arg == "--port" && (v = next())) {
      opts.port = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.connections <= 0 || opts.qps <= 0 || opts.duration_s <= 0 ||
      (opts.mix != "paging" && opts.mix != "gen")) {
    return Usage(argv[0]);
  }
  const bool external = !opts.host.empty() || opts.port != 0;
  if (external && (opts.host.empty() || opts.port == 0)) {
    std::fprintf(stderr, "vdmload: --host and --port go together\n");
    return 2;
  }

  // --- workload items ------------------------------------------------
  std::vector<WorkItem> items;
  if (opts.mix == "paging") {
    // The paper's page sweep: three page sizes, sixteen pages each.
    for (int64_t limit : {int64_t{10}, int64_t{100}, int64_t{1000}}) {
      for (int64_t page = 0; page < 16; ++page) {
        WorkItem item;
        item.limit = limit;
        item.offset = page * limit;
        item.sql = PagingQuerySql(limit, item.offset);
        items.push_back(std::move(item));
      }
    }
  }

  // --- database + in-process server ----------------------------------
  Database db;
  std::unique_ptr<Server> server;
  std::string host = opts.host;
  int port = opts.port;
  if (!external) {
    if (opts.mix == "paging") {
      TpchOptions tpch;
      tpch.scale = opts.scale;
      if (!CreateTpchSchema(&db, tpch).ok() ||
          !LoadTpchData(&db, tpch).ok()) {
        std::fprintf(stderr, "vdmload: TPC-H setup failed\n");
        return 2;
      }
    } else {
      Result<QueryCorpus> corpus = SetUpFuzzDatabase(&db);
      if (!corpus.ok()) {
        std::fprintf(stderr, "vdmload: corpus setup failed: %s\n",
                     corpus.status().ToString().c_str());
        return 2;
      }
      QueryGenerator generator(std::move(*corpus),
                               QueryGenOptions{opts.seed, false});
      for (int i = 0; i < 256; ++i) {
        GeneratedQuery q = generator.Next();
        WorkItem item;
        item.sql = std::move(q.sql);
        item.ordered = q.ordered;
        items.push_back(std::move(item));
      }
    }
    db.AnalyzeTables();
    db.EnablePlanCache();
    // Single-threaded execution per statement: page-bounded statements
    // don't amortize fan-out, concurrency comes from the connections —
    // and it keeps unordered-LIMIT row choice deterministic for --verify.
    ExecOptions exec;
    exec.num_threads = 1;
    db.SetExecOptions(exec);
    ExecLimits limits;
    limits.timeout_ms = 30000;
    limits.memory_budget = 0;
    limits.max_queued_ms = 10000;
    db.set_default_limits(limits);

    ServerOptions sopts;
    sopts.tenant_spec = opts.tenants_spec;
    server = std::make_unique<Server>(&db, sopts);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "vdmload: server start failed: %s\n",
                   started.ToString().c_str());
      return 2;
    }
    host = "127.0.0.1";
    port = server->port();
  } else if (opts.mix == "gen") {
    std::fprintf(stderr, "vdmload: --mix gen needs the in-process server\n");
    return 2;
  }

  std::vector<std::string> tenant_names;
  if (!opts.tenants_spec.empty() && server != nullptr) {
    tenant_names = server->tenants().DeclaredNames();
  }

  // --- expected rows for --verify ------------------------------------
  if (opts.verify) {
    if (!external) {
      for (WorkItem& item : items) {
        Result<Chunk> oracle = db.Query(item.sql);
        if (!oracle.ok()) {
          std::fprintf(stderr, "vdmload: verify precompute failed: %s\n",
                       oracle.status().ToString().c_str());
          return 2;
        }
        item.expected = NormalizeChunk(*oracle, item.ordered);
      }
    } else {
      VdmClient snap;
      if (!snap.Connect(host, port).ok() || !snap.Hello(HelloMsg{}).ok()) {
        std::fprintf(stderr, "vdmload: verify snapshot connect failed\n");
        return 2;
      }
      for (WorkItem& item : items) {
        Result<Chunk> oracle = snap.Query(item.sql);
        if (!oracle.ok()) {
          std::fprintf(stderr, "vdmload: verify snapshot failed: %s\n",
                       oracle.status().ToString().c_str());
          return 2;
        }
        item.expected = NormalizeChunk(*oracle, item.ordered);
      }
      snap.Close();
    }
  }

  // --- saturation-knee sweep -----------------------------------------
  struct KneePoint {
    double target_qps;
    double achieved_qps;
    double p99_ms;
  };
  std::vector<KneePoint> knee_points;
  double knee_qps = 0;
  if (opts.knee) {
    double target = opts.qps;
    for (int step = 0; step < 12; ++step) {
      RunResult r = RunLoad(opts, host, port, items, tenant_names, target,
                            opts.knee_duration_s, /*verify=*/false);
      double p99 = Percentile(r.latencies_ms, 0.99);
      knee_points.push_back({target, r.achieved_qps, p99});
      std::printf("vdmload knee: target %.0f qps -> achieved %.0f qps "
                  "(p99 %.2f ms)\n",
                  target, r.achieved_qps, p99);
      if (r.achieved_qps < 0.9 * target) break;
      knee_qps = target;
      target *= 2;
    }
  }

  // --- measured run ---------------------------------------------------
  std::printf("vdmload: %s mix, %d connections, target %.0f qps for %.0fs"
              "%s...\n",
              opts.mix.c_str(), opts.connections, opts.qps, opts.duration_s,
              opts.verify ? ", verifying every result" : "");
  RunResult run = RunLoad(opts, host, port, items, tenant_names, opts.qps,
                          opts.duration_s, opts.verify);
  const double p50 = Percentile(run.latencies_ms, 0.50);
  const double p95 = Percentile(run.latencies_ms, 0.95);
  const double p99 = Percentile(run.latencies_ms, 0.99);
  const double max_ms =
      run.latencies_ms.empty() ? 0 : run.latencies_ms.back();

  std::printf(
      "vdmload: %lld completed (%.0f qps achieved), %lld errors, "
      "%lld serialization retries, %lld wrong results\n",
      static_cast<long long>(run.completed), run.achieved_qps,
      static_cast<long long>(run.errors),
      static_cast<long long>(run.serialization_retries),
      static_cast<long long>(run.wrong_results));
  std::printf("vdmload: latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, "
              "max %.3f ms\n",
              p50, p95, p99, max_ms);
  if (opts.knee) {
    std::printf("vdmload: saturation knee ~%.0f qps\n", knee_qps);
  }

  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "vdmload: cannot write %s\n", opts.out.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"server\",\n");
  std::fprintf(f,
               "  \"config\": {\"mix\": \"%s\", \"connections\": %d, "
               "\"target_qps\": %.1f, \"duration_s\": %.1f, "
               "\"tpch_scale\": %.3f, \"verify\": %s, \"tenants\": \"%s\"},\n",
               opts.mix.c_str(), opts.connections, opts.qps, opts.duration_s,
               opts.scale, opts.verify ? "true" : "false",
               opts.tenants_spec.c_str());
  std::fprintf(f,
               "  \"results\": {\"completed\": %lld, \"achieved_qps\": %.1f, "
               "\"errors\": %lld, \"serialization_retries\": %lld, "
               "\"wrong_results\": %lld, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
               "\"p99_ms\": %.3f, \"max_ms\": %.3f",
               static_cast<long long>(run.completed), run.achieved_qps,
               static_cast<long long>(run.errors),
               static_cast<long long>(run.serialization_retries),
               static_cast<long long>(run.wrong_results), p50, p95, p99,
               max_ms);
  if (opts.knee) {
    std::fprintf(f, ", \"saturation_knee_qps\": %.0f, \"knee_sweep\": [",
                 knee_qps);
    for (size_t i = 0; i < knee_points.size(); ++i) {
      std::fprintf(f,
                   "%s{\"target_qps\": %.0f, \"achieved_qps\": %.1f, "
                   "\"p99_ms\": %.3f}",
                   i == 0 ? "" : ", ", knee_points[i].target_qps,
                   knee_points[i].achieved_qps, knee_points[i].p99_ms);
    }
    std::fprintf(f, "]");
  }
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
  std::printf("vdmload: wrote %s\n", opts.out.c_str());

  const bool too_many_errors =
      run.errors > run.scheduled / 100;  // >1% hard errors
  return (run.wrong_results > 0 || too_many_errors) ? 1 : 0;
}
