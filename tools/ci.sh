#!/usr/bin/env bash
# CI entry point: sanitizer build + tier-1 tests, then (when the tools are
# installed) clang-tidy over the analysis subsystem and a repo-wide
# clang-format check.
#
#   tools/ci.sh              # ASan + UBSan + TSan test runs, tidy, format
#   tools/ci.sh address      # one sanitizer only
#   tools/ci.sh thread       # TSan over the executor + governor tests only
#   tools/ci.sh fault        # ASan + fault injection compiled in + soak
#   tools/ci.sh fuzz         # ASan differential fuzz: vdmfuzz, 10k queries
#   tools/ci.sh server       # wire server: ASan+TSan conformance, fuzz leg,
#                            # loopback vdmload smoke
#   tools/ci.sh lint         # vdmlint catalog audit (baseline-gated) + tidy
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_sanitizer() {
  local san="$1"
  local dir="build-${san}"
  echo "== ${san} sanitizer build =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE="${san}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  # Second pass with the plan cache on: the paper-query and property
  # suites must produce byte-identical results through the cached
  # parameterize + rebind path too.
  echo "== ${san}: paper-query + property tests, VDM_PLAN_CACHE=1 =="
  VDM_PLAN_CACHE=1 ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -R 'paper_queries_test|property_random_test|plan_cache_test'
  # Third pass with the SIMD kernels forced off: the exec / kernel /
  # paper-query suites must be byte-identical through the scalar
  # reference kernels (the default run above covers SIMD-on dispatch).
  echo "== ${san}: exec + kernel + paper-query tests, VDM_SIMD=0 =="
  VDM_SIMD=0 ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -R 'exec_test|exec_parallel_test|kernel_test|paper_queries_test|property_random_test'
  # Fourth pass with the cost-based join reorderer forced off: the default
  # runs above cover reordering on (it is the default); this leg proves the
  # paper-query, property, and estimator suites are order-independent.
  echo "== ${san}: paper-query + property + stats tests, VDM_JOIN_REORDER=0 =="
  VDM_JOIN_REORDER=0 ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -R 'paper_queries_test|property_random_test|cardinality_test|sql_end2end_test'
  echo "== ${san}: all tests passed =="
}

run_thread_sanitizer() {
  # ThreadSanitizer over the tests that exercise concurrency: the parallel
  # executor suites and the plan cache (shared LRU hit from many sessions).
  # Only these run: the rest of the test battery is single-threaded and
  # TSan slows it ~10x for no signal.
  local dir="build-thread"
  echo "== thread sanitizer build (executor + plan cache + txn tests) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE=thread >/dev/null
  cmake --build "${dir}" -j "${JOBS}" \
        --target exec_test exec_parallel_test hash_table_test kernel_test \
                 plan_cache_test governor_test txn_test
  VDM_PLAN_CACHE=1 ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -R 'exec_test|exec_parallel_test|hash_table_test|kernel_test|plan_cache_test|governor_test|txn_test'
  echo "== thread: executor + plan cache + governor + txn tests passed =="
}

run_fault() {
  # Fault-injection soak: ASan build with the fault points compiled in
  # (VDMQO_FAULT_INJECTION=ON — a release build compiles them to no-ops).
  # The full battery runs once with no faults armed (every point must be
  # inert), then the suites that arm faults through the FaultInjection API
  # (governor_test and the property_random_test soak case) run again with
  # the plan cache on to cover the cached compile path. The invariant
  # under test: injected failures surface as typed Status, never as a
  # crash, hang, or leak. (VDM_FAULT is deliberately NOT exported here —
  # it is process-wide and would fail the success-asserting cases; the
  # soak cases arm and clear their own schedules.)
  local dir="build-fault"
  echo "== fault-injection build (ASan + VDMQO_FAULT_INJECTION=ON) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE=address -DVDMQO_FAULT_INJECTION=ON >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  echo "== fault: soak through the plan-cache path =="
  VDM_PLAN_CACHE=1 ctest --test-dir "${dir}" --output-on-failure \
      -R 'governor_test|property_random_test'
  # Armed-merge-fault DML soak: interleaved-transaction scripts with all
  # four txn/merge fault points firing at random; every injected failure
  # must leave the database in a state the differential oracle agrees
  # with (0 mismatches, nonzero conflicts/op-errors).
  echo "== fault: armed-merge-fault DML soak =="
  cmake --build "${dir}" -j "${JOBS}" --target vdmfuzz
  "${dir}/tools/vdmfuzz" --dml 300 --dml-faults --seed 1337 --progress 100 \
      --artifacts "${dir}/fuzz-artifacts"
  echo "== fault: soak passed =="
}

run_fuzz() {
  # Differential fuzz sweep (DESIGN.md §11): 10k generator queries, each
  # diffed against the reference-interpreter oracle across the full config
  # matrix, under ASan with the fault points compiled in. The seed corpus
  # is pinned (--seed 42) so a red run reproduces exactly; repro dumps
  # land in build-fuzz/fuzz-artifacts/. The self-test leg proves the
  # harness can still see a bug at all: a deliberately corrupted optimizer
  # pass and an armed fault schedule must both be detected.
  # These are the fuzz-labeled ctest targets (CONFIGURATIONS fuzz), which
  # plain tier-1 `ctest` deliberately skips.
  local dir="build-fuzz"
  echo "== differential fuzz build (ASan + fault points) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE=address -DVDMQO_FAULT_INJECTION=ON >/dev/null
  cmake --build "${dir}" -j "${JOBS}" \
        --target vdmfuzz ref_interpreter_test differential_test
  echo "== fuzz: oracle + runner unit tests =="
  ctest --test-dir "${dir}" --output-on-failure \
      -R 'ref_interpreter_test|differential_test'
  echo "== fuzz: harness self-test (planted bug must be caught) =="
  ctest --test-dir "${dir}" --output-on-failure -C fuzz -R vdmfuzz_self_test
  echo "== fuzz: 10k-query sweep, seed 42 =="
  ctest --test-dir "${dir}" --output-on-failure -C fuzz -R 'vdmfuzz_sweep$'
  echo "== fuzz: 5k DML-script sweep + fault-armed leg =="
  ctest --test-dir "${dir}" --output-on-failure -C fuzz \
      -R 'vdmfuzz_dml_sweep|vdmfuzz_dml_faults'
  echo "== fuzz: zero engine-vs-oracle mismatches =="
}

run_server() {
  # Wire-server battery (DESIGN.md §16). Four legs:
  #   1. ASan + fault points: the full conformance suite (session isolation,
  #      prepared rebind across invalidation, CANCEL, tenant admission,
  #      dying connections) plus the frame fuzzer — garbage frames must
  #      produce typed errors or a dropped connection, never a crash or
  #      leak, and the teardown-ordering test runs with the merge/rollback
  #      fault points armed.
  #   2. TSan over the same suite: poll thread vs. worker pool vs. client
  #      threads, admission gate, CANCEL racing a running statement.
  #   3. A short vdmfuzz --server sweep: the differential oracle matrix
  #      with every engine execution round-tripping a loopback connection;
  #      results must be byte-identical with the in-process path.
  #   4. A pinned low-QPS vdmload smoke with --verify: every row that comes
  #      back over the wire is diffed against the in-process expectation.
  local asan_dir="build-fault"
  echo "== server: ASan + fault-injection conformance + frame fuzzer =="
  cmake -B "${asan_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE=address -DVDMQO_FAULT_INJECTION=ON >/dev/null
  cmake --build "${asan_dir}" -j "${JOBS}" --target server_test vdmfuzz vdmload
  ctest --test-dir "${asan_dir}" --output-on-failure -R 'server_test'

  local tsan_dir="build-thread"
  echo "== server: TSan conformance (poll/worker/cancel/admission races) =="
  cmake -B "${tsan_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE=thread >/dev/null
  cmake --build "${tsan_dir}" -j "${JOBS}" --target server_test
  ctest --test-dir "${tsan_dir}" --output-on-failure -R 'server_test'

  echo "== server: differential fuzz through the loopback server =="
  "${asan_dir}/tools/vdmfuzz" --server --seed 42 --queries 300 \
      --progress 100 --artifacts "${asan_dir}/fuzz-artifacts"

  echo "== server: vdmload smoke (open-loop, verified results) =="
  "${asan_dir}/tools/vdmload" --connections 8 --qps 100 --duration 5 \
      --scale 0.05 --verify --out "${asan_dir}/BENCH_server_smoke.json"
  echo "== server: all legs passed =="
}

run_lint() {
  # Whole-catalog semantic audit (DESIGN.md §12): build vdmlint and run the
  # static inference rules over the synthetic + JEIB + fixture catalogs,
  # probing rewrites under all five system profiles. The committed baseline
  # suppresses accepted findings; the gate fails only on NEW findings at
  # warning or above, so intentional additions regenerate the baseline with
  #   build-lint/tools/vdmlint --catalog-audit --jeib --fixture \
  #       --write-baseline tools/vdmlint.baseline
  local dir="build-lint"
  echo "== vdmlint: whole-catalog audit =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target vdmlint
  "${dir}/tools/vdmlint" --catalog-audit --jeib --fixture \
      --baseline tools/vdmlint.baseline --fail-on warning
  echo "== vdmlint: no new findings at warning+ =="

  # clang-tidy on the analysis subsystem, the inference engine, and the
  # CLI tools (minimum bar; extend as modules are brought up to
  # zero-warning state).
  if command -v clang-tidy >/dev/null 2>&1; then
    local tidy_dir="build-tidy"
    cmake -B "${tidy_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    echo "== clang-tidy: src/analysis + src/analysis/infer + tools =="
    clang-tidy -p "${tidy_dir}" --quiet \
        src/analysis/*.cc src/analysis/infer/*.cc tools/*.cc
  else
    echo "clang-tidy not installed; skipping tidy step"
  fi

  # Format check, repo-wide. Informational unless clang-format is present.
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format check =="
    local files
    files="$(git ls-files '*.cc' '*.h')"
    # shellcheck disable=SC2086
    clang-format --dry-run --Werror ${files}
  else
    echo "clang-format not installed; skipping format check"
  fi
}

case "${MODE}" in
  address|undefined)
    run_sanitizer "${MODE}"
    ;;
  thread)
    run_thread_sanitizer
    ;;
  fault)
    run_fault
    ;;
  fuzz)
    run_fuzz
    ;;
  server)
    run_server
    ;;
  lint)
    run_lint
    ;;
  all)
    run_sanitizer address
    run_sanitizer undefined
    run_thread_sanitizer
    run_fault
    run_fuzz
    run_server
    run_lint
    ;;
  *)
    echo "usage: $0 [address|undefined|thread|fault|fuzz|server|lint|all]" >&2
    exit 2
    ;;
esac
