#!/usr/bin/env bash
# CI entry point: sanitizer build + tier-1 tests, then (when the tools are
# installed) clang-tidy over the analysis subsystem and a repo-wide
# clang-format check.
#
#   tools/ci.sh              # ASan + UBSan + TSan test runs, tidy, format
#   tools/ci.sh address      # one sanitizer only
#   tools/ci.sh thread       # TSan over the executor tests only
#   tools/ci.sh lint         # static checks only, no build
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 4)"

run_sanitizer() {
  local san="$1"
  local dir="build-${san}"
  echo "== ${san} sanitizer build =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE="${san}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  # Second pass with the plan cache on: the paper-query and property
  # suites must produce byte-identical results through the cached
  # parameterize + rebind path too.
  echo "== ${san}: paper-query + property tests, VDM_PLAN_CACHE=1 =="
  VDM_PLAN_CACHE=1 ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -R 'paper_queries_test|property_random_test|plan_cache_test'
  echo "== ${san}: all tests passed =="
}

run_thread_sanitizer() {
  # ThreadSanitizer over the tests that exercise concurrency: the parallel
  # executor suites and the plan cache (shared LRU hit from many sessions).
  # Only these run: the rest of the test battery is single-threaded and
  # TSan slows it ~10x for no signal.
  local dir="build-thread"
  echo "== thread sanitizer build (executor + plan cache tests) =="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DVDMQO_SANITIZE=thread >/dev/null
  cmake --build "${dir}" -j "${JOBS}" \
        --target exec_test exec_parallel_test hash_table_test plan_cache_test
  VDM_PLAN_CACHE=1 ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      -R 'exec_test|exec_parallel_test|hash_table_test|plan_cache_test'
  echo "== thread: executor + plan cache tests passed =="
}

run_lint() {
  # clang-tidy on the analysis subsystem (minimum bar; extend as modules
  # are brought up to zero-warning state).
  if command -v clang-tidy >/dev/null 2>&1; then
    local dir="build-tidy"
    cmake -B "${dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    echo "== clang-tidy: src/analysis =="
    clang-tidy -p "${dir}" --quiet src/analysis/*.cc
  else
    echo "clang-tidy not installed; skipping tidy step"
  fi

  # Format check, repo-wide. Informational unless clang-format is present.
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format check =="
    local files
    files="$(git ls-files '*.cc' '*.h')"
    # shellcheck disable=SC2086
    clang-format --dry-run --Werror ${files}
  else
    echo "clang-format not installed; skipping format check"
  fi
}

case "${MODE}" in
  address|undefined)
    run_sanitizer "${MODE}"
    ;;
  thread)
    run_thread_sanitizer
    ;;
  lint)
    run_lint
    ;;
  all)
    run_sanitizer address
    run_sanitizer undefined
    run_thread_sanitizer
    run_lint
    ;;
  *)
    echo "usage: $0 [address|undefined|thread|lint|all]" >&2
    exit 2
    ;;
esac
