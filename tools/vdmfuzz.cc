// vdmfuzz — differential fuzzer: engine vs. reference-interpreter oracle.
//
//   $ ./tools/vdmfuzz --seed 42 --queries 10000 --artifacts fuzz-artifacts
//
// Generates seeded VDM-shaped queries (testing/query_gen.h), evaluates each
// with the naive reference interpreter (ref/interpreter.h), and executes it
// across the full engine configuration matrix — 5 optimizer profiles x
// {1,N} threads x plan cache off/cold/warm x governor off/on — plus
// metamorphic variants. Any diff writes a minimized repro dump into the
// artifacts directory (see DESIGN.md §11 and README for the format).
//
// Flags:
//   --seed N            query-generator seed (default 42)
//   --queries N         number of queries (default 200)
//   --workers N         worker threads, each with its own databases
//                       (default: hardware concurrency, capped at 8)
//   --exec-threads N    the "N" of the {1,N}-thread matrix leg (default 4)
//   --artifacts DIR     repro-dump directory (default "fuzz-artifacts")
//   --no-metamorphic    skip the metamorphic variant checks
//   --progress N        progress line every N queries (default 500; 0 off)
//   --corrupt PASS      plant a wrong-result bug after the named optimizer
//                       pass (debug; the run SHOULD then report mismatches)
//   --server            route every engine execution through a loopback
//                       vdmserve connection (wire encode/decode round
//                       trip); results must stay byte-identical with the
//                       in-process path
//   --dml N             run the DML differential instead: N interleaved
//                       transaction scripts over the MVCC delta store,
//                       diffed mid-script against the reference
//                       interpreter and at end-of-script against the
//                       shadow database (testing/dml_differential.h)
//   --dml-faults        arm the txn/merge fault points for the --dml run
//                       (txn.commit.conflict, txn.rollback,
//                       storage.merge.remap, storage.merge.abort); every
//                       injected failure must still converge to the
//                       oracle state. Requires a fault-injection build.
//   --self-test         verify the harness itself: a clean batch must pass,
//                       a deliberately corrupted batch must fail with a
//                       repro dump, and (in fault builds) an injected-fault
//                       batch must be detected; also runs a clean and (in
//                       fault builds) a fault-armed DML script batch
//
// Exit status: 0 clean, 1 mismatches found, 2 usage or harness error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "testing/differential.h"
#include "testing/dml_differential.h"

using namespace vdm;

namespace {

void PrintStats(const DiffStats& stats) {
  std::printf(
      "vdmfuzz: %lld queries, %lld engine executions, "
      "%lld metamorphic checks, %lld plan-cache hits\n",
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.executions),
      static_cast<long long>(stats.metamorphic_checks),
      static_cast<long long>(stats.plan_cache_hits));
  std::printf("vdmfuzz: %lld mismatches, %lld engine errors\n",
              static_cast<long long>(stats.mismatches),
              static_cast<long long>(stats.errors));
  for (const std::string& file : stats.repro_files) {
    std::printf("vdmfuzz: repro dump: %s\n", file.c_str());
  }
}

int RunOnce(const DiffOptions& options) {
  DifferentialRunner runner(options);
  Result<DiffStats> stats = runner.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "vdmfuzz: harness error: %s\n",
                 stats.status().ToString().c_str());
    return 2;
  }
  PrintStats(*stats);
  return stats->mismatches > 0 ? 1 : 0;
}

void PrintDmlStats(const DmlDiffStats& stats) {
  std::printf(
      "vdmfuzz dml: %lld scripts, %lld ops, %lld query checks, "
      "%lld final-state checks, %lld merges\n",
      static_cast<long long>(stats.scripts),
      static_cast<long long>(stats.ops),
      static_cast<long long>(stats.query_checks),
      static_cast<long long>(stats.final_checks),
      static_cast<long long>(stats.merges));
  std::printf(
      "vdmfuzz dml: %lld mismatches, %lld serialization conflicts, "
      "%lld op errors (injected faults / retries exhausted)\n",
      static_cast<long long>(stats.mismatches),
      static_cast<long long>(stats.conflicts),
      static_cast<long long>(stats.op_errors));
  for (const std::string& file : stats.repro_files) {
    std::printf("vdmfuzz dml: repro dump: %s\n", file.c_str());
  }
}

int RunDmlOnce(const DmlDiffOptions& options) {
  if (options.with_faults && !FaultInjection::CompiledIn()) {
    std::fprintf(stderr,
                 "vdmfuzz: --dml-faults requires a VDMQO_FAULT_INJECTION "
                 "build\n");
    return 2;
  }
  Result<DmlDiffStats> stats = RunDmlDifferential(options);
  if (!stats.ok()) {
    std::fprintf(stderr, "vdmfuzz: harness error: %s\n",
                 stats.status().ToString().c_str());
    return 2;
  }
  PrintDmlStats(*stats);
  return stats->mismatches > 0 ? 1 : 0;
}

/// The harness must (a) pass on a clean engine, (b) report exactly the
/// planted wrong-result bug when the optimizer is corrupted, with a repro
/// dump, and (c) in fault-injection builds, surface injected execution
/// faults as diffs.
int SelfTest(DiffOptions base) {
  base.num_queries = base.num_queries > 0 ? base.num_queries : 40;
  base.progress_every = 0;

  std::printf("vdmfuzz self-test [1/3]: clean batch (%d queries)...\n",
              base.num_queries);
  DiffOptions clean = base;
  clean.artifacts_dir = "";
  DifferentialRunner clean_runner(clean);
  Result<DiffStats> clean_stats = clean_runner.Run();
  if (!clean_stats.ok()) {
    std::fprintf(stderr, "vdmfuzz self-test: harness error: %s\n",
                 clean_stats.status().ToString().c_str());
    return 2;
  }
  if (clean_stats->mismatches != 0) {
    std::fprintf(stderr,
                 "vdmfuzz self-test FAILED: clean batch reported %lld "
                 "mismatches (expected 0)\n",
                 static_cast<long long>(clean_stats->mismatches));
    return 2;
  }

  std::printf(
      "vdmfuzz self-test [2/3]: planted bug "
      "(--corrupt prune_and_eliminate)...\n");
  DiffOptions corrupt = base;
  corrupt.debug_corrupt_pass = "prune_and_eliminate";
  if (corrupt.artifacts_dir.empty()) corrupt.artifacts_dir = "fuzz-artifacts";
  DifferentialRunner corrupt_runner(corrupt);
  Result<DiffStats> corrupt_stats = corrupt_runner.Run();
  if (!corrupt_stats.ok()) {
    std::fprintf(stderr, "vdmfuzz self-test: harness error: %s\n",
                 corrupt_stats.status().ToString().c_str());
    return 2;
  }
  if (corrupt_stats->mismatches == 0 || corrupt_stats->repro_files.empty()) {
    std::fprintf(stderr,
                 "vdmfuzz self-test FAILED: planted wrong-result bug was "
                 "not detected (%lld mismatches, %zu repro dumps)\n",
                 static_cast<long long>(corrupt_stats->mismatches),
                 corrupt_stats->repro_files.size());
    return 2;
  }
  std::printf("  detected: %lld mismatching queries, first dump: %s\n",
              static_cast<long long>(corrupt_stats->mismatches),
              corrupt_stats->repro_files.front().c_str());

  if (FaultInjection::CompiledIn()) {
    std::printf("vdmfuzz self-test [3/3]: injected execution faults...\n");
    FaultSpec spec;
    spec.probability = 0.05;
    FaultInjection::Set("exec.aggregate", spec);
    FaultInjection::Set("exec.join.probe", spec);
    FaultInjection::SetSeed(base.seed);
    DiffOptions faulty = base;
    faulty.artifacts_dir = "";
    DifferentialRunner faulty_runner(faulty);
    Result<DiffStats> faulty_stats = faulty_runner.Run();
    FaultInjection::Clear();
    if (!faulty_stats.ok()) {
      std::fprintf(stderr, "vdmfuzz self-test: harness error: %s\n",
                   faulty_stats.status().ToString().c_str());
      return 2;
    }
    if (faulty_stats->errors == 0) {
      std::fprintf(stderr,
                   "vdmfuzz self-test FAILED: armed faults produced no "
                   "detected engine errors\n");
      return 2;
    }
    std::printf("  detected: %lld injected engine errors\n",
                static_cast<long long>(faulty_stats->errors));
  } else {
    std::printf(
        "vdmfuzz self-test [3/3]: skipped (built without "
        "VDMQO_FAULT_INJECTION)\n");
  }

  // DML differential legs: a clean script batch must converge to the
  // shadow state, and in fault builds an armed batch must converge too —
  // with the harness actually observing injected failures along the way.
  std::printf("vdmfuzz self-test [dml 1/2]: clean DML script batch...\n");
  DmlDiffOptions dml;
  dml.seed = base.seed;
  dml.num_scripts = 12;
  dml.exec_threads = base.exec_threads;
  dml.artifacts_dir = "";
  Result<DmlDiffStats> dml_stats = RunDmlDifferential(dml);
  if (!dml_stats.ok()) {
    std::fprintf(stderr, "vdmfuzz self-test: DML harness error: %s\n",
                 dml_stats.status().ToString().c_str());
    return 2;
  }
  if (dml_stats->mismatches != 0) {
    std::fprintf(stderr,
                 "vdmfuzz self-test FAILED: clean DML batch reported %lld "
                 "mismatches (expected 0)\n",
                 static_cast<long long>(dml_stats->mismatches));
    return 2;
  }
  if (FaultInjection::CompiledIn()) {
    std::printf(
        "vdmfuzz self-test [dml 2/2]: fault-armed DML script batch...\n");
    DmlDiffOptions armed = dml;
    armed.with_faults = true;
    Result<DmlDiffStats> armed_stats = RunDmlDifferential(armed);
    if (!armed_stats.ok()) {
      std::fprintf(stderr, "vdmfuzz self-test: DML harness error: %s\n",
                   armed_stats.status().ToString().c_str());
      return 2;
    }
    if (armed_stats->mismatches != 0) {
      std::fprintf(stderr,
                   "vdmfuzz self-test FAILED: fault-armed DML batch "
                   "diverged from the oracle (%lld mismatches)\n",
                   static_cast<long long>(armed_stats->mismatches));
      return 2;
    }
    if (armed_stats->op_errors + armed_stats->conflicts == 0) {
      std::fprintf(stderr,
                   "vdmfuzz self-test FAILED: armed txn/merge faults "
                   "produced no observed failures\n");
      return 2;
    }
    std::printf(
        "  converged: %lld injected/op errors, %lld conflicts, 0 "
        "mismatches\n",
        static_cast<long long>(armed_stats->op_errors),
        static_cast<long long>(armed_stats->conflicts));
  } else {
    std::printf(
        "vdmfuzz self-test [dml 2/2]: skipped (built without "
        "VDMQO_FAULT_INJECTION)\n");
  }

  std::printf("vdmfuzz self-test PASSED\n");
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--queries N] [--workers N] "
               "[--exec-threads N] [--artifacts DIR] [--no-metamorphic] "
               "[--progress N] [--corrupt PASS] [--server] [--dml N] "
               "[--dml-faults] [--self-test]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions options;
  options.artifacts_dir = "fuzz-artifacts";
  options.progress_every = 500;
  bool self_test = false;
  int dml_scripts = 0;
  bool dml_faults = false;
  static std::string corrupt_pass;  // keeps the c_str alive for the run

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_queries = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.workers = std::atoi(v);
    } else if (arg == "--exec-threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.exec_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--artifacts") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.artifacts_dir = v;
    } else if (arg == "--no-metamorphic") {
      options.with_metamorphic = false;
    } else if (arg == "--progress") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.progress_every = std::atoi(v);
    } else if (arg == "--corrupt") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      corrupt_pass = v;
      options.debug_corrupt_pass = corrupt_pass.c_str();
    } else if (arg == "--server") {
      options.through_server = true;
    } else if (arg == "--dml") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      dml_scripts = std::atoi(v);
    } else if (arg == "--dml-faults") {
      dml_faults = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (self_test) return SelfTest(options);
  if (dml_scripts > 0) {
    DmlDiffOptions dml;
    dml.seed = options.seed;
    dml.num_scripts = dml_scripts;
    dml.workers = options.workers;
    dml.exec_threads = options.exec_threads;
    dml.artifacts_dir = options.artifacts_dir;
    dml.with_faults = dml_faults;
    dml.progress_every = options.progress_every;
    return RunDmlOnce(dml);
  }
  if (options.num_queries <= 0) return Usage(argv[0]);
  return RunOnce(options);
}
