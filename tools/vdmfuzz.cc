// vdmfuzz — differential fuzzer: engine vs. reference-interpreter oracle.
//
//   $ ./tools/vdmfuzz --seed 42 --queries 10000 --artifacts fuzz-artifacts
//
// Generates seeded VDM-shaped queries (testing/query_gen.h), evaluates each
// with the naive reference interpreter (ref/interpreter.h), and executes it
// across the full engine configuration matrix — 5 optimizer profiles x
// {1,N} threads x plan cache off/cold/warm x governor off/on — plus
// metamorphic variants. Any diff writes a minimized repro dump into the
// artifacts directory (see DESIGN.md §11 and README for the format).
//
// Flags:
//   --seed N            query-generator seed (default 42)
//   --queries N         number of queries (default 200)
//   --workers N         worker threads, each with its own databases
//                       (default: hardware concurrency, capped at 8)
//   --exec-threads N    the "N" of the {1,N}-thread matrix leg (default 4)
//   --artifacts DIR     repro-dump directory (default "fuzz-artifacts")
//   --no-metamorphic    skip the metamorphic variant checks
//   --progress N        progress line every N queries (default 500; 0 off)
//   --corrupt PASS      plant a wrong-result bug after the named optimizer
//                       pass (debug; the run SHOULD then report mismatches)
//   --self-test         verify the harness itself: a clean batch must pass,
//                       a deliberately corrupted batch must fail with a
//                       repro dump, and (in fault builds) an injected-fault
//                       batch must be detected
//
// Exit status: 0 clean, 1 mismatches found, 2 usage or harness error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "testing/differential.h"

using namespace vdm;

namespace {

void PrintStats(const DiffStats& stats) {
  std::printf(
      "vdmfuzz: %lld queries, %lld engine executions, "
      "%lld metamorphic checks, %lld plan-cache hits\n",
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.executions),
      static_cast<long long>(stats.metamorphic_checks),
      static_cast<long long>(stats.plan_cache_hits));
  std::printf("vdmfuzz: %lld mismatches, %lld engine errors\n",
              static_cast<long long>(stats.mismatches),
              static_cast<long long>(stats.errors));
  for (const std::string& file : stats.repro_files) {
    std::printf("vdmfuzz: repro dump: %s\n", file.c_str());
  }
}

int RunOnce(const DiffOptions& options) {
  DifferentialRunner runner(options);
  Result<DiffStats> stats = runner.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "vdmfuzz: harness error: %s\n",
                 stats.status().ToString().c_str());
    return 2;
  }
  PrintStats(*stats);
  return stats->mismatches > 0 ? 1 : 0;
}

/// The harness must (a) pass on a clean engine, (b) report exactly the
/// planted wrong-result bug when the optimizer is corrupted, with a repro
/// dump, and (c) in fault-injection builds, surface injected execution
/// faults as diffs.
int SelfTest(DiffOptions base) {
  base.num_queries = base.num_queries > 0 ? base.num_queries : 40;
  base.progress_every = 0;

  std::printf("vdmfuzz self-test [1/3]: clean batch (%d queries)...\n",
              base.num_queries);
  DiffOptions clean = base;
  clean.artifacts_dir = "";
  DifferentialRunner clean_runner(clean);
  Result<DiffStats> clean_stats = clean_runner.Run();
  if (!clean_stats.ok()) {
    std::fprintf(stderr, "vdmfuzz self-test: harness error: %s\n",
                 clean_stats.status().ToString().c_str());
    return 2;
  }
  if (clean_stats->mismatches != 0) {
    std::fprintf(stderr,
                 "vdmfuzz self-test FAILED: clean batch reported %lld "
                 "mismatches (expected 0)\n",
                 static_cast<long long>(clean_stats->mismatches));
    return 2;
  }

  std::printf(
      "vdmfuzz self-test [2/3]: planted bug "
      "(--corrupt prune_and_eliminate)...\n");
  DiffOptions corrupt = base;
  corrupt.debug_corrupt_pass = "prune_and_eliminate";
  if (corrupt.artifacts_dir.empty()) corrupt.artifacts_dir = "fuzz-artifacts";
  DifferentialRunner corrupt_runner(corrupt);
  Result<DiffStats> corrupt_stats = corrupt_runner.Run();
  if (!corrupt_stats.ok()) {
    std::fprintf(stderr, "vdmfuzz self-test: harness error: %s\n",
                 corrupt_stats.status().ToString().c_str());
    return 2;
  }
  if (corrupt_stats->mismatches == 0 || corrupt_stats->repro_files.empty()) {
    std::fprintf(stderr,
                 "vdmfuzz self-test FAILED: planted wrong-result bug was "
                 "not detected (%lld mismatches, %zu repro dumps)\n",
                 static_cast<long long>(corrupt_stats->mismatches),
                 corrupt_stats->repro_files.size());
    return 2;
  }
  std::printf("  detected: %lld mismatching queries, first dump: %s\n",
              static_cast<long long>(corrupt_stats->mismatches),
              corrupt_stats->repro_files.front().c_str());

  if (FaultInjection::CompiledIn()) {
    std::printf("vdmfuzz self-test [3/3]: injected execution faults...\n");
    FaultSpec spec;
    spec.probability = 0.05;
    FaultInjection::Set("exec.aggregate", spec);
    FaultInjection::Set("exec.join.probe", spec);
    FaultInjection::SetSeed(base.seed);
    DiffOptions faulty = base;
    faulty.artifacts_dir = "";
    DifferentialRunner faulty_runner(faulty);
    Result<DiffStats> faulty_stats = faulty_runner.Run();
    FaultInjection::Clear();
    if (!faulty_stats.ok()) {
      std::fprintf(stderr, "vdmfuzz self-test: harness error: %s\n",
                   faulty_stats.status().ToString().c_str());
      return 2;
    }
    if (faulty_stats->errors == 0) {
      std::fprintf(stderr,
                   "vdmfuzz self-test FAILED: armed faults produced no "
                   "detected engine errors\n");
      return 2;
    }
    std::printf("  detected: %lld injected engine errors\n",
                static_cast<long long>(faulty_stats->errors));
  } else {
    std::printf(
        "vdmfuzz self-test [3/3]: skipped (built without "
        "VDMQO_FAULT_INJECTION)\n");
  }

  std::printf("vdmfuzz self-test PASSED\n");
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--queries N] [--workers N] "
               "[--exec-threads N] [--artifacts DIR] [--no-metamorphic] "
               "[--progress N] [--corrupt PASS] [--self-test]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions options;
  options.artifacts_dir = "fuzz-artifacts";
  options.progress_every = 500;
  bool self_test = false;
  static std::string corrupt_pass;  // keeps the c_str alive for the run

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_queries = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.workers = std::atoi(v);
    } else if (arg == "--exec-threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.exec_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--artifacts") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.artifacts_dir = v;
    } else if (arg == "--no-metamorphic") {
      options.with_metamorphic = false;
    } else if (arg == "--progress") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.progress_every = std::atoi(v);
    } else if (arg == "--corrupt") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      corrupt_pass = v;
      options.debug_corrupt_pass = corrupt_pass.c_str();
    } else if (arg == "--self-test") {
      self_test = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.num_queries <= 0) return Usage(argv[0]);

  return self_test ? SelfTest(options) : RunOnce(options);
}
