// vdmserve — standalone wire server over one vdmqo Database
// (DESIGN.md §16).
//
//   $ VDM_SERVER_PORT=7788 ./tools/vdmserve --load tpch --scale 1
//   vdmserve: serving tpch (scale 1.0) on 127.0.0.1:7788 ...
//
// Loads a workload, starts the multi-session front end, and serves until
// SIGINT/SIGTERM. Clients speak the length-prefixed protocol of
// src/server/wire.h (vdmload and the server tests are the reference
// clients).
//
// Flags:
//   --port N          listen port (0 = ephemeral, printed on stdout);
//                     overrides VDM_SERVER_PORT
//   --load W          tpch | s4 | none (default tpch)
//   --scale F         TPC-H scale factor (default 0.2)
//   --workers N       statement worker threads (0 = min(hardware, 8))
//   --max-sessions N  connection cap (0 = unlimited);
//                     overrides VDM_MAX_SESSIONS
//   --tenants SPEC    tenant classes (overrides VDM_TENANT_CLASSES), e.g.
//                     "gold:mem_mb=512,conc=8;bronze:mem_mb=64,conc=2"
#include <csignal>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/database.h"
#include "server/server.h"
#include "workload/s4.h"
#include "workload/tpch.h"

using namespace vdm;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--load tpch|s4|none] [--scale F] "
               "[--workers N] [--max-sessions N] [--tenants SPEC]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options = ServerOptions::FromEnv();
  std::string load = "tpch";
  double scale = 0.2;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next())) {
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--load" && (v = next())) {
      load = v;
    } else if (arg == "--scale" && (v = next())) {
      scale = std::atof(v);
    } else if (arg == "--workers" && (v = next())) {
      options.workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-sessions" && (v = next())) {
      options.max_sessions = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--tenants" && (v = next())) {
      options.tenant_spec = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (load != "tpch" && load != "s4" && load != "none") return Usage(argv[0]);

  Database db;
  if (load == "tpch") {
    TpchOptions tpch;
    tpch.scale = scale;
    if (!CreateTpchSchema(&db, tpch).ok() || !LoadTpchData(&db, tpch).ok()) {
      std::fprintf(stderr, "vdmserve: TPC-H setup failed\n");
      return 2;
    }
  } else if (load == "s4") {
    S4Options s4;
    if (!CreateS4Schema(&db, s4).ok() || !LoadS4Data(&db, s4).ok()) {
      std::fprintf(stderr, "vdmserve: S/4 setup failed\n");
      return 2;
    }
  }
  db.AnalyzeTables();
  db.EnablePlanCache();

  Server server(&db, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "vdmserve: start failed: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  std::printf("vdmserve: serving %s%s on 127.0.0.1:%d\n", load.c_str(),
              load == "tpch"
                  ? (" (scale " + std::to_string(scale) + ")").c_str()
                  : "",
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  ServerStats stats = server.stats();
  server.Stop();
  std::printf("vdmserve: shut down (%llu sessions, %llu frames, "
              "%llu protocol errors, %llu cancels)\n",
              static_cast<unsigned long long>(stats.sessions_opened),
              static_cast<unsigned long long>(stats.frames),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.cancels));
  return 0;
}
