// Real-time analytics over a virtual star schema (paper §3, §4.1).
//
// Builds the TPC-H transactional schema, defines one expansive "sales"
// view pre-joining every dimension — the VDM style — and runs several
// analytical queries against it. Each query uses a small slice of the
// view, and the optimizer prunes the rest; the example prints, for each
// query, how many of the view's joins actually execute.
#include <cstdio>

#include "engine/database.h"
#include "plan/plan_printer.h"
#include "workload/tpch.h"

using namespace vdm;

namespace {

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  Database db;
  TpchOptions options;
  options.scale = 1.0;
  if (!CreateTpchSchema(&db, options).ok() ||
      !LoadTpchData(&db, options).ok()) {
    std::fprintf(stderr, "failed to load TPC-H data\n");
    return 1;
  }

  // One broad view serving customer-, nation-, part- and supplier-focused
  // analyses alike (the paper's "expansive join view").
  Check(db.Execute(
      "create view sales as "
      "select l.l_orderkey as orderkey, l.l_linenumber as linenumber, "
      "       l.l_quantity as quantity, "
      "       l.l_extendedprice as price, l.l_discount as discount, "
      "       l.l_extendedprice * (1 - l.l_discount) as revenue, "
      "       o.o_orderdate as orderdate, o.o_orderstatus as status, "
      "       c.c_name as customer, c.c_mktsegment as segment, "
      "       cn.n_name as customer_nation, "
      "       p.p_name as part, p.p_brand as brand, "
      "       s.s_name as supplier, sn.n_name as supplier_nation "
      "from lineitem l "
      "join orders o on l.l_orderkey = o.o_orderkey "
      "left join customer c on o.o_custkey = c.c_custkey "
      "left join nation cn on c.c_nationkey = cn.n_nationkey "
      "left join part p on l.l_partkey = p.p_partkey "
      "left join supplier s on l.l_suppkey = s.s_suppkey "
      "left join nation sn on s.s_nationkey = sn.n_nationkey"));

  const char* queries[] = {
      // Customer-segment revenue: needs only orders+customer.
      "select segment, sum(revenue) as total from sales "
      "group by segment order by total desc",
      // Supplier-nation view of the same data: different joins survive.
      "select supplier_nation, count(*) as items, sum(revenue) as total "
      "from sales group by supplier_nation order by total desc limit 5",
      // Brand drill-down: only the part join is needed.
      "select brand, sum(quantity) as units from sales "
      "group by brand order by units desc limit 5",
      // Pure fact-table aggregation: every dimension join is pruned.
      "select year(orderdate) as y, sum(revenue) as total from sales "
      "group by year(orderdate) order by y",
  };

  Result<PlanRef> full = db.BindQuery("select * from sales");
  std::printf("the sales view joins %zu tables (%zu joins)\n\n",
              ComputePlanStats(*full).table_instances,
              ComputePlanStats(*full).joins);

  for (const char* sql : queries) {
    Result<PlanRef> plan = db.PlanQuery(sql);
    PlanStats stats = ComputePlanStats(Check(std::move(plan)));
    Chunk rows = Check(db.Query(sql));
    std::printf("-- %s\n", sql);
    std::printf("   [executed with %zu of the view's 6 dimension joins]\n",
                stats.joins > 1 ? stats.joins - 1 : 0);
    std::printf("%s\n", rows.ToString(8).c_str());
  }
  return 0;
}
