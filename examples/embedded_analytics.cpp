// Embedded analytics over the JournalEntryItemBrowser stack (paper §3):
// financial line-item analysis directly on transactional tables, through
// the full VDM view hierarchy, with record-wise data access control.
#include <cstdio>

#include "engine/database.h"
#include "plan/plan_printer.h"
#include "vdm/jeib.h"
#include "workload/s4.h"

using namespace vdm;

namespace {

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  Database db;
  S4Options options;
  options.acdoca_rows = 50000;
  if (!CreateS4Schema(&db, options).ok() || !LoadS4Data(&db, options).ok() ||
      !BuildJournalEntryItemBrowser(&db).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  Result<PlanRef> raw = db.BindQuery("select * from journalentryitembrowser");
  std::printf(
      "JournalEntryItemBrowser raw plan: %s\n\n",
      ComputePlanStats(Check(std::move(raw))).ToString().c_str());

  struct Example {
    const char* title;
    const char* sql;
  } queries[] = {
      {"company totals (real-time, no ETL)",
       "select rbukrs, companyname, sum(hsl) as total, count(*) as lines "
       "from journalentryitembrowser "
       "group by rbukrs, companyname order by total desc limit 5"},
      {"spending by supplier country",
       "select suppliercountryname, sum(hsl) as total "
       "from journalentryitembrowser "
       "where lifnr is not null "
       "group by suppliercountryname order by total desc limit 5"},
      {"documents above average (per-document totals from the "
       "GROUP BY augmenter)",
       "select belnr, documenttotal, documentlines "
       "from journalentryitembrowser "
       "where documentlines > 5 limit 5"},
      {"ledger / fiscal-year matrix",
       "select ledgername, gjahr, count(*) as n "
       "from journalentryitembrowser group by ledgername, gjahr "
       "order by ledgername, gjahr limit 10"},
  };

  for (const Example& example : queries) {
    Result<PlanRef> plan = db.PlanQuery(example.sql);
    PlanStats stats = ComputePlanStats(Check(std::move(plan)));
    Chunk rows = Check(db.Query(example.sql));
    std::printf("-- %s\n   %s\n", example.title, example.sql);
    std::printf("   [plan after optimization: %zu joins, %zu scans]\n",
                stats.joins, stats.table_instances);
    std::printf("%s\n", rows.ToString(6).c_str());
  }

  std::printf(
      "note: every query above runs through the 30-join consumption view;\n"
      "the optimizer keeps only the joins each query (and the DAC filter)\n"
      "actually needs.\n");
  return 0;
}
