// Quickstart: create tables, define a VDM-style view, and watch the
// optimizer remove the unused augmentation joins.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "engine/database.h"
#include "plan/plan_printer.h"

using namespace vdm;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  Database db;

  // 1. Transactional tables, as an application would define them.
  Check(db.Execute("create table product ("
                   "  id int primary key,"
                   "  name varchar(40) not null,"
                   "  category varchar(20),"
                   "  price decimal(10,2))")
            .status());
  Check(db.Execute("create table sale ("
                   "  id int primary key,"
                   "  product_id int not null,"
                   "  quantity int,"
                   "  sold_on date)")
            .status());

  Check(db.Insert("product",
                  {{Value::Int64(1), Value::String("Laptop"),
                    Value::String("electronics"), Value::Decimal(129999, 2)},
                   {Value::Int64(2), Value::String("Desk"),
                    Value::String("furniture"), Value::Decimal(24900, 2)},
                   {Value::Int64(3), Value::String("Monitor"),
                    Value::String("electronics"), Value::Decimal(39900, 2)}}));
  Check(db.Insert(
      "sale", {{Value::Int64(10), Value::Int64(1), Value::Int64(2),
                Value::Date(20000)},
               {Value::Int64(11), Value::Int64(3), Value::Int64(1),
                Value::Date(20001)},
               {Value::Int64(12), Value::Int64(1), Value::Int64(5),
                Value::Date(20002)}}));

  // 2. A VDM-style view: broad, join-rich, reusable for many queries.
  //    (paper §2.3 — "offer all application data via standardized
  //    business-oriented views")
  Check(db.Execute("create view saleitem as "
                   "select s.id as sale_id, s.quantity, s.sold_on, "
                   "       p.name as product_name, p.category, p.price, "
                   "       p.price * s.quantity as line_total "
                   "from sale s "
                   "left join product p on s.product_id = p.id")
            .status());

  // 3. Query through the view. This query uses only sale columns...
  std::string narrow = "select sale_id, quantity from saleitem";
  Chunk rows = Check(db.Query(narrow));
  std::printf("-- %s\n%s\n", narrow.c_str(), rows.ToString().c_str());

  // ...so the optimizer removes the product join entirely (a UAJ, §4.2):
  std::printf("optimized plan:\n%s\n", Check(db.Explain(narrow)).c_str());

  // 4. A query that uses product columns keeps the join.
  std::string wide =
      "select product_name, sum(line_total) as revenue "
      "from saleitem group by product_name order by revenue desc";
  rows = Check(db.Query(wide));
  std::printf("-- %s\n%s\n", wide.c_str(), rows.ToString().c_str());
  std::printf("optimized plan:\n%s\n", Check(db.Explain(wide)).c_str());

  // 5. Compare against a weaker optimizer profile (paper Table 1).
  db.SetProfile(SystemProfile::kSystemX);
  std::printf("same narrow query under the 'System X' profile:\n%s\n",
              Check(db.Explain(narrow)).c_str());
  db.SetProfile(SystemProfile::kHana);

  // 6. CDS-style associations (paper §2.3): declare the link once, then
  //    use path notation — the join is injected only when referenced.
  Check(db.Execute("create view salesdoc as "
                   "select id, product_id, quantity from sale "
                   "with associations ("
                   "  product to product on product.id = product_id)")
            .status());
  std::string path_query =
      "select s.id, s.product.name, s.product.price from salesdoc s "
      "order by s.id";
  rows = Check(db.Query(path_query));
  std::printf("-- %s\n%s\n", path_query.c_str(), rows.ToString().c_str());
  return 0;
}
