// The custom-fields extension story (paper §5 and §6.3).
//
// A customer extends an application table with a custom field; the
// SAP-managed consumption view must expose it without redefining the
// interim view stack. The upgrade-safe pattern is an augmentation
// self-join (ASJ) — and for draft-enabled documents the augmenter is a
// UNION ALL of the active and draft tables, which needs the explicit
// `case join` intent to optimize.
#include <cstdio>

#include "engine/database.h"
#include "plan/plan_printer.h"
#include "vdm/generator.h"

using namespace vdm;

namespace {

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void ShowPlans(Database* db, const SyntheticViewSpec& spec) {
  Result<PlanRef> original =
      db->PlanQuery(SyntheticPagingQuery(spec, /*extended=*/false));
  Result<PlanRef> extended =
      db->PlanQuery(SyntheticPagingQuery(spec, /*extended=*/true));
  PlanStats orig_stats = ComputePlanStats(Check(std::move(original)));
  PlanStats ext_stats = ComputePlanStats(Check(std::move(extended)));
  std::printf("  original view : %zu joins, %zu table scans\n",
              orig_stats.joins, orig_stats.table_instances);
  std::printf("  extended view : %zu joins, %zu table scans %s\n",
              ext_stats.joins, ext_stats.table_instances,
              ext_stats.joins == orig_stats.joins
                  ? "(self-join optimized away)"
                  : "(self-join NOT removed)");
}

}  // namespace

int main() {
  Database db;
  SyntheticVdmOptions options;
  options.num_views = 6;
  options.base_tables = 3;
  options.base_rows = 20000;
  if (!CreateSyntheticVdmSchema(&db, options).ok() ||
      !LoadSyntheticVdmData(&db, options).ok()) {
    std::fprintf(stderr, "schema setup failed\n");
    return 1;
  }
  std::vector<SyntheticViewSpec> specs =
      Check(GenerateSyntheticViews(&db, options));

  // Pick one plain view and one draft/active view.
  SyntheticViewSpec* plain = nullptr;
  SyntheticViewSpec* draft = nullptr;
  for (SyntheticViewSpec& spec : specs) {
    if (spec.draft_pattern && draft == nullptr) draft = &spec;
    if (!spec.draft_pattern && plain == nullptr) plain = &spec;
  }
  VDM_CHECK(plain != nullptr && draft != nullptr);

  std::printf("== plain document view: %s ==\n", plain->view_name.c_str());
  std::printf(
      "extension = LEFT OUTER JOIN with the base table on its key\n");
  VDM_CHECK(ExtendSyntheticView(&db, plain, /*use_case_join=*/false).ok());
  ShowPlans(&db, *plain);

  std::printf("\n== draft-enabled view: %s ==\n", draft->view_name.c_str());
  std::printf("the base is Active UNION ALL Draft; first without intent:\n");
  VDM_CHECK(ExtendSyntheticView(&db, draft, /*use_case_join=*/false).ok());
  ShowPlans(&db, *draft);

  std::printf("\nnow with the explicit `case join` (paper §6.3):\n");
  VDM_CHECK(ExtendSyntheticView(&db, draft, /*use_case_join=*/true).ok());
  ShowPlans(&db, *draft);

  // The custom field really is served from the anchor-side scan.
  Chunk rows = Check(db.Query(SyntheticPagingQuery(*draft, true, 5)));
  std::printf("\nfirst rows of the extended draft view:\n%s",
              rows.ToString().c_str());
  return 0;
}
