// MVCC transactions (txn/, storage MVCC delta, engine DML): snapshot
// isolation, first-updater-wins conflicts, rollback vs. pinned scans,
// merge cancellation and fault tolerance, the §6 draft→active activation
// as a transaction, and a concurrency stress leg (run under TSan by
// `tools/ci.sh thread`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "engine/database.h"
#include "ref/interpreter.h"
#include "testing/differential.h"
#include "vdm/generator.h"

namespace vdm {
namespace {

int64_t ScalarInt(const Result<Chunk>& r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->NumRows(), 1u);
  return r->columns[0].ints()[0];
}

int64_t Count(Database& db, const std::string& from_where) {
  return ScalarInt(db.Execute("select count(*) as n from " + from_where));
}

void MakeKV(Database* db) {
  ASSERT_TRUE(db->Execute("create table t (k int, v int)").ok());
  ASSERT_TRUE(
      db->Execute("insert into t values (1, 10), (2, 20), (3, 30)").ok());
}

// ---------------------------------------------------------------------------
// Snapshot isolation

TEST(TxnTest, WriterInvisibleUntilCommit) {
  Database db;
  MakeKV(&db);
  Transaction* txn = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("insert into t values (4, 40)", &txn).ok());
  ASSERT_TRUE(
      db.ExecuteSession("update t set v = 11 where k = 1", &txn).ok());
  // The writer sees its own uncommitted effects...
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t", &txn)),
            4);
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select v from t where k = 1", &txn)),
            11);
  // ...but autocommit readers see none of them.
  EXPECT_EQ(Count(db, "t"), 3);
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 1")), 10);
  ASSERT_TRUE(db.ExecuteSession("commit", &txn).ok());
  EXPECT_EQ(txn, nullptr);
  EXPECT_EQ(Count(db, "t"), 4);
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 1")), 11);
}

TEST(TxnTest, RepeatableReads) {
  Database db;
  MakeKV(&db);
  Transaction* reader = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &reader).ok());
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t", &reader)),
            3);
  // Another transaction commits an insert and a delete.
  ASSERT_TRUE(db.Execute("insert into t values (4, 40)").ok());
  ASSERT_TRUE(db.Execute("delete from t where k = 2").ok());
  EXPECT_EQ(Count(db, "t"), 3);  // 3 - 1 + 1
  // The reader's snapshot is unmoved: same rows, same values.
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t", &reader)),
            3);
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t where k = 2", &reader)),
            1);
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t where k = 4", &reader)),
            0);
  ASSERT_TRUE(db.ExecuteSession("commit", &reader).ok());
  EXPECT_EQ(Count(db, "t where k = 4"), 1);
}

TEST(TxnTest, RollbackRevertsEverything) {
  Database db;
  MakeKV(&db);
  Transaction* txn = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("insert into t values (9, 90)", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("delete from t where k = 1", &txn).ok());
  ASSERT_TRUE(
      db.ExecuteSession("update t set v = 99 where k = 3", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("rollback", &txn).ok());
  EXPECT_EQ(txn, nullptr);
  EXPECT_EQ(Count(db, "t"), 3);
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 3")), 30);
  EXPECT_EQ(db.txn_stats().rollbacks, 1u);
}

// ---------------------------------------------------------------------------
// Write-write conflicts

TEST(TxnTest, FirstUpdaterWinsTypedConflict) {
  Database db;
  MakeKV(&db);
  Transaction* a = nullptr;
  Transaction* b = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &a).ok());
  ASSERT_TRUE(db.ExecuteSession("begin", &b).ok());
  ASSERT_TRUE(db.ExecuteSession("update t set v = 100 where k = 1", &a).ok());
  Result<Chunk> lost =
      db.ExecuteSession("update t set v = 200 where k = 1", &b);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kSerializationFailure);
  // The losing statement left no partial effects; b remains usable on
  // other rows.
  ASSERT_TRUE(db.ExecuteSession("update t set v = 201 where k = 2", &b).ok());
  ASSERT_TRUE(db.ExecuteSession("commit", &a).ok());
  ASSERT_TRUE(db.ExecuteSession("commit", &b).ok());
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 1")), 100);
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 2")), 201);
}

TEST(TxnTest, AutocommitConflictExhaustsBoundedRetries) {
  Database db;
  MakeKV(&db);
  Transaction* holder = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &holder).ok());
  ASSERT_TRUE(
      db.ExecuteSession("update t set v = 1 where k = 1", &holder).ok());
  // The autocommit statement retries with backoff, but the holder never
  // commits, so the bounded retry loop must surface the typed failure.
  Result<Chunk> r = db.Execute("update t set v = 2 where k = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSerializationFailure);
  EXPECT_GT(db.txn_stats().retries, 0u);
  EXPECT_GT(db.txn_stats().conflicts, 0u);
  ASSERT_TRUE(db.ExecuteSession("rollback", &holder).ok());
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 1")), 10);
}

// ---------------------------------------------------------------------------
// Rollback vs. pinned scans

TEST(TxnTest, RollbackDuringActiveScanLeavesPinnedSnapshotIntact) {
  Database db;
  MakeKV(&db);
  Transaction* txn = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("insert into t values (4, 40)", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("delete from t where k = 2", &txn).ok());

  // A reader pins the committed snapshot (as the executor does per
  // pipeline), and the writer's snapshot view, then the writer rolls
  // back mid-"scan".
  Table* table = db.storage().FindTable("t");
  ASSERT_NE(table, nullptr);
  TableSnapshot committed =
      table->PinSnapshot(TxnSnapshot{db.txn_manager().clock(), 0});
  TableSnapshot writers = table->PinSnapshot(txn->snapshot());
  ASSERT_TRUE(db.ExecuteSession("rollback", &txn).ok());

  SelectionVector vis;
  committed.VisibleRows(0, committed.NumRows(), &vis);
  EXPECT_EQ(vis.size(), 3u);  // pinned before rollback, unaffected by it
  vis.clear();
  writers.VisibleRows(0, writers.NumRows(), &vis);
  EXPECT_EQ(vis.size(), 3u);  // 3 base - 1 deleted + 1 inserted
  // Fresh reads see the rollback applied.
  EXPECT_EQ(Count(db, "t"), 3);
  EXPECT_EQ(Count(db, "t where k = 2"), 1);
}

// ---------------------------------------------------------------------------
// Merge: cancellation, writer fencing, background threshold

TEST(TxnTest, GovernorCancelsMidMerge) {
  Database db;
  MakeKV(&db);
  ASSERT_TRUE(db.Execute("insert into t values (4, 40), (5, 50)").ok());
  Table* table = db.storage().FindTable("t");
  ASSERT_NE(table, nullptr);
  const size_t delta_before = table->NumDeltaRows();
  ASSERT_GT(delta_before, 0u);

  MergeOptions opts;
  opts.watermark = db.txn_manager().clock();
  std::atomic<int> checks{0};
  opts.check_alive = [&]() -> Status {
    ++checks;
    return Status::Cancelled("governor: query cancelled");
  };
  opts.inject_faults = false;
  Status st = table->MergeDeltaMvcc(opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_GT(checks.load(), 0);
  // Cancellation is effect-free: delta untouched, data identical.
  EXPECT_EQ(table->NumDeltaRows(), delta_before);
  EXPECT_EQ(Count(db, "t"), 5);

  // And the merge is retryable: without the cancelling governor it lands.
  ASSERT_TRUE(db.MergeTableMvcc("t").ok());
  EXPECT_EQ(table->NumDeltaRows(), 0u);
  EXPECT_EQ(Count(db, "t"), 5);
}

TEST(TxnTest, MergeRefusesWhileWritersActive) {
  Database db;
  MakeKV(&db);
  Transaction* txn = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &txn).ok());
  ASSERT_TRUE(
      db.ExecuteSession("update t set v = 1 where k = 1", &txn).ok());
  Status st = db.MergeTableMvcc("t");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(db.ExecuteSession("commit", &txn).ok());
  EXPECT_TRUE(db.MergeTableMvcc("t").ok());
  EXPECT_EQ(ScalarInt(db.Execute("select v from t where k = 1")), 1);
}

TEST(TxnTest, BackgroundMergeTriggersAtThreshold) {
  Database db;
  MakeKV(&db);
  db.SetMergeThreshold(8);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(db.Execute(
                      "insert into t values (" + std::to_string(100 + i) +
                      ", 0)")
                    .ok());
  }
  Table* table = db.storage().FindTable("t");
  ASSERT_NE(table, nullptr);
  // The worker merges asynchronously; poll with a deadline. Inserts that
  // land after the last enqueued merge stay in the delta (below the
  // threshold), so "merged" means the delta dropped under it — not empty.
  for (int spin = 0; spin < 500 && table->NumDeltaRows() >= 8; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LT(table->NumDeltaRows(), 8u);
  EXPECT_EQ(Count(db, "t"), 15);
  EXPECT_GT(db.txn_stats().merges, 0u);
}

TEST(TxnTest, MergePreservesOpenSnapshots) {
  Database db;
  MakeKV(&db);
  Transaction* reader = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &reader).ok());
  ASSERT_TRUE(db.Execute("insert into t values (4, 40)").ok());
  ASSERT_TRUE(db.Execute("delete from t where k = 1").ok());
  // The merge watermark respects the open reader: after merging, the
  // reader must still see its snapshot rows (delete not yet folded away
  // for it), while new readers see the new state.
  (void)db.MergeTableMvcc("t");
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t", &reader)),
            3);
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from t where k = 1", &reader)),
            1);
  ASSERT_TRUE(db.ExecuteSession("commit", &reader).ok());
  EXPECT_EQ(Count(db, "t"), 3);
  EXPECT_EQ(Count(db, "t where k = 1"), 0);
}

// ---------------------------------------------------------------------------
// Statistics stay fresh under DML

TEST(TxnTest, DataVersionBumpsOnlyForWrittenTable) {
  Database db;
  MakeKV(&db);
  ASSERT_TRUE(db.Execute("create table u (k int, v int)").ok());
  const uint64_t t_before = db.catalog().data_version("t");
  const uint64_t u_before = db.catalog().data_version("u");
  const uint64_t schema_before = db.catalog().version();
  ASSERT_TRUE(db.Execute("insert into t values (7, 70)").ok());
  EXPECT_GT(db.catalog().data_version("t"), t_before);
  EXPECT_EQ(db.catalog().data_version("u"), u_before);
  // DML must never bump the schema version.
  EXPECT_EQ(db.catalog().version(), schema_before);
}

TEST(TxnTest, StatsRecomputeAfterMergeAndOnDeltaHeavyTables) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (k int, v int)").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Execute("insert into t values (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  db.AnalyzeTables();
  auto stats = db.catalog().FindTableStats("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 4u);
  // A merge refreshes the statistics (row counts reflect the fold).
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(db.Execute("insert into t values (" + std::to_string(i) +
                           ", 1)")
                    .ok());
  }
  ASSERT_TRUE(db.MergeTableMvcc("t").ok());
  stats = db.catalog().FindTableStats("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 8u);
}

// ---------------------------------------------------------------------------
// §6 activation as a transaction

TEST(TxnTest, ActivationMovesDocumentExactlyOnce) {
  Database db;
  SyntheticVdmOptions options;
  options.base_tables = 1;
  options.base_rows = 200;
  options.num_dims = 1;
  options.dim_rows = 20;
  ASSERT_TRUE(CreateSyntheticVdmSchema(&db, options).ok());
  ASSERT_TRUE(LoadSyntheticVdmData(&db, options).ok());
  ASSERT_TRUE(db.Execute("create view act_union as "
                         "select k, f1 from vbase00_a "
                         "union all select k, f1 from vbase00_d")
                  .ok());
  ASSERT_GT(Count(db, "vbase00_d"), 0);
  const int64_t key = ScalarInt(db.Execute("select min(k) as k from "
                                           "vbase00_d"));
  EXPECT_EQ(Count(db, "act_union where k = " + std::to_string(key)), 1);
  EXPECT_EQ(Count(db, "vbase00_a where k = " + std::to_string(key)), 0);

  // A reader whose transaction opened before the activation must keep
  // seeing the document exactly once, in its old placement.
  Transaction* reader = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &reader).ok());
  ASSERT_TRUE(
      ActivateDraftRow(&db, "vbase00_a", "vbase00_d", key).ok());
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from act_union where k = " +
                    std::to_string(key),
                &reader)),
            1);
  EXPECT_EQ(ScalarInt(db.ExecuteSession(
                "select count(*) as n from vbase00_d where k = " +
                    std::to_string(key),
                &reader)),
            1);
  ASSERT_TRUE(db.ExecuteSession("commit", &reader).ok());

  // After the activation: exactly once, now active; the draft is gone.
  EXPECT_EQ(Count(db, "act_union where k = " + std::to_string(key)), 1);
  EXPECT_EQ(Count(db, "vbase00_a where k = " + std::to_string(key)), 1);
  EXPECT_EQ(Count(db, "vbase00_d where k = " + std::to_string(key)), 0);

  // Unknown keys are a typed no-op.
  Status missing = ActivateDraftRow(&db, "vbase00_a", "vbase00_d", key);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Injected faults (compiled in by tools/ci.sh fault / fuzz builds)

class TxnFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FaultInjection::CompiledIn()) {
      GTEST_SKIP() << "built without VDMQO_FAULT_INJECTION";
    }
    FaultInjection::Clear();
  }
  void TearDown() override {
    if (FaultInjection::CompiledIn()) FaultInjection::Clear();
  }
};

TEST_F(TxnFaultTest, InjectedCommitConflictRollsBack) {
  Database db;
  MakeKV(&db);
  FaultSpec spec;
  spec.nth = 1;
  FaultInjection::Set("txn.commit.conflict", spec);
  Transaction* txn = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("insert into t values (4, 40)", &txn).ok());
  Result<Chunk> committed = db.ExecuteSession("commit", &txn);
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), StatusCode::kSerializationFailure);
  EXPECT_EQ(txn, nullptr);  // the handle is consumed either way
  EXPECT_EQ(Count(db, "t"), 3);
  EXPECT_GT(db.txn_stats().conflicts, 0u);
}

TEST_F(TxnFaultTest, InjectedRollbackFaultIsRetryable) {
  Database db;
  MakeKV(&db);
  FaultSpec spec;
  spec.nth = 1;
  FaultInjection::Set("txn.rollback", spec);
  Transaction* txn = nullptr;
  ASSERT_TRUE(db.ExecuteSession("begin", &txn).ok());
  ASSERT_TRUE(db.ExecuteSession("insert into t values (4, 40)", &txn).ok());
  Result<Chunk> first = db.ExecuteSession("rollback", &txn);
  ASSERT_FALSE(first.ok());
  ASSERT_NE(txn, nullptr);  // still open — the fault fired before reverting
  Result<Chunk> second = db.ExecuteSession("rollback", &txn);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(txn, nullptr);
  EXPECT_EQ(Count(db, "t"), 3);
}

TEST_F(TxnFaultTest, InjectedMergeFaultsAreEffectFreeAndRetryable) {
  for (const char* point : {"storage.merge.remap", "storage.merge.abort"}) {
    FaultInjection::Clear();
    Database db;
    MakeKV(&db);
    ASSERT_TRUE(db.Execute("delete from t where k = 2").ok());
    Table* table = db.storage().FindTable("t");
    const size_t delta_before = table->NumDeltaRows();
    FaultSpec spec;
    spec.nth = 1;
    FaultInjection::Set(point, spec);
    Status st = db.MergeTableMvcc("t");
    ASSERT_FALSE(st.ok()) << "fault point " << point << " did not fire";
    EXPECT_EQ(table->NumDeltaRows(), delta_before) << point;
    EXPECT_EQ(Count(db, "t"), 2) << point;
    // Retry without the armed fault: merges cleanly, same logical rows.
    FaultInjection::Clear();
    ASSERT_TRUE(db.MergeTableMvcc("t").ok()) << point;
    EXPECT_EQ(table->NumDeltaRows(), 0u) << point;
    EXPECT_EQ(Count(db, "t"), 2) << point;
  }
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan target of tools/ci.sh thread)

TEST(TxnTest, ConcurrentDmlMergeScanStress) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (k int, v int)").ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(db.Execute("insert into t values (" + std::to_string(i) +
                           ", 0)")
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer1([&] {
    for (int i = 0; i < 120; ++i) {
      Result<Chunk> r = db.Execute("insert into t values (" +
                                   std::to_string(1000 + i) + ", 1)");
      if (!r.ok()) ++failures;
    }
  });
  std::thread writer2([&] {
    for (int i = 0; i < 120; ++i) {
      // Conflicts with writer1 are legal (kSerializationFailure after
      // retries); anything else is not.
      Result<Chunk> r =
          db.Execute("update t set v = v + 1 where k < 16");
      if (!r.ok() &&
          r.status().code() != StatusCode::kSerializationFailure) {
        ++failures;
      }
    }
  });
  std::thread merger([&] {
    while (!stop.load()) {
      (void)db.MergeTableMvcc("t");  // kResourceExhausted is expected
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      Result<Chunk> r = db.Execute("select count(*) as n from t");
      if (!r.ok()) ++failures;
    }
  });

  writer1.join();
  writer2.join();
  stop = true;
  merger.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Converged final state: engine and reference interpreter agree.
  Result<Chunk> engine = db.Execute("select k, v from t");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->NumRows(), 152u);  // 32 base + 120 inserts
  Result<PlanRef> plan = db.BindQuery("select k, v from t");
  ASSERT_TRUE(plan.ok());
  RefInterpreter ref(&db.storage());
  ref.set_snapshot(TxnSnapshot{db.txn_manager().clock(), 0});
  Result<Chunk> oracle = ref.Execute(*plan);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(NormalizeChunk(*engine, false), NormalizeChunk(*oracle, false));
}

}  // namespace
}  // namespace vdm
