// Tests for the vdmlint analysis pass (view_lint.h): shape metrics,
// findings, and the profile-by-profile rewrite probe, on the synthetic
// custom-fields view population of §5/§6.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/view_lint.h"
#include "engine/database.h"
#include "vdm/generator.h"

namespace vdm {
namespace {

class ViewLintTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SyntheticVdmOptions options;
    options.num_views = 4;
    options.base_rows = 100;
    options.dim_rows = 20;
    ASSERT_TRUE(CreateSyntheticVdmSchema(db_, options).ok());
    ASSERT_TRUE(LoadSyntheticVdmData(db_, options).ok());
    Result<std::vector<SyntheticViewSpec>> specs =
        GenerateSyntheticViews(db_, options);
    ASSERT_TRUE(specs.ok()) << specs.status().ToString();
    specs_ = new std::vector<SyntheticViewSpec>(std::move(*specs));
  }
  static void TearDownTestSuite() {
    delete specs_;
    specs_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static SyntheticViewSpec* FindDraftSpec() {
    for (SyntheticViewSpec& spec : *specs_) {
      if (spec.draft_pattern) return &spec;
    }
    return nullptr;
  }

  static Database* db_;
  static std::vector<SyntheticViewSpec>* specs_;
};

Database* ViewLintTest::db_ = nullptr;
std::vector<SyntheticViewSpec>* ViewLintTest::specs_ = nullptr;

TEST_F(ViewLintTest, ReportsShapeMetrics) {
  const SyntheticViewSpec& spec = (*specs_)[0];
  Result<ViewLintReport> report = LintView(db_->catalog(), spec.view_name);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->view, spec.view_name);
  EXPECT_GE(report->nesting_depth, 3u);
  EXPECT_EQ(report->field_count, spec.columns.size());
  EXPECT_EQ(report->stats.joins, static_cast<size_t>(spec.num_dims));
  // One probe per capability profile, each starting from the same plan.
  EXPECT_EQ(report->profiles.size(), 5u);
  for (const ProfileRewriteProbe& probe : report->profiles) {
    EXPECT_EQ(probe.joins_before, report->stats.joins);
    EXPECT_TRUE(probe.converged);
  }
  std::string text = report->ToString();
  EXPECT_NE(text.find(spec.view_name), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
}

TEST_F(ViewLintTest, ProfilesDifferOnPagingProbe) {
  // The dimension joins of the base view are all key-covered LOJs: full
  // derivation prunes them, the crippled System X profile does not.
  const SyntheticViewSpec& spec = (*specs_)[0];
  Result<ViewLintReport> report = LintView(db_->catalog(), spec.view_name);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  size_t hana_after = 0, system_x_after = 0;
  for (const ProfileRewriteProbe& probe : report->profiles) {
    if (probe.profile == SystemProfile::kHana) hana_after = probe.joins_after;
    if (probe.profile == SystemProfile::kSystemX) {
      system_x_after = probe.joins_after;
    }
  }
  EXPECT_EQ(hana_after, 0u);
  EXPECT_EQ(system_x_after, report->stats.joins);
}

TEST_F(ViewLintTest, UndeclaredAsjOverUnionAllIsFlagged) {
  SyntheticViewSpec* spec = FindDraftSpec();
  ASSERT_NE(spec, nullptr) << "generator produced no draft-pattern view";

  // Extension without the §6.3 case-join declaration: flagged.
  ASSERT_TRUE(ExtendSyntheticView(db_, spec, /*use_case_join=*/false).ok());
  Result<ViewLintReport> plain = LintView(db_->catalog(), spec->ext_view_name);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  bool flagged = std::any_of(
      plain->findings.begin(), plain->findings.end(),
      [](const ViewLintFinding& f) { return f.code == "asj-no-case-join"; });
  EXPECT_TRUE(flagged) << plain->ToString();

  // Redefined with the declaration: clean.
  ASSERT_TRUE(ExtendSyntheticView(db_, spec, /*use_case_join=*/true).ok());
  Result<ViewLintReport> declared =
      LintView(db_->catalog(), spec->ext_view_name);
  ASSERT_TRUE(declared.ok()) << declared.status().ToString();
  for (const ViewLintFinding& finding : declared->findings) {
    EXPECT_NE(finding.code, "asj-no-case-join") << finding.message;
  }
}

TEST_F(ViewLintTest, UndeclaredCardinalityJoinIsFlagged) {
  // A hand-registered view joining on a non-key dimension column: the LOJ
  // is an augmentation join in shape, but no key or declared cardinality
  // makes it eliminable — exactly what §7.3 asks applications to declare.
  ASSERT_TRUE(db_->Execute("create view lint_nokey_v as select b.k, d.dattr "
                           "from vbase01_a b left outer join vdim01 d "
                           "on b.f2 = d.dattr")
                  .ok());
  Result<ViewLintReport> report = LintView(db_->catalog(), "lint_nokey_v");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  bool flagged = std::any_of(report->findings.begin(),
                             report->findings.end(),
                             [](const ViewLintFinding& f) {
                               return f.code == "undeclared-cardinality";
                             });
  EXPECT_TRUE(flagged) << report->ToString();
}

TEST_F(ViewLintTest, RenderMatrixMarksProfiles) {
  const SyntheticViewSpec& spec = (*specs_)[0];
  Result<ViewLintReport> report = LintView(db_->catalog(), spec.view_name);
  ASSERT_TRUE(report.ok());
  std::string matrix = RenderRewriteMatrix({*report});
  EXPECT_NE(matrix.find(spec.view_name), std::string::npos);
  EXPECT_NE(matrix.find("HANA"), std::string::npos);
  // HANA removes joins (Y); System X removes none (-).
  EXPECT_NE(matrix.find("Y"), std::string::npos);
  EXPECT_NE(matrix.find("-"), std::string::npos);
}

TEST_F(ViewLintTest, UnknownViewIsNotFound) {
  Result<ViewLintReport> report = LintView(db_->catalog(), "no_such_view");
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace vdm
