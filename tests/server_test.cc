// vdmserve conformance suite (DESIGN.md §16): golden byte-level wire
// codec checks, loopback protocol semantics (session isolation, prepared
// rebind across DML invalidation, CANCEL mid-query, per-tenant admission,
// death mid-transaction), a seeded frame fuzzer that must never crash the
// server, and the Database teardown-ordering audit with live sessions and
// queued merges. The ASan/TSan legs run through `tools/ci.sh server`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "testing/differential.h"

namespace vdm {
namespace {

// ---------------------------------------------------------------------------
// Wire codec: golden bytes + round trips + strictness

TEST(WireTest, GoldenQueryFrameBytes) {
  // frame = u32 len | u8 type | u32 strlen | bytes
  std::vector<uint8_t> frame = EncodeQuery("hi");
  const std::vector<uint8_t> expected = {
      0x07, 0x00, 0x00, 0x00,  // payload length 7
      0x02,                    // MsgType::kQuery
      0x02, 0x00, 0x00, 0x00,  // strlen 2
      'h',  'i',
  };
  EXPECT_EQ(frame, expected);
}

TEST(WireTest, GoldenExecuteFrameBytes) {
  ExecuteMsg msg;
  msg.stmt_id = 7;
  msg.params = {Value::Int64(5)};
  msg.limit = 10;
  msg.offset = -1;
  std::vector<uint8_t> frame = EncodeExecute(msg);
  const std::vector<uint8_t> expected = {
      0x22, 0x00, 0x00, 0x00,                          // payload length 34
      0x04,                                            // MsgType::kExecute
      0x07, 0x00, 0x00, 0x00,                          // stmt_id
      0x01, 0x00, 0x00, 0x00,                          // 1 param
      0x02, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // int64 tag + 5
      0x00,                                            //   (cont.)
      0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // limit 10
      0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,  // offset -1
  };
  EXPECT_EQ(frame, expected);
}

// Holds a frame and a reader over its body (after the length prefix and
// type byte) — what the server-side dispatcher hands the per-message
// decoder. Owning the bytes keeps the reader's borrowed buffer alive.
struct FrameBody {
  explicit FrameBody(std::vector<uint8_t> f, MsgType expect)
      : frame(std::move(f)),
        reader(frame.data() + kFrameHeaderBytes + 1,
               frame.size() - kFrameHeaderBytes - 1) {
    EXPECT_GE(frame.size(), kFrameHeaderBytes + 1);
    EXPECT_EQ(frame[kFrameHeaderBytes], static_cast<uint8_t>(expect));
  }
  std::vector<uint8_t> frame;
  WireReader reader;
};

TEST(WireTest, RoundTripHello) {
  HelloMsg in;
  in.version = kProtocolVersion;
  in.tenant = "olap";
  in.timeout_ms = 1234;
  in.memory_budget = int64_t{1} << 31;
  in.max_queued_ms = 77;
  FrameBody body(EncodeHello(in), MsgType::kHello);
  WireReader& r = body.reader;
  HelloMsg out;
  ASSERT_TRUE(DecodeHello(&r, &out).ok());
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.timeout_ms, in.timeout_ms);
  EXPECT_EQ(out.memory_budget, in.memory_budget);
  EXPECT_EQ(out.max_queued_ms, in.max_queued_ms);
}

TEST(WireTest, RoundTripQueryPrepareCloseStmt) {
  const std::string sql = "select * from t where k = 'naïve'";
  {
    FrameBody body(EncodeQuery(sql), MsgType::kQuery);
    std::string out;
    ASSERT_TRUE(DecodeQuery(&body.reader, &out).ok());
    EXPECT_EQ(out, sql);
  }
  {
    FrameBody body(EncodePrepare(sql), MsgType::kPrepare);
    std::string out;
    ASSERT_TRUE(DecodeQuery(&body.reader, &out).ok());
    EXPECT_EQ(out, sql);
  }
  {
    FrameBody body(EncodeCloseStmt(99), MsgType::kCloseStmt);
    uint32_t id = 0;
    ASSERT_TRUE(DecodeCloseStmt(&body.reader, &id).ok());
    EXPECT_EQ(id, 99u);
  }
}

TEST(WireTest, RoundTripExecuteAllValueTags) {
  ExecuteMsg in;
  in.stmt_id = 42;
  in.params = {Value::Null(),          Value::Bool(true),
               Value::Int64(-7),       Value::Double(2.5),
               Value::Decimal(1999, 2), Value::String("päge"),
               Value::Date(19876)};
  in.limit = 100;
  in.offset = 300;
  FrameBody body(EncodeExecute(in), MsgType::kExecute);
  ExecuteMsg out;
  ASSERT_TRUE(DecodeExecute(&body.reader, &out).ok());
  EXPECT_EQ(out.stmt_id, 42u);
  EXPECT_EQ(out.limit, 100);
  EXPECT_EQ(out.offset, 300);
  ASSERT_EQ(out.params.size(), in.params.size());
  for (size_t i = 0; i < in.params.size(); ++i) {
    EXPECT_EQ(out.params[i].ToString(), in.params[i].ToString()) << i;
  }
}

TEST(WireTest, RoundTripServerMessages) {
  {
    FrameBody body(EncodeHelloOk(123, "gold"), MsgType::kHelloOk);
    uint64_t sid = 0;
    std::string tenant;
    ASSERT_TRUE(DecodeHelloOk(&body.reader, &sid, &tenant).ok());
    EXPECT_EQ(sid, 123u);
    EXPECT_EQ(tenant, "gold");
  }
  {
    Status in = Status::Cancelled("stop it");
    FrameBody body(EncodeError(in), MsgType::kError);
    ErrorMsg out;
    ASSERT_TRUE(DecodeError(&body.reader, &out).ok());
    EXPECT_EQ(out.code, StatusCode::kCancelled);
    EXPECT_EQ(out.message, "stop it");
  }
  {
    PreparedMsg in;
    in.stmt_id = 9;
    in.param_types = {DataType::Int64(), DataType::Decimal(2),
                      DataType::String()};
    in.has_limit = true;
    in.has_offset = false;
    FrameBody body(EncodePrepared(in), MsgType::kPrepared);
    PreparedMsg out;
    ASSERT_TRUE(DecodePrepared(&body.reader, &out).ok());
    EXPECT_EQ(out.stmt_id, 9u);
    ASSERT_EQ(out.param_types.size(), 3u);
    EXPECT_EQ(out.param_types[1].id, TypeId::kDecimal);
    EXPECT_EQ(out.param_types[1].scale, 2);
    EXPECT_TRUE(out.has_limit);
    EXPECT_FALSE(out.has_offset);
  }
  for (MsgType type : {MsgType::kBegin, MsgType::kCommit, MsgType::kRollback,
                       MsgType::kCancel, MsgType::kClose, MsgType::kAck}) {
    std::vector<uint8_t> frame = EncodeEmpty(type);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + 1);
    EXPECT_EQ(frame[kFrameHeaderBytes], static_cast<uint8_t>(type));
  }
}

TEST(WireTest, RoundTripChunkWithNullsAndEveryType) {
  Chunk chunk;
  chunk.names = {"b", "i", "dec", "d", "s", "dt"};
  ColumnData b(DataType::Bool());
  b.AppendInt(1);
  b.AppendNull();
  ColumnData i(DataType::Int64());
  i.AppendInt(-5);
  i.AppendInt(7);
  ColumnData dec(DataType::Decimal(2));
  dec.AppendInt(1999);
  dec.AppendNull();
  ColumnData d(DataType::Double());
  d.AppendDouble(0.125);
  d.AppendNull();
  ColumnData s(DataType::String());
  s.AppendString("alpha");
  s.AppendNull();
  ColumnData dt(DataType::Date());
  dt.AppendNull();
  dt.AppendInt(20000);
  chunk.columns = {std::move(b), std::move(i),   std::move(dec),
                   std::move(d), std::move(s),   std::move(dt)};

  WireWriter w;
  EncodeChunk(&w, chunk);
  WireReader r(w.buf().data(), w.buf().size());
  Chunk out;
  ASSERT_TRUE(DecodeChunk(&r, &out).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(NormalizeChunk(out, /*ordered=*/true),
            NormalizeChunk(chunk, /*ordered=*/true));
}

TEST(WireTest, DecodeIsStrictOnTruncationAndTrailingBytes) {
  std::vector<uint8_t> frame = EncodeQuery("select k from t");
  const uint8_t* body = frame.data() + kFrameHeaderBytes + 1;
  const size_t body_size = frame.size() - kFrameHeaderBytes - 1;
  // Every proper prefix must fail...
  for (size_t cut = 0; cut < body_size; ++cut) {
    WireReader r(body, cut);
    std::string sql;
    Status st = DecodeQuery(&r, &sql);
    if (st.ok()) st = r.ExpectEnd();
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
  }
  // ...and trailing garbage must fail too.
  std::vector<uint8_t> padded(body, body + body_size);
  padded.push_back(0xAB);
  WireReader r(padded.data(), padded.size());
  std::string sql;
  Status st = DecodeQuery(&r, &sql);
  if (st.ok()) st = r.ExpectEnd();
  EXPECT_FALSE(st.ok());
}

TEST(WireTest, StatusCodesSurviveTheWire) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kSerializationFailure);
       ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    EXPECT_EQ(StatusCodeFromWire(WireStatusCode(code)), code);
  }
  // Unknown bytes (a future server talking to an old client) degrade to
  // kInternal instead of crashing or aliasing kOk.
  EXPECT_EQ(StatusCodeFromWire(0xEE), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Loopback server fixture

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    server_ = std::make_unique<Server>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// Connects and HELLOs a client; `tenant` picks the admission class.
  void NewClient(VdmClient* client, const std::string& tenant = "",
                 int64_t timeout_ms = 30000, int64_t max_queued_ms = 200) {
    ASSERT_TRUE(client->Connect("127.0.0.1", server_->port()).ok());
    HelloMsg hello;
    hello.tenant = tenant;
    hello.timeout_ms = timeout_ms;
    hello.max_queued_ms = max_queued_ms;
    ASSERT_TRUE(client->Hello(hello).ok());
  }

  void MakeKV() {
    ASSERT_TRUE(db_.Execute("create table t (k int, v int)").ok());
    ASSERT_TRUE(
        db_.Execute("insert into t values (1, 10), (2, 20), (3, 30)").ok());
  }

  /// A table whose self-join on a constant column explodes (n^2 pairs), so
  /// a statement over it reliably straddles a CANCEL fired ~30ms in.
  void MakeBig(int rows = 6000) {
    ASSERT_TRUE(db_.Execute("create table big (a int)").ok());
    std::string values;
    for (int i = 0; i < 500; ++i) values += i == 0 ? "(1)" : ", (1)";
    for (int chunk = 0; chunk < rows / 500; ++chunk) {
      ASSERT_TRUE(db_.Execute("insert into big values " + values).ok());
    }
  }

  static constexpr const char* kSlowSql =
      "select count(*) as n from big x join big y on x.a = y.a";

  int64_t ScalarInt(const Result<Chunk>& r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->NumRows(), 1u);
    return r->columns[0].ints()[0];
  }

  Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, LoopbackQueryMatchesInProcess) {
  MakeKV();
  StartServer();
  VdmClient client;
  NewClient(&client);
  Result<Chunk> wire = client.Query("select k, v from t where v >= 20");
  Result<Chunk> local = db_.Query("select k, v from t where v >= 20");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(NormalizeChunk(*wire, false), NormalizeChunk(*local, false));
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerTest, HelloHandshakeIsEnforced) {
  MakeKV();
  StartServer();
  {
    // Any statement before HELLO is rejected.
    VdmClient raw;
    ASSERT_TRUE(raw.Connect("127.0.0.1", server_->port()).ok());
    Result<Chunk> r = raw.Query("select k from t");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Unknown protocol versions are turned away at HELLO.
    VdmClient wrong;
    ASSERT_TRUE(wrong.Connect("127.0.0.1", server_->port()).ok());
    HelloMsg hello;
    hello.version = kProtocolVersion + 1;
    Status st = wrong.Hello(hello);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  {
    // A second HELLO on an established session is a protocol error.
    VdmClient dup;
    NewClient(&dup);
    Status st = dup.Hello(HelloMsg{});
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ServerTest, SessionIsolationAcrossConnections) {
  MakeKV();
  StartServer();
  VdmClient a, b;
  NewClient(&a);
  NewClient(&b);

  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.Query("insert into t values (4, 40)").ok());
  ASSERT_TRUE(a.Query("update t set v = 11 where k = 1").ok());

  // A sees its own uncommitted writes; B sees none of them.
  EXPECT_EQ(ScalarInt(a.Query("select count(*) as n from t")), 4);
  EXPECT_EQ(ScalarInt(b.Query("select count(*) as n from t")), 3);
  EXPECT_EQ(ScalarInt(b.Query("select v from t where k = 1")), 10);

  ASSERT_TRUE(a.Commit().ok());
  EXPECT_EQ(ScalarInt(b.Query("select count(*) as n from t")), 4);
  EXPECT_EQ(ScalarInt(b.Query("select v from t where k = 1")), 11);

  // Transaction control also works as plain SQL through QUERY frames.
  ASSERT_TRUE(b.Query("begin").ok());
  ASSERT_TRUE(b.Query("delete from t where k = 4").ok());
  ASSERT_TRUE(b.Rollback().ok());
  EXPECT_EQ(ScalarInt(a.Query("select count(*) as n from t")), 4);
}

TEST_F(ServerTest, PreparedStatementsRebindAcrossDmlInvalidation) {
  MakeKV();
  db_.EnablePlanCache();
  StartServer();
  VdmClient client, writer;
  NewClient(&client);
  NewClient(&writer);

  // Equality literals are pinned into the plan by design; range predicates
  // are the parameterizable shape (sql/parameterize.h).
  Result<PreparedMsg> prep = client.Prepare(
      "select count(*) as n from t where k >= 3 limit 10 offset 0");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  ASSERT_EQ(prep->param_types.size(), 1u);
  EXPECT_EQ(prep->param_types[0].id, TypeId::kInt64);
  EXPECT_TRUE(prep->has_limit);
  EXPECT_TRUE(prep->has_offset);

  // Prepare-time literal as the default, then an explicit rebind.
  EXPECT_EQ(ScalarInt(client.Execute(prep->stmt_id, {})), 1);
  EXPECT_EQ(ScalarInt(client.Execute(prep->stmt_id, {Value::Int64(2)})), 2);
  // Warm handle: the second identical execution is a plan-cache hit.
  EXPECT_EQ(ScalarInt(client.Execute(prep->stmt_id, {Value::Int64(2)})), 2);
  EXPECT_TRUE(client.last_cache_hit());

  // DML from another session bumps the table's data version, invalidating
  // the cached plan. The handle must transparently recompile — not fail,
  // not serve stale rows.
  ASSERT_TRUE(writer.Query("insert into t values (4, 40)").ok());
  Result<Chunk> after = client.Execute(prep->stmt_id, {Value::Int64(2)});
  EXPECT_EQ(ScalarInt(after), 3);
  EXPECT_FALSE(client.last_cache_hit());
  // And the recompiled plan re-enters the cache.
  EXPECT_EQ(ScalarInt(client.Execute(prep->stmt_id, {Value::Int64(2)})), 3);
  EXPECT_TRUE(client.last_cache_hit());

  // Param-count mismatches are typed errors, not crashes.
  Result<Chunk> wrong =
      client.Execute(prep->stmt_id, {Value::Int64(1), Value::Int64(2)});
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

  // Closed handles are gone; unknown handles were never there.
  ASSERT_TRUE(client.CloseStmt(prep->stmt_id).ok());
  Result<Chunk> closed = client.Execute(prep->stmt_id, {});
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kNotFound);
  Status never = client.CloseStmt(4040);
  ASSERT_FALSE(never.ok());
  EXPECT_EQ(never.code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, CancelSurfacesMidQuery) {
  MakeBig();
  StartServer();
  VdmClient client;
  NewClient(&client);

  Result<Chunk> result = Status::Internal("query never ran");
  std::thread runner(
      [&] { result = client.Query(kSlowSql); });
  // Let the statement get onto a worker and into the executor, then fire
  // CANCEL from this thread (the one legal concurrent client call).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(client.Cancel().ok());
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();

  // The connection survives a cancel: next statement runs normally.
  EXPECT_EQ(ScalarInt(client.Query("select count(*) as n from big")), 6000);
  EXPECT_TRUE(client.Close().ok());
  EXPECT_GT(server_->stats().cancels, 0u);
}

TEST_F(ServerTest, HelloTimeoutGovernsStatements) {
  MakeBig();
  StartServer();
  VdmClient client;
  NewClient(&client, "", /*timeout_ms=*/30);
  Result<Chunk> r = client.Query(kSlowSql);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
}

TEST_F(ServerTest, PipelinedFramesAnswerInOrder) {
  MakeKV();
  StartServer();
  VdmClient client;
  NewClient(&client);
  // Three QUERY frames in one write; responses must come back 1:1 in
  // order.
  std::vector<uint8_t> burst;
  for (const char* sql :
       {"select count(*) as n from t", "select k from t where k = 2",
        "select v from t where k = 3"}) {
    std::vector<uint8_t> frame = EncodeQuery(sql);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(client.SendBytes(burst.data(), burst.size()).ok());
  const int64_t expected[3] = {3, 2, 30};
  for (int i = 0; i < 3; ++i) {
    Result<std::pair<MsgType, std::vector<uint8_t>>> frame =
        client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->first, MsgType::kResult) << i;
    WireReader r(frame->second.data(), frame->second.size());
    ResultMsg msg;
    ASSERT_TRUE(DecodeResult(&r, &msg).ok());
    EXPECT_EQ(msg.chunk.columns[0].ints()[0], expected[i]) << i;
  }
}

TEST_F(ServerTest, TenantAdmissionIsolatesClasses) {
  MakeBig();
  ServerOptions options;
  options.tenant_spec = "capped:conc=1;open:conc=0";
  // Force a real worker pool: on a single-core box the default is one
  // worker, which would serialize the statements *before* the tenant gate
  // and hide the admission contention this test is about.
  options.workers = 4;
  StartServer(options);

  VdmClient capped1, capped2, open1;
  NewClient(&capped1, "capped", 30000, /*max_queued_ms=*/100);
  NewClient(&capped2, "capped", 30000, /*max_queued_ms=*/100);
  NewClient(&open1, "open");

  std::atomic<bool> slow_done{false};
  std::thread runner([&] {
    Result<Chunk> r = capped1.Query(kSlowSql);
    slow_done.store(true);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // The capped tenant's one slot is taken: its second session times out in
  // the tenant queue with a typed error...
  Result<Chunk> starved = capped2.Query("select count(*) as n from big");
  EXPECT_FALSE(starved.ok());
  if (!starved.ok()) {
    EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted)
        << starved.status().ToString();
  }
  EXPECT_FALSE(slow_done.load());  // and it really was queueing behind it

  // ...while the other tenant is untouched by the capped tenant's backlog.
  EXPECT_EQ(ScalarInt(open1.Query("select count(*) as n from big")), 6000);

  runner.join();
  // Slot released: the capped tenant runs again.
  EXPECT_EQ(ScalarInt(capped2.Query("select count(*) as n from big")), 6000);

  TenantClass* capped = server_->tenants().Resolve("capped");
  EXPECT_GT(capped->admission_timeouts(), 0u);
  EXPECT_GT(capped->admitted(), 0u);
}

TEST_F(ServerTest, DyingConnectionRollsBackItsTransaction) {
  MakeKV();
  StartServer();
  const uint64_t rollbacks_before = db_.txn_stats().rollbacks;
  {
    VdmClient doomed;
    NewClient(&doomed);
    ASSERT_TRUE(doomed.Begin().ok());
    ASSERT_TRUE(doomed.Query("insert into t values (4, 40)").ok());
    ASSERT_TRUE(doomed.Query("update t set v = 11 where k = 1").ok());
    doomed.Abort();  // hard close, no CLOSE frame, transaction open
  }
  // The poll thread reaps the dead connection and the session destructor
  // rolls the transaction back, releasing its watermark pin.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db_.txn_stats().rollbacks == rollbacks_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(db_.txn_stats().rollbacks, rollbacks_before);

  VdmClient witness;
  NewClient(&witness);
  EXPECT_EQ(ScalarInt(witness.Query("select count(*) as n from t")), 3);
  EXPECT_EQ(ScalarInt(witness.Query("select v from t where k = 1")), 10);
  // No writer pin survives: a merge of the table goes through cleanly.
  ASSERT_TRUE(db_.Execute("delete from t where k = 3").ok());
  EXPECT_TRUE(db_.MergeTableMvcc("t").ok());
}

TEST_F(ServerTest, MaxSessionsTurnsAwayTheOverflowConnection) {
  MakeKV();
  ServerOptions options;
  options.max_sessions = 2;
  StartServer(options);
  VdmClient a, b;
  NewClient(&a);
  NewClient(&b);
  VdmClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  Status st = c.Hello(HelloMsg{});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // Capacity frees up when a session closes.
  ASSERT_TRUE(a.Close().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  Status retry = Status::Internal("never connected");
  while (std::chrono::steady_clock::now() < deadline) {
    VdmClient d;
    if (d.Connect("127.0.0.1", server_->port()).ok() &&
        (retry = d.Hello(HelloMsg{})).ok()) {
      EXPECT_EQ(ScalarInt(d.Query("select count(*) as n from t")), 3);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(retry.ok()) << retry.ToString();
}

// ---------------------------------------------------------------------------
// Frame fuzzer: garbage in, typed errors (or a dropped connection) out —
// never a crash, never a leak (this test is load-bearing under ASan/TSan
// via `tools/ci.sh server`).

TEST_F(ServerTest, FrameFuzzerNeverCrashesTheServer) {
  MakeKV();
  StartServer();
  Rng rng(0xF00DF00D);
  const std::vector<std::vector<uint8_t>> seeds = {
      EncodeQuery("select k from t"),
      EncodeHello(HelloMsg{}),
      EncodeExecute(ExecuteMsg{}),
      EncodePrepare("select v from t where k = 1"),
      EncodeEmpty(MsgType::kBegin),
      EncodeEmpty(MsgType::kClose),
  };
  for (int round = 0; round < 60; ++round) {
    VdmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(client.Hello(HelloMsg{}).ok());
    }
    // Some fuzzed frames legitimately draw no response (truncated frames
    // the server keeps waiting on, mutations that land on CANCEL) — bound
    // the read instead of hanging on it.
    ASSERT_TRUE(client.SetRecvTimeout(200).ok());
    std::vector<uint8_t> bytes;
    switch (rng.Uniform(0, 3)) {
      case 0: {
        // Truncated valid frame.
        const std::vector<uint8_t>& seed =
            seeds[static_cast<size_t>(rng.Uniform(0, 5))];
        size_t cut = static_cast<size_t>(
            rng.Uniform(1, static_cast<int64_t>(seed.size())));
        bytes.assign(seed.begin(), seed.begin() + static_cast<long>(cut));
        break;
      }
      case 1: {
        // Oversized / zero length prefix with junk behind it.
        uint32_t len = rng.Bernoulli(0.5)
                           ? 0
                           : kMaxFrameBytes +
                                 static_cast<uint32_t>(rng.Uniform(1, 1000));
        for (int i = 0; i < 4; ++i) {
          bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
        }
        for (int i = 0; i < 16; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng.Next()));
        }
        break;
      }
      case 2: {
        // Bit-flipped valid frame (length prefix kept intact so the frame
        // reaches the per-message decoder).
        bytes = seeds[static_cast<size_t>(rng.Uniform(0, 5))];
        for (int flips = 0; flips < 4; ++flips) {
          size_t at = static_cast<size_t>(rng.Uniform(
              4, static_cast<int64_t>(bytes.size()) - 1));
          bytes[at] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
        }
        break;
      }
      default: {
        // Pure garbage with a small, well-formed length prefix.
        uint32_t len = static_cast<uint32_t>(rng.Uniform(1, 64));
        for (int i = 0; i < 4; ++i) {
          bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
        }
        for (uint32_t i = 0; i < len; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng.Next()));
        }
        break;
      }
    }
    (void)client.SendBytes(bytes.data(), bytes.size());
    // Whatever happened — error frame, dropped connection — the server
    // must still answer a healthy connection.
    (void)client.ReadFrame();
    client.Abort();
  }
  VdmClient healthy;
  NewClient(&healthy);
  EXPECT_EQ(ScalarInt(healthy.Query("select count(*) as n from t")), 3);
  EXPECT_GT(server_->stats().frames, 0u);
}

// ---------------------------------------------------------------------------
// Teardown-ordering audit: destroying the server (then the Database) with
// live sessions, open transactions, queued merges, and — in fault builds —
// armed merge/rollback fault points must not deadlock or touch freed
// state. (The interesting assertions are ASan/TSan's.)

TEST_F(ServerTest, TeardownWithLiveSessionsAndQueuedMerges) {
  MakeKV();
  db_.SetMergeThreshold(1);  // every commit enqueues a background merge
  StartServer();

  VdmClient idle, in_txn, mid_query;
  NewClient(&idle);
  NewClient(&in_txn);
  NewClient(&mid_query);
  ASSERT_TRUE(in_txn.Begin().ok());
  ASSERT_TRUE(in_txn.Query("insert into t values (7, 70)").ok());
  // Feed the merge queue some committed work.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        idle.Query("update t set v = " + std::to_string(100 + i) +
                   " where k = 1")
            .ok());
  }
  if (FaultInjection::CompiledIn()) {
    FaultSpec spec;
    spec.probability = 0.5;
    FaultInjection::Set("storage.merge.abort", spec);
    FaultInjection::Set("txn.rollback", spec);
    FaultInjection::SetSeed(7);
  }
  // A statement still on the wire while the server dies.
  std::thread runner([&] { (void)mid_query.Query(
      "select count(*) as n from t x join t y on x.k = y.k"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  server_->Stop();   // cancels in-flight work, rolls back in_txn's txn
  server_.reset();
  runner.join();
  FaultInjection::Clear();

  // The open transaction died with its session: the insert is gone, and
  // the Database (whose destructor stops the merge worker with whatever is
  // still queued) shuts down cleanly when the fixture tears down.
  Result<Chunk> count = db_.Query("select count(*) as n from t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->columns[0].ints()[0], 3);
}

}  // namespace
}  // namespace vdm
