// Tests for static cached views (paper §3: SCV — materialized in memory,
// refreshed explicitly, serving a delayed snapshot).
#include <gtest/gtest.h>

#include "engine/database.h"
#include "plan/plan_printer.h"

namespace vdm {
namespace {

class CachedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table sales ("
                            "id int primary key, region varchar, "
                            "amount decimal(10,2))")
                    .ok());
    ASSERT_TRUE(Insert(1, "east", 100));
    ASSERT_TRUE(Insert(2, "west", 200));
    ASSERT_TRUE(Insert(3, "east", 300));
    ASSERT_TRUE(db_.Execute("create view region_totals as "
                            "select region, sum(amount) as total, "
                            "count(*) as n from sales group by region")
                    .ok());
  }

  bool Insert(int64_t id, const std::string& region, int64_t amount) {
    return db_
        .Insert("sales", {{Value::Int64(id), Value::String(region),
                           Value::Decimal(amount * 100, 2)}})
        .ok();
  }

  int64_t EastCount() {
    Result<Chunk> rows =
        db_.Query("select n from region_totals where region = 'east'");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->NumRows(), 1u);
    return rows->columns[0].ints()[0];
  }

  Database db_;
};

TEST_F(CachedViewTest, MaterializeServesSnapshot) {
  EXPECT_EQ(EastCount(), 2);
  ASSERT_TRUE(db_.MaterializeView("region_totals").ok());
  // The snapshot serves the same data...
  EXPECT_EQ(EastCount(), 2);
  // ...and the plan no longer contains the aggregation over sales.
  Result<PlanRef> plan =
      db_.PlanQuery("select region, total from region_totals");
  ASSERT_TRUE(plan.ok());
  bool scans_snapshot = false;
  VisitPlan(*plan, [&](const PlanRef& node) {
    if (node->kind() == OpKind::kScan &&
        static_cast<const ScanOp&>(*node).table_name().rfind("__scv_", 0) ==
            0) {
      scans_snapshot = true;
    }
  });
  EXPECT_TRUE(scans_snapshot) << PrintPlan(*plan);
}

TEST_F(CachedViewTest, SnapshotIsStaleUntilRefresh) {
  ASSERT_TRUE(db_.MaterializeView("region_totals").ok());
  ASSERT_TRUE(Insert(4, "east", 50));
  // SCV semantics: the new row is not visible yet.
  EXPECT_EQ(EastCount(), 2);
  ASSERT_TRUE(db_.RefreshMaterializedView("region_totals").ok());
  EXPECT_EQ(EastCount(), 3);
}

TEST_F(CachedViewTest, DematerializeReturnsToLiveView) {
  ASSERT_TRUE(db_.MaterializeView("region_totals").ok());
  ASSERT_TRUE(Insert(5, "east", 10));
  EXPECT_EQ(EastCount(), 2);  // stale
  ASSERT_TRUE(db_.DematerializeView("region_totals").ok());
  EXPECT_EQ(EastCount(), 3);  // live again
  // Idempotent on a non-materialized view.
  EXPECT_TRUE(db_.DematerializeView("region_totals").ok());
}

TEST_F(CachedViewTest, MaterializeTwiceRefreshes) {
  ASSERT_TRUE(db_.MaterializeView("region_totals").ok());
  ASSERT_TRUE(Insert(6, "east", 10));
  ASSERT_TRUE(db_.MaterializeView("region_totals").ok());  // acts as refresh
  EXPECT_EQ(EastCount(), 3);
}

TEST_F(CachedViewTest, DacStillAppliesOverSnapshot) {
  ASSERT_TRUE(db_.MaterializeView("region_totals").ok());
  ViewDef view = *db_.catalog().FindView("region_totals");
  view.dac_filter_sql = "region = 'west'";
  ASSERT_TRUE(db_.catalog().ReplaceView(view).ok());
  Result<Chunk> rows = db_.Query("select count(*) from region_totals");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->columns[0].ints()[0], 1);
}

TEST_F(CachedViewTest, Errors) {
  EXPECT_EQ(db_.MaterializeView("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(db_.RefreshMaterializedView("region_totals").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vdm
