// Tests for INSERT statements and dynamic cached views (DCV, §3).
#include <gtest/gtest.h>

#include "engine/database.h"

namespace vdm {
namespace {

class InsertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table t ("
                            "k int primary key, name varchar, "
                            "amount decimal(10,2), hit bool)")
                    .ok());
  }
  Database db_;
};

TEST_F(InsertTest, BasicInsert) {
  ASSERT_TRUE(db_.Execute("insert into t values (1, 'a', 10.50, true)")
                  .ok());
  ASSERT_TRUE(db_.Execute("insert into t values (2, 'b', 0.05, false), "
                          "(3, null, 99.99, true)")
                  .ok());
  Result<Chunk> rows = db_.Query("select * from t order by k");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->NumRows(), 3u);
  EXPECT_EQ(rows->columns[2].GetValue(0), Value::Decimal(1050, 2));
  EXPECT_TRUE(rows->columns[1].IsNull(2));
}

TEST_F(InsertTest, ExplicitColumnsFillNulls) {
  ASSERT_TRUE(
      db_.Execute("insert into t (k, amount) values (7, 1.5)").ok());
  Result<Chunk> rows = db_.Query("select name, amount, hit from t");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->columns[0].IsNull(0));
  EXPECT_TRUE(rows->columns[2].IsNull(0));
  // 1.5 is rescaled to the column's scale 2.
  EXPECT_EQ(rows->columns[1].GetValue(0), Value::Decimal(150, 2));
}

TEST_F(InsertTest, ConstantExpressionsAllowed) {
  ASSERT_TRUE(db_.Execute("insert into t (k, amount) "
                          "values (1 + 2, round(10.567, 2))")
                  .ok());
  Result<Chunk> rows = db_.Query("select k, amount from t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->columns[0].ints()[0], 3);
  EXPECT_EQ(rows->columns[1].GetValue(0), Value::Decimal(1057, 2));
}

TEST_F(InsertTest, Errors) {
  EXPECT_FALSE(db_.Execute("insert into nope values (1)").ok());
  EXPECT_FALSE(db_.Execute("insert into t (k, zzz) values (1, 2)").ok());
  EXPECT_FALSE(db_.Execute("insert into t (k) values (1, 2)").ok());
  EXPECT_FALSE(
      db_.Execute("insert into t (k) values (some_column)").ok());
}

class DcvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table events ("
                            "id int primary key, kind varchar)")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("insert into events values (1, 'a'), (2, 'b')").ok());
    ASSERT_TRUE(db_.Execute("create view kind_counts as "
                            "select kind, count(*) as n from events "
                            "group by kind")
                    .ok());
  }
  int64_t Total() {
    Result<Chunk> rows = db_.Query("select sum(n) as t from kind_counts");
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows->columns[0].ints()[0];
  }
  Database db_;
};

TEST_F(DcvTest, DynamicCacheRefreshesOnRead) {
  ASSERT_TRUE(
      db_.MaterializeView("kind_counts", ViewDef::CacheMode::kDynamic)
          .ok());
  EXPECT_EQ(Total(), 2);
  // New data: a DCV must serve the up-to-date snapshot on next read.
  ASSERT_TRUE(db_.Execute("insert into events values (3, 'a')").ok());
  EXPECT_EQ(Total(), 3);
  // No change: no refresh needed; still consistent.
  EXPECT_EQ(Total(), 3);
}

TEST_F(DcvTest, StaticCacheStaysStale) {
  ASSERT_TRUE(
      db_.MaterializeView("kind_counts", ViewDef::CacheMode::kStatic).ok());
  ASSERT_TRUE(db_.Execute("insert into events values (3, 'a')").ok());
  EXPECT_EQ(Total(), 2);  // SCV: stale by design
  ASSERT_TRUE(db_.RefreshMaterializedView("kind_counts").ok());
  EXPECT_EQ(Total(), 3);
}

TEST_F(DcvTest, SwitchingModes) {
  ASSERT_TRUE(
      db_.MaterializeView("kind_counts", ViewDef::CacheMode::kStatic).ok());
  ASSERT_TRUE(db_.Execute("insert into events values (3, 'c')").ok());
  EXPECT_EQ(Total(), 2);
  // Re-materializing as dynamic refreshes and switches semantics.
  ASSERT_TRUE(
      db_.MaterializeView("kind_counts", ViewDef::CacheMode::kDynamic)
          .ok());
  EXPECT_EQ(Total(), 3);
  ASSERT_TRUE(db_.Execute("insert into events values (4, 'c')").ok());
  EXPECT_EQ(Total(), 4);
}

TEST_F(DcvTest, DependenciesRecorded) {
  ASSERT_TRUE(
      db_.MaterializeView("kind_counts", ViewDef::CacheMode::kDynamic)
          .ok());
  const ViewDef* view = db_.catalog().FindView("kind_counts");
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->snapshot_dependencies.size(), 1u);
  EXPECT_EQ(view->snapshot_dependencies[0].first, "events");
}

}  // namespace
}  // namespace vdm
