// Unit tests for the executor operators: joins (hash, nested loop,
// residuals, null keys), aggregation (including DISTINCT and expressions
// over aggregates), sort stability, union coercion, limit/offset, metrics.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/plan_builder.h"

namespace vdm {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema left("l");
    left.AddColumn("k", DataType::Int64())
        .AddColumn("v", DataType::String());
    ASSERT_TRUE(storage_.CreateTable(left).ok());
    Table* lt = storage_.FindTable("l");
    ASSERT_TRUE(
        lt->AppendRow({Value::Int64(1), Value::String("a")}).ok());
    ASSERT_TRUE(
        lt->AppendRow({Value::Int64(2), Value::String("b")}).ok());
    ASSERT_TRUE(
        lt->AppendRow({Value::Int64(2), Value::String("c")}).ok());
    ASSERT_TRUE(lt->AppendRow({Value::Null(), Value::String("d")}).ok());

    TableSchema right("r");
    right.AddColumn("k", DataType::Int64())
        .AddColumn("w", DataType::Int64());
    ASSERT_TRUE(storage_.CreateTable(right).ok());
    Table* rt = storage_.FindTable("r");
    ASSERT_TRUE(rt->AppendRow({Value::Int64(2), Value::Int64(20)}).ok());
    ASSERT_TRUE(rt->AppendRow({Value::Int64(2), Value::Int64(21)}).ok());
    ASSERT_TRUE(rt->AppendRow({Value::Int64(3), Value::Int64(30)}).ok());
    ASSERT_TRUE(rt->AppendRow({Value::Null(), Value::Int64(40)}).ok());

    left_schema_ = left;
    right_schema_ = right;
  }

  Chunk Run(const PlanRef& plan, ExecMetrics* metrics = nullptr) {
    Executor executor(&storage_);
    Result<Chunk> result = executor.Execute(plan, metrics);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  StorageManager storage_;
  TableSchema left_schema_, right_schema_;
};

TEST_F(ExecTest, InnerHashJoin) {
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                           JoinType::kInner, Eq(Col("l.k"), Col("r.k")))
                     .Build();
  Chunk result = Run(plan);
  // l has two k=2 rows, r has two k=2 rows -> 4 matches. NULLs never join.
  EXPECT_EQ(result.NumRows(), 4u);
}

TEST_F(ExecTest, LeftOuterHashJoinNullExtension) {
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                           JoinType::kLeftOuter, Eq(Col("l.k"), Col("r.k")))
                     .Build();
  Chunk result = Run(plan);
  // 4 matched rows + k=1 and k=NULL unmatched = 6.
  EXPECT_EQ(result.NumRows(), 6u);
  int idx = result.FindColumn("r.w");
  ASSERT_GE(idx, 0);
  int nulls = 0;
  for (size_t r = 0; r < result.NumRows(); ++r) {
    if (result.columns[static_cast<size_t>(idx)].IsNull(r)) ++nulls;
  }
  EXPECT_EQ(nulls, 2);
}

TEST_F(ExecTest, LeftOuterJoinPreservesAnchorOrder) {
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                           JoinType::kLeftOuter, Eq(Col("l.k"), Col("r.k")))
                     .Build();
  Chunk result = Run(plan);
  int v_idx = result.FindColumn("l.v");
  ASSERT_GE(v_idx, 0);
  // Probe order: a, b, b, c, c, d.
  std::vector<std::string> expected{"a", "b", "b", "c", "c", "d"};
  for (size_t r = 0; r < result.NumRows(); ++r) {
    EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[r],
              expected[r]);
  }
}

TEST_F(ExecTest, JoinWithResidualPredicate) {
  // Equi on k plus residual w > 20.
  PlanRef inner =
      PlanBuilder::ScanSchema(left_schema_, "l")
          .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                JoinType::kInner,
                And(Eq(Col("l.k"), Col("r.k")),
                    Bin(BinaryOpKind::kGreater, Col("r.w"), LitInt(20))))
          .Build();
  EXPECT_EQ(Run(inner).NumRows(), 2u);  // only w=21 survives, for both b,c
  // LOJ: rows with no surviving match revert to null extension.
  PlanRef louter =
      PlanBuilder::ScanSchema(left_schema_, "l")
          .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                JoinType::kLeftOuter,
                And(Eq(Col("l.k"), Col("r.k")),
                    Bin(BinaryOpKind::kGreater, Col("r.w"), LitInt(100))))
          .Build();
  Chunk result = Run(louter);
  EXPECT_EQ(result.NumRows(), 4u);  // every anchor row, all null-extended
  int w_idx = result.FindColumn("r.w");
  for (size_t r = 0; r < result.NumRows(); ++r) {
    EXPECT_TRUE(result.columns[static_cast<size_t>(w_idx)].IsNull(r));
  }
}

TEST_F(ExecTest, NestedLoopJoinWithoutEquiKeys) {
  PlanRef plan =
      PlanBuilder::ScanSchema(left_schema_, "l")
          .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                JoinType::kInner,
                Bin(BinaryOpKind::kLess, Col("l.k"), Col("r.w")))
          .Build();
  Chunk result = Run(plan);
  // Every non-null l.k (1,2,2) < every w (20,21,30,40) = 12 rows.
  EXPECT_EQ(result.NumRows(), 12u);
}

TEST_F(ExecTest, AggregateDistinctAndExpressionOverAggregates) {
  PlanRef plan =
      PlanBuilder::ScanSchema(right_schema_, "r")
          .Aggregate({},
                     {{Agg(AggKind::kCount, Col("r.k")), "cnt"},
                      {std::make_shared<AggregateExpr>(
                           AggKind::kCount, Col("r.k"), /*distinct=*/true),
                       "dcnt"},
                      {Bin(BinaryOpKind::kAdd,
                           Agg(AggKind::kSum, Col("r.w")),
                           Agg(AggKind::kMin, Col("r.w"))),
                       "sum_plus_min"}})
          .Build();
  Chunk result = Run(plan);
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_EQ(result.columns[0].ints()[0], 3);  // count skips NULL
  EXPECT_EQ(result.columns[1].ints()[0], 2);  // distinct {2, 3}
  EXPECT_EQ(result.columns[2].ints()[0], 111 + 20);
}

TEST_F(ExecTest, AggregateEmptyInput) {
  PlanRef global = PlanBuilder::ScanSchema(left_schema_, "l")
                       .Filter(LitBool(false))
                       .Aggregate({}, {{CountStar(), "n"},
                                       {Agg(AggKind::kSum, Col("l.k")), "s"}})
                       .Build();
  Chunk result = Run(global);
  ASSERT_EQ(result.NumRows(), 1u);  // global aggregate: one row
  EXPECT_EQ(result.columns[0].ints()[0], 0);
  EXPECT_TRUE(result.columns[1].IsNull(0));  // sum of nothing is NULL
  // Grouped aggregate over empty input yields no rows.
  PlanRef grouped = PlanBuilder::ScanSchema(left_schema_, "l")
                        .Filter(LitBool(false))
                        .Aggregate({{Col("l.k"), "k"}},
                                   {{CountStar(), "n"}})
                        .Build();
  EXPECT_EQ(Run(grouped).NumRows(), 0u);
}

TEST_F(ExecTest, GroupByNullsFormOneGroup) {
  PlanRef plan = PlanBuilder::ScanSchema(right_schema_, "r")
                     .Aggregate({{Col("r.k"), "k"}}, {{CountStar(), "n"}})
                     .Build();
  Chunk result = Run(plan);
  EXPECT_EQ(result.NumRows(), 3u);  // {2}, {3}, {NULL}
}

TEST_F(ExecTest, SortIsStableAndNullsFirst) {
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .Sort({{Col("l.k"), true}})
                     .Build();
  Chunk result = Run(plan);
  int v_idx = result.FindColumn("l.v");
  // NULL first, then 1, then the two k=2 rows in input order (stable).
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[0], "d");
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[1], "a");
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[2], "b");
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[3], "c");
}

TEST_F(ExecTest, SortDescending) {
  PlanRef plan = PlanBuilder::ScanSchema(right_schema_, "r")
                     .Sort({{Col("r.w"), false}})
                     .Build();
  Chunk result = Run(plan);
  EXPECT_EQ(result.columns[1].ints()[0], 40);
  EXPECT_EQ(result.columns[1].ints()[3], 20);
}

TEST_F(ExecTest, LimitAndOffset) {
  PlanRef plan = PlanBuilder::ScanSchema(right_schema_, "r")
                     .Limit(2, 1)
                     .Build();
  Chunk result = Run(plan);
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.columns[1].ints()[0], 21);
  // Offset past the end yields nothing.
  EXPECT_EQ(Run(PlanBuilder::ScanSchema(right_schema_, "r")
                    .Limit(5, 100)
                    .Build())
                .NumRows(),
            0u);
}

TEST_F(ExecTest, DistinctKeepsFirstOccurrence) {
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .ProjectColumns({"l.k"}, {"k"})
                     .Distinct()
                     .Build();
  Chunk result = Run(plan);
  EXPECT_EQ(result.NumRows(), 3u);  // 1, 2, NULL
}

TEST_F(ExecTest, UnionAllTypeCoercion) {
  // int64 column unioned under a decimal-typed first child.
  PlanBuilder as_decimal =
      PlanBuilder::ScanSchema(right_schema_, "r")
          .Project({{Bin(BinaryOpKind::kMul, Col("r.w"),
                         Lit(Value::Decimal(100, 2))),
                     "x"}});
  PlanBuilder as_int = PlanBuilder::ScanSchema(right_schema_, "r")
                           .ProjectColumns({"r.w"}, {"x"});
  PlanRef plan = PlanBuilder::UnionAll({as_decimal, as_int}, {"x"}).Build();
  Chunk result = Run(plan);
  EXPECT_EQ(result.NumRows(), 8u);
  EXPECT_EQ(result.columns[0].type().id, TypeId::kDecimal);
  // The coerced int 20 equals decimal 20.00.
  EXPECT_TRUE(result.columns[0].GetValue(4).Equals(Value::Int64(20)));
}

TEST_F(ExecTest, MetricsAreCollected) {
  ExecMetrics metrics;
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .Join(PlanBuilder::ScanSchema(right_schema_, "r"),
                           JoinType::kInner, Eq(Col("l.k"), Col("r.k")))
                     .Build();
  Run(plan, &metrics);
  EXPECT_EQ(metrics.rows_scanned, 8u);
  EXPECT_EQ(metrics.rows_probe_input, 4u);
  EXPECT_EQ(metrics.rows_build_input, 4u);
  EXPECT_EQ(metrics.operators_executed, 3u);
}

TEST_F(ExecTest, MissingTableFailsCleanly) {
  TableSchema ghost("ghost");
  ghost.AddColumn("x", DataType::Int64());
  PlanRef plan = PlanBuilder::ScanSchema(ghost, "g").Build();
  Executor executor(&storage_);
  Result<Chunk> result = executor.Execute(plan);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}


TEST_F(ExecTest, TopKFusionMatchesFullSort) {
  PlanRef full = PlanBuilder::ScanSchema(right_schema_, "r")
                     .Sort({{Col("r.w"), false}})
                     .Build();
  PlanRef topk = PlanBuilder::ScanSchema(right_schema_, "r")
                     .Sort({{Col("r.w"), false}})
                     .Limit(2, 1)
                     .Build();
  Chunk full_result = Run(full);
  Chunk topk_result = Run(topk);
  ASSERT_EQ(topk_result.NumRows(), 2u);
  EXPECT_EQ(topk_result.columns[1].ints()[0],
            full_result.columns[1].ints()[1]);
  EXPECT_EQ(topk_result.columns[1].ints()[1],
            full_result.columns[1].ints()[2]);
}

TEST_F(ExecTest, TopKWithTiesIsDeterministic) {
  // l has two k=2 rows; top-2 ascending with NULL first must pick the
  // NULL row then k=1, in input order on ties.
  PlanRef plan = PlanBuilder::ScanSchema(left_schema_, "l")
                     .Sort({{Col("l.k"), true}})
                     .Limit(3)
                     .Build();
  Chunk result = Run(plan);
  int v_idx = result.FindColumn("l.v");
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[0], "d");
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[1], "a");
  EXPECT_EQ(result.columns[static_cast<size_t>(v_idx)].strings()[2], "b");
}

}  // namespace
}  // namespace vdm
