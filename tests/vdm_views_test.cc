// Tests for the VDM layer: the JournalEntryItemBrowser stack (Figs. 3/4)
// and the synthetic Fig. 14 view population with custom-field extensions.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "plan/plan_printer.h"
#include "vdm/generator.h"
#include "vdm/jeib.h"
#include "workload/s4.h"

namespace vdm {
namespace {

std::vector<std::string> RowMultiset(const Chunk& chunk) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    std::string row;
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row += chunk.columns[c].GetValue(r).ToString();
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class JeibTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    S4Options options;
    options.acdoca_rows = 2000;
    options.dimension_rows = 100;
    ASSERT_TRUE(CreateS4Schema(db_, options).ok());
    ASSERT_TRUE(LoadS4Data(db_, options).ok());
    Status built = BuildJournalEntryItemBrowser(db_);
    ASSERT_TRUE(built.ok()) << built.ToString();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* JeibTest::db_ = nullptr;

TEST_F(JeibTest, RawPlanShapeMatchesFig3) {
  // "select * from JournalEntryItemBrowser" — the raw, fully inlined plan.
  Result<PlanRef> raw =
      db_->BindQuery("select * from journalentryitembrowser");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  PlanStats stats = ComputePlanStats(*raw);
  // Tree (unshared) counting: 54 table instances, 49 joins, one 5-way
  // UNION ALL, one GROUP BY, one DISTINCT (paper: 47 shared / 62 unshared
  // instances, 49 joins — see EXPERIMENTS.md for the tree-vs-DAG note).
  EXPECT_EQ(stats.joins, 49u);
  EXPECT_EQ(stats.table_instances, 54u);
  EXPECT_EQ(stats.union_alls, 1u);
  EXPECT_EQ(stats.union_all_children, 5u);
  EXPECT_EQ(stats.aggregates, 1u);
  EXPECT_EQ(stats.distincts, 1u);
  EXPECT_EQ(stats.left_outer_joins, 47u);
  EXPECT_GE(stats.max_depth, 6u);
}

TEST_F(JeibTest, CountStarPlanMatchesFig4) {
  db_->SetProfile(SystemProfile::kHana);
  Result<PlanRef> plan =
      db_->PlanQuery("select count(*) from journalentryitembrowser");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  PlanStats stats = ComputePlanStats(*plan);
  // Fig. 4: the 3-way core survives (2 inner joins) plus the two
  // DAC-protected customer/supplier joins; everything else is pruned.
  EXPECT_EQ(stats.joins, 4u) << PrintPlan(*plan);
  EXPECT_EQ(stats.table_instances, 5u) << PrintPlan(*plan);
  EXPECT_EQ(stats.union_alls, 0u);
  EXPECT_EQ(stats.aggregates, 1u);  // the count(*) itself
  EXPECT_EQ(stats.distincts, 0u);
}

TEST_F(JeibTest, CountStarResultUnaffectedByOptimization) {
  db_->SetProfile(SystemProfile::kNone);
  Result<Chunk> raw =
      db_->Query("select count(*) from journalentryitembrowser");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  db_->SetProfile(SystemProfile::kHana);
  Result<Chunk> optimized =
      db_->Query("select count(*) from journalentryitembrowser");
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(raw->columns[0].ints()[0], optimized->columns[0].ints()[0]);
  EXPECT_GT(raw->columns[0].ints()[0], 0);
}

TEST_F(JeibTest, NarrowProjectionPrunesMostJoins) {
  db_->SetProfile(SystemProfile::kHana);
  // A typical query touches 10-20 of the view's fields (§4.1); plans must
  // shrink to just the joins those fields need.
  Result<PlanRef> plan = db_->PlanQuery(
      "select rbukrs, companyname, hsl, customername "
      "from journalentryitembrowser");
  ASSERT_TRUE(plan.ok());
  PlanStats stats = ComputePlanStats(*plan);
  // Core (2 joins) + customer (DAC also needs supplier) = 4 joins.
  EXPECT_LE(stats.joins, 4u) << PrintPlan(*plan);
}

TEST_F(JeibTest, SelectStarExecutes) {
  db_->SetProfile(SystemProfile::kHana);
  Result<Chunk> result =
      db_->Query("select * from journalentryitembrowser limit 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 50u);
  EXPECT_GE(result->NumColumns(), 40u);
}

// ---------------------------------------------------------------------------
// Fig. 14: synthetic views + custom-field extension.

class Fig14Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    options_.num_views = 12;
    options_.base_tables = 4;
    options_.base_rows = 2000;
    options_.num_dims = 6;
    options_.dim_rows = 50;
    ASSERT_TRUE(CreateSyntheticVdmSchema(db_, options_).ok());
    ASSERT_TRUE(LoadSyntheticVdmData(db_, options_).ok());
    Result<std::vector<SyntheticViewSpec>> specs =
        GenerateSyntheticViews(db_, options_);
    ASSERT_TRUE(specs.ok()) << specs.status().ToString();
    specs_ = *specs;
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
  static SyntheticVdmOptions options_;
  static std::vector<SyntheticViewSpec> specs_;
};

Database* Fig14Test::db_ = nullptr;
SyntheticVdmOptions Fig14Test::options_;
std::vector<SyntheticViewSpec> Fig14Test::specs_;

TEST_F(Fig14Test, PopulationHasBothPatterns) {
  int draft = 0;
  for (const SyntheticViewSpec& spec : specs_) {
    if (spec.draft_pattern) ++draft;
  }
  EXPECT_GT(draft, 0);
  EXPECT_LT(draft, static_cast<int>(specs_.size()));
}

TEST_F(Fig14Test, OriginalViewsExecute) {
  db_->SetProfile(SystemProfile::kHana);
  for (const SyntheticViewSpec& spec : specs_) {
    Result<Chunk> result =
        db_->Query(SyntheticPagingQuery(spec, /*extended=*/false));
    ASSERT_TRUE(result.ok())
        << spec.view_name << ": " << result.status().ToString();
    EXPECT_EQ(result->NumRows(), 10u);
  }
}

TEST_F(Fig14Test, CaseJoinEliminatesExtensionJoin) {
  db_->SetProfile(SystemProfile::kHana);
  for (SyntheticViewSpec spec : specs_) {
    ASSERT_TRUE(
        ExtendSyntheticView(db_, &spec, /*use_case_join=*/true).ok());
    Result<PlanRef> original =
        db_->PlanQuery(SyntheticPagingQuery(spec, false));
    Result<PlanRef> extended =
        db_->PlanQuery(SyntheticPagingQuery(spec, true));
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(extended.ok()) << extended.status().ToString();
    // With the explicit case-join intent, the extension must not add any
    // base-table join or scan beyond the original plan.
    PlanStats orig_stats = ComputePlanStats(*original);
    PlanStats ext_stats = ComputePlanStats(*extended);
    EXPECT_EQ(ext_stats.joins, orig_stats.joins)
        << spec.view_name << "\n"
        << PrintPlan(*extended);
    EXPECT_EQ(ext_stats.table_instances, orig_stats.table_instances)
        << spec.view_name;
  }
}

TEST_F(Fig14Test, WithoutIntentDraftPatternKeepsJoin) {
  db_->SetProfile(SystemProfile::kHana);
  bool saw_kept = false, saw_removed = false;
  for (SyntheticViewSpec spec : specs_) {
    ASSERT_TRUE(
        ExtendSyntheticView(db_, &spec, /*use_case_join=*/false).ok());
    Result<PlanRef> original =
        db_->PlanQuery(SyntheticPagingQuery(spec, false));
    Result<PlanRef> extended =
        db_->PlanQuery(SyntheticPagingQuery(spec, true));
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(extended.ok());
    bool removed = ComputePlanStats(*extended).joins ==
                   ComputePlanStats(*original).joins;
    if (spec.draft_pattern) {
      // Fig. 14(a): the union-all ASJ is not recognized without intent.
      EXPECT_FALSE(removed) << spec.view_name;
      saw_kept = true;
    } else {
      // Plain single-table ASJ is recognized even without intent.
      EXPECT_TRUE(removed) << spec.view_name;
      saw_removed = true;
    }
  }
  EXPECT_TRUE(saw_kept);
  EXPECT_TRUE(saw_removed);
}

TEST_F(Fig14Test, ExtensionResultsCorrect) {
  for (SyntheticViewSpec spec : specs_) {
    ASSERT_TRUE(
        ExtendSyntheticView(db_, &spec, /*use_case_join=*/true).ok());
    std::string sql = SyntheticPagingQuery(spec, true, /*limit=*/500);
    db_->SetProfile(SystemProfile::kNone);
    Result<Chunk> raw = db_->Query(sql);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    db_->SetProfile(SystemProfile::kHana);
    Result<Chunk> optimized = db_->Query(sql);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    EXPECT_EQ(RowMultiset(*raw), RowMultiset(*optimized)) << spec.view_name;
    // ext1 must be populated (non-null) for every row.
    int ext_col = optimized->FindColumn("ext1");
    ASSERT_GE(ext_col, 0);
    for (size_t r = 0; r < optimized->NumRows(); ++r) {
      EXPECT_FALSE(optimized->columns[static_cast<size_t>(ext_col)].IsNull(r));
    }
  }
}

}  // namespace
}  // namespace vdm
