// Parallel-determinism battery for the morsel-driven executor: every
// query must produce byte-for-byte identical results with num_threads=1
// (the exact legacy serial path) and num_threads=8, across joins,
// aggregates, distinct, sorts, and unions. LIMIT without ORDER BY is
// compared as a row set (any prefix is a valid answer), plus metrics
// checks for limit early exit.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "engine/database.h"

namespace vdm {
namespace {

/// Asserts two chunks are byte-for-byte identical: same shape, same
/// column names and types, same nulls, same raw values (doubles compared
/// bitwise).
void ExpectChunksIdentical(const Chunk& a, const Chunk& b) {
  ASSERT_EQ(a.names, b.names);
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    const ColumnData& ca = a.columns[c];
    const ColumnData& cb = b.columns[c];
    ASSERT_EQ(ca.type().id, cb.type().id) << "column " << a.names[c];
    for (size_t r = 0; r < a.NumRows(); ++r) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r))
          << "column " << a.names[c] << " row " << r;
      if (ca.IsNull(r)) continue;
      if (ca.type().id == TypeId::kString) {
        ASSERT_EQ(ca.strings()[r], cb.strings()[r])
            << "column " << a.names[c] << " row " << r;
      } else if (ca.type().id == TypeId::kDouble) {
        ASSERT_EQ(std::memcmp(&ca.doubles()[r], &cb.doubles()[r],
                              sizeof(double)),
                  0)
            << "column " << a.names[c] << " row " << r;
      } else {
        ASSERT_EQ(ca.ints()[r], cb.ints()[r])
            << "column " << a.names[c] << " row " << r;
      }
    }
  }
}

/// Rows of a chunk rendered as strings (for set-wise comparison of
/// order-unspecified results like LIMIT without ORDER BY).
std::multiset<std::string> RowSet(const Chunk& chunk) {
  std::multiset<std::string> rows;
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    std::string row;
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row += chunk.columns[c].GetValue(r).ToString();
      row += '|';
    }
    rows.insert(std::move(row));
  }
  return rows;
}

class ExecParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table fact ("
                            "id int primary key,"
                            "k int,"
                            "grp int,"
                            "val int,"
                            "name varchar)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table dim ("
                            "k int primary key,"
                            "label varchar)")
                    .ok());
    // 3000 fact rows over 60 join keys (20 of them dangling), 7 groups,
    // 12 names, with periodic NULL keys and NULL values.
    std::vector<std::vector<Value>> fact_rows;
    for (int64_t i = 0; i < 3000; ++i) {
      Value key = (i % 97 == 0) ? Value::Null() : Value::Int64(i % 60);
      Value val = (i % 53 == 0) ? Value::Null() : Value::Int64(i * 7 % 1000);
      fact_rows.push_back({Value::Int64(i), key, Value::Int64(i % 7), val,
                           Value::String("n" + std::to_string(i % 12))});
    }
    ASSERT_TRUE(db_.Insert("fact", fact_rows).ok());
    std::vector<std::vector<Value>> dim_rows;
    for (int64_t k = 0; k < 40; ++k) {
      dim_rows.push_back(
          {Value::Int64(k), Value::String("d" + std::to_string(k % 5))});
    }
    ASSERT_TRUE(db_.Insert("dim", dim_rows).ok());
    // Merge into main storage so string columns carry dictionaries (the
    // kDict32 join/group path) and stats are fresh.
    db_.MergeAllDeltas();
    db_.AnalyzeTables();
  }

  /// Runs the query under the given executor options.
  Chunk Run(const std::string& sql, ExecOptions options,
            ExecMetrics* metrics = nullptr) {
    db_.SetExecOptions(options);
    Result<Chunk> result = db_.Query(sql, metrics);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    return result.ok() ? std::move(result).value() : Chunk{};
  }

  /// Runs serially and with 8 workers (morsels forced small so even this
  /// data set splits into many) and asserts byte-identical results.
  void ExpectDeterministic(const std::string& sql) {
    Chunk serial = Run(sql, ExecOptions{.num_threads = 1});
    Chunk parallel =
        Run(sql, ExecOptions{.num_threads = 8, .morsel_size = 256});
    ExpectChunksIdentical(serial, parallel);
  }

  Database db_;
};

TEST_F(ExecParallelTest, InnerJoinIdentical) {
  ExpectDeterministic(
      "select f.id, f.val, d.label from fact f "
      "join dim d on f.k = d.k");
}

TEST_F(ExecParallelTest, LeftOuterJoinIdentical) {
  // 20 of the 60 key values are dangling and a slice of keys is NULL, so
  // the null-extension path runs in every morsel.
  ExpectDeterministic(
      "select f.id, f.name, d.label from fact f "
      "left join dim d on f.k = d.k");
}

TEST_F(ExecParallelTest, JoinWithResidualIdentical) {
  ExpectDeterministic(
      "select f.id, d.label from fact f "
      "join dim d on f.k = d.k and f.val > 500");
}

TEST_F(ExecParallelTest, StringKeyJoinIdentical) {
  // Self-join on the dictionary-encoded name column (kDict32 path).
  ExpectDeterministic(
      "select count(*) as n from fact a "
      "join fact b on a.name = b.name and a.id = b.id");
}

TEST_F(ExecParallelTest, GroupByIdentical) {
  // count/sum(int)/min/max are parallel-merge eligible.
  ExpectDeterministic(
      "select grp, count(*) as n, sum(val) as s, min(name) as lo, "
      "max(name) as hi from fact group by grp");
}

TEST_F(ExecParallelTest, SerialOnlyAggregatesIdentical) {
  // avg and count(distinct) are order-sensitive and route to the serial
  // aggregation path regardless of thread count.
  ExpectDeterministic(
      "select grp, avg(val) as mean, count(distinct name) as dn "
      "from fact group by grp");
}

TEST_F(ExecParallelTest, GroupByStringKeyIdentical) {
  ExpectDeterministic(
      "select name, count(*) as n from fact group by name");
}

TEST_F(ExecParallelTest, FilterAndProjectIdentical) {
  ExpectDeterministic(
      "select id, val * 2 as v2 from fact where val > 250 and grp = 3");
}

TEST_F(ExecParallelTest, DistinctIdentical) {
  ExpectDeterministic("select distinct name from fact");
  ExpectDeterministic("select distinct grp, name from fact");
}

TEST_F(ExecParallelTest, OrderByLimitIdentical) {
  ExpectDeterministic(
      "select id, val from fact order by val desc, id limit 25");
}

TEST_F(ExecParallelTest, UnionAllIdentical) {
  ExpectDeterministic(
      "select id from fact where grp = 1 "
      "union all select id from fact where grp = 2");
}

TEST_F(ExecParallelTest, AggregateOverJoinIdentical) {
  ExpectDeterministic(
      "select d.label, count(*) as n, sum(f.val) as s from fact f "
      "join dim d on f.k = d.k group by d.label");
}

TEST_F(ExecParallelTest, LimitWithoutOrderByIsAValidRowSubset) {
  const std::string full_sql =
      "select f.id, d.label from fact f join dim d on f.k = d.k";
  const std::string limited_sql = full_sql + " limit 10";
  std::multiset<std::string> full =
      RowSet(Run(full_sql, ExecOptions{.num_threads = 1}));
  for (size_t threads : {1u, 8u}) {
    Chunk limited = Run(limited_sql, ExecOptions{.num_threads = threads,
                                                 .morsel_size = 256});
    ASSERT_EQ(limited.NumRows(), 10u) << threads << " threads";
    // Every emitted row must be one of the full result's rows.
    std::multiset<std::string> remaining = full;
    for (const std::string& row : RowSet(limited)) {
      auto it = remaining.find(row);
      ASSERT_TRUE(it != remaining.end())
          << "row not in full result: " << row;
      remaining.erase(it);
    }
  }
}

TEST_F(ExecParallelTest, LimitOverJoinExitsEarly) {
  // Self-join so the probe side is large (3000 rows = many morsels)
  // whichever side the optimizer picks for the build.
  ExecMetrics metrics;
  Chunk result =
      Run("select a.id, b.id from fact a join fact b on a.k = b.k limit 5",
          ExecOptions{.num_threads = 1, .morsel_size = 256}, &metrics);
  EXPECT_EQ(result.NumRows(), 5u);
  EXPECT_GT(metrics.limit_early_exits, 0u);
  // The probe loop stopped long before consuming all 3000 probe rows.
  EXPECT_LT(metrics.rows_probe_input, 3000u);
}

TEST_F(ExecParallelTest, EarlyExitCanBeDisabled) {
  ExecMetrics metrics;
  Chunk result =
      Run("select a.id, b.id from fact a join fact b on a.k = b.k limit 5",
          ExecOptions{.num_threads = 1,
                      .morsel_size = 256,
                      .enable_limit_early_exit = false},
          &metrics);
  EXPECT_EQ(result.NumRows(), 5u);
  EXPECT_EQ(metrics.limit_early_exits, 0u);
  EXPECT_EQ(metrics.rows_probe_input, 3000u);  // full probe without the hint
}

TEST_F(ExecParallelTest, MetricsRecordMorselsAndTimings) {
  ExecMetrics metrics;
  Run("select grp, count(*) as n from fact where val > 100 group by grp",
      ExecOptions{.num_threads = 8, .morsel_size = 256}, &metrics);
  EXPECT_GE(metrics.morsels_scanned, 3000u / 256u);
  EXPECT_GT(metrics.rows_aggregated, 0u);
  EXPECT_GT(metrics.peak_hash_table_entries, 0u);
  EXPECT_FALSE(metrics.op_wall_ns.empty());
  uint64_t total_ns = 0;
  for (const auto& [op, ns] : metrics.op_wall_ns) total_ns += ns;
  EXPECT_GT(total_ns, 0u);
}

}  // namespace
}  // namespace vdm
