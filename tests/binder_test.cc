// Unit tests for the binder: name resolution, star expansion, view
// inlining, DAC injection, macro expansion, aggregation shaping.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"

namespace vdm {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table t (a int primary key, b varchar, "
                            "c decimal(10,2))")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table u (a int primary key, d varchar)")
                    .ok());
    ASSERT_TRUE(db_.Insert("t", {{Value::Int64(1), Value::String("x"),
                                  Value::Decimal(100, 2)},
                                 {Value::Int64(2), Value::String("y"),
                                  Value::Decimal(200, 2)}})
                    .ok());
    ASSERT_TRUE(
        db_.Insert("u", {{Value::Int64(1), Value::String("one")}}).ok());
  }

  Result<PlanRef> Bind(const std::string& sql) { return db_.BindQuery(sql); }

  Database db_;
};

TEST_F(BinderTest, OutputNamesFollowSelectList) {
  Result<PlanRef> plan = Bind("select a, b as bee, c + 1 from t");
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> names = (*plan)->OutputNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "bee");
  // Unaliased expressions get their rendering as a name.
  EXPECT_NE(names[2].find("+"), std::string::npos);
}

TEST_F(BinderTest, DuplicateNamesAreDisambiguated) {
  Result<PlanRef> plan = Bind("select a, a from t");
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> names = (*plan)->OutputNames();
  EXPECT_NE(names[0], names[1]);
}

TEST_F(BinderTest, StarExpandsQualifiedOnCollision) {
  Result<PlanRef> plan =
      Bind("select * from t join u on t.a = u.a");
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> names = (*plan)->OutputNames();
  ASSERT_EQ(names.size(), 5u);
  // "a" collides between t and u -> qualified names survive.
  EXPECT_EQ(names[0], "t.a");
  EXPECT_EQ(names[3], "u.a");
  EXPECT_EQ(names[1], "b");  // unique names stay bare
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  Result<PlanRef> plan = Bind("select a from t join u on t.a = u.a");
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, UnknownColumnAndTableRejected) {
  EXPECT_FALSE(Bind("select nope from t").ok());
  EXPECT_FALSE(Bind("select a from nonexistent").ok());
}

TEST_F(BinderTest, SelfJoinNeedsAliases) {
  // Two instances of t are distinguishable through aliases.
  Result<PlanRef> plan =
      Bind("select x.a, y.b from t x join t y on x.a = y.a");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->OutputNames()[0], "a");
}

TEST_F(BinderTest, GroupByValidation) {
  EXPECT_TRUE(Bind("select a, count(*) from t group by a").ok());
  EXPECT_TRUE(Bind("select a + 1, count(*) from t group by a + 1").ok());
  Result<PlanRef> bad = Bind("select b, count(*) from t group by a");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, HavingBecomesHiddenItemAndFilter) {
  Result<PlanRef> plan =
      Bind("select a from t group by a having count(*) > 1");
  ASSERT_TRUE(plan.ok());
  // Shape: Project over Filter over Aggregate; the final output hides
  // the having column.
  EXPECT_EQ((*plan)->OutputNames(), std::vector<std::string>{"a"});
  PlanStats stats = ComputePlanStats(*plan);
  EXPECT_EQ(stats.filters, 1u);
  EXPECT_EQ(stats.aggregates, 1u);
}

TEST_F(BinderTest, UnionArityChecked) {
  EXPECT_TRUE(Bind("select a from t union all select a from u").ok());
  Result<PlanRef> bad = Bind("select a, b from t union all select a from u");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("arity"), std::string::npos);
}

TEST_F(BinderTest, ViewInliningIsTransparent) {
  ASSERT_TRUE(db_.Execute("create view tv as select a, b from t").ok());
  Result<Chunk> rows = db_.Query("select b from tv where a = 2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->NumRows(), 1u);
  EXPECT_EQ(rows->columns[0].strings()[0], "y");
}

TEST_F(BinderTest, NestedViewsUnfold) {
  ASSERT_TRUE(db_.Execute("create view v1 as select a, b from t").ok());
  ASSERT_TRUE(db_.Execute("create view v2 as select a, b from v1").ok());
  ASSERT_TRUE(db_.Execute("create view v3 as select a from v2").ok());
  Result<PlanRef> plan = Bind("select * from v3");
  ASSERT_TRUE(plan.ok());
  // The fully inlined plan bottoms out at the base table.
  bool found_scan = false;
  VisitPlan(*plan, [&](const PlanRef& node) {
    if (node->kind() == OpKind::kScan) {
      found_scan = true;
      EXPECT_EQ(static_cast<const ScanOp&>(*node).table_name(), "t");
    }
  });
  EXPECT_TRUE(found_scan);
}

TEST_F(BinderTest, ViewCycleDetected) {
  // A view that references a later-defined view of the same name can
  // produce a cycle when created via ReplaceView; binding must not loop.
  ASSERT_TRUE(db_.Execute("create view cyc as select a from t").ok());
  ViewDef view = *db_.catalog().FindView("cyc");
  view.sql = "select a from cyc";
  ASSERT_TRUE(db_.catalog().ReplaceView(view).ok());
  Result<PlanRef> plan = Bind("select * from cyc");
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("nesting"), std::string::npos);
}

TEST_F(BinderTest, DacFilterAppliesPerReference) {
  ASSERT_TRUE(db_.Execute("create view sec as select a, b from t").ok());
  ViewDef view = *db_.catalog().FindView("sec");
  view.dac_filter_sql = "a = 1";
  ASSERT_TRUE(db_.catalog().ReplaceView(view).ok());
  Result<Chunk> rows = db_.Query("select count(*) from sec");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->columns[0].ints()[0], 1);
}

TEST_F(BinderTest, MacroExpansion) {
  ASSERT_TRUE(db_.Execute("create view mv as select a, c from t "
                          "with expression macros (sum(c) / count(*) "
                          "as avg_c)")
                  .ok());
  Result<Chunk> rows =
      db_.Query("select expression_macro(avg_c) as m from mv group by a");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->NumRows(), 2u);
  // Unknown macro errors out cleanly.
  Result<Chunk> bad =
      db_.Query("select expression_macro(nope) from mv group by a");
  EXPECT_FALSE(bad.ok());
}

TEST_F(BinderTest, OrderByUnprojectedColumn) {
  Result<Chunk> rows = db_.Query("select b from t order by c desc");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->NumRows(), 2u);
  EXPECT_EQ(rows->columns[0].strings()[0], "y");  // c=2.00 first
}

TEST_F(BinderTest, OrderByOutputAliasAfterAggregation) {
  Result<Chunk> rows = db_.Query(
      "select a, count(*) as n from t group by a order by a desc");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->columns[0].ints()[0], 2);
}

TEST_F(BinderTest, SubqueryScopesAreIsolated) {
  Result<PlanRef> plan = Bind(
      "select s.total from "
      "(select a, count(*) as total from t group by a) s where s.total > 0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Inner columns are not visible outside.
  EXPECT_FALSE(Bind("select b from (select a from t) s").ok());
}

TEST_F(BinderTest, CaseInsensitiveResolution) {
  EXPECT_TRUE(Bind("select A, B from T").ok());
  EXPECT_TRUE(Bind("SELECT t.A FROM t").ok());
}

}  // namespace
}  // namespace vdm
