// Plan cache (engine/plan_cache.h) and statement parameterization
// (sql/parameterize.h): hit/miss behaviour, invalidation, LRU eviction,
// limit rebinding, and result equivalence against the uncached pipeline.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/database.h"
#include "sql/parameterize.h"
#include "workload/tpch.h"

namespace vdm {
namespace {

// ---------------------------------------------------------------------------
// Statement parameterization

TEST(ParameterizeTest, LiteralVariantsShareOneKey) {
  // Note the literals share one decimal scale: the scale is part of the
  // parameter's type and therefore of the key.
  auto a = ParameterizeStatement(
      "select o_orderkey from orders where o_totalprice > 100.5 limit 10");
  auto b = ParameterizeStatement(
      "select o_orderkey from orders where o_totalprice > 999.2 limit 7 "
      "offset 3");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->cacheable);
  EXPECT_TRUE(b->cacheable);
  // The keys differ only in the optional OFFSET marker.
  EXPECT_EQ(a->key + " offset ?O", b->key);
  ASSERT_EQ(a->params.size(), 1u);
  ASSERT_EQ(b->params.size(), 1u);
  EXPECT_EQ(a->limit, 10);
  EXPECT_EQ(a->offset, 0);
  EXPECT_FALSE(a->has_offset);
  EXPECT_EQ(b->limit, 7);
  EXPECT_EQ(b->offset, 3);
  EXPECT_TRUE(b->has_offset);

  auto c = ParameterizeStatement(
      "select o_orderkey from orders where o_totalprice > 42.0 limit 99 "
      "offset 6");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(b->key, c->key);
}

TEST(ParameterizeTest, EqualityLiteralsStayInline) {
  // Equality literals feed constant pinning (UAJ 3) and must remain
  // visible to the optimizer, so they land in the key verbatim.
  auto a = ParameterizeStatement(
      "select o_orderkey from orders where o_orderstatus = 'O'");
  auto b = ParameterizeStatement(
      "select o_orderkey from orders where o_orderstatus = 'F'");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->params.empty());
  EXPECT_NE(a->key, b->key);
}

TEST(ParameterizeTest, SubqueryAndOnClauseLiteralsStayInline) {
  auto p = ParameterizeStatement(
      "select o.o_orderkey from orders o left join "
      "(select c_custkey from customer where c_acctbal > 50.0) t "
      "on o.o_custkey = t.c_custkey and 1 < 2 "
      "where o.o_totalprice > 10.0");
  ASSERT_TRUE(p.ok());
  // Only the top-level WHERE literal is lifted; the subquery's range
  // literal and the ON-clause literals are untouched.
  ASSERT_EQ(p->params.size(), 1u);
  EXPECT_EQ(p->params[0].ToString(), Value::Decimal(100, 1).ToString());
}

TEST(ParameterizeTest, NonSelectAndSentinelCollisionsNotCacheable) {
  auto ddl = ParameterizeStatement("create table t (k int primary key)");
  ASSERT_TRUE(ddl.ok());
  EXPECT_FALSE(ddl->cacheable);

  auto collide = ParameterizeStatement(
      "select o_orderkey from orders where o_orderkey = 1000003 limit 5");
  ASSERT_TRUE(collide.ok());
  EXPECT_FALSE(collide->cacheable);
}

// ---------------------------------------------------------------------------
// PlanCache structure

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  PlanCache cache(2);
  auto plan = std::make_shared<CachedPlan>();
  cache.Insert("a", plan);
  cache.Insert("b", plan);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // "a" is now most recent
  cache.Insert("c", plan);                // evicts "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(PlanCacheTest, ConcurrentLookupInsertClear) {
  PlanCache cache(8);
  auto plan = std::make_shared<CachedPlan>();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, plan, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string((t + i) % 12);
        if (cache.Lookup(key) == nullptr) cache.Insert(key, plan);
        if (i % 100 == 99 && t == 0) cache.Clear();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 8u);
}

TEST(PlanCacheTest, ConfigFingerprintSeparatesProfiles) {
  uint64_t hana = FingerprintConfig(ConfigForProfile(SystemProfile::kHana));
  uint64_t pg = FingerprintConfig(ConfigForProfile(SystemProfile::kPostgres));
  uint64_t none = FingerprintConfig(ConfigForProfile(SystemProfile::kNone));
  EXPECT_NE(hana, pg);
  EXPECT_NE(hana, none);
  EXPECT_NE(pg, none);
}

// ---------------------------------------------------------------------------
// End-to-end behaviour on TPC-H

class PlanCacheDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchOptions options;
    options.scale = 0.05;
    ASSERT_TRUE(CreateTpchSchema(db_, options).ok());
    ASSERT_TRUE(LoadTpchData(db_, options).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  void SetUp() override {
    db_->SetProfile(SystemProfile::kHana);
    db_->EnablePlanCache();
    db_->ResetPlanCacheStats();
  }
  void TearDown() override { db_->DisablePlanCache(); }

  static Database* db_;
};

Database* PlanCacheDbTest::db_ = nullptr;

TEST_F(PlanCacheDbTest, HitOnLiteralOnlyChange) {
  QueryTiming timing;
  Result<Chunk> first = db_->Query(
      "select o_orderkey from orders where o_orderkey > 0", nullptr,
      &timing);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(timing.used_cache);
  EXPECT_FALSE(timing.cache_hit);

  Result<Chunk> second = db_->Query(
      "select o_orderkey from orders where o_orderkey > 999999999", nullptr,
      &timing);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(timing.cache_hit);
  EXPECT_EQ(timing.parse_ns, 0);
  EXPECT_EQ(timing.bind_ns, 0);
  EXPECT_EQ(timing.optimize_ns, 0);
  // The two literal variants must produce genuinely different results.
  EXPECT_GT(first->NumRows(), second->NumRows());

  // Same literal again: still a hit, same result as the uncached pipeline.
  db_->DisablePlanCache();
  Result<Chunk> uncached = db_->Query(
      "select o_orderkey from orders where o_orderkey > 999999999");
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(second->ToString(), uncached->ToString());
}

TEST_F(PlanCacheDbTest, PagingQueryRebindsLimitAndOffset) {
  std::vector<std::string> uncached;
  db_->DisablePlanCache();
  for (int64_t offset : {0, 5, 40, 400}) {
    Result<Chunk> r = db_->Query(PagingQuerySql(10, offset));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    uncached.push_back(r->ToString());
  }
  db_->EnablePlanCache();
  db_->ResetPlanCacheStats();
  size_t i = 0;
  for (int64_t offset : {0, 5, 40, 400}) {
    QueryTiming timing;
    Result<Chunk> r = db_->Query(PagingQuerySql(10, offset), nullptr, &timing);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(timing.cache_hit, i > 0) << "offset " << offset;
    EXPECT_EQ(r->NumRows(), 10u);
    EXPECT_EQ(r->ToString(), uncached[i]) << "offset " << offset;
    ++i;
  }
  PlanCacheStats stats = db_->plan_cache_stats();
  EXPECT_EQ(stats.hits, 3u);
  // A different LIMIT is a hit too (the window is a parameter).
  Result<Chunk> wide = db_->Query(PagingQuerySql(25, 3));
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->NumRows(), 25u);
  EXPECT_EQ(db_->plan_cache_stats().hits, 4u);
}

TEST_F(PlanCacheDbTest, InvalidationOnDdlProfileAndConfig) {
  const std::string sql =
      "select o_orderkey from orders where o_totalprice > 500.0";
  ASSERT_TRUE(db_->Query(sql).ok());
  QueryTiming timing;
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);

  // CREATE TABLE bumps the catalog version: next run must recompile.
  ASSERT_TRUE(db_->Execute("create table pc_probe (k int primary key)").ok());
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);

  // CREATE VIEW likewise.
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok() && timing.cache_hit);
  ASSERT_TRUE(
      db_->Execute("create view pc_view as select k from pc_probe").ok());
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);

  // Dropping objects invalidates too.
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok() && timing.cache_hit);
  ASSERT_TRUE(db_->catalog().DropView("pc_view").ok());
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok() && timing.cache_hit);
  ASSERT_TRUE(db_->catalog().DropTable("pc_probe").ok());
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);

  // Profile change clears the cache.
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok() && timing.cache_hit);
  db_->SetProfile(SystemProfile::kPostgres);
  EXPECT_EQ(db_->plan_cache_size(), 0u);
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);

  // Optimizer-config change clears it as well.
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok() && timing.cache_hit);
  OptimizerConfig config = ConfigForProfile(SystemProfile::kHana);
  config.join_reordering = false;
  db_->SetOptimizerConfig(config);
  EXPECT_EQ(db_->plan_cache_size(), 0u);
  ASSERT_TRUE(db_->Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);
}

TEST_F(PlanCacheDbTest, DmlOnOneTableKeepsOtherTablesPlansWarm) {
  const std::string orders_sql =
      "select o_orderkey from orders where o_totalprice > 500.0";
  const std::string lineitem_sql =
      "select l_orderkey from lineitem where l_quantity > 40.0";
  QueryTiming timing;
  ASSERT_TRUE(db_->Query(orders_sql).ok());
  ASSERT_TRUE(db_->Query(lineitem_sql).ok());
  ASSERT_TRUE(db_->Query(orders_sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);
  ASSERT_TRUE(db_->Query(lineitem_sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);

  // DML on orders bumps only its data version: the catalog schema version
  // is untouched, lineitem plans stay warm, orders plans recompile.
  const uint64_t schema_before = db_->catalog().version();
  const uint64_t inval_before = db_->plan_cache_stats().invalidations;
  Result<Chunk> dml = db_->Execute(
      "update orders set o_custkey = o_custkey where o_orderkey = 1");
  ASSERT_TRUE(dml.ok()) << dml.status().ToString();
  EXPECT_EQ(db_->catalog().version(), schema_before);
  ASSERT_TRUE(db_->Query(lineitem_sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);
  ASSERT_TRUE(db_->Query(orders_sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);
  EXPECT_GT(db_->plan_cache_stats().invalidations, inval_before);

  // The recompiled orders plan is warm again afterwards.
  ASSERT_TRUE(db_->Query(orders_sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);
}

TEST_F(PlanCacheDbTest, EvictionAtDatabaseLevel) {
  db_->EnablePlanCache(/*capacity=*/2);
  for (const char* sql :
       {"select o_orderkey from orders where o_totalprice > 1.0",
        "select o_custkey from orders where o_totalprice > 2.0",
        "select o_orderdate from orders where o_totalprice > 3.0"}) {
    ASSERT_TRUE(db_->Query(sql).ok());
  }
  EXPECT_EQ(db_->plan_cache_size(), 2u);
  EXPECT_GE(db_->plan_cache_stats().evictions, 1u);
}

TEST_F(PlanCacheDbTest, ResultsIdenticalAcrossProfilesColdAndWarm) {
  std::vector<std::string> queries;
  for (UajQuery q : AllUajQueries()) queries.push_back(UajQuerySql(q));
  for (AsjQuery q : AllAsjQueries()) queries.push_back(AsjQuerySql(q));
  queries.push_back(PagingQuerySql(20, 10));
  queries.push_back(
      "select o_orderstatus, sum(o_totalprice) as total from orders "
      "group by o_orderstatus having sum(o_totalprice) > 100.00");

  for (SystemProfile profile :
       {SystemProfile::kHana, SystemProfile::kPostgres, SystemProfile::kSystemX,
        SystemProfile::kSystemY, SystemProfile::kSystemZ}) {
    for (const std::string& sql : queries) {
      db_->SetProfile(profile);
      db_->DisablePlanCache();
      Result<Chunk> off = db_->Query(sql);
      ASSERT_TRUE(off.ok()) << off.status().ToString() << "\n" << sql;
      db_->EnablePlanCache();
      QueryTiming timing;
      Result<Chunk> cold = db_->Query(sql, nullptr, &timing);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString() << "\n" << sql;
      Result<Chunk> warm = db_->Query(sql, nullptr, &timing);
      ASSERT_TRUE(warm.ok());
      // Byte-identical output, cache off vs cold miss vs warm hit.
      EXPECT_EQ(off->ToString(), cold->ToString())
          << ProfileName(profile) << "\n" << sql;
      EXPECT_EQ(off->ToString(), warm->ToString())
          << ProfileName(profile) << "\n" << sql;
    }
  }
}

TEST_F(PlanCacheDbTest, ParallelExecutionWithCache) {
  ExecOptions exec;
  exec.num_threads = 4;
  db_->SetExecOptions(exec);
  std::string cold;
  for (int round = 0; round < 3; ++round) {
    QueryTiming timing;
    Result<Chunk> r = db_->Query(PagingQuerySql(50, 25), nullptr, &timing);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(timing.cache_hit, round > 0);
    if (round == 0) {
      cold = r->ToString();
    } else {
      EXPECT_EQ(cold, r->ToString());
    }
  }
  db_->SetExecOptions(ExecOptions{});
}

TEST_F(PlanCacheDbTest, ExplainAnalyzeReportsCacheOutcome) {
  const std::string sql =
      "select o_orderkey from orders where o_totalprice > 800.0 limit 4";
  Result<std::string> cold = db_->ExplainAnalyze(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_NE(cold->find("plan cache: miss"), std::string::npos) << *cold;
  Result<std::string> warm = db_->ExplainAnalyze(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("plan cache: hit"), std::string::npos) << *warm;
  EXPECT_NE(warm->find("rebind"), std::string::npos) << *warm;
}

}  // namespace
}  // namespace vdm
