// Reproduces the paper's capability matrices (Tables 1-4) at the plan
// level and verifies that every rewrite preserves query results.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/database.h"
#include "plan/plan_printer.h"
#include "workload/tpch.h"

namespace vdm {
namespace {

/// Order-insensitive row rendering for result equivalence checks.
std::vector<std::string> RowMultiset(const Chunk& chunk) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    std::string row;
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row += chunk.columns[c].GetValue(r).ToString();
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class PaperQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchOptions options;
    options.scale = 0.05;  // tiny but populated
    ASSERT_TRUE(CreateTpchSchema(db_, options).ok());
    ASSERT_TRUE(LoadTpchData(db_, options).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  /// Activates `profile` with every rewrite audited (rewrite_auditor.h); a
  /// pass producing an ill-formed or schema-drifting plan fails the query.
  static void SetVerifiedProfile(SystemProfile profile) {
    OptimizerConfig config = ConfigForProfile(profile);
    config.verify_rewrites = true;
    db_->SetOptimizerConfig(config);
  }

  /// True if the optimizer under `profile` fully removes the augmentation
  /// join(s) of the query, leaving `expected_joins` joins.
  static bool JoinsReducedTo(const std::string& sql, SystemProfile profile,
                             size_t expected_joins) {
    SetVerifiedProfile(profile);
    Result<PlanRef> plan = db_->PlanQuery(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\n" << sql;
    if (!plan.ok()) return false;
    return ComputePlanStats(*plan).joins == expected_joins;
  }

  /// Results under the given profile must match the unoptimized results.
  static void ExpectSameResults(const std::string& sql) {
    SetVerifiedProfile(SystemProfile::kNone);
    Result<Chunk> raw = db_->Query(sql);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString() << "\n" << sql;
    SetVerifiedProfile(SystemProfile::kHana);
    Result<Chunk> optimized = db_->Query(sql);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    EXPECT_EQ(RowMultiset(*raw), RowMultiset(*optimized)) << sql;
  }

  static Database* db_;
};

Database* PaperQueriesTest::db_ = nullptr;

// ---------------------------------------------------------------------------
// Table 1: UAJ optimization status.

struct Table1Row {
  UajQuery query;
  bool hana, postgres, system_x, system_y, system_z;
};

constexpr Table1Row kTable1[] = {
    {UajQuery::kUaj1, true, true, false, true, true},
    {UajQuery::kUaj2, true, true, false, false, true},
    {UajQuery::kUaj3, true, true, false, true, true},
    {UajQuery::kUaj1a, true, false, false, false, true},
    {UajQuery::kUaj2a, true, true, false, false, true},
    {UajQuery::kUaj3a, true, false, false, false, true},
    {UajQuery::kUaj1b, true, false, false, false, false},
};

TEST_F(PaperQueriesTest, Table1UajMatrix) {
  for (const Table1Row& row : kTable1) {
    std::string sql = UajQuerySql(row.query);
    std::string name = UajQueryName(row.query);
    EXPECT_EQ(JoinsReducedTo(sql, SystemProfile::kHana, 0), row.hana)
        << name << " HANA";
    EXPECT_EQ(JoinsReducedTo(sql, SystemProfile::kPostgres, 0), row.postgres)
        << name << " Postgres";
    EXPECT_EQ(JoinsReducedTo(sql, SystemProfile::kSystemX, 0), row.system_x)
        << name << " System X";
    EXPECT_EQ(JoinsReducedTo(sql, SystemProfile::kSystemY, 0), row.system_y)
        << name << " System Y";
    EXPECT_EQ(JoinsReducedTo(sql, SystemProfile::kSystemZ, 0), row.system_z)
        << name << " System Z";
  }
}

TEST_F(PaperQueriesTest, Table1ResultsPreserved) {
  for (UajQuery query : AllUajQueries()) {
    ExpectSameResults(UajQuerySql(query));
  }
}

// The eliminated plans must reduce to a bare scan + projection (the paper:
// "all seven queries can be optimized into a single projection").
TEST_F(PaperQueriesTest, Table1HanaPlansAreBareScans) {
  SetVerifiedProfile(SystemProfile::kHana);
  for (UajQuery query : AllUajQueries()) {
    Result<PlanRef> plan = db_->PlanQuery(UajQuerySql(query));
    ASSERT_TRUE(plan.ok());
    PlanStats stats = ComputePlanStats(*plan);
    EXPECT_EQ(stats.table_instances, 1u) << UajQueryName(query) << "\n"
                                         << PrintPlan(*plan);
    EXPECT_EQ(stats.joins, 0u);
    EXPECT_EQ(stats.union_alls, 0u);
    EXPECT_EQ(stats.aggregates, 0u);
  }
}

// ---------------------------------------------------------------------------
// Table 2: limit pushdown across the augmentation join (Fig. 6).

/// True if some LIMIT sits strictly below a join in the plan.
bool LimitBelowJoin(const PlanRef& plan, bool below_join = false) {
  if (plan->kind() == OpKind::kLimit && below_join) return true;
  bool next = below_join || plan->kind() == OpKind::kJoin;
  for (const PlanRef& child : plan->children()) {
    if (LimitBelowJoin(child, next)) return true;
  }
  return false;
}

TEST_F(PaperQueriesTest, Table2LimitPushdown) {
  std::string sql = PagingQuerySql(100, 1);
  struct Expectation {
    SystemProfile profile;
    bool pushed;
  } expectations[] = {
      {SystemProfile::kHana, true},     {SystemProfile::kPostgres, false},
      {SystemProfile::kSystemX, false}, {SystemProfile::kSystemY, false},
      {SystemProfile::kSystemZ, false},
  };
  for (const Expectation& e : expectations) {
    SetVerifiedProfile(e.profile);
    Result<PlanRef> plan = db_->PlanQuery(sql);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(LimitBelowJoin(*plan), e.pushed)
        << ProfileName(e.profile) << "\n"
        << PrintPlan(*plan);
  }
}

TEST_F(PaperQueriesTest, Table2ResultsPreserved) {
  // LIMIT over an unordered join is nondeterministic in general, but our
  // executor is deterministic and the augmentation join preserves anchor
  // order, so pushed and unpushed plans agree row-for-row.
  ExpectSameResults(PagingQuerySql(100, 1));
  ExpectSameResults(PagingQuerySql(10, 0));
  ExpectSameResults(PagingQuerySql(5, 700));
}

// ---------------------------------------------------------------------------
// Table 3: ASJ optimization status (Fig. 10).

struct Table3Row {
  AsjQuery query;
  size_t joins_when_removed;  // residual joins after ASJ elimination
  size_t joins_when_kept;
};

constexpr Table3Row kTable3[] = {
    {AsjQuery::kFig10a, 0, 1},
    {AsjQuery::kFig10b, 1, 2},  // the anchor's inner join remains
    {AsjQuery::kFig10c, 0, 1},
};

TEST_F(PaperQueriesTest, Table3AsjMatrix) {
  for (const Table3Row& row : kTable3) {
    std::string sql = AsjQuerySql(row.query);
    std::string name = AsjQueryName(row.query);
    EXPECT_TRUE(JoinsReducedTo(sql, SystemProfile::kHana,
                               row.joins_when_removed))
        << name << " HANA";
    for (SystemProfile profile :
         {SystemProfile::kPostgres, SystemProfile::kSystemX,
          SystemProfile::kSystemY, SystemProfile::kSystemZ}) {
      EXPECT_TRUE(JoinsReducedTo(sql, profile, row.joins_when_kept))
          << name << " " << ProfileName(profile);
    }
  }
}

TEST_F(PaperQueriesTest, Table3ResultsPreserved) {
  for (AsjQuery query : AllAsjQueries()) {
    ExpectSameResults(AsjQuerySql(query));
  }
}

// ---------------------------------------------------------------------------
// Table 4: UAJ with UNION ALL (Fig. 12).

TEST_F(PaperQueriesTest, Table4UnionUajMatrix) {
  for (UnionUajQuery query : AllUnionUajQueries()) {
    std::string sql = UnionUajQuerySql(query);
    std::string name = UnionUajQueryName(query);
    EXPECT_TRUE(JoinsReducedTo(sql, SystemProfile::kHana, 0)) << name;
    for (SystemProfile profile :
         {SystemProfile::kPostgres, SystemProfile::kSystemX,
          SystemProfile::kSystemY, SystemProfile::kSystemZ}) {
      EXPECT_TRUE(JoinsReducedTo(sql, profile, 1))
          << name << " " << ProfileName(profile);
    }
  }
}

TEST_F(PaperQueriesTest, Table4ResultsPreserved) {
  for (UnionUajQuery query : AllUnionUajQueries()) {
    ExpectSameResults(UnionUajQuerySql(query));
  }
}

// ---------------------------------------------------------------------------
// §7.3: declared cardinality without constraints + the verification tool.

TEST_F(PaperQueriesTest, DeclaredCardinalityEnablesUaj) {
  // customer joined on a column with no uniqueness constraint; the
  // declared `many to one` makes the join removable for HANA only.
  std::string sql =
      "select o.o_orderkey from orders o "
      "left outer many to one join "
      "(select c_name, c_acctbal from customer) t "
      "on o.o_totalprice = t.c_acctbal";
  EXPECT_TRUE(JoinsReducedTo(sql, SystemProfile::kHana, 0));
  EXPECT_TRUE(JoinsReducedTo(sql, SystemProfile::kPostgres, 1));
}

TEST_F(PaperQueriesTest, CardinalityVerifierTool) {
  Result<bool> unique = db_->VerifyDeclaredUnique("customer", {"c_custkey"});
  ASSERT_TRUE(unique.ok());
  EXPECT_TRUE(*unique);
  Result<bool> not_unique =
      db_->VerifyDeclaredUnique("customer", {"c_nationkey"});
  ASSERT_TRUE(not_unique.ok());
  EXPECT_FALSE(*not_unique);
}

// ---------------------------------------------------------------------------
// AJ 1a (FK-based inner join elimination) and AJ 2b (empty augmenter).

TEST_F(PaperQueriesTest, ForeignKeyInnerJoinEliminated) {
  Database db;
  TpchOptions options;
  options.scale = 0.02;
  options.with_foreign_keys = true;
  ASSERT_TRUE(CreateTpchSchema(&db, options).ok());
  ASSERT_TRUE(LoadTpchData(&db, options).ok());
  db.SetProfile(SystemProfile::kHana);
  Result<PlanRef> plan = db.PlanQuery(
      "select o.o_orderkey from orders o "
      "join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 0u) << PrintPlan(*plan);
  // Without the FK declaration the inner join must stay (it may filter).
  SetVerifiedProfile(SystemProfile::kHana);
  Result<PlanRef> kept = db_->PlanQuery(
      "select o.o_orderkey from orders o "
      "join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(ComputePlanStats(*kept).joins, 1u);
}

TEST_F(PaperQueriesTest, EmptyAugmenterEliminated) {
  std::string sql =
      "select o.o_orderkey from orders o left join "
      "(select c_custkey, c_name from customer where 1 = 0) t "
      "on o.o_custkey = t.c_custkey";
  EXPECT_TRUE(JoinsReducedTo(sql, SystemProfile::kHana, 0));
  ExpectSameResults(sql);
}

}  // namespace
}  // namespace vdm
