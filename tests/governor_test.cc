// Query lifecycle governor tests: cooperative cancellation from another
// thread, wall-clock deadlines, memory budgets with the serial degradation
// retry, the admission gate, and the fault-injection harness. The common
// invariant: every limit violation surfaces as a typed Status (kCancelled /
// kDeadlineExceeded / kResourceExhausted) and the Database is immediately
// reusable afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/query_context.h"
#include "engine/database.h"
#include "workload/tpch.h"

namespace vdm {
namespace {

// Join + aggregate heavy enough that a small memory budget trips during the
// orders-side hash build; fully deterministic output (3 status groups).
const char kJoinAgg[] =
    "select o.o_orderstatus as g, count(*) as n, sum(l.l_extendedprice) as s "
    "from lineitem l join orders o on l.l_orderkey = o.o_orderkey "
    "group by o.o_orderstatus order by g";

// Self-join with supplier fan-out: tens of millions of output rows — far
// longer than the cancel delay, so the only way the test passes quickly is
// through cooperative cancellation.
const char kSelfJoin[] =
    "select l1.l_orderkey as a, l2.l_orderkey as b "
    "from lineitem l1 join lineitem l2 on l1.l_suppkey = l2.l_suppkey";

// Long UNION ALL scan (the deadline target from the issue): the trailing
// sort forces full materialization, so there is no early exit.
const char kUnionScan[] =
    "select l_orderkey as k from lineitem "
    "union all select l_orderkey from lineitem "
    "union all select l_orderkey from lineitem "
    "union all select l_orderkey from lineitem "
    "order by k";

std::vector<std::string> Rows(const Chunk& chunk) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    std::string row;
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row += chunk.columns[c].GetValue(r).ToString();
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

class GovernorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchOptions options;
    // ~30k orders / ~120k lineitems: big enough that the governed queries
    // above run for many morsels (the cancel/deadline tests need runway).
    options.scale = 2.0;
    ASSERT_TRUE(CreateTpchSchema(db_, options).ok());
    ASSERT_TRUE(LoadTpchData(db_, options).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  // The post-failure reusability check every governed test ends with.
  static void ExpectReusable() {
    Result<Chunk> result = db_->Query("select count(*) as n from orders");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->NumRows(), 1u);
  }

  static Database* db_;
};

Database* GovernorTest::db_ = nullptr;

TEST(MemoryTrackerTest, HierarchicalChargeAndRollback) {
  MemoryTracker parent(1000);
  MemoryTracker child(MemoryTracker::kUnlimited, &parent);
  ASSERT_TRUE(child.TryCharge(600).ok());
  EXPECT_EQ(parent.current(), 600);
  // Second charge exceeds the PARENT limit; the local charge rolls back.
  Status status = child.TryCharge(600);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(child.current(), 600);
  EXPECT_EQ(parent.current(), 600);
  child.Release(600);
  EXPECT_EQ(child.current(), 0);
  EXPECT_EQ(parent.current(), 0);
  EXPECT_EQ(child.peak(), 600);
}

TEST(MemoryTrackerTest, UnenforcedTrackerAccountsButDoesNotFail) {
  MemoryTracker tracker(10);
  tracker.set_enforced(false);
  ASSERT_TRUE(tracker.TryCharge(100).ok());
  EXPECT_EQ(tracker.current(), 100);
  tracker.Release(100);
}

TEST(QueryContextTest, DeadlineAndCancelSurfaceAsTypedStatus) {
  QueryContext deadline_ctx;
  deadline_ctx.SetTimeout(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_EQ(deadline_ctx.CheckAlive().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(deadline_ctx.cancel_checks(), 1u);

  QueryContext cancel_ctx;
  cancel_ctx.RequestCancel();
  EXPECT_EQ(cancel_ctx.CheckAlive().code(), StatusCode::kCancelled);
}

TEST_F(GovernorTest, PreCancelledContextFailsImmediately) {
  QueryContext ctx;
  ctx.RequestCancel();
  ExecMetrics metrics;
  Result<Chunk> result = db_->Query(kJoinAgg, ExecLimits{}, &metrics,
                                    /*timing=*/nullptr, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GE(metrics.cancel_checks, 1u);
  ExpectReusable();
}

TEST_F(GovernorTest, CancelMidJoinFromAnotherThread) {
  QueryContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ctx.RequestCancel();
  });
  auto start = std::chrono::steady_clock::now();
  Result<Chunk> result = db_->Query(kSelfJoin, ExecLimits{},
                                    /*metrics=*/nullptr,
                                    /*timing=*/nullptr, &ctx);
  auto elapsed = std::chrono::steady_clock::now() - start;
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // "Within one morsel", with a very generous bound for sanitizer builds.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 20.0);
  ExpectReusable();
}

TEST_F(GovernorTest, DeadlineExceededOnLongUnionAllScan) {
  ExecLimits limits;
  limits.timeout_ms = 1;
  Result<Chunk> result = db_->Query(kUnionScan, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  ExpectReusable();
}

TEST_F(GovernorTest, MemoryBudgetDegradesToSerialWithIdenticalResults) {
  Result<Chunk> baseline = db_->Query(kJoinAgg);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  ExecLimits limits;
  limits.memory_budget = 64 << 10;  // far below the orders hash build
  ExecMetrics metrics;
  Result<Chunk> governed = db_->Query(kJoinAgg, limits, &metrics);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  EXPECT_EQ(metrics.degraded_serial_retries, 1u);
  EXPECT_GT(metrics.peak_memory_bytes, 0u);
  EXPECT_EQ(Rows(*baseline), Rows(*governed));
}

TEST_F(GovernorTest, ExplainAnalyzeReportsGovernorAndDegradation) {
  ExecLimits saved = db_->default_limits();
  ExecLimits limits = saved;
  limits.memory_budget = 64 << 10;
  db_->set_default_limits(limits);
  Result<std::string> analyzed = db_->ExplainAnalyze(kJoinAgg);
  db_->set_default_limits(saved);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("governor:"), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("degraded: 1 serial retry"), std::string::npos)
      << *analyzed;
}

TEST_F(GovernorTest, PeakMemoryTrackedOnOrdinaryJoin) {
  ExecMetrics metrics;
  Result<Chunk> result = db_->Query(kJoinAgg, ExecLimits{}, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(metrics.peak_memory_bytes, 0u);
  EXPECT_GT(metrics.cancel_checks, 0u);
  EXPECT_EQ(metrics.degraded_serial_retries, 0u);
}

// Fault points behave per build flavor: inert in a normal build, a
// deterministic nth-hit OOM exercising the degradation ladder in a
// VDMQO_FAULT_INJECTION=ON build (tools/ci.sh fault).
TEST_F(GovernorTest, FaultPointsInertOrExerciseDegradationLadder) {
  FaultInjection::Clear();
  FaultSpec spec;
  spec.nth = 1;
  FaultInjection::Set("exec.hash_build.oom", spec);
  ExecMetrics metrics;
  Result<Chunk> result = db_->Query(kJoinAgg, ExecLimits{}, &metrics);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (FaultInjection::CompiledIn()) {
    // The first build attempt took the injected OOM; the engine retried
    // serially and still produced the answer.
    EXPECT_GE(FaultInjection::Hits("exec.hash_build.oom"), 1u);
    EXPECT_EQ(metrics.degraded_serial_retries, 1u);
  } else {
    // Compiled out: the armed point is never even evaluated.
    EXPECT_EQ(FaultInjection::Hits("exec.hash_build.oom"), 0u);
    EXPECT_EQ(metrics.degraded_serial_retries, 0u);
  }
  FaultInjection::Clear();
  ExpectReusable();
}

// Admission gate: with VDM_MAX_CONCURRENT=1 a second query queues, and a
// tiny max_queued_ms turns the queue wait into a typed failure instead of
// an unbounded block. Runs on its own Database because the gate size is
// read from the environment at construction.
TEST(AdmissionGateTest, QueueTimeoutIsTypedAndGateRecovers) {
  setenv("VDM_MAX_CONCURRENT", "1", /*overwrite=*/1);
  Database db;
  unsetenv("VDM_MAX_CONCURRENT");

  ASSERT_TRUE(db.Execute("create table t (k int, v int)").ok());
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::Int64(i % 50), Value::Int64(i)});
  }
  ASSERT_TRUE(db.Insert("t", rows).ok());

  // Occupy the single admission slot with a long self-join (k fan-out of
  // 400 => 8M join results), cancellable from here.
  QueryContext long_ctx;
  Result<Chunk> long_result = Status::Internal("not run");
  std::thread holder([&] {
    long_result = db.Query(
        "select a.v as x, b.v as y from t a join t b on a.k = b.k",
        ExecLimits{}, /*metrics=*/nullptr, /*timing=*/nullptr, &long_ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ExecLimits limits;
  limits.max_queued_ms = 1;
  Result<Chunk> queued = db.Query("select count(*) as n from t", limits);
  long_ctx.RequestCancel();
  holder.join();

  ASSERT_FALSE(queued.ok());
  EXPECT_EQ(queued.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(queued.status().message().find("admission"), std::string::npos)
      << queued.status().ToString();
  ASSERT_FALSE(long_result.ok());
  EXPECT_EQ(long_result.status().code(), StatusCode::kCancelled);

  // Slot released: the same query now runs (and may queue briefly, but is
  // admitted well inside the default max_queued_ms).
  ExecMetrics metrics;
  Result<Chunk> after = db.Query("select count(*) as n from t",
                                 ExecLimits{}, &metrics);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->NumRows(), 1u);
  EXPECT_EQ(after->columns[0].GetValue(0).ToString(), "20000");
}

}  // namespace
}  // namespace vdm
