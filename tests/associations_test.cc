// Tests for CDS-style associations and path expressions (paper §2.3):
// "associations can be used in a CDS path notation to add fields from the
// associated view — an easy and convenient way to join a view and project
// columns from it."
#include <gtest/gtest.h>

#include "engine/database.h"
#include "plan/plan_printer.h"

namespace vdm {
namespace {

class AssociationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table customers ("
                            "id int primary key, name varchar, "
                            "country_id int)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table countries ("
                            "id int primary key, cname varchar)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table orders_t ("
                            "id int primary key, customer_id int, "
                            "total decimal(10,2))")
                    .ok());
    ASSERT_TRUE(db_.Execute("insert into countries values (10, 'DE'), "
                            "(20, 'FR')")
                    .ok());
    ASSERT_TRUE(db_.Execute("insert into customers values "
                            "(1, 'alice', 10), (2, 'bob', 20)")
                    .ok());
    ASSERT_TRUE(db_.Execute("insert into orders_t values "
                            "(100, 1, 50.00), (101, 2, 75.00), "
                            "(102, 1, 20.00), (103, null, 5.00)")
                    .ok());
    // Basic views with associations (the VDM basic layer shape).
    ASSERT_TRUE(db_.Execute("create view i_cust as "
                            "select id, name, country_id from customers "
                            "with associations ("
                            "  country to countries "
                            "  on country.id = country_id)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create view i_orders as "
                            "select id, customer_id, total from orders_t "
                            "with associations ("
                            "  customer to i_cust "
                            "  on customer.id = customer_id)")
                    .ok());
  }
  Database db_;
};

TEST_F(AssociationsTest, PathExpressionInjectsJoin) {
  Result<Chunk> rows = db_.Query(
      "select o.id, o.customer.name from i_orders o order by o.id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->NumRows(), 4u);
  EXPECT_EQ(rows->columns[1].strings()[0], "alice");
  EXPECT_EQ(rows->columns[1].strings()[1], "bob");
  // Order 103 has no customer: LEFT OUTER semantics give NULL.
  EXPECT_TRUE(rows->columns[1].IsNull(3));
}

TEST_F(AssociationsTest, ChainedPath) {
  Result<Chunk> rows = db_.Query(
      "select o.id, o.customer.country.cname from i_orders o "
      "where o.customer.country.cname is not null order by o.id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->NumRows(), 3u);
  EXPECT_EQ(rows->columns[1].strings()[0], "DE");
  EXPECT_EQ(rows->columns[1].strings()[1], "FR");
}

TEST_F(AssociationsTest, PathInAggregation) {
  Result<Chunk> rows = db_.Query(
      "select o.customer.name as cname, sum(o.total) as t "
      "from i_orders o where o.customer_id is not null "
      "group by o.customer.name order by cname");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->NumRows(), 2u);
  EXPECT_EQ(rows->columns[0].strings()[0], "alice");
  EXPECT_EQ(rows->columns[1].GetValue(0), Value::Decimal(7000, 2));
}

TEST_F(AssociationsTest, SamePathInjectedOnce) {
  Result<PlanRef> plan = db_.BindQuery(
      "select o.customer.name, o.customer.country_id from i_orders o");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // One i_cust join despite two path references.
  PlanStats stats = ComputePlanStats(*plan);
  EXPECT_EQ(stats.joins, 1u) << PrintPlan(*plan);
}

TEST_F(AssociationsTest, UnusedAssociationCostsNothing) {
  // A query that doesn't use the path gets no join at all.
  Result<PlanRef> plan = db_.PlanQuery("select id, total from i_orders");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 0u);
}

TEST_F(AssociationsTest, PathJoinIsAugmentationJoin) {
  // The injected join is declared many-to-one: when only its key is used
  // in a filter that also exists on the source, the optimizer can treat
  // it as augmenting. At minimum, the path join must be removable when
  // the projection drops its columns (UAJ).
  db_.SetProfile(SystemProfile::kHana);
  Result<PlanRef> plan = db_.PlanQuery(
      "select x.id from (select o.id, o.customer.name as cn "
      "from i_orders o) x");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(ComputePlanStats(*plan).joins, 0u) << PrintPlan(*plan);
}

TEST_F(AssociationsTest, UnknownAssociationErrors) {
  Result<Chunk> rows = db_.Query("select o.supplier.name from i_orders o");
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("association"), std::string::npos);
}

TEST_F(AssociationsTest, AssociationConditionErrorsAreContextual) {
  ASSERT_TRUE(db_.Execute("create view bad_assoc as "
                          "select id from orders_t "
                          "with associations ("
                          "  c to i_cust on c.id = missing_col)")
                  .ok());
  Result<Chunk> rows = db_.Query("select b.c.name from bad_assoc b");
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("association"), std::string::npos);
}

}  // namespace
}  // namespace vdm
