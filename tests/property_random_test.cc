// Property-based testing: randomly generated queries over the TPC-H
// schema must produce identical results under every optimizer profile —
// from the raw, fully expanded plan to the full HANA-like rewrite set.
// This is the end-to-end soundness check for every rewrite in the system.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "workload/tpch.h"

namespace vdm {
namespace {

struct ColumnInfo {
  const char* name;
  bool numeric;
};

struct JoinableTable {
  const char* table;
  const char* alias;
  const char* join_condition;  // references base alias(es)
  std::vector<ColumnInfo> columns;
};

// The fixed FROM base: lineitem l join orders o (always valid), plus a
// pool of optional joinable dimensions.
const std::vector<ColumnInfo> kBaseColumns = {
    {"l.l_orderkey", true},      {"l.l_linenumber", true},
    {"l.l_quantity", true},      {"l.l_extendedprice", true},
    {"o.o_custkey", true},       {"o.o_totalprice", true},
    {"o.o_orderstatus", false},
};

const JoinableTable kDims[] = {
    {"customer", "c", "o.o_custkey = c.c_custkey",
     {{"c.c_name", false}, {"c.c_nationkey", true}, {"c.c_acctbal", true}}},
    {"part", "p", "l.l_partkey = p.p_partkey",
     {{"p.p_name", false}, {"p.p_brand", false}, {"p.p_retailprice", true}}},
    {"supplier", "s", "l.l_suppkey = s.s_suppkey",
     {{"s.s_name", false}, {"s.s_nationkey", true}, {"s.s_acctbal", true}}},
    {"orders_active", "oa", "l.l_orderkey = oa.o_orderkey",
     {{"oa.o_totalprice", true}, {"oa.o_custkey", true}}},
};

class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    // FROM clause: base join plus a random subset of dimensions.
    std::string from =
        "from lineitem l join orders o on l.l_orderkey = o.o_orderkey";
    std::vector<ColumnInfo> available = kBaseColumns;
    for (const JoinableTable& dim : kDims) {
      if (!rng_.Bernoulli(0.45)) continue;
      bool left = rng_.Bernoulli(0.7);
      from += StrFormat(" %s %s %s on %s", left ? "left join" : "join",
                        dim.table, dim.alias, dim.join_condition);
      for (const ColumnInfo& col : dim.columns) available.push_back(col);
    }

    // WHERE clause.
    std::string where;
    int n_predicates = static_cast<int>(rng_.Uniform(0, 2));
    for (int i = 0; i < n_predicates; ++i) {
      const ColumnInfo& col =
          available[static_cast<size_t>(rng_.Uniform(
              0, static_cast<int64_t>(available.size()) - 1))];
      std::string predicate;
      if (col.numeric) {
        static const char* kOps[] = {"<", ">", "<=", ">=", "<>"};
        predicate = StrFormat("%s %s %lld", col.name,
                              kOps[rng_.Uniform(0, 4)],
                              static_cast<long long>(rng_.Uniform(0, 5000)));
      } else if (rng_.Bernoulli(0.5)) {
        predicate = StrFormat("%s is not null", col.name);
      } else {
        predicate = StrFormat("%s > 'B'", col.name);
      }
      where += (where.empty() ? " where " : " and ") + predicate;
    }

    // SELECT list: either plain columns or an aggregation.
    bool aggregate = rng_.Bernoulli(0.4);
    std::string select = "select ";
    std::vector<std::string> order_cols;
    if (aggregate) {
      const ColumnInfo& group =
          available[static_cast<size_t>(rng_.Uniform(
              0, static_cast<int64_t>(available.size()) - 1))];
      // Pick a numeric column for the sum.
      const ColumnInfo* numeric = nullptr;
      for (const ColumnInfo& col : available) {
        if (col.numeric && rng_.Bernoulli(0.5)) {
          numeric = &col;
          break;
        }
      }
      if (numeric == nullptr) numeric = &available[0];
      select += StrFormat("%s as g, count(*) as n, sum(%s) as s",
                          group.name, numeric->name);
      order_cols = {"g", "n", "s"};
      return select + " " + from + where +
             StrFormat(" group by %s order by g, n, s", group.name);
    }
    int n_cols = static_cast<int>(rng_.Uniform(1, 4));
    std::vector<size_t> picked;
    for (int i = 0; i < n_cols; ++i) {
      size_t idx = static_cast<size_t>(rng_.Uniform(
          0, static_cast<int64_t>(available.size()) - 1));
      if (std::find(picked.begin(), picked.end(), idx) == picked.end()) {
        picked.push_back(idx);
      }
    }
    for (size_t i = 0; i < picked.size(); ++i) {
      if (i > 0) select += ", ";
      select += StrFormat("%s as c%zu", available[picked[i]].name, i);
      order_cols.push_back(StrFormat("c%zu", i));
    }
    std::string sql = select + " " + from + where;
    // Deterministic ordering makes profiles comparable even with LIMIT.
    sql += " order by " + Join(order_cols, ", ");
    if (rng_.Bernoulli(0.4)) {
      sql += StrFormat(" limit %lld offset %lld",
                       static_cast<long long>(rng_.Uniform(1, 50)),
                       static_cast<long long>(rng_.Uniform(0, 10)));
    }
    return sql;
  }

 private:
  Rng rng_;
};

std::vector<std::string> Rows(const Chunk& chunk) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    std::string row;
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row += chunk.columns[c].GetValue(r).ToString();
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchOptions options;
    options.scale = 0.03;
    ASSERT_TRUE(CreateTpchSchema(db_, options).ok());
    ASSERT_TRUE(LoadTpchData(db_, options).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* RandomQueryTest::db_ = nullptr;

TEST_P(RandomQueryTest, AllProfilesAgree) {
  QueryGenerator generator(GetParam());
  for (int q = 0; q < 25; ++q) {
    std::string sql = generator.Generate();
    db_->SetProfile(SystemProfile::kNone);
    Result<Chunk> baseline = db_->Query(sql);
    ASSERT_TRUE(baseline.ok())
        << sql << "\n" << baseline.status().ToString();
    std::vector<std::string> expected = Rows(*baseline);
    for (SystemProfile profile :
         {SystemProfile::kHana, SystemProfile::kPostgres,
          SystemProfile::kSystemX, SystemProfile::kSystemY,
          SystemProfile::kSystemZ}) {
      // Every rewrite any profile performs is audited (plan invariants +
      // root-schema identity + key cross-check, see rewrite_auditor.h).
      OptimizerConfig config = ConfigForProfile(profile);
      config.verify_rewrites = true;
      db_->SetOptimizerConfig(config);
      Result<Chunk> actual = db_->Query(sql);
      ASSERT_TRUE(actual.ok()) << sql << "\n" << actual.status().ToString();
      EXPECT_EQ(expected, Rows(*actual))
          << "profile " << ProfileName(profile) << "\nquery: " << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Fault soak (tools/ci.sh fault): with every executor/engine fault point
// armed at a few percent, random queries must end in exactly two ways —
// success, or a typed Status — never a crash, hang, sanitizer report, or
// a wrong answer on the success path. Runs only when the build compiled
// the fault points in.
TEST(FaultSoakTest, InjectedFaultsNeverCrashAndEngineRecovers) {
  if (!FaultInjection::CompiledIn()) {
    GTEST_SKIP() << "build has fault points compiled out";
  }
  Database db;
  TpchOptions options;
  options.scale = 0.01;
  ASSERT_TRUE(CreateTpchSchema(&db, options).ok());
  ASSERT_TRUE(LoadTpchData(&db, options).ok());

  FaultInjection::Clear();
  FaultInjection::SetSeed(42);
  FaultSpec oom;
  oom.probability = 0.05;
  FaultInjection::Set("exec.hash_build.oom", oom);
  FaultSpec exec_fault;
  exec_fault.probability = 0.02;
  FaultInjection::Set("exec.pipeline.morsel", exec_fault);
  FaultInjection::Set("exec.join.probe", exec_fault);
  FaultInjection::Set("exec.aggregate", exec_fault);
  FaultSpec cache_fault;
  cache_fault.probability = 0.2;
  // Never fails a query: the cached compile path falls back to the plain
  // pipeline when its lookup faults.
  FaultInjection::Set("engine.plan_cache.lookup", cache_fault);

  QueryGenerator generator(/*seed=*/99);
  int failed = 0;
  for (int q = 0; q < 60; ++q) {
    std::string sql = generator.Generate();
    Result<Chunk> result = db.Query(sql);
    if (result.ok()) continue;
    ++failed;
    StatusCode code = result.status().code();
    // An injected OOM may survive the serial retry when the retry faults
    // again; anything else must be the injected execution error.
    EXPECT_TRUE(code == StatusCode::kExecutionError ||
                code == StatusCode::kResourceExhausted)
        << sql << "\n" << result.status().ToString();
  }
  FaultInjection::Clear();
  // The schedule above makes some failures overwhelmingly likely; if none
  // occurred the points are not wired through the engine.
  EXPECT_GT(failed, 0);

  // Disarmed, the engine answers correctly again.
  Result<Chunk> after =
      db.Query("select count(*) as n from lineitem");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->NumRows(), 1u);
}

}  // namespace
}  // namespace vdm
