// Property-based testing: queries drawn from the shared differential
// generator (testing/query_gen.h) must produce exactly the rows the naive
// reference interpreter (ref/interpreter.h) computes — under every
// optimizer profile, from the raw, fully expanded plan to the full
// HANA-like rewrite set, with every rewrite audited. This is the
// end-to-end soundness check for every rewrite in the system; vdmfuzz
// runs the same generator at 10k-query scale across the full config
// matrix (tools/ci.sh fuzz).
#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "engine/database.h"
#include "ref/interpreter.h"
#include "testing/differential.h"
#include "testing/query_gen.h"
#include "workload/tpch.h"

namespace vdm {
namespace {

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchOptions options;
    options.scale = 0.03;
    ASSERT_TRUE(CreateTpchSchema(db_, options).ok());
    ASSERT_TRUE(LoadTpchData(db_, options).ok());
    db_->AnalyzeTables();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* RandomQueryTest::db_ = nullptr;

TEST_P(RandomQueryTest, AllProfilesMatchOracle) {
  QueryGenOptions gen_options;
  gen_options.seed = GetParam();
  gen_options.with_variants = false;  // metamorphic checks live in vdmfuzz
  QueryGenerator generator(TpchCorpus(), gen_options);
  RefInterpreter oracle(&db_->storage());
  for (int q = 0; q < 20; ++q) {
    GeneratedQuery query = generator.Next();
    Result<PlanRef> raw = db_->BindQuery(query.sql);
    ASSERT_TRUE(raw.ok()) << query.sql << "\n" << raw.status().ToString();
    Result<Chunk> reference = oracle.Execute(*raw);
    ASSERT_TRUE(reference.ok())
        << query.sql << "\n" << reference.status().ToString();
    std::vector<std::string> expected =
        NormalizeChunk(*reference, query.ordered);
    for (SystemProfile profile :
         {SystemProfile::kNone, SystemProfile::kHana, SystemProfile::kPostgres,
          SystemProfile::kSystemX, SystemProfile::kSystemY,
          SystemProfile::kSystemZ}) {
      // Every rewrite any profile performs is audited (plan invariants +
      // root-schema identity + key cross-check, see rewrite_auditor.h).
      OptimizerConfig config = ConfigForProfile(profile);
      config.verify_rewrites = true;
      db_->SetOptimizerConfig(config);
      Result<Chunk> actual = db_->Query(query.sql);
      ASSERT_TRUE(actual.ok())
          << query.sql << "\n" << actual.status().ToString();
      EXPECT_EQ(expected, NormalizeChunk(*actual, query.ordered))
          << "profile " << ProfileName(profile) << "\nquery: " << query.sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Fault soak (tools/ci.sh fault): with every executor/engine fault point
// armed at a few percent, random queries must end in exactly two ways —
// success, or a typed Status — never a crash, hang, sanitizer report, or
// a wrong answer on the success path. Runs only when the build compiled
// the fault points in.
TEST(FaultSoakTest, InjectedFaultsNeverCrashAndEngineRecovers) {
  if (!FaultInjection::CompiledIn()) {
    GTEST_SKIP() << "build has fault points compiled out";
  }
  Database db;
  TpchOptions options;
  options.scale = 0.01;
  ASSERT_TRUE(CreateTpchSchema(&db, options).ok());
  ASSERT_TRUE(LoadTpchData(&db, options).ok());

  FaultInjection::Clear();
  FaultInjection::SetSeed(42);
  FaultSpec oom;
  oom.probability = 0.05;
  FaultInjection::Set("exec.hash_build.oom", oom);
  FaultSpec exec_fault;
  exec_fault.probability = 0.02;
  FaultInjection::Set("exec.pipeline.morsel", exec_fault);
  FaultInjection::Set("exec.join.probe", exec_fault);
  FaultInjection::Set("exec.aggregate", exec_fault);
  FaultSpec cache_fault;
  cache_fault.probability = 0.2;
  // Never fails a query: the cached compile path falls back to the plain
  // pipeline when its lookup faults.
  FaultInjection::Set("engine.plan_cache.lookup", cache_fault);

  QueryGenerator generator(TpchCorpus(), /*seed=*/99);
  int failed = 0;
  for (int q = 0; q < 60; ++q) {
    GeneratedQuery query = generator.Next();
    Result<Chunk> result = db.Query(query.sql);
    if (result.ok()) continue;
    ++failed;
    StatusCode code = result.status().code();
    // An injected OOM may survive the serial retry when the retry faults
    // again; anything else must be the injected execution error.
    EXPECT_TRUE(code == StatusCode::kExecutionError ||
                code == StatusCode::kResourceExhausted)
        << query.sql << "\n" << result.status().ToString();
  }
  FaultInjection::Clear();
  // The schedule above makes some failures overwhelmingly likely; if none
  // occurred the points are not wired through the engine.
  EXPECT_GT(failed, 0);

  // Disarmed, the engine answers correctly again.
  Result<Chunk> after = db.Query("select count(*) as n from lineitem");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->NumRows(), 1u);
}

}  // namespace
}  // namespace vdm
