// Unit tests for expression evaluation, type inference, constant folding,
// and the predicate utilities the optimizer builds on.
#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/expr.h"
#include "expr/fold.h"

namespace vdm {
namespace {

Chunk TestChunk() {
  Chunk chunk;
  chunk.names = {"i", "d", "s", "dec", "b"};
  ColumnData i(DataType::Int64());
  i.AppendInt(1);
  i.AppendInt(2);
  i.AppendNull();
  ColumnData d(DataType::Double());
  d.AppendDouble(0.5);
  d.AppendDouble(-1.5);
  d.AppendDouble(2.0);
  ColumnData s(DataType::String());
  s.AppendString("apple");
  s.AppendString("banana");
  s.AppendNull();
  ColumnData dec(DataType::Decimal(2));
  dec.AppendInt(150);   // 1.50
  dec.AppendInt(-250);  // -2.50
  dec.AppendInt(0);
  ColumnData b(DataType::Bool());
  b.AppendInt(1);
  b.AppendInt(0);
  b.AppendNull();
  chunk.columns = {std::move(i), std::move(d), std::move(s), std::move(dec),
                   std::move(b)};
  return chunk;
}

ColumnData Eval(const ExprRef& expr) {
  Chunk chunk = TestChunk();
  Result<ColumnData> result = EvalExpr(expr, chunk);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(EvalTest, IntegerArithmetic) {
  ColumnData result = Eval(Bin(BinaryOpKind::kAdd, Col("i"), LitInt(10)));
  EXPECT_EQ(result.type(), DataType::Int64());
  EXPECT_EQ(result.GetValue(0), Value::Int64(11));
  EXPECT_EQ(result.GetValue(1), Value::Int64(12));
  EXPECT_TRUE(result.IsNull(2));  // null propagates
}

TEST(EvalTest, DivisionIsDouble) {
  ColumnData result = Eval(Bin(BinaryOpKind::kDiv, Col("i"), LitInt(2)));
  EXPECT_EQ(result.type(), DataType::Double());
  EXPECT_DOUBLE_EQ(result.GetValue(0).AsDouble(), 0.5);
}

TEST(EvalTest, DivisionByZeroYieldsNull) {
  ColumnData result = Eval(Bin(BinaryOpKind::kDiv, Col("i"), LitInt(0)));
  EXPECT_TRUE(result.IsNull(0));
  EXPECT_TRUE(result.IsNull(1));
}

TEST(EvalTest, DecimalAddRescales) {
  // dec (scale 2) + 1 (int) -> decimal scale 2.
  ColumnData result = Eval(Bin(BinaryOpKind::kAdd, Col("dec"), LitInt(1)));
  EXPECT_EQ(result.type(), DataType::Decimal(2));
  EXPECT_EQ(result.GetValue(0), Value::Decimal(250, 2));   // 1.50+1=2.50
  EXPECT_EQ(result.GetValue(1), Value::Decimal(-150, 2));  // -2.50+1
}

TEST(EvalTest, DecimalMultiplyAddsScales) {
  ColumnData result =
      Eval(Bin(BinaryOpKind::kMul, Col("dec"), Lit(Value::Decimal(111, 2))));
  EXPECT_EQ(result.type(), DataType::Decimal(4));
  // 1.50 * 1.11 = 1.6650
  EXPECT_EQ(result.GetValue(0), Value::Decimal(16650, 4));
}

TEST(EvalTest, MixedDecimalDoubleIsDouble) {
  ColumnData result = Eval(Bin(BinaryOpKind::kMul, Col("dec"), Col("d")));
  EXPECT_EQ(result.type(), DataType::Double());
  EXPECT_DOUBLE_EQ(result.GetValue(0).AsDouble(), 0.75);
}

TEST(EvalTest, ComparisonNullAware) {
  ColumnData result = Eval(Bin(BinaryOpKind::kGreater, Col("i"), LitInt(1)));
  EXPECT_EQ(result.GetValue(0), Value::Bool(false));
  EXPECT_EQ(result.GetValue(1), Value::Bool(true));
  EXPECT_TRUE(result.IsNull(2));
}

TEST(EvalTest, StringComparison) {
  ColumnData result =
      Eval(Bin(BinaryOpKind::kLess, Col("s"), LitStr("azz")));
  EXPECT_EQ(result.GetValue(0), Value::Bool(true));   // apple < azz
  EXPECT_EQ(result.GetValue(1), Value::Bool(false));  // banana > azz
  EXPECT_TRUE(result.IsNull(2));
}

TEST(EvalTest, StringVsNumberIsTypeError) {
  Chunk chunk = TestChunk();
  Result<ColumnData> result =
      EvalExpr(Bin(BinaryOpKind::kEq, Col("s"), LitInt(1)), chunk);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(EvalTest, ThreeValuedAnd) {
  // b AND true: {true, false, null} -> {true, false, null}
  ColumnData and_true = Eval(And(Col("b"), LitBool(true)));
  EXPECT_EQ(and_true.GetValue(0), Value::Bool(true));
  EXPECT_EQ(and_true.GetValue(1), Value::Bool(false));
  EXPECT_TRUE(and_true.IsNull(2));
  // b AND false is false even for NULL (Kleene).
  ColumnData and_false = Eval(And(Col("b"), LitBool(false)));
  EXPECT_EQ(and_false.GetValue(2), Value::Bool(false));
}

TEST(EvalTest, ThreeValuedOr) {
  ColumnData or_true = Eval(Bin(BinaryOpKind::kOr, Col("b"), LitBool(true)));
  EXPECT_EQ(or_true.GetValue(2), Value::Bool(true));  // NULL OR true = true
  ColumnData or_false =
      Eval(Bin(BinaryOpKind::kOr, Col("b"), LitBool(false)));
  EXPECT_TRUE(or_false.IsNull(2));  // NULL OR false = NULL
}

TEST(EvalTest, NotAndNegate) {
  ColumnData not_b = Eval(Not(Col("b")));
  EXPECT_EQ(not_b.GetValue(0), Value::Bool(false));
  EXPECT_EQ(not_b.GetValue(1), Value::Bool(true));
  EXPECT_TRUE(not_b.IsNull(2));
  ColumnData neg = Eval(std::make_shared<UnaryExpr>(UnaryOpKind::kNegate,
                                                    Col("dec")));
  EXPECT_EQ(neg.GetValue(0), Value::Decimal(-150, 2));
}

TEST(EvalTest, IsNull) {
  ColumnData is_null =
      Eval(std::make_shared<IsNullExpr>(Col("i"), /*negated=*/false));
  EXPECT_EQ(is_null.GetValue(0), Value::Bool(false));
  EXPECT_EQ(is_null.GetValue(2), Value::Bool(true));
  ColumnData not_null =
      Eval(std::make_shared<IsNullExpr>(Col("i"), /*negated=*/true));
  EXPECT_EQ(not_null.GetValue(2), Value::Bool(false));
}

TEST(EvalTest, RoundDecimalExact) {
  ColumnData result = Eval(Func("round", {Col("dec"), LitInt(1)}));
  EXPECT_EQ(result.type(), DataType::Decimal(1));
  EXPECT_EQ(result.GetValue(0), Value::Decimal(15, 1));   // 1.50 -> 1.5
  EXPECT_EQ(result.GetValue(1), Value::Decimal(-25, 1));  // -2.50 -> -2.5
}

TEST(EvalTest, RoundDouble) {
  ColumnData result = Eval(Func("round", {Col("d"), LitInt(0)}));
  EXPECT_EQ(result.type(), DataType::Double());
  EXPECT_DOUBLE_EQ(result.GetValue(0).AsDouble(), 1.0);   // 0.5 -> 1
  EXPECT_DOUBLE_EQ(result.GetValue(1).AsDouble(), -2.0);  // -1.5 -> -2
}

TEST(EvalTest, CoalesceAndCase) {
  ColumnData coalesced = Eval(Func("coalesce", {Col("i"), LitInt(-1)}));
  EXPECT_EQ(coalesced.GetValue(2), Value::Int64(-1));
  ExprRef case_expr = std::make_shared<CaseExpr>(std::vector<ExprRef>{
      Bin(BinaryOpKind::kGreater, Col("d"), Lit(Value::Double(0))),
      LitStr("pos"), LitStr("neg")});
  ColumnData cased = Eval(case_expr);
  EXPECT_EQ(cased.GetValue(0), Value::String("pos"));
  EXPECT_EQ(cased.GetValue(1), Value::String("neg"));
}

TEST(EvalTest, StringFunctions) {
  ColumnData upper = Eval(Func("upper", {Col("s")}));
  EXPECT_EQ(upper.GetValue(0), Value::String("APPLE"));
  EXPECT_TRUE(upper.IsNull(2));
  ColumnData concat = Eval(Func("concat", {Col("s"), LitStr("!")}));
  EXPECT_EQ(concat.GetValue(1), Value::String("banana!"));
}

TEST(EvalTest, UnknownColumnAndFunctionErrors) {
  Chunk chunk = TestChunk();
  EXPECT_EQ(EvalExpr(Col("nope"), chunk).status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(EvalExpr(Func("nope", {Col("i")}), chunk).status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(EvalExpr(Agg(AggKind::kSum, Col("i")), chunk).status().code(),
            StatusCode::kExecutionError);
}

// --- type inference ---------------------------------------------------------

TEST(InferTypeTest, Basics) {
  TypeEnv env{{"i", DataType::Int64()},
              {"dec", DataType::Decimal(2)},
              {"d", DataType::Double()}};
  EXPECT_EQ(*InferType(Bin(BinaryOpKind::kAdd, Col("i"), Col("i")), env),
            DataType::Int64());
  EXPECT_EQ(*InferType(Bin(BinaryOpKind::kMul, Col("dec"), Col("dec")), env),
            DataType::Decimal(4));
  EXPECT_EQ(*InferType(Bin(BinaryOpKind::kDiv, Col("i"), Col("i")), env),
            DataType::Double());
  EXPECT_EQ(*InferType(Bin(BinaryOpKind::kEq, Col("i"), Col("d")), env),
            DataType::Bool());
  EXPECT_EQ(*InferType(Agg(AggKind::kSum, Col("dec")), env),
            DataType::Decimal(2));
  EXPECT_EQ(*InferType(Agg(AggKind::kAvg, Col("i")), env),
            DataType::Double());
  EXPECT_EQ(*InferType(CountStar(), env), DataType::Int64());
  EXPECT_FALSE(InferType(Col("missing"), env).ok());
}

// --- fold / predicate utilities ---------------------------------------------

TEST(FoldTest, SplitConjuncts) {
  ExprRef pred = And(And(Eq(Col("a"), LitInt(1)), Eq(Col("b"), LitInt(2))),
                     Eq(Col("c"), LitInt(3)));
  std::vector<ExprRef> conjuncts = SplitConjuncts(pred);
  ASSERT_EQ(conjuncts.size(), 3u);
}

TEST(FoldTest, ConstantFolding) {
  EXPECT_TRUE(IsAlwaysTrue(Eq(LitInt(1), LitInt(1))));
  EXPECT_TRUE(IsAlwaysFalse(Eq(LitInt(1), LitInt(0))));
  EXPECT_TRUE(IsAlwaysFalse(And(Eq(Col("x"), LitInt(1)), LitBool(false))));
  EXPECT_TRUE(IsAlwaysTrue(
      Bin(BinaryOpKind::kOr, LitBool(true), Eq(Col("x"), LitInt(1)))));
  EXPECT_FALSE(IsAlwaysFalse(Eq(Col("x"), LitInt(1))));
  // AND with TRUE simplifies away.
  ExprRef folded = FoldConstants(And(LitBool(true), Eq(Col("x"), LitInt(1))));
  EXPECT_TRUE(folded->Equals(*Eq(Col("x"), LitInt(1))));
}

TEST(FoldTest, MatchColumnEqConstant) {
  auto match = MatchColumnEqConstant(Eq(Col("x"), LitInt(5)));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->column, "x");
  EXPECT_EQ(match->value, Value::Int64(5));
  // Reversed order.
  match = MatchColumnEqConstant(Eq(LitStr("v"), Col("y")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->column, "y");
  EXPECT_FALSE(MatchColumnEqConstant(Eq(Col("x"), Col("y"))).has_value());
  EXPECT_FALSE(
      MatchColumnEqConstant(Bin(BinaryOpKind::kLess, Col("x"), LitInt(1)))
          .has_value());
}

TEST(FoldTest, MatchColumnEqColumn) {
  auto match = MatchColumnEqColumn(Eq(Col("a"), Col("b")));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->left, "a");
  EXPECT_EQ(match->right, "b");
  EXPECT_FALSE(MatchColumnEqColumn(Eq(Col("a"), LitInt(1))).has_value());
}

TEST(FoldTest, ConjunctsSubsume) {
  std::vector<ExprRef> strong{Eq(Col("a"), LitInt(1)),
                              Eq(Col("b"), LitInt(2))};
  std::vector<ExprRef> weak{Eq(Col("a"), LitInt(1))};
  EXPECT_TRUE(ConjunctsSubsume(strong, weak));
  EXPECT_FALSE(ConjunctsSubsume(weak, strong));
  EXPECT_TRUE(ConjunctsSubsume({}, {}));  // empty subsumes empty
  EXPECT_TRUE(ConjunctsSubsume(weak, {LitBool(true)}));  // trivial conjunct
}

TEST(ExprUtilTest, CollectAndReferences) {
  ExprRef expr = And(Eq(Col("a"), Col("b")), Eq(Col("a"), LitInt(1)));
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  EXPECT_EQ(refs.size(), 2u);  // deduplicated
  EXPECT_TRUE(ReferencesAny(expr, {"a"}));
  EXPECT_FALSE(ReferencesAny(expr, {"c"}));
  EXPECT_TRUE(ReferencesOnly(expr, {"a", "b", "c"}));
  EXPECT_FALSE(ReferencesOnly(expr, {"a"}));
}

TEST(ExprUtilTest, RemapColumns) {
  ExprRef expr = Eq(Col("a"), Col("b"));
  ExprRef remapped = RemapColumns(expr, [](const std::string& name) {
    return name == "a" ? Col("x") : nullptr;
  });
  EXPECT_TRUE(remapped->Equals(*Eq(Col("x"), Col("b"))));
}

TEST(ExprUtilTest, StructuralEquality) {
  EXPECT_TRUE(Eq(Col("a"), LitInt(1))->Equals(*Eq(Col("a"), LitInt(1))));
  EXPECT_FALSE(Eq(Col("a"), LitInt(1))->Equals(*Eq(Col("a"), LitInt(2))));
  EXPECT_FALSE(Eq(Col("a"), LitInt(1))
                   ->Equals(*Bin(BinaryOpKind::kLess, Col("a"), LitInt(1))));
  EXPECT_TRUE(Agg(AggKind::kSum, Col("x"))
                  ->Equals(*Agg(AggKind::kSum, Col("x"))));
  EXPECT_FALSE(Agg(AggKind::kSum, Col("x"))
                   ->Equals(*Agg(AggKind::kMin, Col("x"))));
}

TEST(ExprUtilTest, ContainsAggregate) {
  EXPECT_TRUE(ContainsAggregate(
      Bin(BinaryOpKind::kAdd, Agg(AggKind::kSum, Col("x")), LitInt(1))));
  EXPECT_FALSE(ContainsAggregate(Eq(Col("a"), Col("b"))));
}

}  // namespace
}  // namespace vdm
