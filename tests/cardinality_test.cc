// Unit tests for the statistics subsystem (DESIGN.md §14): ANALYZE-time
// collection, the cardinality estimator's source priority (declared
// cardinalities > inference unique keys > distinct counts), per-node plan
// annotation, estimate-vs-actual q-error on micro-queries, and the
// stats-version / plan-cache invalidation contract.
#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/stats/cardinality.h"
#include "analysis/stats/table_stats.h"
#include "engine/database.h"
#include "expr/fold.h"
#include "plan/plan_builder.h"
#include "plan/plan_printer.h"

namespace vdm {
namespace {

TableSchema Fact() {
  TableSchema schema("fact");
  schema.AddColumn("id", DataType::Int64(), false)
      .AddColumn("dim_key", DataType::Int64(), false)
      .AddColumn("amount", DataType::Int64());
  schema.SetPrimaryKey({"id"});
  return schema;
}

TableSchema Dim() {
  TableSchema schema("dim");
  schema.AddColumn("k", DataType::Int64(), false)
      .AddColumn("name", DataType::String());
  schema.SetPrimaryKey({"k"});
  return schema;
}

TableStats StatsWith(uint64_t rows,
                     std::vector<ColumnStatsEntry> columns = {}) {
  TableStats stats;
  stats.row_count = rows;
  stats.columns = std::move(columns);
  return stats;
}

ColumnStatsEntry Entry(uint64_t distinct, double null_fraction = 0.0) {
  ColumnStatsEntry e;
  e.distinct_count = distinct;
  e.null_fraction = null_fraction;
  return e;
}

// --- EstimateEquiJoinRows (the shared core rule) ---------------------------

TEST(EquiJoinRuleTest, DeclaredToOneIsExactPrior) {
  // §7.3: a declared to-one join emits one row per left row regardless of
  // what the distinct counts would say.
  JoinKeyEstimate key;
  key.left = ColumnEstimate{5.0, 0.0, false, 0, 0};
  key.right = ColumnEstimate{7.0, 0.0, false, 0, 0};
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 50.0, JoinType::kInner, {key}, 0, false,
                           false, DeclaredCardinality::kExactOne,
                           /*trust_declared=*/true),
      1000.0);
  // With trust off, the classic rule applies instead.
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 50.0, JoinType::kInner, {key}, 0, false,
                           false, DeclaredCardinality::kExactOne,
                           /*trust_declared=*/false),
      1000.0 * 50.0 / 7.0);
}

TEST(EquiJoinRuleTest, DistinctCountFormulaAndFallback) {
  JoinKeyEstimate key;
  key.left = ColumnEstimate{100.0, 0.0, false, 0, 0};
  key.right = ColumnEstimate{50.0, 0.0, false, 0, 0};
  // |L|·|R| / max(ndv_l, ndv_r).
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 100.0, JoinType::kInner, {key}, 0, false,
                           false, DeclaredCardinality::kNone, true),
      1000.0 * 100.0 / 100.0);
  // No distinct counts: key/foreign-key fallback yields max(|L|, |R|).
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 100.0, JoinType::kInner,
                           {JoinKeyEstimate{}}, 0, false, false,
                           DeclaredCardinality::kNone, true),
      1000.0);
  // No equi keys at all: cross product.
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(20.0, 30.0, JoinType::kInner, {}, 0, false, false,
                           DeclaredCardinality::kNone, true),
      600.0);
}

TEST(EquiJoinRuleTest, UniqueCapsResidualsAndOuterFloor) {
  JoinKeyEstimate key;
  key.left = ColumnEstimate{2.0, 0.0, false, 0, 0};
  key.right = ColumnEstimate{2.0, 0.0, false, 0, 0};
  // 1000·100/2 = 50000, capped at |L| by the right-unique inference.
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 100.0, JoinType::kInner, {key}, 0, false,
                           /*right_unique=*/true, DeclaredCardinality::kNone,
                           true),
      1000.0);
  // Each residual (non-equi) conjunct multiplies by the default 0.25.
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 100.0, JoinType::kInner,
                           {JoinKeyEstimate{}}, /*residual_conjuncts=*/1,
                           false, false, DeclaredCardinality::kNone, true),
      250.0);
  // LEFT OUTER never drops below the left input.
  EXPECT_DOUBLE_EQ(
      EstimateEquiJoinRows(1000.0, 0.0, JoinType::kLeftOuter, {key}, 0,
                           false, false, DeclaredCardinality::kNone, true),
      1000.0);
}

// --- plan-walking estimator ------------------------------------------------

TEST(CardinalityEstimatorTest, ScanUsesStatsOrDefault) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(Fact()).ok());
  ASSERT_TRUE(catalog.RegisterTable(Dim()).ok());
  catalog.SetTableStats("fact", StatsWith(12345));
  CardinalityEstimator est(&catalog);
  EXPECT_DOUBLE_EQ(
      est.EstimateRows(PlanBuilder::ScanSchema(Fact(), "f").Build()), 12345.0);
  // Never analyzed: the configured default.
  EXPECT_DOUBLE_EQ(
      est.EstimateRows(PlanBuilder::ScanSchema(Dim(), "d").Build()),
      est.options().default_table_rows);
}

TEST(CardinalityEstimatorTest, FilterEqualityUsesDistinctCount) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(Fact()).ok());
  // Schema-parallel entries: id, dim_key, amount.
  catalog.SetTableStats(
      "fact", StatsWith(1000, {Entry(1000), Entry(10), Entry(100)}));
  CardinalityEstimator est(&catalog);
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .Filter(Eq(Col("f.dim_key"), LitInt(3)))
                     .Build();
  // Equality on a column with 10 distinct values: 1000 / 10.
  EXPECT_NEAR(est.EstimateRows(plan), 100.0, 1.0);
}

TEST(CardinalityEstimatorTest, JoinPriorityDeclaredThenUniqueThenDistinct) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(Fact()).ok());
  ASSERT_TRUE(catalog.RegisterTable(Dim()).ok());
  catalog.SetTableStats(
      "fact", StatsWith(1000, {Entry(1000), Entry(10), Entry(100)}));
  catalog.SetTableStats("dim", StatsWith(50, {Entry(50), Entry(50)}));

  // Declared to-one: exactly the left rows.
  PlanRef declared = PlanBuilder::ScanSchema(Fact(), "f")
                         .Join(PlanBuilder::ScanSchema(Dim(), "d"),
                               JoinType::kInner,
                               Eq(Col("f.dim_key"), Col("d.k")),
                               DeclaredCardinality::kExactOne)
                         .Build();
  {
    CardinalityEstimator est(&catalog);
    EXPECT_DOUBLE_EQ(est.EstimateRows(declared), 1000.0);
  }

  // Undeclared join on dim's primary key: the inference lattice caps the
  // output at the fact side even though dim's distinct count (50) alone
  // would give 1000·50/50 = 1000 too; shrink dim stats to prove the cap
  // is what binds.
  catalog.SetTableStats("dim", StatsWith(50, {Entry(2), Entry(2)}));
  PlanRef undeclared = PlanBuilder::ScanSchema(Fact(), "f")
                           .Join(PlanBuilder::ScanSchema(Dim(), "d"),
                                 JoinType::kInner,
                                 Eq(Col("f.dim_key"), Col("d.k")))
                           .Build();
  {
    CardinalityEstimator est(&catalog);
    // Distinct rule alone: 1000·50/max(10,2) = 5000; unique cap: 1000.
    EXPECT_DOUBLE_EQ(est.EstimateRows(undeclared), 1000.0);
  }
  {
    CardinalityOptions opts;
    opts.use_inference = false;
    CardinalityEstimator est(&catalog, opts);
    EXPECT_DOUBLE_EQ(est.EstimateRows(undeclared), 5000.0);
  }
}

TEST(CardinalityEstimatorTest, AnnotateCoversEveryNodeAndPrints) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(Fact()).ok());
  ASSERT_TRUE(catalog.RegisterTable(Dim()).ok());
  catalog.SetTableStats("fact", StatsWith(1000));
  catalog.SetTableStats("dim", StatsWith(50));
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .Join(PlanBuilder::ScanSchema(Dim(), "d"),
                           JoinType::kInner, Eq(Col("f.dim_key"), Col("d.k")))
                     .Filter(Eq(Col("f.amount"), LitInt(7)))
                     .Build();
  CardinalityEstimator est(&catalog);
  PlanEstimates estimates;
  PlanEstimate root = est.Annotate(plan, &estimates);
  EXPECT_GT(root.rows, 0.0);
  EXPECT_GT(root.cost, 0.0);
  // Every node in the tree got an entry.
  std::vector<const LogicalOp*> todo = {plan.get()};
  while (!todo.empty()) {
    const LogicalOp* node = todo.back();
    todo.pop_back();
    EXPECT_NE(estimates.find(node->id()), estimates.end())
        << "missing estimate for " << node->Describe();
    for (const PlanRef& child : node->children()) todo.push_back(child.get());
  }
  // Cost accumulates: the root cost is at least any child's cost.
  for (const auto& [id, e] : estimates) {
    EXPECT_LE(e.cost, root.cost * (1.0 + 1e-9));
  }
  std::string printed = PrintPlan(plan, &estimates);
  EXPECT_NE(printed.find("[est rows="), std::string::npos);
}

// --- collection + end-to-end q-error ---------------------------------------

class StatsDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table f (id int primary key, dk int, "
                            "amt int)")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("create table d (k int primary key, name varchar)").ok());
    std::vector<std::vector<Value>> frows;
    for (int64_t i = 0; i < 200; ++i) {
      frows.push_back(
          {Value::Int64(i), Value::Int64(i % 10), Value::Int64(i % 100)});
    }
    ASSERT_TRUE(db_.Insert("f", frows).ok());
    std::vector<std::vector<Value>> drows;
    for (int64_t k = 0; k < 10; ++k) {
      drows.push_back({Value::Int64(k), Value::String("n" + std::to_string(k))});
    }
    ASSERT_TRUE(db_.Insert("d", drows).ok());
    db_.MergeAllDeltas();
    db_.AnalyzeTables();
  }

  double QError(const std::string& sql) {
    Result<PlanRef> plan = db_.PlanQuery(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    CardinalityEstimator est(&db_.catalog());
    const double predicted = est.EstimateRows(*plan);
    Result<Chunk> result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    const double actual =
        std::max(1.0, static_cast<double>(result->NumRows()));
    const double p = std::max(1.0, predicted);
    return std::max(p / actual, actual / p);
  }

  Database db_;
};

TEST_F(StatsDatabaseTest, AnalyzeCollectsExactCounts) {
  const std::shared_ptr<const TableStats> fs = db_.catalog().FindTableStats("f");
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->row_count, 200u);
  ASSERT_EQ(fs->columns.size(), 3u);
  EXPECT_EQ(fs->columns[0].distinct_count, 200u);  // id
  EXPECT_EQ(fs->columns[1].distinct_count, 10u);   // dk
  EXPECT_EQ(fs->columns[2].distinct_count, 100u);  // amt
  ASSERT_TRUE(fs->columns[2].has_minmax);
  EXPECT_EQ(fs->columns[2].min_i64, 0);
  EXPECT_EQ(fs->columns[2].max_i64, 99);
  const std::shared_ptr<const TableStats> ds = db_.catalog().FindTableStats("d");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->row_count, 10u);
  ASSERT_EQ(ds->columns.size(), 2u);
  // String distinct count comes from the sorted main dictionary.
  EXPECT_EQ(ds->columns[1].distinct_count, 10u);
}

TEST_F(StatsDatabaseTest, MicroQueryQErrorStaysTight) {
  // Equi join on the declared-size key: estimate within 2x of actual.
  EXPECT_LE(QError("select f.id, d.name from f join d on f.dk = d.k"), 2.0);
  // Equality filter on a 10-distinct column.
  EXPECT_LE(QError("select id from f where dk = 3"), 2.0);
  // Range filter with min/max stats.
  EXPECT_LE(QError("select id from f where amt < 50"), 3.0);
}

TEST_F(StatsDatabaseTest, StatsRefreshInvalidatesPlanCache) {
  db_.EnablePlanCache();
  const std::string sql = "select id from f where dk = 3";
  QueryTiming timing;
  ASSERT_TRUE(db_.Query(sql, nullptr, &timing).ok());
  ASSERT_TRUE(db_.Query(sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);
  // A stats refresh bumps the catalog version, so the cached plan (keyed
  // on it) must not be served again.
  db_.AnalyzeTables();
  ASSERT_TRUE(db_.Query(sql, nullptr, &timing).ok());
  EXPECT_FALSE(timing.cache_hit);
  ASSERT_TRUE(db_.Query(sql, nullptr, &timing).ok());
  EXPECT_TRUE(timing.cache_hit);
}

TEST(StatsKnobTest, VdmStatsZeroDegradesToRowCounts) {
  ::setenv("VDM_STATS", "0", 1);
  {
    Database db;
    ASSERT_TRUE(db.Execute("create table t (a int, s varchar)").ok());
    ASSERT_TRUE(db.Insert("t", {{Value::Int64(1), Value::String("x")},
                                {Value::Int64(2), Value::String("y")}})
                    .ok());
    db.MergeAllDeltas();
    db.AnalyzeTables();
    const std::shared_ptr<const TableStats> stats = db.catalog().FindTableStats("t");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->row_count, 2u);
    EXPECT_TRUE(stats->columns.empty());  // degraded: no per-column stats
  }
  ::unsetenv("VDM_STATS");
}

TEST(StatsKnobTest, VdmJoinReorderEnvOverridesProfile) {
  ::setenv("VDM_JOIN_REORDER", "0", 1);
  {
    Database db;
    EXPECT_FALSE(db.optimizer_config().join_reordering);
    // The override re-applies on profile switches...
    db.SetProfile(SystemProfile::kHana);
    EXPECT_FALSE(db.optimizer_config().join_reordering);
    // ...but an explicit config is taken verbatim.
    OptimizerConfig config = ConfigForProfile(SystemProfile::kHana);
    config.join_reordering = true;
    db.SetOptimizerConfig(config);
    EXPECT_TRUE(db.optimizer_config().join_reordering);
  }
  ::unsetenv("VDM_JOIN_REORDER");
}

}  // namespace
}  // namespace vdm
