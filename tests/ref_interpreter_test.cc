// Unit tests for the naive reference interpreter (ref/interpreter.h) —
// the differential-testing oracle. These pin its *semantics contract*
// (DESIGN.md §11) on hand-built data with hand-computed answers, so the
// oracle is validated independently of the engine it is meant to check.
#include "ref/interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/database.h"
#include "testing/differential.h"

namespace vdm {
namespace {

class RefInterpreterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table t ("
                            "k int primary key,"
                            "grp int,"
                            "v decimal(10,2),"
                            "name varchar(10))")
                    .ok());
    // NULL group, NULL value, and NULL join-key rows included on purpose.
    ASSERT_TRUE(db_.Insert("t", {{Value::Int64(1), Value::Int64(10),
                                  Value::Decimal(150, 2),
                                  Value::String("b")},
                                 {Value::Int64(2), Value::Int64(20),
                                  Value::Decimal(250, 2),
                                  Value::String("a")},
                                 {Value::Int64(3), Value::Int64(10),
                                  Value::Null(), Value::String("a")},
                                 {Value::Int64(4), Value::Null(),
                                  Value::Decimal(100, 2), Value::Null()}})
                    .ok());
    ASSERT_TRUE(db_.Execute("create table d ("
                            "dk int primary key,"
                            "dname varchar(10))")
                    .ok());
    ASSERT_TRUE(db_.Insert("d", {{Value::Int64(10), Value::String("ten")},
                                 {Value::Int64(30),
                                  Value::String("thirty")}})
                    .ok());
  }

  /// Oracle rows for `sql`, normalized.
  std::vector<std::string> Ref(const std::string& sql, bool ordered) {
    Result<PlanRef> plan = db_.BindQuery(sql);
    EXPECT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
    RefInterpreter ref(&db_.storage());
    Result<Chunk> out = ref.Execute(*plan);
    EXPECT_TRUE(out.ok()) << sql << "\n" << out.status().ToString();
    return NormalizeChunk(*out, ordered);
  }

  Database db_;
};

TEST_F(RefInterpreterTest, ScanFilterProject) {
  EXPECT_EQ(Ref("select k, name from t where grp = 10 order by k", true),
            (std::vector<std::string>{"# k|name|", "1|b|", "3|a|"}));
}

TEST_F(RefInterpreterTest, NullJoinKeysNeverMatch) {
  // Row k=4 has grp NULL: the inner join drops it, the LEFT OUTER join
  // null-extends it (NULL = NULL is not true in SQL join semantics).
  EXPECT_EQ(Ref("select t.k, d.dname from t join d on t.grp = d.dk "
                "order by t.k",
                true),
            (std::vector<std::string>{"# k|dname|", "1|ten|", "3|ten|"}));
  EXPECT_EQ(Ref("select t.k, d.dname from t left outer join d "
                "on t.grp = d.dk order by t.k",
                true),
            (std::vector<std::string>{"# k|dname|", "1|ten|", "2|NULL|",
                                      "3|ten|", "4|NULL|"}));
}

TEST_F(RefInterpreterTest, AggregateContract) {
  // NULL is its own group; groups appear in first-occurrence order (here
  // normalized by ORDER BY); sum skips NULLs; count(v) counts non-NULL.
  EXPECT_EQ(Ref("select grp as g, count(*) as n, count(v) as nv, "
                "sum(v) as s from t group by grp order by g, n, nv, s",
                true),
            (std::vector<std::string>{"# g|n|nv|s|", "NULL|1|1|1.00|",
                                      "10|2|1|1.50|", "20|1|1|2.50|"}));
}

TEST_F(RefInterpreterTest, GlobalAggregateOverEmptyInput) {
  // A global aggregate yields exactly one row even over zero input rows:
  // count 0, sum/min/max NULL.
  EXPECT_EQ(Ref("select count(*) as n, sum(v) as s, min(name) as m "
                "from t where k > 100",
                true),
            (std::vector<std::string>{"# n|s|m|", "0|NULL|NULL|"}));
}

TEST_F(RefInterpreterTest, CountDistinct) {
  EXPECT_EQ(Ref("select count(distinct name) as n from t", true),
            (std::vector<std::string>{"# n|", "2|"}));
}

TEST_F(RefInterpreterTest, UnionAllKeepsBranchOrderAndDuplicates) {
  EXPECT_EQ(Ref("select k from t where k <= 2 "
                "union all select k from t where k = 1",
                /*ordered=*/true),  // branch concatenation order is fixed
            (std::vector<std::string>{"# k|", "1|", "2|", "1|"}));
}

TEST_F(RefInterpreterTest, SortNullsFirstAndStable) {
  // Value::Compare orders NULL before everything; equal keys keep input
  // order (k=3 before k=2 — both name 'a' — because of table order).
  EXPECT_EQ(Ref("select name, k from t order by name", true),
            (std::vector<std::string>{"# name|k|", "NULL|4|", "a|2|",
                                      "a|3|", "b|1|"}));
}

TEST_F(RefInterpreterTest, LimitOffsetSlice) {
  EXPECT_EQ(Ref("select k from t order by k limit 2 offset 1", true),
            (std::vector<std::string>{"# k|", "2|", "3|"}));
}

TEST_F(RefInterpreterTest, DistinctFirstOccurrence) {
  EXPECT_EQ(Ref("select distinct grp from t order by grp", true),
            (std::vector<std::string>{"# grp|", "NULL|", "10|", "20|"}));
}

TEST_F(RefInterpreterTest, HavingAndScalarOverAggregate) {
  EXPECT_EQ(Ref("select grp as g, count(*) + 1 as n1 from t "
                "where grp is not null group by grp "
                "having count(*) > 1 order by g, n1",
                true),
            (std::vector<std::string>{"# g|n1|", "10|3|"}));
}

TEST_F(RefInterpreterTest, ViewStackInlines) {
  ASSERT_TRUE(db_.Execute("create view v1 as select t.k as k, d.dname as "
                          "dn from t left outer join d on t.grp = d.dk")
                  .ok());
  ASSERT_TRUE(
      db_.Execute("create view v2 as select k, dn from v1 where k <> 2")
          .ok());
  EXPECT_EQ(Ref("select k, dn from v2 order by k, dn", true),
            (std::vector<std::string>{"# k|dn|", "1|ten|", "3|ten|",
                                      "4|NULL|"}));
}

TEST_F(RefInterpreterTest, RejectsNullPlan) {
  RefInterpreter ref(&db_.storage());
  EXPECT_FALSE(ref.Execute(PlanRef()).ok());
}

TEST_F(RefInterpreterTest, NormalizeChunkSortsUnorderedRows) {
  Result<Chunk> out = db_.Query("select k from t");
  ASSERT_TRUE(out.ok());
  std::vector<std::string> rows = NormalizeChunk(*out, /*ordered=*/false);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], "# k|");
  EXPECT_TRUE(std::is_sorted(rows.begin() + 1, rows.end()));
}

}  // namespace
}  // namespace vdm
