// Tests for the differential runner (testing/differential.h): a small
// clean sweep must report zero mismatches, and — the harness's own
// self-test — a deliberately planted wrong-result bug
// (OptimizerConfig::debug_corrupt_pass) must be detected and produce a
// minimized repro dump. tools/vdmfuzz runs the same runner at 10k scale.
#include "testing/differential.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "engine/database.h"
#include "testing/query_gen.h"

namespace vdm {
namespace {

TEST(DifferentialTest, FuzzDatabaseCoversAllThreeCatalogs) {
  Database db;
  Result<QueryCorpus> corpus = SetUpFuzzDatabase(&db);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  // TPC-H anchors + the ACDOCA anchor + one anchor per synthetic view and
  // per extension view (6 views -> 12 anchors).
  EXPECT_GE(corpus->anchors.size(), 16u);
  ASSERT_TRUE(db.Query("select count(*) as n from lineitem").ok());
  ASSERT_TRUE(db.Query("select count(*) as n from acdoca").ok());
}

TEST(DifferentialTest, SmallCleanSweepHasNoMismatches) {
  DiffOptions options;
  options.seed = 7;
  options.num_queries = 8;
  options.workers = 1;
  options.exec_threads = 2;
  options.artifacts_dir = "";  // a clean run must not need dumps
  DifferentialRunner runner(options);
  Result<DiffStats> stats = runner.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->queries, 8);
  // 5 profiles x 4 databases x 2 runs each, plus the reorder-off leg.
  EXPECT_EQ(stats->executions, 8 * 41);
  EXPECT_EQ(stats->mismatches, 0) << "repro: vdmfuzz --seed 7 --queries 8";
  EXPECT_EQ(stats->errors, 0);
  // The warm legs actually hit the plan cache (up to 2 cache databases x
  // 5 profiles per query; some statements are parameterize-ineligible).
  EXPECT_GT(stats->plan_cache_hits, 0);
  EXPECT_LE(stats->plan_cache_hits, 8 * 10);
}

TEST(DifferentialTest, InjectedWrongResultBugIsDetectedWithRepro) {
  std::string dir = ::testing::TempDir() + "/vdm_diff_repro";
  std::filesystem::remove_all(dir);

  DiffOptions options;
  options.seed = 7;
  options.num_queries = 8;
  options.workers = 1;
  options.exec_threads = 2;
  options.artifacts_dir = dir;
  // Plant the bug: after projection pruning first fires, the optimized
  // plan loses its last output column. The clean sweep above proves the
  // same (seed, queries) pass without the plant, so every mismatch
  // reported here is exactly the planted one.
  options.debug_corrupt_pass = "prune_and_eliminate";
  DifferentialRunner runner(options);
  Result<DiffStats> stats = runner.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->mismatches, 0);
  ASSERT_FALSE(stats->repro_files.empty());

  // The dump must carry everything needed to replay: SQL, seed, site,
  // and the bound vs. optimized plan.
  std::ifstream file(stats->repro_files.front());
  ASSERT_TRUE(file.good()) << stats->repro_files.front();
  std::stringstream content;
  content << file.rdbuf();
  const std::string dump = content.str();
  EXPECT_NE(dump.find("seed: 7"), std::string::npos);
  EXPECT_NE(dump.find("sql (failing, minimized):"), std::string::npos);
  EXPECT_NE(dump.find("plan before (bound, unoptimized):"),
            std::string::npos);
  EXPECT_NE(dump.find("plan after (optimized,"), std::string::npos);
  EXPECT_NE(dump.find("expected (oracle,"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(DifferentialTest, GeneratorIsDeterministicPerSeed) {
  Database db;
  Result<QueryCorpus> corpus = SetUpFuzzDatabase(&db);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  QueryGenerator a(*corpus, /*seed=*/42);
  QueryGenerator b(*corpus, /*seed=*/42);
  QueryGenerator c(*corpus, /*seed=*/43);
  bool any_difference = false;
  for (int i = 0; i < 20; ++i) {
    GeneratedQuery qa = a.Next();
    GeneratedQuery qb = b.Next();
    EXPECT_EQ(qa.sql, qb.sql) << "query " << i;
    ASSERT_TRUE(db.BindQuery(qa.sql).ok()) << qa.sql;
    if (qa.sql != c.Next().sql) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace vdm
