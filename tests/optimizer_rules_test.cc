// Unit tests for individual optimizer passes, exercised on hand-built
// plans: filter pushdown, projection/UAJ pruning, project merging, limit
// sinking, distinct elimination, ASJ elimination (including the canonical
// Fig. 13 union-all shapes), and aggregate merging/eager aggregation.
#include <gtest/gtest.h>

#include "expr/fold.h"
#include "optimizer/optimizer.h"
#include "plan/plan_builder.h"
#include "plan/plan_printer.h"

namespace vdm {
namespace {

TableSchema Fact() {
  TableSchema schema("fact");
  schema.AddColumn("id", DataType::Int64(), false)
      .AddColumn("dim_key", DataType::Int64(), false)
      .AddColumn("amount", DataType::Decimal(2))
      .AddColumn("status", DataType::Int64());
  schema.SetPrimaryKey({"id"});
  return schema;
}

TableSchema Dim() {
  TableSchema schema("dim");
  schema.AddColumn("k", DataType::Int64(), false)
      .AddColumn("name", DataType::String())
      .AddColumn("attr", DataType::String());
  schema.SetPrimaryKey({"k"});
  return schema;
}

OptimizerConfig Full() { return ConfigForProfile(SystemProfile::kHana); }

// --- filter pushdown --------------------------------------------------------

TEST(FilterPushdownTest, SplitsAcrossInnerJoin) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kInner,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Filter(And(Eq(Col("f.status"), LitInt(1)),
                      Eq(Col("d.name"), LitStr("x"))))
          .Build();
  bool changed = false;
  PlanRef result = PassFilterPushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  // Both conjuncts moved below the join; no filter remains on top.
  EXPECT_EQ(result->kind(), OpKind::kJoin);
  EXPECT_EQ(result->child(0)->kind(), OpKind::kFilter);
  EXPECT_EQ(result->child(1)->kind(), OpKind::kFilter);
}

TEST(FilterPushdownTest, RightConjunctStaysAboveLeftOuterJoin) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Filter(Eq(Col("d.name"), LitStr("x")))
          .Build();
  bool changed = false;
  PlanRef result = PassFilterPushdown(plan, Full(), &changed);
  // Pushing it into the right child would turn filtered matches into
  // null-extended rows — must not happen.
  EXPECT_EQ(result->kind(), OpKind::kFilter);
  EXPECT_EQ(result->child(0)->kind(), OpKind::kJoin);
  EXPECT_EQ(result->child(0)->child(1)->kind(), OpKind::kScan);
}

TEST(FilterPushdownTest, ThroughProjectSubstitutes) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Project({{Bin(BinaryOpKind::kAdd, Col("f.status"), LitInt(1)),
                     "s1"}})
          .Filter(Eq(Col("s1"), LitInt(2)))
          .Build();
  bool changed = false;
  PlanRef result = PassFilterPushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(result->kind(), OpKind::kProject);
  ASSERT_EQ(result->child(0)->kind(), OpKind::kFilter);
  const auto& filter = static_cast<const FilterOp&>(*result->child(0));
  // The predicate now references the base column.
  EXPECT_TRUE(ReferencesOnly(filter.predicate(), {"f.status"}));
}

TEST(FilterPushdownTest, ThroughUnionAllRenames) {
  PlanBuilder c1 = PlanBuilder::ScanSchema(Fact(), "a").ProjectColumns(
      {"a.id", "a.status"}, {"id", "st"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(Fact(), "b").ProjectColumns(
      {"b.id", "b.status"}, {"id", "st"});
  PlanRef plan = PlanBuilder::UnionAll({c1, c2}, {"id", "st"})
                     .Filter(Eq(Col("st"), LitInt(1)))
                     .Build();
  bool changed = false;
  PlanRef result = PassFilterPushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(result->kind(), OpKind::kUnionAll);
  EXPECT_EQ(result->child(0)->kind(), OpKind::kFilter);
  EXPECT_EQ(result->child(1)->kind(), OpKind::kFilter);
}

// --- constant folding / project merge ---------------------------------------

TEST(ConstantFoldingTest, RemovesAlwaysTrueFilter) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .Filter(Eq(LitInt(1), LitInt(1)))
                     .Build();
  bool changed = false;
  PlanRef result = PassConstantFolding(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(result->kind(), OpKind::kScan);
}

TEST(ConstantFoldingTest, MergesProjectStacks) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .ProjectColumns({"f.id", "f.amount"}, {"a", "b"})
                     .ProjectColumns({"a", "b"}, {"x", "y"})
                     .ProjectColumns({"y"}, {"z"})
                     .Build();
  bool changed = false;
  PlanRef result = PassConstantFolding(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(result->kind(), OpKind::kProject);
  EXPECT_EQ(result->child(0)->kind(), OpKind::kScan);
  EXPECT_EQ(result->OutputNames(), std::vector<std::string>{"z"});
}

TEST(ConstantFoldingTest, DoesNotDuplicateExpensiveExpressions) {
  // The inner computed item is referenced twice above: no merge.
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Project({{Bin(BinaryOpKind::kMul, Col("f.amount"), Col("f.amount")),
                     "sq"}})
          .Project({{Bin(BinaryOpKind::kAdd, Col("sq"), Col("sq")), "dbl"}})
          .Build();
  bool changed = false;
  PlanRef result = PassConstantFolding(plan, Full(), &changed);
  ASSERT_EQ(result->kind(), OpKind::kProject);
  EXPECT_EQ(result->child(0)->kind(), OpKind::kProject);
}

// --- prune & UAJ ------------------------------------------------------------

TEST(PruneTest, ScansNarrowedToRequiredColumns) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .ProjectColumns({"f.id"}, {"id"})
                     .Build();
  bool changed = false;
  PlanRef result = PassPruneAndEliminate(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  const auto& scan = static_cast<const ScanOp&>(*result->child(0));
  EXPECT_EQ(scan.column_indexes().size(), 1u);
}

TEST(PruneTest, RootOutputsPreserved) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f").Build();
  bool changed = false;
  PlanRef result = PassPruneAndEliminate(plan, Full(), &changed);
  // Root arity is not flexible: nothing may be pruned.
  EXPECT_EQ(result->OutputNames().size(), 4u);
}

TEST(PruneTest, UajEliminationRequiresPurelyAugmenting) {
  // LOJ on the dim's PK and unused -> removed.
  PlanRef removable =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .ProjectColumns({"f.id"}, {"id"})
          .Build();
  bool changed = false;
  PlanRef result = PassPruneAndEliminate(removable, Full(), &changed);
  EXPECT_EQ(ComputePlanStats(result).joins, 0u);
  // Same join as INNER (no FK): kept even though unused.
  PlanRef kept =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kInner,
                Eq(Col("f.dim_key"), Col("d.k")))
          .ProjectColumns({"f.id"}, {"id"})
          .Build();
  changed = false;
  result = PassPruneAndEliminate(kept, Full(), &changed);
  EXPECT_EQ(ComputePlanStats(result).joins, 1u);
}

TEST(PruneTest, StackedUajsAllRemoved) {
  PlanBuilder plan = PlanBuilder::ScanSchema(Fact(), "f");
  for (int i = 0; i < 5; ++i) {
    plan = plan.Join(
        PlanBuilder::ScanSchema(Dim(), "d" + std::to_string(i)),
        JoinType::kLeftOuter,
        Eq(Col("f.dim_key"), Col("d" + std::to_string(i) + ".k")));
  }
  PlanRef built = plan.ProjectColumns({"f.id"}, {"id"}).Build();
  bool changed = false;
  PlanRef result = PassPruneAndEliminate(built, Full(), &changed);
  EXPECT_EQ(ComputePlanStats(result).joins, 0u) << PrintPlan(result);
}

TEST(PruneTest, UnusedAggregateItemsDropped) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.status"), "st"}},
                     {{Agg(AggKind::kSum, Col("f.amount")), "total"},
                      {CountStar(), "n"}})
          .ProjectColumns({"st", "n"}, {"st", "n"})
          .Build();
  bool changed = false;
  PlanRef result = PassPruneAndEliminate(plan, Full(), &changed);
  const auto& agg = static_cast<const AggregateOp&>(*result->child(0));
  ASSERT_EQ(agg.aggregates().size(), 1u);
  EXPECT_EQ(agg.aggregates()[0].name, "n");
}

// --- limit pushdown ----------------------------------------------------------

TEST(LimitPushdownTest, SinksThroughProjectAndAugmentingJoins) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .ProjectColumns({"f.id", "d.name"}, {"id", "name"})
          .Limit(10, 5)
          .Build();
  bool changed = false;
  PlanRef result = PassLimitPushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  // Limit lands directly above the fact scan.
  ASSERT_EQ(result->kind(), OpKind::kProject);
  ASSERT_EQ(result->child(0)->kind(), OpKind::kJoin);
  ASSERT_EQ(result->child(0)->child(0)->kind(), OpKind::kLimit);
  const auto& limit =
      static_cast<const LimitOp&>(*result->child(0)->child(0));
  EXPECT_EQ(limit.limit(), 10);
  EXPECT_EQ(limit.offset(), 5);
}

TEST(LimitPushdownTest, DoesNotSinkPastNonAugmentingJoin) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kInner,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Limit(10)
          .Build();
  bool changed = false;
  PlanRef result = PassLimitPushdown(plan, Full(), &changed);
  EXPECT_EQ(result->kind(), OpKind::kLimit);
}

TEST(LimitPushdownTest, DistributesOverUnionAll) {
  PlanBuilder c1 = PlanBuilder::ScanSchema(Fact(), "a").ProjectColumns(
      {"a.id"}, {"id"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(Fact(), "b").ProjectColumns(
      {"b.id"}, {"id"});
  PlanRef plan =
      PlanBuilder::UnionAll({c1, c2}, {"id"}).Limit(10, 3).Build();
  bool changed = false;
  PlanRef result = PassLimitPushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(result->kind(), OpKind::kLimit);  // outer limit remains
  ASSERT_EQ(result->child(0)->kind(), OpKind::kUnionAll);
  // Each branch limited to limit+offset with no offset.
  for (const PlanRef& child : result->child(0)->children()) {
    bool found_limit = false;
    VisitPlan(child, [&](const PlanRef& node) {
      if (node->kind() == OpKind::kLimit) {
        found_limit = true;
        EXPECT_EQ(static_cast<const LimitOp&>(*node).limit(), 13);
        EXPECT_EQ(static_cast<const LimitOp&>(*node).offset(), 0);
      }
    });
    EXPECT_TRUE(found_limit);
  }
  // Idempotent: a second application changes nothing.
  bool changed_again = false;
  PassLimitPushdown(result, Full(), &changed_again);
  EXPECT_FALSE(changed_again);
}

TEST(LimitPushdownTest, GatedByProfile) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Limit(10)
          .Build();
  bool changed = false;
  PlanRef result = PassLimitPushdown(
      plan, ConfigForProfile(SystemProfile::kPostgres), &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(result, plan);
}

// --- distinct elimination ----------------------------------------------------

TEST(DistinctEliminationTest, DropsWhenInputUnique) {
  PlanRef unique = PlanBuilder::ScanSchema(Fact(), "f")
                       .ProjectColumns({"f.id", "f.status"}, {"id", "st"})
                       .Distinct()
                       .Build();
  bool changed = false;
  PlanRef result = PassDistinctElimination(unique, Full(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(ComputePlanStats(result).distincts, 0u);

  PlanRef not_unique = PlanBuilder::ScanSchema(Fact(), "f")
                           .ProjectColumns({"f.status"}, {"st"})
                           .Distinct()
                           .Build();
  changed = false;
  result = PassDistinctElimination(not_unique, Full(), &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(ComputePlanStats(result).distincts, 1u);
}

// --- ASJ on hand-built plans (canonical Fig. 13 shapes) ----------------------

TEST(AsjTest, SelfJoinOnKeyRewired) {
  // V = projection of fact without amount; ASJ re-exposes it.
  PlanBuilder anchor = PlanBuilder::ScanSchema(Fact(), "v").ProjectColumns(
      {"v.id", "v.status"}, {"id", "st"});
  PlanBuilder augmenter = PlanBuilder::ScanSchema(Fact(), "e");
  PlanRef plan = anchor
                     .Join(augmenter, JoinType::kLeftOuter,
                           Eq(Col("id"), Col("e.id")))
                     .Build();
  bool changed = false;
  PlanRef result = PassAsjElimination(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(ComputePlanStats(result).joins, 0u) << PrintPlan(result);
  EXPECT_EQ(ComputePlanStats(result).table_instances, 1u);
  // The output names are unchanged.
  EXPECT_EQ(result->OutputNames(), plan->OutputNames());
}

TEST(AsjTest, SubsumptionRequired) {
  // Anchor restricted to status=1, augmenter restricted to status=2:
  // NOT removable (Fig. 10(c) failing case).
  PlanBuilder anchor = PlanBuilder::ScanSchema(Fact(), "v")
                           .Filter(Eq(Col("v.status"), LitInt(1)))
                           .ProjectColumns({"v.id"}, {"id"});
  PlanBuilder augmenter = PlanBuilder::ScanSchema(Fact(), "e")
                              .Filter(Eq(Col("e.status"), LitInt(2)));
  PlanRef plan = anchor
                     .Join(augmenter, JoinType::kLeftOuter,
                           Eq(Col("id"), Col("e.id")))
                     .Build();
  bool changed = false;
  PassAsjElimination(plan, Full(), &changed);
  EXPECT_FALSE(changed);

  // Matching restriction: removable.
  PlanBuilder anchor2 = PlanBuilder::ScanSchema(Fact(), "v")
                            .Filter(Eq(Col("v.status"), LitInt(1)))
                            .ProjectColumns({"v.id"}, {"id"});
  PlanBuilder augmenter2 = PlanBuilder::ScanSchema(Fact(), "e")
                               .Filter(Eq(Col("e.status"), LitInt(1)));
  PlanRef plan2 = anchor2
                      .Join(augmenter2, JoinType::kLeftOuter,
                            Eq(Col("id"), Col("e.id")))
                      .Build();
  changed = false;
  PlanRef result = PassAsjElimination(plan2, Full(), &changed);
  EXPECT_TRUE(changed) << PrintPlan(plan2);
  EXPECT_EQ(ComputePlanStats(result).joins, 0u);
}

TEST(AsjTest, AggregateInAnchorBlocksExposure) {
  // The augmenter column cannot be wired through an aggregation.
  PlanBuilder anchor =
      PlanBuilder::ScanSchema(Fact(), "v")
          .Aggregate({{Col("v.dim_key"), "dk"}}, {{CountStar(), "n"}});
  PlanBuilder augmenter = PlanBuilder::ScanSchema(Dim(), "e");
  PlanRef plan = anchor
                     .Join(augmenter, JoinType::kLeftOuter,
                           Eq(Col("dk"), Col("e.k")))
                     .Build();
  bool changed = false;
  PassAsjElimination(plan, Full(), &changed);
  // Not a self join at all (different tables) — must stay.
  EXPECT_FALSE(changed);
}

TEST(AsjTest, UnionAnchorFig13a) {
  TableSchema t = Fact();
  PlanBuilder c1 = PlanBuilder::ScanSchema(t, "x")
                       .Filter(Eq(Col("x.status"), LitInt(1)))
                       .ProjectColumns({"x.id"}, {"id"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(t, "y")
                       .Filter(Eq(Col("y.status"), LitInt(2)))
                       .ProjectColumns({"y.id"}, {"id"});
  PlanBuilder anchor = PlanBuilder::UnionAll({c1, c2}, {"id"});
  PlanBuilder augmenter = PlanBuilder::ScanSchema(t, "e");
  PlanRef plan = anchor
                     .Join(augmenter, JoinType::kLeftOuter,
                           Eq(Col("id"), Col("e.id")))
                     .Build();
  bool changed = false;
  PlanRef result = PassAsjElimination(plan, Full(), &changed);
  EXPECT_TRUE(changed) << PrintPlan(plan);
  EXPECT_EQ(ComputePlanStats(result).joins, 0u) << PrintPlan(result);
  // Both branch scans remain; the augmenter scan is gone.
  EXPECT_EQ(ComputePlanStats(result).table_instances, 2u);
}

TEST(AsjTest, UnionAnchorGatedByConfig) {
  TableSchema t = Fact();
  PlanBuilder c1 = PlanBuilder::ScanSchema(t, "x")
                       .Filter(Eq(Col("x.status"), LitInt(1)))
                       .ProjectColumns({"x.id"}, {"id"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(t, "y")
                       .Filter(Eq(Col("y.status"), LitInt(2)))
                       .ProjectColumns({"y.id"}, {"id"});
  PlanRef plan = PlanBuilder::UnionAll({c1, c2}, {"id"})
                     .Join(PlanBuilder::ScanSchema(t, "e"),
                           JoinType::kLeftOuter, Eq(Col("id"), Col("e.id")))
                     .Build();
  OptimizerConfig config = Full();
  config.asj_union_all_anchor = false;
  bool changed = false;
  PassAsjElimination(plan, config, &changed);
  EXPECT_FALSE(changed);
}

TEST(AsjTest, CaseJoinFig13bCanonical) {
  TableSchema active("doc_a");
  active.AddColumn("k", DataType::Int64(), false)
      .AddColumn("payload", DataType::String())
      .AddColumn("ext", DataType::String());
  active.SetPrimaryKey({"k"});
  TableSchema draft("doc_d");
  draft.AddColumn("k", DataType::Int64(), false)
      .AddColumn("payload", DataType::String())
      .AddColumn("ext", DataType::String());
  draft.SetPrimaryKey({"k"});

  auto make_anchor_child = [](const TableSchema& schema, const char* alias,
                              int bid) {
    return PlanBuilder::ScanSchema(schema, alias)
        .Project({{Col(std::string(alias) + ".k"), "k"},
                  {LitInt(bid), "bid"},
                  {Col(std::string(alias) + ".payload"), "payload"}});
  };
  auto make_aug_child = [](const TableSchema& schema, const char* alias,
                           int bid) {
    return PlanBuilder::ScanSchema(schema, alias)
        .Project({{Col(std::string(alias) + ".k"), "k"},
                  {LitInt(bid), "bid"},
                  {Col(std::string(alias) + ".ext"), "ext"}});
  };
  PlanBuilder anchor = PlanBuilder::UnionAll(
      {make_anchor_child(active, "a", 1), make_anchor_child(draft, "d", 2)},
      {"k", "bid", "payload"}, 1, "doc");
  PlanBuilder augmenter = PlanBuilder::UnionAll(
      {make_aug_child(active, "ea", 1), make_aug_child(draft, "ed", 2)},
      {"k", "bid", "ext"}, 1, "doc");
  // Anchor outputs are k/bid/payload; the augmenter's outputs would
  // collide, so wrap it in a rename.
  PlanBuilder wrapped_aug = augmenter.ProjectColumns(
      {"k", "bid", "ext"}, {"e_k", "e_bid", "e_ext"});
  PlanRef with_intent =
      anchor
          .Join(wrapped_aug, JoinType::kLeftOuter,
                And(Eq(Col("bid"), Col("e_bid")), Eq(Col("k"), Col("e_k"))),
                DeclaredCardinality::kNone, /*case_join=*/true)
          .Build();
  bool changed = false;
  PlanRef result = PassAsjElimination(with_intent, Full(), &changed);
  EXPECT_TRUE(changed) << PrintPlan(with_intent);
  PlanStats stats = ComputePlanStats(result);
  EXPECT_EQ(stats.joins, 0u) << PrintPlan(result);
  EXPECT_EQ(stats.table_instances, 2u);
  EXPECT_EQ(result->OutputNames(), with_intent->OutputNames());

  // The same plan *without* the case-join intent: the fragile recognizer
  // rejects it (augmenter branches are not bare scans).
  PlanRef without_intent =
      anchor
          .Join(wrapped_aug, JoinType::kLeftOuter,
                And(Eq(Col("bid"), Col("e_bid")), Eq(Col("k"), Col("e_k"))),
                DeclaredCardinality::kNone, /*case_join=*/false)
          .Build();
  changed = false;
  PassAsjElimination(without_intent, Full(), &changed);
  EXPECT_FALSE(changed);
}

// --- aggregate merging / eager aggregation -----------------------------------

TEST(AggMergeTest, SumOverSumMergesUnconditionally) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.id"), "id"}, {Col("f.status"), "st"}},
                     {{Agg(AggKind::kSum, Col("f.amount")), "subtotal"}})
          .Aggregate({{Col("st"), "st"}},
                     {{Agg(AggKind::kSum, Col("subtotal")), "total"}})
          .Build();
  bool changed = false;
  PlanRef result = PassAggregatePushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(ComputePlanStats(result).aggregates, 1u) << PrintPlan(result);
}

TEST(AggMergeTest, RoundBetweenLevelsNeedsOptIn) {
  auto build = [&](bool allow) {
    ExprRef tax = Func(
        "round", {Agg(AggKind::kSum, Col("f.amount")), LitInt(0)});
    ExprRef outer_sum = std::make_shared<AggregateExpr>(
        AggKind::kSum, Col("tax"), false, allow);
    return PlanBuilder::ScanSchema(Fact(), "f")
        .Aggregate({{Col("f.id"), "id"}, {Col("f.status"), "st"}},
                   {{tax, "tax"}})
        .Aggregate({{Col("st"), "st"}}, {{outer_sum, "total"}})
        .Build();
  };
  bool changed = false;
  PlanRef strict = PassAggregatePushdown(build(false), Full(), &changed);
  EXPECT_EQ(ComputePlanStats(strict).aggregates, 2u);
  changed = false;
  PlanRef relaxed = PassAggregatePushdown(build(true), Full(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(ComputePlanStats(relaxed).aggregates, 1u) << PrintPlan(relaxed);
}

TEST(EagerAggregationTest, SplitsBelowAugmentingJoin) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Aggregate({{Col("d.name"), "name"}},
                     {{Agg(AggKind::kSum, Col("f.amount")), "total"}})
          .Build();
  bool changed = false;
  PlanRef result = PassAggregatePushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  // Two aggregates now: a partial below the join, the final above.
  PlanStats stats = ComputePlanStats(result);
  EXPECT_EQ(stats.aggregates, 2u) << PrintPlan(result);
  // Reapplication is guarded.
  bool changed_again = false;
  PassAggregatePushdown(result, Full(), &changed_again);
  EXPECT_FALSE(changed_again);
}

TEST(EagerAggregationTest, NotAppliedWhenArgsUseAugmenter) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Aggregate({{Col("d.name"), "name"}},
                     {{Agg(AggKind::kCount, Col("d.attr")), "n"}})
          .Build();
  bool changed = false;
  PassAggregatePushdown(plan, Full(), &changed);
  EXPECT_FALSE(changed);
}


// --- filter through aggregate -------------------------------------------------

TEST(FilterPushdownTest, GroupKeyConjunctsSinkBelowAggregate) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.status"), "st"}},
                     {{Agg(AggKind::kSum, Col("f.amount")), "total"}})
          .Filter(And(Eq(Col("st"), LitInt(1)),
                      Bin(BinaryOpKind::kGreater, Col("total"), LitInt(5))))
          .Build();
  bool changed = false;
  PlanRef result = PassFilterPushdown(plan, Full(), &changed);
  EXPECT_TRUE(changed);
  // Shape: Filter(total>5) over Aggregate over Filter(status=1) over scan.
  ASSERT_EQ(result->kind(), OpKind::kFilter);
  ASSERT_EQ(result->child(0)->kind(), OpKind::kAggregate);
  ASSERT_EQ(result->child(0)->child(0)->kind(), OpKind::kFilter);
  const auto& pushed =
      static_cast<const FilterOp&>(*result->child(0)->child(0));
  EXPECT_TRUE(ReferencesOnly(pushed.predicate(), {"f.status"}));
}

TEST(FilterPushdownTest, AggregateOnlyConjunctsStayAbove) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.status"), "st"}}, {{CountStar(), "n"}})
          .Filter(Bin(BinaryOpKind::kGreater, Col("n"), LitInt(1)))
          .Build();
  bool changed = false;
  PlanRef result = PassFilterPushdown(plan, Full(), &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(result->kind(), OpKind::kFilter);
}


// --- join ordering -----------------------------------------------------------

TEST(JoinOrderTest, ReordersByEstimatedSize) {
  // Catalog stats: big has 100k rows, small has 10.
  Catalog catalog;
  TableSchema big("big");
  big.AddColumn("k", DataType::Int64(), false)
      .AddColumn("payload", DataType::String());
  TableSchema small("small");
  small.AddColumn("k", DataType::Int64(), false)
      .AddColumn("tag", DataType::String());
  ASSERT_TRUE(catalog.RegisterTable(big).ok());
  ASSERT_TRUE(catalog.RegisterTable(small).ok());
  catalog.SetTableStats("big", TableStats{100000});
  catalog.SetTableStats("small", TableStats{10});

  // small ⋈ big builds the hash table on `big` (the executor builds the
  // right input) — the costed pass must flip the sides.
  PlanRef plan = PlanBuilder::ScanSchema(small, "s")
                     .Join(PlanBuilder::ScanSchema(big, "b"),
                           JoinType::kInner, Eq(Col("s.k"), Col("b.k")))
                     .Build();
  OptimizerConfig config = Full();
  config.stats_catalog = &catalog;
  bool changed = false;
  PlanRef result = PassJoinOrder(plan, config, &changed);
  EXPECT_TRUE(changed);
  ASSERT_EQ(result->kind(), OpKind::kProject);
  const auto& join = static_cast<const JoinOp&>(*result->child(0));
  EXPECT_EQ(static_cast<const ScanOp&>(*join.left()).table_name(), "big");
  EXPECT_EQ(static_cast<const ScanOp&>(*join.right()).table_name(), "small");
  // Output names and order are preserved by the restoring projection.
  EXPECT_EQ(result->OutputNames(), plan->OutputNames());
  // Idempotent.
  bool changed_again = false;
  PassJoinOrder(result, config, &changed_again);
  EXPECT_FALSE(changed_again);
}

TEST(JoinOrderTest, LeftOuterAndDeclaredJoinsUntouched) {
  Catalog catalog;
  catalog.SetTableStats("fact", TableStats{100000});
  catalog.SetTableStats("dim", TableStats{10});
  PlanRef loj = PlanBuilder::ScanSchema(Fact(), "f")
                    .Join(PlanBuilder::ScanSchema(Dim(), "d"),
                          JoinType::kLeftOuter,
                          Eq(Col("f.dim_key"), Col("d.k")))
                    .Build();
  OptimizerConfig config = Full();
  config.stats_catalog = &catalog;
  bool changed = false;
  PassJoinOrder(loj, config, &changed);
  EXPECT_FALSE(changed);
  PlanRef declared = PlanBuilder::ScanSchema(Fact(), "f")
                         .Join(PlanBuilder::ScanSchema(Dim(), "d"),
                               JoinType::kInner,
                               Eq(Col("f.dim_key"), Col("d.k")),
                               DeclaredCardinality::kExactOne)
                         .Build();
  changed = false;
  PassJoinOrder(declared, config, &changed);
  EXPECT_FALSE(changed);
}

TEST(JoinOrderTest, ChainPrefersConnectedRelations) {
  Catalog catalog;
  TableSchema a("ta"), b("tb"), c("tc");
  a.AddColumn("x", DataType::Int64(), false);
  b.AddColumn("x", DataType::Int64(), false)
      .AddColumn("y", DataType::Int64(), false);
  c.AddColumn("y", DataType::Int64(), false);
  catalog.SetTableStats("ta", TableStats{1000});
  catalog.SetTableStats("tb", TableStats{100000});
  catalog.SetTableStats("tc", TableStats{10});
  PlanRef plan =
      PlanBuilder::ScanSchema(a, "a")
          .Join(PlanBuilder::ScanSchema(b, "b"), JoinType::kInner,
                Eq(Col("a.x"), Col("b.x")))
          .Join(PlanBuilder::ScanSchema(c, "c"), JoinType::kInner,
                Eq(Col("b.y"), Col("c.y")))
          .Build();
  OptimizerConfig config = Full();
  config.stats_catalog = &catalog;
  bool changed = false;
  PlanRef result = PassJoinOrder(plan, config, &changed);
  EXPECT_TRUE(changed);
  // Greedy starts from tc (smallest); the only connected relation is tb;
  // ta joins last: ((c ⋈ b) ⋈ a). No cross joins appear.
  bool has_true_condition = false;
  VisitPlan(result, [&](const PlanRef& node) {
    if (node->kind() == OpKind::kJoin) {
      const auto& join = static_cast<const JoinOp&>(*node);
      if (IsAlwaysTrue(join.condition())) has_true_condition = true;
    }
  });
  EXPECT_FALSE(has_true_condition) << PrintPlan(result);
}

// --- fixpoint convergence ---------------------------------------------------

TEST(ConvergenceTest, TruncatedRunIsReportedAsNotConverged) {
  // A plan with work for several passes: a pushable filter, prunable
  // columns, and a removable UAJ. One pass changes the plan, so the run
  // cannot witness a no-change iteration within max_passes = 1.
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Filter(Eq(Col("f.status"), LitInt(1)))
          .Project({{Col("f.id"), "id"}})
          .Build();
  OptimizerConfig truncated = Full();
  truncated.max_passes = 1;
  Optimizer one_pass(truncated);
  PlanRef partial = one_pass.Optimize(plan);
  EXPECT_FALSE(one_pass.last_run_converged()) << PrintPlan(partial);

  // With the default budget the same plan reaches a fixpoint.
  Optimizer full(Full());
  PlanRef done = full.Optimize(plan);
  EXPECT_TRUE(full.last_run_converged()) << PrintPlan(done);
  // And the fixpoint is at least as reduced as the truncated plan.
  EXPECT_EQ(ComputePlanStats(done).joins, 0u) << PrintPlan(done);
}

TEST(ConvergenceTest, ConvergedStateResetsPerRun) {
  Optimizer optimizer([] {
    OptimizerConfig config = Full();
    config.max_passes = 1;
    return config;
  }());
  PlanRef trivial = PlanBuilder::ScanSchema(Fact(), "f").Build();
  optimizer.Optimize(trivial);
  EXPECT_TRUE(optimizer.last_run_converged());
  PlanRef busy = PlanBuilder::ScanSchema(Fact(), "f")
                     .Join(PlanBuilder::ScanSchema(Dim(), "d"),
                           JoinType::kLeftOuter,
                           Eq(Col("f.dim_key"), Col("d.k")))
                     .Project({{Col("f.id"), "id"}})
                     .Build();
  optimizer.Optimize(busy);
  EXPECT_FALSE(optimizer.last_run_converged());
}

}  // namespace
}  // namespace vdm
