// Remaining unit coverage: plan printing/statistics, the catalog registry,
// and the common utilities (strings, RNG, Status).
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "plan/plan_builder.h"
#include "plan/plan_printer.h"
#include "types/date_util.h"

namespace vdm {
namespace {

TableSchema Simple(const std::string& name) {
  TableSchema schema(name);
  schema.AddColumn("k", DataType::Int64(), false)
      .AddColumn("v", DataType::String());
  schema.SetPrimaryKey({"k"});
  return schema;
}

TEST(PlanPrinterTest, RendersTreeWithIndentation) {
  PlanRef plan = PlanBuilder::ScanSchema(Simple("t"), "a")
                     .Join(PlanBuilder::ScanSchema(Simple("u"), "b"),
                           JoinType::kLeftOuter, Eq(Col("a.k"), Col("b.k")))
                     .Filter(Eq(Col("a.v"), LitStr("x")))
                     .ProjectColumns({"a.k"}, {"k"})
                     .Build();
  std::string rendered = PrintPlan(plan);
  EXPECT_NE(rendered.find("Project"), std::string::npos);
  EXPECT_NE(rendered.find("Filter"), std::string::npos);
  EXPECT_NE(rendered.find("Join LEFT OUTER"), std::string::npos);
  EXPECT_NE(rendered.find("  Scan"), std::string::npos);
  // Deeper nodes are indented further.
  EXPECT_LT(rendered.find("Project"), rendered.find("Filter"));
}

TEST(PlanStatsTest, CountsAllOperatorKinds) {
  PlanBuilder u1 = PlanBuilder::ScanSchema(Simple("t"), "a")
                       .ProjectColumns({"a.k"}, {"k"});
  PlanBuilder u2 = PlanBuilder::ScanSchema(Simple("t"), "b")
                       .ProjectColumns({"b.k"}, {"k"});
  PlanRef plan =
      PlanBuilder::UnionAll({u1, u2}, {"k"})
          .Join(PlanBuilder::ScanSchema(Simple("u"), "c"),
                JoinType::kInner, Eq(Col("k"), Col("c.k")))
          .Aggregate({{Col("k"), "k"}}, {{CountStar(), "n"}})
          .Sort({{Col("n"), false}})
          .Limit(5)
          .Distinct()
          .Build();
  PlanStats stats = ComputePlanStats(plan);
  EXPECT_EQ(stats.table_instances, 3u);
  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.union_alls, 1u);
  EXPECT_EQ(stats.union_all_children, 2u);
  EXPECT_EQ(stats.aggregates, 1u);
  EXPECT_EQ(stats.limits, 1u);
  EXPECT_EQ(stats.distincts, 1u);
  EXPECT_GE(stats.max_depth, 4u);
}

TEST(CatalogTest, RegistryBehaviour) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(Simple("t")).ok());
  EXPECT_EQ(catalog.RegisterTable(Simple("T")).code(),
            StatusCode::kAlreadyExists);
  ViewDef view;
  view.name = "v";
  view.sql = "select k from t";
  ASSERT_TRUE(catalog.RegisterView(view).ok());
  EXPECT_EQ(catalog.RegisterView(view).code(), StatusCode::kAlreadyExists);
  // A view cannot shadow a table.
  ViewDef shadow;
  shadow.name = "t";
  shadow.sql = "select 1 from t";
  EXPECT_FALSE(catalog.RegisterView(shadow).ok());
  EXPECT_FALSE(catalog.ReplaceView(shadow).ok());
  // Replace updates in place; drop removes.
  view.dac_filter_sql = "k = 1";
  ASSERT_TRUE(catalog.ReplaceView(view).ok());
  EXPECT_EQ(catalog.FindView("V")->dac_filter_sql, "k = 1");
  ASSERT_TRUE(catalog.DropView("v").ok());
  EXPECT_EQ(catalog.FindView("v"), nullptr);
  EXPECT_EQ(catalog.DropView("v").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, StatsRoundTrip) {
  Catalog catalog;
  EXPECT_EQ(catalog.FindTableStats("t"), nullptr);
  catalog.SetTableStats("T", TableStats{123});
  ASSERT_NE(catalog.FindTableStats("t"), nullptr);
  EXPECT_EQ(catalog.FindTableStats("t")->row_count, 123u);
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("HeLLo", "hello"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a.b..c", '.'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(42).Next(), c.Next());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(r.NextString(8).size(), 8u);
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::ParseError("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: boom");
  Result<int> result = err;
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.ValueOr(9), 9);
  Result<int> good = 4;
  EXPECT_EQ(good.ValueOr(9), 4);
}

TEST(DateUtilTest, RoundTripAndParse) {
  for (int64_t days : {-1000LL, 0LL, 11017LL, 19782LL, 40000LL}) {
    CivilDate civil = CivilFromDays(days);
    EXPECT_EQ(DaysFromCivil(civil), days);
  }
  EXPECT_EQ(FormatDate(0), "1970-01-01");
  EXPECT_EQ(*ParseDate("2024-02-29"), 19782);
  EXPECT_FALSE(ParseDate("2023-02-29").has_value());  // not a leap year
  EXPECT_FALSE(ParseDate("2023-13-01").has_value());
  EXPECT_FALSE(ParseDate("garbage").has_value());
  EXPECT_FALSE(ParseDate("2023-1-1").has_value());  // strict format
}

}  // namespace
}  // namespace vdm
