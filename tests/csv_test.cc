// Tests for CSV import/export.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "engine/csv.h"

namespace vdm {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table items ("
                            "id int primary key, label varchar, "
                            "price decimal(8,2), weight double, "
                            "available bool, added date)")
                    .ok());
    path_ = ::testing::TempDir() + "/vdm_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  Database db_;
  std::string path_;
};

TEST_F(CsvTest, ParseCsvLine) {
  Result<std::vector<std::string>> fields =
      ParseCsvLine("a,\"b,c\",\"say \"\"hi\"\"\",,d");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 5u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[1], "b,c");
  EXPECT_EQ((*fields)[2], "say \"hi\"");
  EXPECT_EQ((*fields)[3], "");
  EXPECT_EQ((*fields)[4], "d");
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
}

TEST_F(CsvTest, CoerceValues) {
  EXPECT_EQ(*CoerceCsvValue("42", DataType::Int64()), Value::Int64(42));
  EXPECT_EQ(*CoerceCsvValue("-7", DataType::Int64()), Value::Int64(-7));
  EXPECT_EQ(*CoerceCsvValue("3.25", DataType::Decimal(2)),
            Value::Decimal(325, 2));
  EXPECT_EQ(*CoerceCsvValue("3.256", DataType::Decimal(2)),
            Value::Decimal(326, 2));  // rounded
  EXPECT_EQ(*CoerceCsvValue("-1.5", DataType::Decimal(2)),
            Value::Decimal(-150, 2));
  EXPECT_EQ(*CoerceCsvValue("5", DataType::Decimal(2)),
            Value::Decimal(500, 2));
  EXPECT_EQ(*CoerceCsvValue("true", DataType::Bool()), Value::Bool(true));
  EXPECT_EQ(*CoerceCsvValue("0", DataType::Bool()), Value::Bool(false));
  EXPECT_TRUE(CoerceCsvValue("", DataType::Int64())->is_null());
  EXPECT_FALSE(CoerceCsvValue("abc", DataType::Int64()).ok());
  EXPECT_FALSE(CoerceCsvValue("1.2.3", DataType::Decimal(2)).ok());
}

TEST_F(CsvTest, DecimalScaleBoundaries) {
  // Exactly at the column scale: no rounding.
  EXPECT_EQ(*CoerceCsvValue("0.01", DataType::Decimal(2)),
            Value::Decimal(1, 2));
  EXPECT_EQ(*CoerceCsvValue("-0.01", DataType::Decimal(2)),
            Value::Decimal(-1, 2));
  // One digit past the scale: half-away-from-zero at the boundary.
  EXPECT_EQ(*CoerceCsvValue("0.005", DataType::Decimal(2)),
            Value::Decimal(1, 2));
  EXPECT_EQ(*CoerceCsvValue("0.004", DataType::Decimal(2)),
            Value::Decimal(0, 2));
  EXPECT_EQ(*CoerceCsvValue("-0.005", DataType::Decimal(2)),
            Value::Decimal(-1, 2));
  // Many digits past the scale still round correctly (not truncate).
  EXPECT_EQ(*CoerceCsvValue("1.99999", DataType::Decimal(2)),
            Value::Decimal(200, 2));
  // Scale-0 columns accept fractions and round to integers.
  EXPECT_EQ(*CoerceCsvValue("2.5", DataType::Decimal(0)),
            Value::Decimal(3, 0));
  EXPECT_EQ(*CoerceCsvValue("-2.5", DataType::Decimal(0)),
            Value::Decimal(-3, 0));
  // Degenerate but legal spellings.
  EXPECT_EQ(*CoerceCsvValue(".5", DataType::Decimal(1)),
            Value::Decimal(5, 1));
  EXPECT_EQ(*CoerceCsvValue("5.", DataType::Decimal(1)),
            Value::Decimal(50, 1));
  EXPECT_EQ(*CoerceCsvValue("+1.5", DataType::Decimal(1)),
            Value::Decimal(15, 1));
  EXPECT_EQ(*CoerceCsvValue("007", DataType::Decimal(2)),
            Value::Decimal(700, 2));
  // A bare sign or dot has no digits.
  EXPECT_FALSE(CoerceCsvValue("-", DataType::Decimal(2)).ok());
  EXPECT_FALSE(CoerceCsvValue(".", DataType::Decimal(2)).ok());
  // int64 overflow during digit accumulation is rejected, not wrapped:
  // 9223372036854775807 is INT64_MAX, one more digit overflows.
  EXPECT_EQ(*CoerceCsvValue("9223372036854775807", DataType::Decimal(0)),
            Value::Decimal(INT64_MAX, 0));
  EXPECT_FALSE(
      CoerceCsvValue("92233720368547758080", DataType::Decimal(0)).ok());
  EXPECT_FALSE(
      CoerceCsvValue("9223372036854775808", DataType::Decimal(0)).ok());
}

TEST_F(CsvTest, ImportRoundTrip) {
  WriteFile(
      "id,label,price,weight,available,added\n"
      "1,\"widget, large\",19.99,1.5,true,19000\n"
      "2,nut,0.05,0.01,false,19001\n"
      "3,,,,true,\n");
  Result<size_t> imported = ImportCsv(&db_, "items", path_);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(*imported, 3u);
  Result<Chunk> rows = db_.Query("select * from items order by id");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->NumRows(), 3u);
  EXPECT_EQ(rows->columns[1].strings()[0], "widget, large");
  EXPECT_EQ(rows->columns[2].GetValue(0), Value::Decimal(1999, 2));
  EXPECT_TRUE(rows->columns[1].IsNull(2));
  EXPECT_TRUE(rows->columns[5].IsNull(2));

  // Export and re-import into a second table: contents must match.
  ASSERT_TRUE(ExportCsv(*rows, path_).ok());
  ASSERT_TRUE(db_.Execute("create table items2 ("
                          "id int, label varchar, price decimal(8,2), "
                          "weight double, available bool, added date)")
                  .ok());
  Result<size_t> again = ImportCsv(&db_, "items2", path_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  Result<Chunk> rows2 = db_.Query("select * from items2 order by id");
  ASSERT_TRUE(rows2.ok());
  ASSERT_EQ(rows2->NumRows(), 3u);
  for (size_t c = 0; c < rows->NumColumns(); ++c) {
    for (size_t r = 0; r < rows->NumRows(); ++r) {
      EXPECT_TRUE(rows->columns[c].GetValue(r) ==
                  rows2->columns[c].GetValue(r))
          << "col " << c << " row " << r;
    }
  }
}

TEST_F(CsvTest, PartialColumnList) {
  WriteFile("label,id\nthing,9\n");
  Result<size_t> imported = ImportCsv(&db_, "items", path_);
  ASSERT_TRUE(imported.ok());
  Result<Chunk> rows = db_.Query("select id, label, price from items");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->columns[0].ints()[0], 9);
  EXPECT_TRUE(rows->columns[2].IsNull(0));
}

TEST_F(CsvTest, Errors) {
  WriteFile("id,nonexistent\n1,2\n");
  EXPECT_FALSE(ImportCsv(&db_, "items", path_).ok());
  WriteFile("id\n1,2\n");
  EXPECT_FALSE(ImportCsv(&db_, "items", path_).ok());  // arity mismatch
  WriteFile("id\nabc\n");
  Result<size_t> bad = ImportCsv(&db_, "items", path_);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ImportCsv(&db_, "nope", path_).ok());
  EXPECT_FALSE(ImportCsv(&db_, "items", "/no/such/file.csv").ok());
}

}  // namespace
}  // namespace vdm
