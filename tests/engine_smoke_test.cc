// End-to-end smoke tests: DDL, inserts, queries, views, optimization.
#include "engine/database.h"

#include <gtest/gtest.h>

#include "plan/plan_printer.h"

namespace vdm {
namespace {

class EngineSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table customer ("
                            "c_custkey int primary key,"
                            "c_name varchar(25) not null,"
                            "c_nationkey int not null)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table orders ("
                            "o_orderkey int primary key,"
                            "o_custkey int not null,"
                            "o_total decimal(15,2))")
                    .ok());
    ASSERT_TRUE(db_.Insert("customer", {{Value::Int64(1),
                                         Value::String("alice"),
                                         Value::Int64(10)},
                                        {Value::Int64(2),
                                         Value::String("bob"),
                                         Value::Int64(20)}})
                    .ok());
    ASSERT_TRUE(db_.Insert("orders", {{Value::Int64(100), Value::Int64(1),
                                       Value::Decimal(1050, 2)},
                                      {Value::Int64(101), Value::Int64(1),
                                       Value::Decimal(2550, 2)},
                                      {Value::Int64(102), Value::Int64(2),
                                       Value::Decimal(999, 2)}})
                    .ok());
  }

  Database db_;
};

TEST_F(EngineSmokeTest, SimpleSelect) {
  Result<Chunk> result = db_.Query("select c_name from customer");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->names[0], "c_name");
  EXPECT_EQ(result->columns[0].strings()[0], "alice");
}

TEST_F(EngineSmokeTest, FilterAndProject) {
  Result<Chunk> result = db_.Query(
      "select o_orderkey, o_total from orders where o_custkey = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 2u);
}

TEST_F(EngineSmokeTest, JoinQuery) {
  Result<Chunk> result = db_.Query(
      "select o.o_orderkey, c.c_name from orders o "
      "join customer c on o.o_custkey = c.c_custkey "
      "order by o.o_orderkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 3u);
  EXPECT_EQ(result->columns[1].strings()[0], "alice");
  EXPECT_EQ(result->columns[1].strings()[2], "bob");
}

TEST_F(EngineSmokeTest, LeftOuterJoinKeepsUnmatched) {
  ASSERT_TRUE(db_.Insert("orders", {{Value::Int64(103), Value::Int64(99),
                                     Value::Decimal(100, 2)}})
                  .ok());
  Result<Chunk> result = db_.Query(
      "select o.o_orderkey, c.c_name from orders o "
      "left join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 4u);
  // The unmatched order must carry a NULL name.
  int nulls = 0;
  for (size_t i = 0; i < result->NumRows(); ++i) {
    if (result->columns[1].IsNull(i)) ++nulls;
  }
  EXPECT_EQ(nulls, 1);
}

TEST_F(EngineSmokeTest, AggregateWithGroupBy) {
  Result<Chunk> result = db_.Query(
      "select o_custkey, count(*) as n, sum(o_total) as total "
      "from orders group by o_custkey order by o_custkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->columns[1].ints()[0], 2);
  // 10.50 + 25.50 = 36.00 at scale 2.
  EXPECT_EQ(result->columns[2].ints()[0], 3600);
}

TEST_F(EngineSmokeTest, UajEliminatedInPlan) {
  // The customer join is unused: the optimizer must remove it (UAJ 1).
  Result<PlanRef> plan = db_.PlanQuery(
      "select o.o_orderkey from orders o "
      "left join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  PlanStats stats = ComputePlanStats(*plan);
  EXPECT_EQ(stats.joins, 0u) << PrintPlan(*plan);
  EXPECT_EQ(stats.table_instances, 1u);
}

TEST_F(EngineSmokeTest, UajKeptWhenUsed) {
  Result<PlanRef> plan = db_.PlanQuery(
      "select o.o_orderkey, c.c_name from orders o "
      "left join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 1u);
}

TEST_F(EngineSmokeTest, UajNotEliminatedWithoutKey) {
  // Joining on a non-unique column may duplicate rows: join must stay.
  Result<PlanRef> plan = db_.PlanQuery(
      "select o.o_orderkey from orders o "
      "left join customer c on o.o_custkey = c.c_nationkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 1u) << PrintPlan(*plan);
}

TEST_F(EngineSmokeTest, ViewInliningAndQuery) {
  ASSERT_TRUE(db_.Execute("create view order_info as "
                          "select o.o_orderkey, o.o_total, c.c_name "
                          "from orders o left join customer c "
                          "on o.o_custkey = c.c_custkey")
                  .ok());
  Result<Chunk> result =
      db_.Query("select o_orderkey from order_info order by o_orderkey");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 3u);
  // Plan: the view's customer join must be optimized away.
  Result<PlanRef> plan = db_.PlanQuery("select o_orderkey from order_info");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 0u) << PrintPlan(*plan);
}

TEST_F(EngineSmokeTest, CountStarOverView) {
  ASSERT_TRUE(db_.Execute("create view order_info2 as "
                          "select o.o_orderkey, c.c_name "
                          "from orders o left join customer c "
                          "on o.o_custkey = c.c_custkey")
                  .ok());
  Result<Chunk> result = db_.Query("select count(*) from order_info2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->columns[0].ints()[0], 3);
  Result<PlanRef> plan = db_.PlanQuery("select count(*) from order_info2");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 0u) << PrintPlan(*plan);
}

TEST_F(EngineSmokeTest, ProfileChangesOptimization) {
  db_.SetProfile(SystemProfile::kSystemX);
  Result<PlanRef> plan = db_.PlanQuery(
      "select o.o_orderkey from orders o "
      "left join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 1u);
  db_.SetProfile(SystemProfile::kHana);
  plan = db_.PlanQuery(
      "select o.o_orderkey from orders o "
      "left join customer c on o.o_custkey = c.c_custkey");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ComputePlanStats(*plan).joins, 0u);
}

TEST_F(EngineSmokeTest, LimitOffsetAndOrder) {
  Result<Chunk> result = db_.Query(
      "select o_orderkey from orders order by o_orderkey desc limit 2 "
      "offset 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->columns[0].ints()[0], 101);
  EXPECT_EQ(result->columns[0].ints()[1], 100);
}

TEST_F(EngineSmokeTest, UnionAllQuery) {
  Result<Chunk> result = db_.Query(
      "select o_orderkey from orders where o_custkey = 1 "
      "union all "
      "select o_orderkey from orders where o_custkey = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 3u);
}

TEST_F(EngineSmokeTest, DistinctQuery) {
  Result<Chunk> result =
      db_.Query("select distinct o_custkey from orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 2u);
}

TEST_F(EngineSmokeTest, DacFilterInjected) {
  ASSERT_TRUE(db_.Execute("create view all_orders as "
                          "select o_orderkey, o_custkey from orders")
                  .ok());
  // Attach a DAC filter restricting to customer 1.
  ViewDef view = *db_.catalog().FindView("all_orders");
  view.dac_filter_sql = "o_custkey = 1";
  ASSERT_TRUE(db_.catalog().ReplaceView(view).ok());
  Result<Chunk> result = db_.Query("select count(*) from all_orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->columns[0].ints()[0], 2);
}

TEST_F(EngineSmokeTest, MergeDeltaPreservesData) {
  db_.MergeAllDeltas();
  Result<Chunk> result = db_.Query("select count(*) from orders");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns[0].ints()[0], 3);
  // Insert post-merge rows (delta) and verify both fragments scan.
  ASSERT_TRUE(
      db_.Insert("orders", {{Value::Int64(200), Value::Int64(2),
                             Value::Decimal(1, 2)}})
          .ok());
  result = db_.Query("select count(*) from orders");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns[0].ints()[0], 4);
}

}  // namespace
}  // namespace vdm
