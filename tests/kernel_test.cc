// Differential tests for the compressed-execution kernels: every
// dispatching entry point must agree with its scalar reference on
// randomized inputs — including NULL codes, all-match / none-match
// columns, varying selection densities, morsel-boundary tails
// (length % 8 != 0), and unaligned starting offsets. When the AVX2
// kernels are compiled in and the CPU supports them, the SIMD override
// pins dispatch to SIMD so the comparison is real; otherwise the test
// degenerates to scalar-vs-scalar and still checks the harness.
#include "exec/kernels/kernels.h"

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "types/column.h"

namespace vdm {
namespace kernels {
namespace {

class SimdOverrideGuard {
 public:
  explicit SimdOverrideGuard(int force) { SetSimdOverride(force); }
  ~SimdOverrideGuard() { SetSimdOverride(-1); }
};

/// Random codes in [-1, max_code]; null_permille rows get -1 (NULL).
std::vector<int32_t> RandomCodes(std::mt19937& rng, size_t n,
                                 int32_t max_code, int null_permille) {
  std::uniform_int_distribution<int32_t> code(0, max_code);
  std::uniform_int_distribution<int> permille(0, 999);
  std::vector<int32_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = permille(rng) < null_permille ? -1 : code(rng);
  }
  return out;
}

std::vector<int64_t> RandomInts(std::mt19937& rng, size_t n, int64_t lo,
                                int64_t hi) {
  std::uniform_int_distribution<int64_t> val(lo, hi);
  std::vector<int64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = val(rng);
  return out;
}

std::vector<uint8_t> RandomValidity(std::mt19937& rng, size_t n,
                                    int null_permille) {
  std::uniform_int_distribution<int> permille(0, 999);
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = permille(rng) < null_permille ? 0 : 1;
  }
  return out;
}

/// Strictly increasing selection keeping each row with probability
/// density/1000 — the refine kernels' input shape.
SelectionVector RandomSelection(std::mt19937& rng, size_t n, int density) {
  std::uniform_int_distribution<int> permille(0, 999);
  SelectionVector sel;
  for (size_t i = 0; i < n; ++i) {
    if (permille(rng) < density) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

// Lengths crossing every 8-lane (codes) and 4-lane (int64) boundary
// shape, plus short inputs that never reach a full vector.
const size_t kLengths[] = {0, 1, 3, 7, 8, 9, 15, 16, 31, 33, 100, 1021, 4096};
// Unaligned starts: kernels must work from any base pointer.
const size_t kOffsets[] = {0, 1, 3, 5};

template <typename DispatchFn, typename ScalarFn>
void CheckFilter(const DispatchFn& dispatch, const ScalarFn& scalar,
                 size_t n) {
  std::vector<uint32_t> got(n + 1, 0xABABABABu), want(n + 1, 0xABABABABu);
  size_t kg = dispatch(got.data());
  size_t kw = scalar(want.data());
  ASSERT_EQ(kg, kw);
  for (size_t i = 0; i < kg; ++i) ASSERT_EQ(got[i], want[i]) << "i=" << i;
}

TEST(KernelDispatchTest, OverrideForcesScalar) {
  SimdOverrideGuard guard(0);
  EXPECT_FALSE(SimdEnabled());
}

TEST(KernelDispatchTest, CompiledImpliesConsistentDispatch) {
  // With the override at automatic, SimdEnabled() may be either value,
  // but it must be stable across calls.
  bool a = SimdEnabled();
  bool b = SimdEnabled();
  EXPECT_EQ(a, b);
}

TEST(KernelFilterTest, CodesEqNeRandomized) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(7);
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      for (int null_pm : {0, 50, 1000}) {
        std::vector<int32_t> codes = RandomCodes(rng, n + off, 12, null_pm);
        const int32_t* base = codes.data() + off;
        for (int32_t target : {0, 5, 12, 99}) {  // 99: none-match
          CheckFilter(
              [&](uint32_t* out) {
                return FilterCodesEq(base, n, target, out);
              },
              [&](uint32_t* out) {
                return scalar::FilterCodesEq(base, n, target, out);
              },
              n);
          CheckFilter(
              [&](uint32_t* out) {
                return FilterCodesNe(base, n, target, out);
              },
              [&](uint32_t* out) {
                return scalar::FilterCodesNe(base, n, target, out);
              },
              n);
        }
      }
    }
  }
}

TEST(KernelFilterTest, CodesRangeRandomized) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(11);
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      std::vector<int32_t> codes = RandomCodes(rng, n + off, 20, 100);
      const int32_t* base = codes.data() + off;
      // Intervals covering all-match ([0,20]), partial, empty ([7,3]),
      // and single-code ([9,9]) shapes.
      const std::pair<int32_t, int32_t> ranges[] = {
          {0, 20}, {5, 15}, {7, 3}, {9, 9}, {19, 25}};
      for (auto [lo, hi] : ranges) {
        CheckFilter(
            [&](uint32_t* out) {
              return FilterCodesRange(base, n, lo, hi, out);
            },
            [&](uint32_t* out) {
              return scalar::FilterCodesRange(base, n, lo, hi, out);
            },
            n);
      }
    }
  }
}

TEST(KernelFilterTest, CodesNullRandomized) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(13);
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      for (int null_pm : {0, 300, 1000}) {
        std::vector<int32_t> codes = RandomCodes(rng, n + off, 6, null_pm);
        const int32_t* base = codes.data() + off;
        for (bool negated : {false, true}) {
          CheckFilter(
              [&](uint32_t* out) {
                return FilterCodesNull(base, n, negated, out);
              },
              [&](uint32_t* out) {
                return scalar::FilterCodesNull(base, n, negated, out);
              },
              n);
        }
      }
    }
  }
}

TEST(KernelFilterTest, Int64AllOpsRandomized) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(17);
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      std::vector<int64_t> vals = RandomInts(rng, n + off, -10, 10);
      std::vector<uint8_t> validity = RandomValidity(rng, n + off, 100);
      const int64_t* base = vals.data() + off;
      const uint8_t* vbase = validity.data() + off;
      for (CmpOp op : ops) {
        for (int64_t lit : {-11, -3, 0, 10, 42}) {
          for (const uint8_t* v : {static_cast<const uint8_t*>(nullptr),
                                   vbase}) {
            CheckFilter(
                [&](uint32_t* out) {
                  return FilterInt64(base, v, n, op, lit, out);
                },
                [&](uint32_t* out) {
                  return scalar::FilterInt64(base, v, n, op, lit, out);
                },
                n);
          }
        }
      }
    }
  }
}

TEST(KernelFilterTest, CodesIntervalUnionRandomized) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(17);
  // Interval lists covering empty, single, disjoint-multi, and
  // all-covering shapes (inclusive bounds, codes drawn from [0, 20]).
  const std::vector<std::pair<int32_t, int32_t>> shapes[] = {
      {},
      {{5, 5}},
      {{0, 3}, {7, 9}, {15, 20}},
      {{0, 20}},
      {{2, 4}, {6, 6}, {10, 14}, {18, 19}},
  };
  for (size_t n : kLengths) {
    for (size_t off : kOffsets) {
      for (int null_pm : {0, 200, 1000}) {
        std::vector<int32_t> codes = RandomCodes(rng, n + off, 20, null_pm);
        const int32_t* base = codes.data() + off;
        for (const auto& ivs : shapes) {
          std::vector<int32_t> lo, hi;
          for (auto [l, h] : ivs) {
            lo.push_back(l);
            hi.push_back(h);
          }
          for (bool match_null : {false, true}) {
            CheckFilter(
                [&](uint32_t* out) {
                  return FilterCodesIntervalUnion(base, n, lo.data(),
                                                  hi.data(), lo.size(),
                                                  match_null, out);
                },
                [&](uint32_t* out) {
                  return scalar::FilterCodesIntervalUnion(base, n, lo.data(),
                                                          hi.data(), lo.size(),
                                                          match_null, out);
                },
                n);
          }
        }
      }
    }
  }
}

TEST(KernelRefineTest, CodesIntervalUnionRandomizedDensities) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(29);
  const int32_t lo[] = {0, 7, 15};
  const int32_t hi[] = {3, 9, 20};
  for (size_t n : kLengths) {
    for (int density : {0, 50, 500, 1000}) {
      std::vector<int32_t> codes = RandomCodes(rng, n, 20, 150);
      SelectionVector sel = RandomSelection(rng, n, density);
      for (bool match_null : {false, true}) {
        SelectionVector got = sel, want = sel;
        size_t kg = RefineCodesIntervalUnion(
            codes.data(), got.empty() ? nullptr : got.data(), got.size(), lo,
            hi, 3, match_null);
        size_t kw = scalar::RefineCodesIntervalUnion(
            codes.data(), want.empty() ? nullptr : want.data(), want.size(),
            lo, hi, 3, match_null);
        ASSERT_EQ(kg, kw);
        for (size_t i = 0; i < kg; ++i) ASSERT_EQ(got[i], want[i]);
      }
    }
  }
}

TEST(KernelRefineTest, CodesRandomizedDensities) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(19);
  for (size_t n : kLengths) {
    for (int density : {0, 50, 500, 1000}) {
      std::vector<int32_t> codes = RandomCodes(rng, n, 12, 100);
      SelectionVector sel = RandomSelection(rng, n, density);
      auto check = [&](auto refine, auto ref) {
        SelectionVector got = sel, want = sel;
        size_t kg = got.empty() ? refine(got.data(), size_t{0})
                                : refine(got.data(), got.size());
        size_t kw = want.empty() ? ref(want.data(), size_t{0})
                                 : ref(want.data(), want.size());
        ASSERT_EQ(kg, kw);
        for (size_t i = 0; i < kg; ++i) ASSERT_EQ(got[i], want[i]);
      };
      check(
          [&](uint32_t* s, size_t k) {
            return RefineCodesEq(codes.data(), s, k, 5);
          },
          [&](uint32_t* s, size_t k) {
            return scalar::RefineCodesEq(codes.data(), s, k, 5);
          });
      check(
          [&](uint32_t* s, size_t k) {
            return RefineCodesNe(codes.data(), s, k, 5);
          },
          [&](uint32_t* s, size_t k) {
            return scalar::RefineCodesNe(codes.data(), s, k, 5);
          });
      check(
          [&](uint32_t* s, size_t k) {
            return RefineCodesRange(codes.data(), s, k, 3, 9);
          },
          [&](uint32_t* s, size_t k) {
            return scalar::RefineCodesRange(codes.data(), s, k, 3, 9);
          });
      check(
          [&](uint32_t* s, size_t k) {
            return RefineCodesNull(codes.data(), s, k, true);
          },
          [&](uint32_t* s, size_t k) {
            return scalar::RefineCodesNull(codes.data(), s, k, true);
          });
    }
  }
}

TEST(KernelRefineTest, Int64RandomizedDensities) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(23);
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (size_t n : kLengths) {
    for (int density : {50, 500, 1000}) {
      std::vector<int64_t> vals = RandomInts(rng, n, -10, 10);
      std::vector<uint8_t> validity = RandomValidity(rng, n, 100);
      SelectionVector sel = RandomSelection(rng, n, density);
      for (CmpOp op : ops) {
        for (const uint8_t* v :
             {static_cast<const uint8_t*>(nullptr),
              static_cast<const uint8_t*>(validity.data())}) {
          SelectionVector got = sel, want = sel;
          size_t kg = RefineInt64(vals.data(), v, got.data(), got.size(),
                                  op, 2);
          size_t kw = scalar::RefineInt64(vals.data(), v, want.data(),
                                          want.size(), op, 2);
          ASSERT_EQ(kg, kw);
          for (size_t i = 0; i < kg; ++i) ASSERT_EQ(got[i], want[i]);
        }
      }
    }
  }
}

TEST(KernelGatherTest, TypedGathersRandomized) {
  SimdOverrideGuard guard(1);
  std::mt19937 rng(29);
  for (size_t n : kLengths) {
    if (n == 0) continue;
    std::vector<int32_t> src32(n);
    std::vector<int64_t> src64(n);
    std::vector<double> srcd(n);
    std::vector<uint8_t> srcb(n);
    for (size_t i = 0; i < n; ++i) {
      src32[i] = static_cast<int32_t>(rng());
      src64[i] = static_cast<int64_t>(rng()) << 13;
      srcd[i] = static_cast<double>(static_cast<int32_t>(rng())) / 3.0;
      srcb[i] = static_cast<uint8_t>(rng() & 1);
    }
    for (int density : {50, 500, 1000}) {
      SelectionVector sel = RandomSelection(rng, n, density);
      size_t k = sel.size();
      std::vector<int32_t> got32(k), want32(k);
      std::vector<int64_t> got64(k), want64(k);
      std::vector<double> gotd(k), wantd(k);
      std::vector<uint8_t> gotb(k), wantb(k);
      if (k > 0) {
        GatherInt32(src32.data(), sel.data(), k, got32.data());
        scalar::GatherInt32(src32.data(), sel.data(), k, want32.data());
        GatherInt64(src64.data(), sel.data(), k, got64.data());
        scalar::GatherInt64(src64.data(), sel.data(), k, want64.data());
        GatherDouble(srcd.data(), sel.data(), k, gotd.data());
        scalar::GatherDouble(srcd.data(), sel.data(), k, wantd.data());
        GatherBytes(srcb.data(), sel.data(), k, gotb.data());
        scalar::GatherBytes(srcb.data(), sel.data(), k, wantb.data());
      }
      EXPECT_EQ(got32, want32);
      EXPECT_EQ(got64, want64);
      EXPECT_EQ(gotd, wantd);
      EXPECT_EQ(gotb, wantb);
    }
  }
}

TEST(KernelFilterTest, Int64ExtremesMatchScalar) {
  // INT64_MIN/MAX literals exercise the sign-flip paths of the 64-bit
  // comparators.
  SimdOverrideGuard guard(1);
  std::vector<int64_t> vals = {INT64_MIN, -1, 0, 1, INT64_MAX,
                               INT64_MIN + 1, INT64_MAX - 1, 7, -7, 100};
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (CmpOp op : ops) {
    for (int64_t lit : {INT64_MIN, int64_t{0}, INT64_MAX}) {
      CheckFilter(
          [&](uint32_t* out) {
            return FilterInt64(vals.data(), nullptr, vals.size(), op, lit,
                               out);
          },
          [&](uint32_t* out) {
            return scalar::FilterInt64(vals.data(), nullptr, vals.size(),
                                       op, lit, out);
          },
          vals.size());
    }
  }
}

}  // namespace
}  // namespace kernels
}  // namespace vdm
