// Unit tests for the optimizer's property derivation: unique keys,
// constant pinning, provenance, join-cardinality analysis — including the
// capability gates that model the paper's weaker optimizers.
#include <gtest/gtest.h>

#include "optimizer/properties.h"
#include "plan/plan_builder.h"

namespace vdm {
namespace {

TableSchema Orders() {
  TableSchema schema("orders");
  schema.AddColumn("o_orderkey", DataType::Int64(), false)
      .AddColumn("o_custkey", DataType::Int64(), false)
      .AddColumn("o_total", DataType::Decimal(2));
  schema.SetPrimaryKey({"o_orderkey"});
  return schema;
}

TableSchema Customer() {
  TableSchema schema("customer");
  schema.AddColumn("c_custkey", DataType::Int64(), false)
      .AddColumn("c_name", DataType::String())
      .AddColumn("c_nation", DataType::Int64());
  schema.SetPrimaryKey({"c_custkey"});
  return schema;
}

TableSchema Lineitem() {
  TableSchema schema("lineitem");
  schema.AddColumn("l_orderkey", DataType::Int64(), false)
      .AddColumn("l_linenumber", DataType::Int64(), false)
      .AddColumn("l_qty", DataType::Int64());
  schema.SetPrimaryKey({"l_orderkey", "l_linenumber"});
  return schema;
}

bool HasKey(const RelProps& props, std::vector<std::string> key) {
  std::sort(key.begin(), key.end());
  for (const auto& existing : props.unique_keys) {
    if (existing == key) return true;
  }
  return false;
}

TEST(PropertiesTest, ScanDerivesBaseKeys) {
  PlanRef plan = PlanBuilder::ScanSchema(Customer(), "c").Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(props, {"c.c_custkey"}));
  ASSERT_TRUE(props.origins.count("c.c_name"));
  EXPECT_EQ(props.origins.at("c.c_name").table, "customer");
  EXPECT_EQ(props.origins.at("c.c_name").column, "c_name");
  EXPECT_FALSE(props.origins.at("c.c_name").null_extended);
}

TEST(PropertiesTest, BaseKeysGatedByConfig) {
  PlanRef plan = PlanBuilder::ScanSchema(Customer(), "c").Build();
  DerivationConfig config;
  config.base_table_keys = false;  // "System X"
  RelProps props = DeriveProps(plan, config);
  EXPECT_TRUE(props.unique_keys.empty());
}

TEST(PropertiesTest, DeclaredKeysGatedByTrust) {
  TableSchema schema("d");
  schema.AddColumn("k", DataType::Int64());
  schema.AddDeclaredUniqueKey({"k"});
  PlanRef plan = PlanBuilder::ScanSchema(schema, "d").Build();
  RelProps trusted = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(trusted, {"d.k"}));
  DerivationConfig untrusting;
  untrusting.trust_declared_cardinality = false;
  RelProps skeptical = DeriveProps(plan, untrusting);
  EXPECT_FALSE(HasKey(skeptical, {"d.k"}));
}

TEST(PropertiesTest, FilterPinsConstantsAndReducesKeys) {
  PlanRef plan = PlanBuilder::ScanSchema(Lineitem(), "l")
                     .Filter(Eq(Col("l.l_linenumber"), LitInt(1)))
                     .Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(props, {"l.l_orderkey", "l.l_linenumber"}));
  // AJ 2a-3: the pinned component drops out of the composite key.
  EXPECT_TRUE(HasKey(props, {"l.l_orderkey"}));
  ASSERT_TRUE(props.constants.count("l.l_linenumber"));
  EXPECT_EQ(props.constants.at("l.l_linenumber"), Value::Int64(1));
}

TEST(PropertiesTest, ConstPinningGate) {
  PlanRef plan = PlanBuilder::ScanSchema(Lineitem(), "l")
                     .Filter(Eq(Col("l.l_linenumber"), LitInt(1)))
                     .Build();
  DerivationConfig config;
  config.const_pinning = false;
  RelProps props = DeriveProps(plan, config);
  EXPECT_FALSE(HasKey(props, {"l.l_orderkey"}));
}

TEST(PropertiesTest, AlwaysFalseFilterMarksEmpty) {
  PlanRef plan = PlanBuilder::ScanSchema(Customer(), "c")
                     .Filter(Eq(LitInt(1), LitInt(0)))
                     .Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(props.empty_relation);
}

TEST(PropertiesTest, ProjectRenamesKeysAndOrigins) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Customer(), "c")
          .ProjectColumns({"c.c_custkey", "c.c_name"}, {"id", "name"})
          .Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(props, {"id"}));
  EXPECT_EQ(props.origins.at("name").column, "c_name");
  // Computed expressions have no origin.
  PlanRef computed =
      PlanBuilder::ScanSchema(Customer(), "c")
          .Project({{Bin(BinaryOpKind::kAdd, Col("c.c_custkey"), LitInt(1)),
                     "k1"}})
          .Build();
  RelProps computed_props = DeriveProps(computed, DerivationConfig{});
  EXPECT_EQ(computed_props.origins.count("k1"), 0u);
  EXPECT_TRUE(computed_props.unique_keys.empty());
}

TEST(PropertiesTest, AggregateGroupKeysGated) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Lineitem(), "l")
          .Aggregate({{Col("l.l_orderkey"), "l.l_orderkey"}},
                     {{Agg(AggKind::kSum, Col("l.l_qty")), "qty"}})
          .Build();
  RelProps with = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(with, {"l.l_orderkey"}));
  DerivationConfig config;
  config.groupby_keys = false;  // "System Y"
  RelProps without = DeriveProps(plan, config);
  EXPECT_FALSE(HasKey(without, {"l.l_orderkey"}));
}

TEST(PropertiesTest, GlobalAggregateIsSingleRow) {
  PlanRef plan = PlanBuilder::ScanSchema(Lineitem(), "l")
                     .Aggregate({}, {{CountStar(), "n"}})
                     .Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(props, {"n"}));
}

TEST(PropertiesTest, KeysThroughSortAndLimitGated) {
  PlanRef plan = PlanBuilder::ScanSchema(Customer(), "c")
                     .Sort({{Col("c.c_name"), true}})
                     .Limit(100)
                     .Build();
  RelProps with = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(with, {"c.c_custkey"}));
  DerivationConfig config;
  config.keys_through_order_limit = false;  // everyone but HANA (UAJ 1b)
  RelProps without = DeriveProps(plan, config);
  EXPECT_TRUE(without.unique_keys.empty());
}

TEST(PropertiesTest, JoinPreservesAnchorKeysThroughAugmentation) {
  PlanBuilder orders = PlanBuilder::ScanSchema(Orders(), "o");
  PlanBuilder customer = PlanBuilder::ScanSchema(Customer(), "c");
  PlanRef plan = orders
                     .Join(customer, JoinType::kLeftOuter,
                           Eq(Col("o.o_custkey"), Col("c.c_custkey")))
                     .Build();
  RelProps with = DeriveProps(plan, DerivationConfig{});
  EXPECT_TRUE(HasKey(with, {"o.o_orderkey"}));
  // Right-side origins become null-extended under LOJ.
  EXPECT_TRUE(with.origins.at("c.c_name").null_extended);
  EXPECT_FALSE(with.origins.at("o.o_custkey").null_extended);

  DerivationConfig config;
  config.keys_through_joins = false;  // "Postgres" / "System Y"
  RelProps without = DeriveProps(plan, config);
  EXPECT_FALSE(HasKey(without, {"o.o_orderkey"}));
}

TEST(PropertiesTest, JoinOnNonKeyGivesCombinedKeyOnly) {
  PlanBuilder orders = PlanBuilder::ScanSchema(Orders(), "o");
  PlanBuilder customer = PlanBuilder::ScanSchema(Customer(), "c");
  PlanRef plan = orders
                     .Join(customer, JoinType::kLeftOuter,
                           Eq(Col("o.o_custkey"), Col("c.c_nation")))
                     .Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  // Matching may duplicate anchor rows: o_orderkey alone is not a key.
  EXPECT_FALSE(HasKey(props, {"o.o_orderkey"}));
  EXPECT_TRUE(HasKey(props, {"o.o_orderkey", "c.c_custkey"}));
}

TEST(JoinAnalysisTest, AtMostOneViaKeyCoverage) {
  PlanBuilder orders = PlanBuilder::ScanSchema(Orders(), "o");
  PlanBuilder customer = PlanBuilder::ScanSchema(Customer(), "c");
  auto join = std::make_shared<JoinOp>(
      orders.Build(), customer.Build(), JoinType::kLeftOuter,
      Eq(Col("o.o_custkey"), Col("c.c_custkey")));
  DerivationConfig config;
  RelProps left = DeriveProps(join->left(), config);
  RelProps right = DeriveProps(join->right(), config);
  JoinAnalysis analysis = AnalyzeJoin(*join, left, right, config);
  EXPECT_TRUE(analysis.right_at_most_one);
  EXPECT_FALSE(analysis.right_exactly_one);  // no FK
  EXPECT_TRUE(analysis.purely_augmenting);   // LOJ + at-most-one
  ASSERT_EQ(analysis.equi_pairs.size(), 1u);
  EXPECT_EQ(analysis.equi_pairs[0].first, "o.o_custkey");
  EXPECT_EQ(analysis.equi_pairs[0].second, "c.c_custkey");
}

TEST(JoinAnalysisTest, InnerJoinWithoutFkIsNotAugmenting) {
  PlanBuilder orders = PlanBuilder::ScanSchema(Orders(), "o");
  PlanBuilder customer = PlanBuilder::ScanSchema(Customer(), "c");
  auto join = std::make_shared<JoinOp>(
      orders.Build(), customer.Build(), JoinType::kInner,
      Eq(Col("o.o_custkey"), Col("c.c_custkey")));
  DerivationConfig config;
  RelProps left = DeriveProps(join->left(), config);
  RelProps right = DeriveProps(join->right(), config);
  JoinAnalysis analysis = AnalyzeJoin(*join, left, right, config);
  EXPECT_TRUE(analysis.right_at_most_one);
  // An inner join may filter: not purely augmenting without exactly-one.
  EXPECT_FALSE(analysis.purely_augmenting);
}

TEST(JoinAnalysisTest, ForeignKeyGivesExactlyOne) {
  TableSchema orders = Orders();
  orders.AddForeignKey({"o_custkey"}, "customer", {"c_custkey"});
  auto join = std::make_shared<JoinOp>(
      PlanBuilder::ScanSchema(orders, "o").Build(),
      PlanBuilder::ScanSchema(Customer(), "c").Build(), JoinType::kInner,
      Eq(Col("o.o_custkey"), Col("c.c_custkey")));
  DerivationConfig config;
  RelProps left = DeriveProps(join->left(), config);
  RelProps right = DeriveProps(join->right(), config);
  JoinAnalysis analysis = AnalyzeJoin(*join, left, right, config);
  EXPECT_TRUE(analysis.right_exactly_one);
  EXPECT_TRUE(analysis.purely_augmenting);
}

TEST(JoinAnalysisTest, NullableFkColumnBlocksExactlyOne) {
  TableSchema orders("orders");
  orders.AddColumn("o_orderkey", DataType::Int64(), false)
      .AddColumn("o_custkey", DataType::Int64(), /*nullable=*/true);
  orders.SetPrimaryKey({"o_orderkey"});
  orders.AddForeignKey({"o_custkey"}, "customer", {"c_custkey"});
  auto join = std::make_shared<JoinOp>(
      PlanBuilder::ScanSchema(orders, "o").Build(),
      PlanBuilder::ScanSchema(Customer(), "c").Build(), JoinType::kInner,
      Eq(Col("o.o_custkey"), Col("c.c_custkey")));
  DerivationConfig config;
  RelProps left = DeriveProps(join->left(), config);
  RelProps right = DeriveProps(join->right(), config);
  JoinAnalysis analysis = AnalyzeJoin(*join, left, right, config);
  // A NULL o_custkey row would be filtered by the inner join.
  EXPECT_FALSE(analysis.right_exactly_one);
}

TEST(JoinAnalysisTest, DeclaredCardinalityRespected) {
  TableSchema plain("p");
  plain.AddColumn("x", DataType::Int64());
  auto join = std::make_shared<JoinOp>(
      PlanBuilder::ScanSchema(Orders(), "o").Build(),
      PlanBuilder::ScanSchema(plain, "p").Build(), JoinType::kLeftOuter,
      Eq(Col("o.o_custkey"), Col("p.x")), DeclaredCardinality::kAtMostOne);
  DerivationConfig config;
  RelProps left = DeriveProps(join->left(), config);
  RelProps right = DeriveProps(join->right(), config);
  EXPECT_TRUE(AnalyzeJoin(*join, left, right, config).purely_augmenting);
  config.trust_declared_cardinality = false;
  EXPECT_FALSE(AnalyzeJoin(*join, left, right, config).purely_augmenting);
}

TEST(JoinAnalysisTest, EmptyAugmenterIsAtMostOne) {
  auto join = std::make_shared<JoinOp>(
      PlanBuilder::ScanSchema(Orders(), "o").Build(),
      PlanBuilder::ScanSchema(Customer(), "c")
          .Filter(LitBool(false))
          .Build(),
      JoinType::kLeftOuter, Eq(Col("o.o_custkey"), Col("c.c_nation")));
  DerivationConfig config;
  RelProps left = DeriveProps(join->left(), config);
  RelProps right = DeriveProps(join->right(), config);
  EXPECT_TRUE(right.empty_relation);
  EXPECT_TRUE(AnalyzeJoin(*join, left, right, config).purely_augmenting);
}

// --- UNION ALL key derivation (Fig. 12) ------------------------------------

PlanRef BranchIdUnion() {
  TableSchema active("active");
  active.AddColumn("k", DataType::Int64(), false);
  active.SetPrimaryKey({"k"});
  TableSchema draft("draft");
  draft.AddColumn("k", DataType::Int64(), false);
  draft.SetPrimaryKey({"k"});
  PlanBuilder a = PlanBuilder::ScanSchema(active, "a").Project(
      {{Col("a.k"), "k"}, {LitInt(1), "bid"}});
  PlanBuilder d = PlanBuilder::ScanSchema(draft, "d").Project(
      {{Col("d.k"), "k"}, {LitInt(2), "bid"}});
  return PlanBuilder::UnionAll({a, d}, {"k", "bid"}).Build();
}

TEST(UnionPropertiesTest, BranchIdKeyDerived) {
  RelProps props = DeriveProps(BranchIdUnion(), DerivationConfig{});
  bool found = false;
  for (const auto& key : props.unique_keys) {
    if (key == std::vector<std::string>{"bid", "k"}) found = true;
  }
  EXPECT_TRUE(found);
  // Plain k alone is NOT unique across branches.
  for (const auto& key : props.unique_keys) {
    EXPECT_NE(key, std::vector<std::string>{"k"});
  }
}

TEST(UnionPropertiesTest, UnionKeysGated) {
  DerivationConfig config;
  config.keys_through_union_all = false;
  RelProps props = DeriveProps(BranchIdUnion(), config);
  EXPECT_TRUE(props.unique_keys.empty());
}

TEST(UnionPropertiesTest, DisjointSubsetsPreserveKey) {
  TableSchema t("t");
  t.AddColumn("k", DataType::Int64(), false)
      .AddColumn("status", DataType::Int64());
  t.SetPrimaryKey({"k"});
  PlanBuilder c1 = PlanBuilder::ScanSchema(t, "x")
                       .Filter(Eq(Col("x.status"), LitInt(1)))
                       .ProjectColumns({"x.k"}, {"k"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(t, "y")
                       .Filter(Eq(Col("y.status"), LitInt(2)))
                       .ProjectColumns({"y.k"}, {"k"});
  PlanRef plan = PlanBuilder::UnionAll({c1, c2}, {"k"}).Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  bool found = false;
  for (const auto& key : props.unique_keys) {
    if (key == std::vector<std::string>{"k"}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(UnionPropertiesTest, OverlappingSubsetsDoNotPreserveKey) {
  TableSchema t("t");
  t.AddColumn("k", DataType::Int64(), false)
      .AddColumn("status", DataType::Int64());
  t.SetPrimaryKey({"k"});
  // Same constant on both branches: rows can appear twice.
  PlanBuilder c1 = PlanBuilder::ScanSchema(t, "x")
                       .Filter(Eq(Col("x.status"), LitInt(1)))
                       .ProjectColumns({"x.k"}, {"k"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(t, "y")
                       .Filter(Eq(Col("y.status"), LitInt(1)))
                       .ProjectColumns({"y.k"}, {"k"});
  PlanRef plan = PlanBuilder::UnionAll({c1, c2}, {"k"}).Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  for (const auto& key : props.unique_keys) {
    EXPECT_NE(key, std::vector<std::string>{"k"});
  }
}

TEST(UnionPropertiesTest, LogicalTableOriginAgreement) {
  TableSchema active("active");
  active.AddColumn("k", DataType::Int64(), false);
  active.SetPrimaryKey({"k"});
  TableSchema draft("draft");
  draft.AddColumn("k", DataType::Int64(), false);
  draft.SetPrimaryKey({"k"});
  PlanBuilder a = PlanBuilder::ScanSchema(active, "a").ProjectColumns(
      {"a.k"}, {"k"});
  PlanBuilder d = PlanBuilder::ScanSchema(draft, "d").ProjectColumns(
      {"d.k"}, {"k"});
  PlanRef plan =
      PlanBuilder::UnionAll({a, d}, {"k"}, -1, "document").Build();
  RelProps props = DeriveProps(plan, DerivationConfig{});
  ASSERT_TRUE(props.origins.count("k"));
  EXPECT_EQ(props.origins.at("k").table, "document");
  EXPECT_EQ(props.origins.at("k").column, "k");
  EXPECT_EQ(props.origins.at("k").source_id, plan->id());
}

}  // namespace
}  // namespace vdm
