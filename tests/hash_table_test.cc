// Unit tests for the typed executor hash tables: key-layout selection
// (including shared-dictionary detection), match order, NULL handling,
// serialized fallback, group-id assignment, and parallel builds.
#include <gtest/gtest.h>

#include <memory>

#include "common/thread_pool.h"
#include "exec/hash_table.h"

namespace vdm {
namespace {

ColumnData IntCol(std::vector<int64_t> values) {
  ColumnData col(DataType::Int64());
  for (int64_t v : values) col.AppendInt(v);
  return col;
}

ColumnData StringCol(std::vector<std::string> values) {
  ColumnData col(DataType::String());
  for (std::string& v : values) col.AppendString(std::move(v));
  return col;
}

/// A string column annotated with the given dictionary (codes index it).
ColumnData DictCol(std::shared_ptr<const std::vector<std::string>> dict,
                   std::vector<int32_t> codes) {
  ColumnData col(DataType::String());
  for (int32_t code : codes) {
    if (code < 0) {
      col.AppendNull();
    } else {
      col.AppendString((*dict)[static_cast<size_t>(code)]);
    }
  }
  col.SetDictionary(std::move(dict), std::move(codes));
  return col;
}

TEST(ChooseKeyLayoutTest, SingleIntIsInt64) {
  ColumnData build = IntCol({1, 2});
  ColumnData probe = IntCol({2, 3});
  EXPECT_EQ(ChooseKeyLayout({&build}, {&probe}), KeyLayout::kInt64);
  EXPECT_EQ(ChooseKeyLayout({&build}, {}), KeyLayout::kInt64);
}

TEST(ChooseKeyLayoutTest, TwoFixedColumnsPack) {
  ColumnData a = IntCol({1});
  ColumnData b = IntCol({2});
  EXPECT_EQ(ChooseKeyLayout({&a, &b}, {}), KeyLayout::kPacked16);
}

TEST(ChooseKeyLayoutTest, SharedDictionaryUsesCodes) {
  auto dict = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"x", "y"});
  ColumnData build = DictCol(dict, {0, 1});
  ColumnData probe = DictCol(dict, {1, 0});
  EXPECT_EQ(ChooseKeyLayout({&build}, {&probe}), KeyLayout::kDict32);
  // Group tables only need their own side's dictionary.
  EXPECT_EQ(ChooseKeyLayout({&build}, {}), KeyLayout::kDict32);
}

TEST(ChooseKeyLayoutTest, DifferentSortedDictionariesTranslate) {
  // Distinct but sorted dictionaries still run on codes: the join table
  // builds a one-time probe-code -> build-code map.
  auto d1 = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"x"});
  auto d2 = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"x"});
  ColumnData build = DictCol(d1, {0});
  ColumnData probe = DictCol(d2, {0});
  EXPECT_EQ(ChooseKeyLayout({&build}, {&probe}), KeyLayout::kDict32);
}

TEST(ChooseKeyLayoutTest, UnsortedDictionariesFallBack) {
  // Code translation needs both dictionaries sorted; ad-hoc annotations
  // that are not keep the serialized layout.
  auto d1 = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"y", "x"});
  auto d2 = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"x"});
  ColumnData build = DictCol(d1, {0, 1});
  ColumnData probe = DictCol(d2, {0});
  EXPECT_EQ(ChooseKeyLayout({&build}, {&probe}), KeyLayout::kSerialized);
}

TEST(ChooseKeyLayoutTest, PlainStringsSerialize) {
  ColumnData build = StringCol({"a"});
  ColumnData probe = StringCol({"a"});
  EXPECT_EQ(ChooseKeyLayout({&build}, {&probe}), KeyLayout::kSerialized);
}

TEST(ChooseKeyLayoutTest, ThreeColumnsSerialize) {
  ColumnData a = IntCol({1}), b = IntCol({2}), c = IntCol({3});
  EXPECT_EQ(ChooseKeyLayout({&a, &b, &c}, {}), KeyLayout::kSerialized);
}

std::vector<size_t> ProbeAll(const JoinHashTable& table, size_t row) {
  JoinHashTable::Prober prober(table);
  std::vector<size_t> out;
  prober.ProbeRow(row, &out);
  return out;
}

TEST(JoinHashTableTest, Int64MatchesAscendInBuildOrder) {
  ColumnData build = IntCol({7, 2, 7, 7, 5});
  ColumnData probe = IntCol({7, 5, 9});
  JoinHashTable table({&build}, {&probe});
  table.Build(nullptr);
  EXPECT_EQ(table.layout(), KeyLayout::kInt64);
  EXPECT_EQ(table.num_entries(), 5u);
  EXPECT_EQ(ProbeAll(table, 0), (std::vector<size_t>{0, 2, 3}));
  EXPECT_EQ(ProbeAll(table, 1), (std::vector<size_t>{4}));
  EXPECT_TRUE(ProbeAll(table, 2).empty());
}

TEST(JoinHashTableTest, NullKeysNeverJoin) {
  ColumnData build = IntCol({1});
  build.AppendNull();
  ColumnData probe = IntCol({1});
  probe.AppendNull();
  JoinHashTable table({&build}, {&probe});
  table.Build(nullptr);
  EXPECT_EQ(table.num_entries(), 1u);       // the NULL build row is skipped
  EXPECT_EQ(ProbeAll(table, 0), (std::vector<size_t>{0}));
  EXPECT_TRUE(ProbeAll(table, 1).empty());  // NULL probe matches nothing
}

TEST(JoinHashTableTest, DictCodesJoin) {
  auto dict = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"a", "b", "c"});
  ColumnData build = DictCol(dict, {1, 0, 1, -1});
  ColumnData probe = DictCol(dict, {1, 2, -1});
  JoinHashTable table({&build}, {&probe});
  table.Build(nullptr);
  EXPECT_EQ(table.layout(), KeyLayout::kDict32);
  EXPECT_EQ(table.num_entries(), 3u);
  EXPECT_EQ(ProbeAll(table, 0), (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(ProbeAll(table, 1).empty());
  EXPECT_TRUE(ProbeAll(table, 2).empty());  // NULL code
}

TEST(JoinHashTableTest, TranslatedDictCodesJoin) {
  // Build and probe sides carry different sorted dictionaries: probe
  // codes go through the translation map. "d" exists only on the probe
  // side (maps to -1, never matches); "a" only on the build side.
  auto bd = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"a", "b", "c"});
  auto pd = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"b", "c", "d"});
  ColumnData build = DictCol(bd, {1, 0, 1, 2, -1});  // b a b c NULL
  ColumnData probe = DictCol(pd, {0, 1, 2, -1});     // b c d NULL
  JoinHashTable table({&build}, {&probe});
  table.Build(nullptr);
  EXPECT_EQ(table.layout(), KeyLayout::kDict32);
  EXPECT_EQ(ProbeAll(table, 0), (std::vector<size_t>{0, 2}));  // "b"
  EXPECT_EQ(ProbeAll(table, 1), (std::vector<size_t>{3}));     // "c"
  EXPECT_TRUE(ProbeAll(table, 2).empty());  // "d": absent from build dict
  EXPECT_TRUE(ProbeAll(table, 3).empty());  // NULL
}

TEST(JoinHashTableTest, PackedTwoColumnKey) {
  ColumnData b1 = IntCol({1, 1, 2});
  ColumnData b2 = IntCol({10, 11, 10});
  ColumnData p1 = IntCol({1, 2});
  ColumnData p2 = IntCol({11, 99});
  JoinHashTable table({&b1, &b2}, {&p1, &p2});
  table.Build(nullptr);
  EXPECT_EQ(table.layout(), KeyLayout::kPacked16);
  EXPECT_EQ(ProbeAll(table, 0), (std::vector<size_t>{1}));
  EXPECT_TRUE(ProbeAll(table, 1).empty());
}

TEST(JoinHashTableTest, SerializedFallbackMatches) {
  ColumnData build = StringCol({"x", "y", "x"});
  ColumnData probe = StringCol({"x", "z"});
  JoinHashTable table({&build}, {&probe});
  table.Build(nullptr);
  EXPECT_EQ(table.layout(), KeyLayout::kSerialized);
  EXPECT_EQ(ProbeAll(table, 0), (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(ProbeAll(table, 1).empty());
}

TEST(JoinHashTableTest, ParallelBuildMatchesSerial) {
  // Enough rows to trigger the partitioned parallel build.
  std::vector<int64_t> build_keys, probe_keys;
  for (int64_t i = 0; i < 50000; ++i) build_keys.push_back(i % 997);
  for (int64_t i = 0; i < 200; ++i) probe_keys.push_back(i * 13 % 1200);
  ColumnData build = IntCol(build_keys);
  ColumnData probe = IntCol(probe_keys);

  JoinHashTable serial({&build}, {&probe});
  serial.Build(nullptr);
  ThreadPool pool(4);
  JoinHashTable parallel({&build}, {&probe});
  parallel.Build(&pool);

  EXPECT_EQ(serial.num_entries(), parallel.num_entries());
  for (size_t r = 0; r < probe_keys.size(); ++r) {
    EXPECT_EQ(ProbeAll(serial, r), ProbeAll(parallel, r)) << "probe row " << r;
  }
}

TEST(GroupKeyTableTest, FirstOccurrenceIds) {
  ColumnData keys = IntCol({5, 7, 5, 9, 7, 5});
  GroupKeyTable table({&keys});
  std::vector<size_t> ids;
  for (size_t r = 0; r < keys.size(); ++r) ids.push_back(table.GetOrAdd(r));
  EXPECT_EQ(ids, (std::vector<size_t>{0, 1, 0, 2, 1, 0}));
  EXPECT_EQ(table.num_groups(), 3u);
}

TEST(GroupKeyTableTest, NullIsItsOwnGroup) {
  ColumnData keys = IntCol({1});
  keys.AppendNull();
  keys.AppendInt(1);
  keys.AppendNull();
  GroupKeyTable table({&keys});
  EXPECT_EQ(table.GetOrAdd(0), 0u);
  EXPECT_EQ(table.GetOrAdd(1), 1u);
  EXPECT_EQ(table.GetOrAdd(2), 0u);
  EXPECT_EQ(table.GetOrAdd(3), 1u);
  EXPECT_EQ(table.num_groups(), 2u);
}

TEST(GroupKeyTableTest, DictLayoutGroupsNullInBand) {
  auto dict = std::make_shared<const std::vector<std::string>>(
      std::vector<std::string>{"a", "b"});
  ColumnData keys = DictCol(dict, {0, -1, 1, 0, -1});
  GroupKeyTable table({&keys});
  EXPECT_EQ(table.layout(), KeyLayout::kDict32);
  EXPECT_EQ(table.GetOrAdd(0), 0u);
  EXPECT_EQ(table.GetOrAdd(1), 1u);
  EXPECT_EQ(table.GetOrAdd(2), 2u);
  EXPECT_EQ(table.GetOrAdd(3), 0u);
  EXPECT_EQ(table.GetOrAdd(4), 1u);
}

TEST(GroupKeyTableTest, GrowthKeepsIdsStable) {
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 5000; ++i) values.push_back(i);
  ColumnData keys = IntCol(values);
  GroupKeyTable table({&keys});
  for (size_t r = 0; r < keys.size(); ++r) {
    ASSERT_EQ(table.GetOrAdd(r), r);  // all distinct -> id == row
  }
  // Revisiting after growth finds the same ids.
  for (size_t r = 0; r < keys.size(); ++r) {
    ASSERT_EQ(table.GetOrAdd(r), r);
  }
  EXPECT_EQ(table.num_groups(), 5000u);
}

TEST(GroupKeyTableTest, MultiColumnSerializes) {
  ColumnData a = IntCol({1, 1, 2, 1});
  ColumnData b = IntCol({1, 2, 1, 1});
  GroupKeyTable table({&a, &b});
  EXPECT_EQ(table.layout(), KeyLayout::kSerialized);
  EXPECT_EQ(table.GetOrAdd(0), 0u);
  EXPECT_EQ(table.GetOrAdd(1), 1u);
  EXPECT_EQ(table.GetOrAdd(2), 2u);
  EXPECT_EQ(table.GetOrAdd(3), 0u);
}

}  // namespace
}  // namespace vdm
