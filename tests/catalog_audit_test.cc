// Tests for the whole-catalog semantic audit (analysis/catalog_audit.h):
// fixture precision (every planted removable self-join found, zero false
// positives on the near-misses), byte-identical results with the general
// self-join rule on and off, the baseline/fail-on CI gate, SARIF output,
// and golden finding snapshots for the synthetic-VDM and S/4 catalogs
// (regenerate with VDM_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/catalog_audit.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "plan/plan_printer.h"
#include "testing/differential.h"
#include "vdm/generator.h"
#include "vdm/jeib.h"
#include "workload/s4.h"

namespace vdm {
namespace {

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(GOLDEN_DIR) + "/" + name + ".txt";
  if (std::getenv("VDM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "updated " << path;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with VDM_UPDATE_GOLDEN=1 to create it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "finding drift for " << name << "; if intentional, regenerate via "
      << "VDM_UPDATE_GOLDEN=1 and review the tests/golden/ diff";
}

class CatalogAuditTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    SyntheticVdmOptions options;
    options.base_rows = 200;
    options.dim_rows = 50;
    ASSERT_TRUE(CreateSyntheticVdmSchema(db_, options).ok());
    ASSERT_TRUE(LoadSyntheticVdmData(db_, options).ok());
    Result<SelfJoinFixture> fixture = CreateSelfJoinFixtureViews(db_);
    ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
    fixture_ = new SelfJoinFixture(std::move(*fixture));
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static CatalogAuditReport Audit() {
    CatalogAuditOptions options;
    options.probe_profiles = false;  // static classification only
    Result<CatalogAuditReport> report = AuditCatalog(db_->catalog(), options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : CatalogAuditReport{};
  }

  static Database* db_;
  static SelfJoinFixture* fixture_;
};

Database* CatalogAuditTest::db_ = nullptr;
SelfJoinFixture* CatalogAuditTest::fixture_ = nullptr;

TEST_F(CatalogAuditTest, FixturePrecisionAndRecall) {
  ASSERT_GE(fixture_->removable.size(), 5u);
  ASSERT_GE(fixture_->near_miss.size(), 5u);
  CatalogAuditReport report = Audit();
  EXPECT_TRUE(report.errors.empty());

  std::map<std::string, int> removable_findings;
  for (const AuditFinding& f : report.findings) {
    if (f.rule == "removable-join") removable_findings[f.view]++;
  }
  // Recall: every planted removable self-join is reported.
  for (const std::string& view : fixture_->removable) {
    EXPECT_EQ(removable_findings[view], 1) << view;
  }
  // Precision: zero false positives on the near-miss views.
  for (const std::string& view : fixture_->near_miss) {
    EXPECT_EQ(removable_findings[view], 0) << view;
  }
}

TEST_F(CatalogAuditTest, SelfJoinRuleOnOffResultsIdentical) {
  // The metamorphic contract behind every removable-join finding: turning
  // the rewrite on must not change any view's result rows.
  std::vector<std::string> views = fixture_->removable;
  views.insert(views.end(), fixture_->near_miss.begin(),
               fixture_->near_miss.end());
  for (const std::string& view : views) {
    const std::string sql = "select * from " + view;
    OptimizerConfig on = ConfigForProfile(SystemProfile::kHana);
    on.selfjoin_general = true;
    OptimizerConfig off = on;
    off.selfjoin_general = false;

    db_->SetOptimizerConfig(on);
    Result<Chunk> with_rule = db_->Query(sql);
    ASSERT_TRUE(with_rule.ok()) << view << ": "
                                << with_rule.status().ToString();
    db_->SetOptimizerConfig(off);
    Result<Chunk> without_rule = db_->Query(sql);
    ASSERT_TRUE(without_rule.ok()) << view << ": "
                                   << without_rule.status().ToString();
    EXPECT_EQ(NormalizeChunk(*with_rule, /*ordered=*/false),
              NormalizeChunk(*without_rule, /*ordered=*/false))
        << view;
  }
  db_->SetProfile(SystemProfile::kHana);
}

TEST_F(CatalogAuditTest, RuleActuallyRemovesFixtureJoins) {
  for (const std::string& view : fixture_->removable) {
    Result<PlanRef> bound = db_->BindQuery("select * from " + view);
    ASSERT_TRUE(bound.ok()) << view;
    OptimizerConfig on = ConfigForProfile(SystemProfile::kHana);
    OptimizerConfig off = on;
    // The older augmentation-self-join rule already handles the plain PK
    // shapes; disable both to see the join survive.
    off.selfjoin_general = false;
    off.asj_elimination = false;
    // sjfix_third keeps its dimension join; compare counts, not zero.
    size_t joins_on =
        ComputePlanStats(Optimizer(on).Optimize(*bound)).joins;
    size_t joins_off =
        ComputePlanStats(Optimizer(off).Optimize(*bound)).joins;
    EXPECT_LT(joins_on, joins_off) << view;
  }
}

TEST_F(CatalogAuditTest, BaselineSuppressionAndFailOnGate) {
  CatalogAuditReport report = Audit();
  ASSERT_FALSE(report.findings.empty());

  // A full baseline suppresses everything.
  std::set<std::string> baseline = ParseBaseline(RenderBaseline(report));
  EXPECT_EQ(baseline.size(), report.findings.size());
  EXPECT_TRUE(FilterNewFindings(report, baseline).empty());

  // Dropping one fingerprint makes exactly that finding "new".
  std::set<std::string> partial = baseline;
  partial.erase(report.findings.front().fingerprint);
  std::vector<AuditFinding> fresh = FilterNewFindings(report, partial);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh.front().fingerprint, report.findings.front().fingerprint);

  // The gate fires at or below the finding's severity, not above it.
  ASSERT_EQ(fresh.front().severity, AuditSeverity::kWarning);
  EXPECT_TRUE(AnyAtOrAbove(fresh, AuditSeverity::kNote));
  EXPECT_TRUE(AnyAtOrAbove(fresh, AuditSeverity::kWarning));
  EXPECT_FALSE(AnyAtOrAbove(fresh, AuditSeverity::kError));

  // Comments and blank lines are ignored.
  EXPECT_TRUE(ParseBaseline("# comment\n\n  \n").empty());
  EXPECT_EQ(ParseBaseline("abcd1234 removable-join v\n").count("abcd1234"),
            1u);
}

TEST_F(CatalogAuditTest, SarifRendersEveryFinding) {
  CatalogAuditReport report = Audit();
  std::string sarif = RenderSarif(report);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"vdmlint\""), std::string::npos);
  for (const AuditFinding& f : report.findings) {
    EXPECT_NE(sarif.find(f.fingerprint), std::string::npos) << f.fingerprint;
    EXPECT_NE(sarif.find("\"" + f.view + "\""), std::string::npos) << f.view;
  }
  // Crude structural sanity: balanced braces/brackets.
  long depth = 0;
  for (char c : sarif) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(CatalogAuditTest, SeverityNamesRoundTrip) {
  EXPECT_EQ(ParseAuditSeverity("warning"), AuditSeverity::kWarning);
  EXPECT_EQ(ParseAuditSeverity("ERROR"), AuditSeverity::kError);
  EXPECT_EQ(ParseAuditSeverity("Note"), AuditSeverity::kNote);
  EXPECT_FALSE(ParseAuditSeverity("fatal").has_value());
  EXPECT_STREQ(AuditSeverityName(AuditSeverity::kError), "error");
}

TEST_F(CatalogAuditTest, GoldenFindingsFixtureCatalog) {
  CheckGolden("audit_findings_fixture", Audit().ToString());
}

// The two paper catalogs, audited end to end (fresh databases so the
// fixture views above don't leak into the snapshots).

TEST(CatalogAuditGoldenTest, SyntheticVdmCatalog) {
  Database db;
  SyntheticVdmOptions options;
  options.num_views = 4;
  options.base_rows = 100;
  options.dim_rows = 20;
  ASSERT_TRUE(CreateSyntheticVdmSchema(&db, options).ok());
  ASSERT_TRUE(LoadSyntheticVdmData(&db, options).ok());
  Result<std::vector<SyntheticViewSpec>> specs =
      GenerateSyntheticViews(&db, options);
  ASSERT_TRUE(specs.ok());
  int draft_seen = 0;
  for (SyntheticViewSpec& spec : *specs) {
    bool use_case_join = spec.draft_pattern && draft_seen++ % 2 == 0;
    ASSERT_TRUE(ExtendSyntheticView(&db, &spec, use_case_join).ok());
  }
  CatalogAuditOptions audit;
  audit.probe_profiles = false;
  Result<CatalogAuditReport> report = AuditCatalog(db.catalog(), audit);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->errors.empty());
  CheckGolden("audit_findings_synthetic", report->ToString());
}

// The stats rule fires only when collected statistics disprove a declared
// to-one: duplicate join keys on the right side. A genuinely unique
// dimension under the same declaration stays silent.
TEST(CatalogAuditStatsTest, StatsContradictedCardinality) {
  Database db;
  ASSERT_TRUE(
      db.Execute("create table fact (id int primary key, dk int not null)")
          .ok());
  ASSERT_TRUE(
      db.Execute("create table dup_dim (dk int not null, dname varchar(10))")
          .ok());
  ASSERT_TRUE(
      db.Execute("create table uniq_dim (dk int primary key, dname "
                 "varchar(10))")
          .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute(StrFormat("insert into fact values (%d, %d)", i,
                                     i % 10))
                    .ok());
    // 50 dup_dim rows but only 10 distinct dk values: ~5 rows per key.
    ASSERT_TRUE(db.Execute(StrFormat(
                       "insert into dup_dim values (%d, 'd%d')", i % 10, i))
                    .ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Execute(StrFormat(
                       "insert into uniq_dim values (%d, 'u%d')", i, i))
                    .ok());
  }
  ASSERT_TRUE(db.Execute("create view v_dup as select f.id, d.dname from "
                         "fact f left outer many to one join dup_dim d "
                         "on f.dk = d.dk")
                  .ok());
  ASSERT_TRUE(db.Execute("create view v_uniq as select f.id, d.dname from "
                         "fact f left outer many to one join uniq_dim d "
                         "on f.dk = d.dk")
                  .ok());

  CatalogAuditOptions options;
  options.probe_profiles = false;
  auto count_stats_findings = [&](const std::string& view) {
    Result<CatalogAuditReport> report = AuditCatalog(db.catalog(), options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    int n = 0;
    for (const AuditFinding& f : report->findings) {
      if (f.rule == "stats-contradicted-cardinality" && f.view == view) ++n;
    }
    return n;
  };

  db.AnalyzeTables();
  EXPECT_EQ(count_stats_findings("v_dup"), 1);
  EXPECT_EQ(count_stats_findings("v_uniq"), 0);
}

TEST(CatalogAuditGoldenTest, S4JeibCatalog) {
  Database db;
  S4Options s4;
  s4.acdoca_rows = 50;
  s4.dimension_rows = 20;
  ASSERT_TRUE(CreateS4Schema(&db, s4).ok());
  ASSERT_TRUE(LoadS4Data(&db, s4).ok());
  ASSERT_TRUE(BuildJournalEntryItemBrowser(&db).ok());
  CatalogAuditOptions audit;
  audit.probe_profiles = false;
  Result<CatalogAuditReport> report = AuditCatalog(db.catalog(), audit);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->errors.empty());
  CheckGolden("audit_findings_s4", report->ToString());
}

}  // namespace
}  // namespace vdm
