// Tests for the verification layer: PlanVerifier invariants on hand-built
// (and hand-corrupted) plans, the conservative independent key prover, and
// the RewriteAuditor catching a deliberately corrupted optimizer pass —
// both statically and backed by execution on real data.
#include <gtest/gtest.h>

#include "analysis/plan_verifier.h"
#include "analysis/rewrite_auditor.h"
#include "engine/database.h"
#include "expr/fold.h"
#include "optimizer/optimizer.h"
#include "plan/plan_builder.h"

namespace vdm {
namespace {

TableSchema Fact() {
  TableSchema schema("fact");
  schema.AddColumn("id", DataType::Int64(), false)
      .AddColumn("dim_key", DataType::Int64(), false)
      .AddColumn("amount", DataType::Decimal(2))
      .AddColumn("status", DataType::Int64());
  schema.SetPrimaryKey({"id"});
  return schema;
}

TableSchema Dim() {
  TableSchema schema("dim");
  schema.AddColumn("k", DataType::Int64(), false)
      .AddColumn("name", DataType::String())
      .AddColumn("attr", DataType::String());
  schema.SetPrimaryKey({"k"});
  return schema;
}

// --- structural invariants ---------------------------------------------------

TEST(PlanVerifierTest, AcceptsWellFormedPlan) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Filter(Eq(Col("f.status"), LitInt(1)))
          .Project({{Col("f.id"), "id"}, {Col("d.name"), "name"}})
          .Limit(10)
          .Build();
  EXPECT_TRUE(PlanVerifier::Verify(plan).ok());
  Result<VerifiedSchema> schema = PlanVerifier::VerifySchema(plan);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->names, (std::vector<std::string>{"id", "name"}));
  EXPECT_EQ(schema->types.at("name").id, TypeId::kString);
}

TEST(PlanVerifierTest, RejectsDanglingColumnRef) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .Filter(Eq(Col("f.no_such"), LitInt(1)))
                     .Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown column 'f.no_such'"),
            std::string::npos)
      << status.message();
  // The failing operator path is reported.
  EXPECT_NE(status.message().find("root/Filter"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsProjectionDroppedUnderneath) {
  // A projection that pruned away a column its parent still references.
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .ProjectColumns({"f.id"})
                     .Project({{Col("f.amount"), "amount"}})
                     .Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown column 'f.amount'"),
            std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsNonBooleanFilterPredicate) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f")
                     .Filter(Bin(BinaryOpKind::kAdd, Col("f.id"), LitInt(1)))
                     .Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not boolean"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsAggregateInFilterPredicate) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Filter(Eq(Agg(AggKind::kSum, Col("f.amount")), LitInt(1)))
          .Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("aggregate"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsNegativeLimit) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f").Limit(-3).Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("negative limit"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsBranchIdOutOfRange) {
  PlanBuilder c1 = PlanBuilder::ScanSchema(Fact(), "a").ProjectColumns(
      {"a.id"}, {"id"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(Fact(), "b").ProjectColumns(
      {"b.id"}, {"id"});
  PlanRef plan =
      PlanBuilder::UnionAll({c1, c2}, {"id"}, /*branch_id_column=*/3).Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("branch id column"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsUnionTypeMismatchAcrossBranches) {
  // Arity mismatches are caught at construction (VDM_CHECK); a branch
  // whose column changed type, however, only the verifier sees.
  PlanBuilder c1 = PlanBuilder::ScanSchema(Fact(), "a").ProjectColumns(
      {"a.id"}, {"id"});
  PlanBuilder c2 = PlanBuilder::ScanSchema(Dim(), "b").Project(
      {{Col("b.name"), "id"}});
  PlanRef plan = PlanBuilder::UnionAll({c1, c2}, {"id"}).Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("incompatible type"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, AggregateItemsSeeOnlyGroupOutputs) {
  // Selecting a non-grouped column outside an aggregate is the classic
  // invalid shape the binder rejects; a broken rewrite could reintroduce it.
  PlanRef bad =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.status"), "f.status"}},
                     {{Col("f.amount"), "amount"}})
          .Build();
  Status status = PlanVerifier::Verify(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("outside an aggregate"), std::string::npos)
      << status.message();

  // Group outputs and scalar expressions over aggregates are fine.
  PlanRef good =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.status"), "f.status"}},
                     {{Col("f.status"), "st"},
                      {Bin(BinaryOpKind::kAdd,
                           Agg(AggKind::kSum, Col("f.amount")),
                           LitInt(1)),
                       "total1"}})
          .Build();
  EXPECT_TRUE(PlanVerifier::Verify(good).ok());
}

TEST(PlanVerifierTest, DuplicateNamesLegalUnlessTypesConflict) {
  // The binder emits duplicate output names in ASJ shapes; the executor
  // resolves to the first occurrence. Compatible duplicates are fine.
  PlanRef ok = PlanBuilder::ScanSchema(Fact(), "f")
                   .Project({{Col("f.id"), "k"}, {Col("f.status"), "k"}})
                   .Project({{Col("k"), "k"}})
                   .Build();
  EXPECT_TRUE(PlanVerifier::Verify(ok).ok());

  // A type-conflicting duplicate is unreferencable: value resolution
  // (first wins) and type environments (last wins) disagree.
  PlanRef bad = PlanBuilder::ScanSchema(Fact(), "f")
                    .Project({{Col("f.id"), "k"}, {Col("f.amount"), "s"},
                              {Lit(Value::String("x")), "k"}})
                    .Project({{Col("k"), "k"}})
                    .Build();
  Status status = PlanVerifier::Verify(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("conflicting types"), std::string::npos)
      << status.message();
}

// --- case join placement (§6.3) ----------------------------------------------

TEST(PlanVerifierTest, RejectsCaseJoinWithNonEquiCondition) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "v")
          .Join(PlanBuilder::ScanSchema(Fact(), "e"), JoinType::kLeftOuter,
                Bin(BinaryOpKind::kLess, Col("v.id"), Col("e.id")), DeclaredCardinality::kNone,
                /*case_join=*/true)
          .Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("case join"), std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, RejectsCaseJoinWithoutCrossSidePair) {
  // Only a constant pin on one side — no equi pair linking the two inputs.
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "v")
          .Join(PlanBuilder::ScanSchema(Fact(), "e"), JoinType::kLeftOuter,
                Eq(Col("e.status"), LitInt(1)), DeclaredCardinality::kNone,
                /*case_join=*/true)
          .Build();
  Status status = PlanVerifier::Verify(plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no cross-side equi pair"),
            std::string::npos)
      << status.message();
}

TEST(PlanVerifierTest, AcceptsCanonicalCaseJoin) {
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "v")
          .Join(PlanBuilder::ScanSchema(Fact(), "e"), JoinType::kLeftOuter,
                And(Eq(Col("v.id"), Col("e.id")),
                    Eq(Col("e.status"), LitInt(1))),
                DeclaredCardinality::kNone, /*case_join=*/true)
          .Build();
  EXPECT_TRUE(PlanVerifier::Verify(plan).ok());
}

// --- root schema identity ----------------------------------------------------

TEST(PlanVerifierTest, DetectsRootSchemaDrift) {
  PlanRef before = PlanBuilder::ScanSchema(Fact(), "f")
                       .Project({{Col("f.id"), "id"},
                                 {Col("f.amount"), "amount"}})
                       .Build();
  PlanRef same = PlanBuilder::ScanSchema(Fact(), "f")
                     .Filter(Eq(Col("f.status"), LitInt(1)))
                     .Project({{Col("f.id"), "id"},
                               {Col("f.amount"), "amount"}})
                     .Build();
  PlanRef dropped =
      PlanBuilder::ScanSchema(Fact(), "f").Project({{Col("f.id"), "id"}})
          .Build();
  PlanRef retyped = PlanBuilder::ScanSchema(Fact(), "f")
                        .Project({{Col("f.id"), "id"},
                                  {Lit(Value::String("x")), "amount"}})
                        .Build();
  EXPECT_TRUE(PlanVerifier::VerifySameOutputSchema(before, same).ok());
  Status drop = PlanVerifier::VerifySameOutputSchema(before, dropped);
  ASSERT_FALSE(drop.ok());
  EXPECT_NE(drop.message().find("root output columns changed"),
            std::string::npos)
      << drop.message();
  Status retype = PlanVerifier::VerifySameOutputSchema(before, retyped);
  ASSERT_FALSE(retype.ok());
  EXPECT_NE(retype.message().find("changed type"), std::string::npos)
      << retype.message();
}

// --- conservative key prover -------------------------------------------------

TEST(ConfirmUniqueKeyTest, BaseTableKeyGatedByAxiom) {
  PlanRef plan = PlanBuilder::ScanSchema(Fact(), "f").Build();
  DerivationConfig full;
  EXPECT_TRUE(ConfirmUniqueKey(plan, {"f.id"}, full));
  EXPECT_FALSE(ConfirmUniqueKey(plan, {"f.status"}, full));
  DerivationConfig no_keys;
  no_keys.base_table_keys = false;
  EXPECT_FALSE(ConfirmUniqueKey(plan, {"f.id"}, no_keys));
}

TEST(ConfirmUniqueKeyTest, KeySurvivesManyToOneJoin) {
  DerivationConfig full;
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Build();
  // Right side is keyed on the equated column: left key survives.
  EXPECT_TRUE(ConfirmUniqueKey(plan, {"f.id"}, full));
  // A non-key join (equated column is not a dim key) must not confirm.
  PlanRef fanout =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.name")))
          .Build();
  EXPECT_FALSE(ConfirmUniqueKey(fanout, {"f.id"}, full));
}

TEST(ConfirmUniqueKeyTest, GroupByOutputsFormKey) {
  DerivationConfig full;
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Aggregate({{Col("f.status"), "st"}},
                     {{Agg(AggKind::kSum, Col("f.amount")), "total"}})
          .Build();
  EXPECT_TRUE(ConfirmUniqueKey(plan, {"st"}, full));
  EXPECT_FALSE(ConfirmUniqueKey(plan, {"total"}, full));
}

// --- rewrite auditor against a corrupted pass --------------------------------

OptimizerConfig AuditedConfig(RewriteAuditor* auditor) {
  OptimizerConfig config = ConfigForProfile(SystemProfile::kHana);
  config.verify_rewrites = true;
  config.verification_hook = auditor;
  return config;
}

TEST(RewriteAuditorTest, CleanOptimizationPasses) {
  RewriteAuditor auditor;
  OptimizerConfig config = AuditedConfig(&auditor);
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kLeftOuter,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Filter(Eq(Col("f.status"), LitInt(1)))
          .Project({{Col("f.id"), "id"}, {Col("f.amount"), "amount"}})
          .Limit(10)
          .Build();
  Optimizer optimizer(config);
  Result<PlanRef> result = optimizer.OptimizeChecked(plan);
  ASSERT_TRUE(result.ok()) << result.status().message();
  // The UAJ elimination and limit handling fired and were each audited.
  EXPECT_GT(auditor.total_fired(), 0);
}

TEST(RewriteAuditorTest, CatchesCorruptedPassByName) {
  RewriteAuditor auditor;
  OptimizerConfig config = AuditedConfig(&auditor);
  config.debug_corrupt_pass = "filter_pushdown";
  PlanRef plan =
      PlanBuilder::ScanSchema(Fact(), "f")
          .Join(PlanBuilder::ScanSchema(Dim(), "d"), JoinType::kInner,
                Eq(Col("f.dim_key"), Col("d.k")))
          .Filter(And(Eq(Col("f.status"), LitInt(1)),
                      Eq(Col("d.name"), LitStr("x"))))
          .Project({{Col("f.id"), "id"}, {Col("d.name"), "name"}})
          .Build();
  Optimizer optimizer(config);
  Result<PlanRef> result = optimizer.OptimizeChecked(plan);
  ASSERT_FALSE(result.ok());
  // The error identifies the corrupted pass and dumps both plans.
  EXPECT_NE(result.status().message().find("filter_pushdown"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("plan before"), std::string::npos);
  EXPECT_NE(result.status().message().find("plan after"), std::string::npos);
}

TEST(RewriteAuditorTest, ExecutionBackedAuditOnRealData) {
  Database db;
  ASSERT_TRUE(db.Execute("create table fact (id int primary key, dim_key "
                         "int, amount decimal(10,2), status int)")
                  .ok());
  ASSERT_TRUE(db.Execute("create table dim (k int primary key, name "
                         "varchar, attr varchar)")
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Insert("fact", {{Value::Int64(i), Value::Int64(i % 5),
                                    Value::Decimal(100 + i, 2),
                                    Value::Int64(i % 2)}})
                    .ok());
  }
  for (int k = 0; k < 5; ++k) {
    std::string name = "n";
    name += std::to_string(k);
    ASSERT_TRUE(db.Insert("dim", {{Value::Int64(k), Value::String(name),
                                   Value::String("a")}})
                    .ok());
  }
  db.MergeAllDeltas();

  OptimizerConfig config = ConfigForProfile(SystemProfile::kHana);
  config.verify_rewrites = true;
  config.verify_rewrites_exec = true;
  db.SetOptimizerConfig(config);
  Result<Chunk> result = db.Query(
      "select f.id, d.name from fact f left outer join dim d on "
      "f.dim_key = d.k where f.status = 1");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->NumRows(), 10u);

  // Corrupting a pass now fails the query instead of returning wrong rows.
  config.debug_corrupt_pass = "prune_and_eliminate";
  db.SetOptimizerConfig(config);
  Result<Chunk> corrupted = db.Query(
      "select f.id, d.name from fact f left outer join dim d on "
      "f.dim_key = d.k where f.status = 1");
  ASSERT_FALSE(corrupted.ok());
  EXPECT_NE(corrupted.status().message().find("prune_and_eliminate"),
            std::string::npos)
      << corrupted.status().message();
}

}  // namespace
}  // namespace vdm
