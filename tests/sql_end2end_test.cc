// End-to-end SQL correctness battery with golden values, run under the
// full optimizer. Complements the randomized profile-equivalence test
// with exact expected results.
#include <gtest/gtest.h>

#include "engine/database.h"

namespace vdm {
namespace {

class SqlEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table emp ("
                            "id int primary key,"
                            "name varchar not null,"
                            "dept int,"
                            "salary decimal(10,2),"
                            "hired date)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table dept ("
                            "id int primary key,"
                            "dname varchar not null)")
                    .ok());
    // dept 1: alice (3000.00), bob (2000.50); dept 2: carol (4000.00);
    // dave has no dept; eve is in a dangling dept.
    Insert(1, "alice", 1, 300000, 18262);
    Insert(2, "bob", 1, 200050, 18628);
    Insert(3, "carol", 2, 400000, 18993);
    InsertNullDept(4, "dave", 150000, 19358);
    Insert(5, "eve", 99, 100000, 19500);
    ASSERT_TRUE(
        db_.Insert("dept", {{Value::Int64(1), Value::String("eng")},
                            {Value::Int64(2), Value::String("sales")}})
            .ok());
  }

  void Insert(int64_t id, const std::string& name, int64_t dept,
              int64_t salary_cents, int64_t hired) {
    ASSERT_TRUE(db_.Insert("emp", {{Value::Int64(id), Value::String(name),
                                    Value::Int64(dept),
                                    Value::Decimal(salary_cents, 2),
                                    Value::Date(hired)}})
                    .ok());
  }
  void InsertNullDept(int64_t id, const std::string& name,
                      int64_t salary_cents, int64_t hired) {
    ASSERT_TRUE(db_.Insert("emp", {{Value::Int64(id), Value::String(name),
                                    Value::Null(),
                                    Value::Decimal(salary_cents, 2),
                                    Value::Date(hired)}})
                    .ok());
  }

  Chunk Q(const std::string& sql) {
    Result<Chunk> result = db_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    return result.ok() ? std::move(result).value() : Chunk{};
  }

  Database db_;
};

TEST_F(SqlEndToEndTest, WhereWithAndOrNot) {
  EXPECT_EQ(Q("select id from emp where salary > 1500 and dept = 1")
                .NumRows(),
            2u);
  EXPECT_EQ(Q("select id from emp where dept = 2 or salary < 1200")
                .NumRows(),
            2u);
  EXPECT_EQ(Q("select id from emp where not (dept = 1)").NumRows(), 2u);
  // NULL dept is neither =1 nor not(=1).
}

TEST_F(SqlEndToEndTest, IsNullSemantics) {
  EXPECT_EQ(Q("select id from emp where dept is null").NumRows(), 1u);
  EXPECT_EQ(Q("select id from emp where dept is not null").NumRows(), 4u);
}

TEST_F(SqlEndToEndTest, InAndBetween) {
  EXPECT_EQ(Q("select id from emp where id in (1, 3, 5)").NumRows(), 3u);
  EXPECT_EQ(Q("select id from emp where salary between 1500 and 3500")
                .NumRows(),
            3u);
}

TEST_F(SqlEndToEndTest, JoinSemantics) {
  // Inner join drops dave (NULL) and eve (dangling).
  EXPECT_EQ(Q("select e.name, d.dname from emp e "
              "join dept d on e.dept = d.id")
                .NumRows(),
            3u);
  // Left join keeps all five.
  Chunk loj = Q("select e.name, d.dname from emp e "
                "left join dept d on e.dept = d.id order by e.id");
  ASSERT_EQ(loj.NumRows(), 5u);
  EXPECT_TRUE(loj.columns[1].IsNull(3));  // dave
  EXPECT_TRUE(loj.columns[1].IsNull(4));  // eve
}

TEST_F(SqlEndToEndTest, GroupByWithNullGroup) {
  Chunk result = Q(
      "select dept, count(*) as n, sum(salary) as total from emp "
      "group by dept order by n desc, dept");
  ASSERT_EQ(result.NumRows(), 4u);  // 1, 2, 99, NULL
  EXPECT_EQ(result.columns[1].ints()[0], 2);  // dept 1
  EXPECT_EQ(result.columns[2].ints()[0], 500050);  // 5000.50
}

TEST_F(SqlEndToEndTest, HavingFiltersGroups) {
  Chunk result = Q(
      "select dept, count(*) as n from emp where dept is not null "
      "group by dept having count(*) > 1");
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_EQ(result.columns[0].ints()[0], 1);
}

TEST_F(SqlEndToEndTest, GlobalAggregates) {
  Chunk result = Q(
      "select count(*) as n, count(dept) as nd, min(salary) as lo, "
      "max(salary) as hi, avg(salary) as mean from emp");
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_EQ(result.columns[0].ints()[0], 5);
  EXPECT_EQ(result.columns[1].ints()[0], 4);  // count skips NULL
  EXPECT_EQ(result.columns[2].GetValue(0), Value::Decimal(100000, 2));
  EXPECT_EQ(result.columns[3].GetValue(0), Value::Decimal(400000, 2));
  // (3000 + 2000.50 + 4000 + 1500 + 1000) / 5 = 2300.10
  EXPECT_DOUBLE_EQ(result.columns[4].GetValue(0).AsDouble(), 2300.10);
}

TEST_F(SqlEndToEndTest, CountDistinct) {
  Chunk result = Q("select count(distinct dept) as n from emp");
  EXPECT_EQ(result.columns[0].ints()[0], 3);  // 1, 2, 99 (NULL excluded)
}

TEST_F(SqlEndToEndTest, ScalarOverAggregate) {
  Chunk result = Q(
      "select sum(salary) / count(*) as per_head from emp "
      "where dept = 1");
  EXPECT_DOUBLE_EQ(result.columns[0].GetValue(0).AsDouble(), 2500.25);
}

TEST_F(SqlEndToEndTest, CaseExpression) {
  Chunk result = Q(
      "select name, case when salary >= 3000 then 'high' "
      "when salary >= 2000 then 'mid' else 'low' end as band "
      "from emp order by id");
  EXPECT_EQ(result.columns[1].strings()[0], "high");
  EXPECT_EQ(result.columns[1].strings()[1], "mid");
  EXPECT_EQ(result.columns[1].strings()[3], "low");
}

TEST_F(SqlEndToEndTest, DateFunctions) {
  Chunk result =
      Q("select name, year(hired) as y from emp order by id limit 2");
  EXPECT_EQ(result.columns[1].ints()[0], 2020);
  EXPECT_EQ(result.columns[1].ints()[1], 2021);
  Chunk grouped =
      Q("select year(hired) as y, count(*) as n from emp group by "
        "year(hired) order by y");
  // Hire years: 2020, 2021, 2022, 2023, 2023.
  EXPECT_EQ(grouped.NumRows(), 4u);
}

TEST_F(SqlEndToEndTest, OrderByMultipleKeysAndDirections) {
  Chunk result = Q(
      "select dept, name from emp where dept is not null "
      "order by dept desc, name");
  ASSERT_EQ(result.NumRows(), 4u);
  EXPECT_EQ(result.columns[1].strings()[0], "eve");    // dept 99
  EXPECT_EQ(result.columns[1].strings()[1], "carol");  // dept 2
  EXPECT_EQ(result.columns[1].strings()[2], "alice");  // dept 1, a < b
  EXPECT_EQ(result.columns[1].strings()[3], "bob");
}

TEST_F(SqlEndToEndTest, UnionAllPreservesDuplicates) {
  Chunk result = Q(
      "select dept from emp where dept = 1 "
      "union all select dept from emp where dept = 1");
  EXPECT_EQ(result.NumRows(), 4u);
}

TEST_F(SqlEndToEndTest, DistinctOnExpression) {
  Chunk result = Q("select distinct dept from emp where dept is not null");
  EXPECT_EQ(result.NumRows(), 3u);
}

TEST_F(SqlEndToEndTest, SubqueryWithAggregation) {
  Chunk result = Q(
      "select d.dname, t.total from dept d "
      "left join (select dept, sum(salary) as total from emp group by dept) "
      "t on d.id = t.dept order by d.id");
  ASSERT_EQ(result.NumRows(), 2u);
  EXPECT_EQ(result.columns[1].GetValue(0), Value::Decimal(500050, 2));
  EXPECT_EQ(result.columns[1].GetValue(1), Value::Decimal(400000, 2));
}

TEST_F(SqlEndToEndTest, DecimalArithmeticExactness) {
  // 10% raise on 2000.50 = 2200.55 exactly.
  Chunk result = Q(
      "select round(salary * 1.1, 2) as raised from emp where id = 2");
  EXPECT_EQ(result.columns[0].GetValue(0), Value::Decimal(220055, 2));
}

TEST_F(SqlEndToEndTest, StringFunctions) {
  Chunk result = Q(
      "select upper(name) as u, concat(name, '@corp') as mail "
      "from emp where id = 1");
  EXPECT_EQ(result.columns[0].strings()[0], "ALICE");
  EXPECT_EQ(result.columns[1].strings()[0], "alice@corp");
}

TEST_F(SqlEndToEndTest, SelfJoin) {
  // Pairs of employees in the same dept (strictly ordered to avoid dups).
  Chunk result = Q(
      "select a.name, b.name from emp a join emp b "
      "on a.dept = b.dept where a.id < b.id");
  ASSERT_EQ(result.NumRows(), 1u);
  EXPECT_EQ(result.columns[0].strings()[0], "alice");
  EXPECT_EQ(result.columns[1].strings()[0], "bob");
}

TEST_F(SqlEndToEndTest, CoalesceInAggregation) {
  Chunk result = Q(
      "select coalesce(dept, 0) as d, count(*) as n from emp "
      "group by coalesce(dept, 0) order by d");
  ASSERT_EQ(result.NumRows(), 4u);
  EXPECT_EQ(result.columns[0].ints()[0], 0);  // dave's bucket
}

TEST_F(SqlEndToEndTest, EmptyResults) {
  EXPECT_EQ(Q("select id from emp where id > 1000").NumRows(), 0u);
  EXPECT_EQ(Q("select dept, count(*) from emp where id > 1000 "
              "group by dept")
                .NumRows(),
            0u);
  Chunk global = Q("select count(*) from emp where id > 1000");
  ASSERT_EQ(global.NumRows(), 1u);
  EXPECT_EQ(global.columns[0].ints()[0], 0);
}

}  // namespace
}  // namespace vdm
