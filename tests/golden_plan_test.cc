// Golden-plan regression tests: the optimized plan of every paper
// micro-query (Fig. 5 UAJ, Fig. 6 paging, Fig. 10 ASJ, Fig. 12
// UNION ALL + UAJ) is locked, per optimizer profile, against checked-in
// snapshots under tests/golden/. Any rewrite-behavior change shows up as
// a readable plan diff in the test log.
//
// Regenerating after an intentional change:
//   VDM_UPDATE_GOLDEN=1 ./build/tests/golden_plan_test
// then review the tests/golden/ diff like any other code change.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "workload/tpch.h"

namespace vdm {
namespace {

/// "Fig. 10(a)" -> "fig_10a": display names become file-name slugs.
std::string Slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

const SystemProfile kProfiles[] = {
    SystemProfile::kNone,    SystemProfile::kHana,
    SystemProfile::kPostgres, SystemProfile::kSystemX,
    SystemProfile::kSystemY, SystemProfile::kSystemZ,
};

class GoldenPlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    // Plans are locked over a fixed, analyzed data distribution so the
    // cost-based join order is deterministic and meaningful.
    TpchOptions options;
    options.scale = 0.01;
    ASSERT_TRUE(CreateTpchSchema(db_, options).ok());
    ASSERT_TRUE(LoadTpchData(db_, options).ok());
    db_->AnalyzeTables();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  /// The per-profile plans of `sql`, as one snapshot document.
  static std::string RenderAllProfiles(const std::string& sql) {
    std::string out = "-- query:\n-- " + sql + "\n";
    for (SystemProfile profile : kProfiles) {
      db_->SetProfile(profile);
      Result<std::string> plan = db_->Explain(sql);
      EXPECT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
      out += "\n-- profile: " + ProfileName(profile) + "\n";
      out += plan.ok() ? *plan : plan.status().ToString();
      if (out.back() != '\n') out += '\n';
    }
    return out;
  }

  static void CheckGolden(const std::string& name, const std::string& sql) {
    const std::string path = std::string(GOLDEN_DIR) + "/" + name + ".txt";
    const std::string actual = RenderAllProfiles(sql);
    if (std::getenv("VDM_UPDATE_GOLDEN") != nullptr) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      GTEST_LOG_(INFO) << "updated " << path;
      return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — run with VDM_UPDATE_GOLDEN=1 to create it";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "plan drift for " << name << "; if intentional, regenerate via "
        << "VDM_UPDATE_GOLDEN=1 and review the tests/golden/ diff";
  }

  static Database* db_;
};

Database* GoldenPlanTest::db_ = nullptr;

TEST_F(GoldenPlanTest, UajQueries) {  // paper Fig. 5
  for (UajQuery query : AllUajQueries()) {
    CheckGolden(Slug(UajQueryName(query)), UajQuerySql(query));
  }
}

TEST_F(GoldenPlanTest, PagingQuery) {  // paper Fig. 6
  CheckGolden("paging_limit10_offset20", PagingQuerySql(10, 20));
}

TEST_F(GoldenPlanTest, AsjQueries) {  // paper Fig. 10
  for (AsjQuery query : AllAsjQueries()) {
    CheckGolden("asj_" + Slug(AsjQueryName(query)), AsjQuerySql(query));
  }
}

TEST_F(GoldenPlanTest, UnionUajQueries) {  // paper Fig. 12
  for (UnionUajQuery query : AllUnionUajQueries()) {
    CheckGolden("union_" + Slug(UnionUajQueryName(query)),
                UnionUajQuerySql(query));
  }
}

}  // namespace
}  // namespace vdm
