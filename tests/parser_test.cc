// Unit tests for the SQL lexer and parser, including the paper's dialect
// extensions (cardinality specs, case join, expression macros,
// allow_precision_loss).
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "expr/fold.h"
#include "sql/parser.h"

namespace vdm {
namespace {

Statement Parse(const std::string& sql) {
  Result<Statement> stmt = ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << sql << "\n" << stmt.status().ToString();
  return std::move(stmt).value();
}

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> tokens =
      Tokenize("select x, 42, 3.14, 'str''ing' from t -- comment\nwhere");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kSymbol);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kDecimal);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[7].text, "str'ing");  // escaped quote
  EXPECT_EQ((*tokens).back().kind, TokenKind::kEnd);
}

TEST(LexerTest, MultiCharOperators) {
  Result<std::vector<Token>> tokens = Tokenize("a <> b <= c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[5].text, ">=");
  EXPECT_EQ((*tokens)[7].text, "!=");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("select 'unterminated").ok());
  EXPECT_FALSE(Tokenize("select #").ok());
}

TEST(ParserTest, BasicSelect) {
  Statement stmt = Parse("select a, b as bee, t.c from tab t where a > 1");
  ASSERT_EQ(stmt.kind, Statement::Kind::kSelect);
  const SelectCore& core = stmt.select->cores[0];
  ASSERT_EQ(core.items.size(), 3u);
  EXPECT_EQ(core.items[1].alias, "bee");
  EXPECT_EQ(core.from.name, "tab");
  EXPECT_EQ(core.from.alias, "t");
  EXPECT_NE(core.where, nullptr);
}

TEST(ParserTest, ImplicitAlias) {
  Statement stmt = Parse("select a aa from tab tt");
  EXPECT_EQ(stmt.select->cores[0].items[0].alias, "aa");
  EXPECT_EQ(stmt.select->cores[0].from.alias, "tt");
}

TEST(ParserTest, Star) {
  Statement stmt = Parse("select * from t");
  EXPECT_TRUE(stmt.select->cores[0].items[0].star);
}

TEST(ParserTest, Joins) {
  Statement stmt = Parse(
      "select * from a "
      "join b on a.x = b.x "
      "left join c on a.y = c.y "
      "left outer join d on a.z = d.z "
      "inner join e on a.w = e.w");
  const SelectCore& core = stmt.select->cores[0];
  ASSERT_EQ(core.joins.size(), 4u);
  EXPECT_EQ(core.joins[0].join_type, JoinType::kInner);
  EXPECT_EQ(core.joins[1].join_type, JoinType::kLeftOuter);
  EXPECT_EQ(core.joins[2].join_type, JoinType::kLeftOuter);
  EXPECT_EQ(core.joins[3].join_type, JoinType::kInner);
}

TEST(ParserTest, CardinalitySpecs) {
  Statement stmt = Parse(
      "select * from a "
      "left outer many to one join b on a.x = b.x "
      "many to exact one join c on a.y = c.y "
      "one to one join d on a.z = d.z");
  const SelectCore& core = stmt.select->cores[0];
  ASSERT_EQ(core.joins.size(), 3u);
  EXPECT_EQ(core.joins[0].cardinality, DeclaredCardinality::kAtMostOne);
  EXPECT_EQ(core.joins[0].join_type, JoinType::kLeftOuter);
  EXPECT_EQ(core.joins[1].cardinality, DeclaredCardinality::kExactOne);
  EXPECT_EQ(core.joins[2].cardinality, DeclaredCardinality::kExactOne);
}

TEST(ParserTest, CaseJoin) {
  Statement stmt = Parse(
      "select * from v left outer case join t on v.k = t.k");
  ASSERT_EQ(stmt.select->cores[0].joins.size(), 1u);
  EXPECT_TRUE(stmt.select->cores[0].joins[0].case_join);
  EXPECT_EQ(stmt.select->cores[0].joins[0].join_type, JoinType::kLeftOuter);
}

TEST(ParserTest, CaseExpressionVsCaseJoin) {
  // CASE as an expression must still parse.
  Statement stmt = Parse(
      "select case when a > 1 then 'big' else 'small' end from t");
  ASSERT_EQ(stmt.select->cores[0].items.size(), 1u);
  EXPECT_EQ(stmt.select->cores[0].items[0].expr->kind(), ExprKind::kCase);
}

TEST(ParserTest, SubqueryInFrom) {
  Statement stmt = Parse(
      "select s.a from (select a from t where a > 0) s "
      "left join u on s.a = u.a");
  EXPECT_EQ(stmt.select->cores[0].from.kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(stmt.select->cores[0].from.alias, "s");
  // Subquery requires an alias.
  EXPECT_FALSE(ParseStatement("select * from (select a from t)").ok());
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  Statement stmt = Parse(
      "select a, count(*) as n from t group by a "
      "having count(*) > 2 order by n desc, a limit 10 offset 5");
  const SelectCore& core = stmt.select->cores[0];
  EXPECT_EQ(core.group_by.size(), 1u);
  EXPECT_NE(core.having, nullptr);
  ASSERT_EQ(stmt.select->order_by.size(), 2u);
  EXPECT_FALSE(stmt.select->order_by[0].ascending);
  EXPECT_TRUE(stmt.select->order_by[1].ascending);
  EXPECT_EQ(stmt.select->limit, 10);
  EXPECT_EQ(stmt.select->offset, 5);
}

TEST(ParserTest, UnionAll) {
  Statement stmt = Parse(
      "select a from t union all select b from u union all select c from v");
  EXPECT_EQ(stmt.select->cores.size(), 3u);
  // Plain UNION (distinct) is not supported.
  EXPECT_FALSE(ParseStatement("select a from t union select b from u").ok());
}

TEST(ParserTest, Aggregates) {
  Statement stmt = Parse(
      "select count(*), count(distinct a), sum(b), min(c), max(d), avg(e) "
      "from t");
  const SelectCore& core = stmt.select->cores[0];
  ASSERT_EQ(core.items.size(), 6u);
  const auto& count_star =
      static_cast<const AggregateExpr&>(*core.items[0].expr);
  EXPECT_EQ(count_star.agg(), AggKind::kCountStar);
  const auto& count_distinct =
      static_cast<const AggregateExpr&>(*core.items[1].expr);
  EXPECT_TRUE(count_distinct.distinct());
}

TEST(ParserTest, AllowPrecisionLossMarksAggregates) {
  Statement stmt = Parse(
      "select allow_precision_loss(sum(round(p * 1.11, 2))) from t");
  ExprRef expr = stmt.select->cores[0].items[0].expr;
  bool found = false;
  std::function<void(const ExprRef&)> visit = [&](const ExprRef& e) {
    if (e->kind() == ExprKind::kAggregate) {
      EXPECT_TRUE(
          static_cast<const AggregateExpr&>(*e).allow_precision_loss());
      found = true;
    }
    for (const ExprRef& child : e->children()) visit(child);
  };
  visit(expr);
  EXPECT_TRUE(found);
}

TEST(ParserTest, ExpressionMacroRef) {
  Statement stmt = Parse("select expression_macro(margin) from v");
  EXPECT_EQ(stmt.select->cores[0].items[0].expr->kind(),
            ExprKind::kMacroRef);
}

TEST(ParserTest, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  Statement stmt = Parse("select 1 + 2 * 3 from t");
  const auto& add =
      static_cast<const BinaryExpr&>(*stmt.select->cores[0].items[0].expr);
  EXPECT_EQ(add.op(), BinaryOpKind::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.right()).op(),
            BinaryOpKind::kMul);
  // a = 1 and b = 2 or c = 3 parses as ((a=1 and b=2) or c=3).
  Statement logic = Parse("select * from t where a = 1 and b = 2 or c = 3");
  const auto& top =
      static_cast<const BinaryExpr&>(*logic.select->cores[0].where);
  EXPECT_EQ(top.op(), BinaryOpKind::kOr);
}

TEST(ParserTest, BetweenAndIn) {
  Statement stmt =
      Parse("select * from t where a between 1 and 5 and b in (1, 2, 3)");
  EXPECT_NE(stmt.select->cores[0].where, nullptr);
}

TEST(ParserTest, IsNull) {
  Statement stmt =
      Parse("select * from t where a is null and b is not null");
  std::string rendered = stmt.select->cores[0].where->ToString();
  EXPECT_NE(rendered.find("IS NULL"), std::string::npos);
  EXPECT_NE(rendered.find("IS NOT NULL"), std::string::npos);
}

TEST(ParserTest, DecimalLiteralsAreExact) {
  Statement stmt = Parse("select 13.1945 from t");
  const auto& lit =
      static_cast<const LiteralExpr&>(*stmt.select->cores[0].items[0].expr);
  EXPECT_EQ(lit.value(), Value::Decimal(131945, 4));
}

TEST(ParserTest, CreateTable) {
  Statement stmt = Parse(
      "create table t ("
      "  a int primary key,"
      "  b varchar(10) not null,"
      "  c decimal(12,2),"
      "  d double unique,"
      "  e date,"
      "  unique (b, c),"
      "  unique (e) not enforced,"
      "  foreign key (a) references other (x))");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
  const TableSchema& schema = stmt.create_table->schema;
  EXPECT_EQ(schema.NumColumns(), 5u);
  EXPECT_EQ(schema.PrimaryKey(), std::vector<std::string>{"a"});
  EXPECT_FALSE(schema.column(1).nullable);
  EXPECT_EQ(schema.column(2).type, DataType::Decimal(2));
  ASSERT_EQ(schema.unique_keys().size(), 4u);  // pk + inline + 2 table-level
  bool found_declared = false;
  for (const UniqueKeyDef& key : schema.unique_keys()) {
    if (!key.enforced) found_declared = true;
  }
  EXPECT_TRUE(found_declared);
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  EXPECT_EQ(schema.foreign_keys()[0].referenced_table, "other");
}

TEST(ParserTest, CreateViewWithMacros) {
  Statement stmt = Parse(
      "create view v as select a, b from t "
      "with expression macros (sum(a) / sum(b) as ratio, sum(a) as total)");
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateView);
  EXPECT_EQ(stmt.create_view->name, "v");
  ASSERT_EQ(stmt.create_view->macros.size(), 2u);
  EXPECT_EQ(stmt.create_view->macros[0].name, "ratio");
  EXPECT_NE(stmt.create_view->macros[0].body_sql.find("sum(a)"),
            std::string::npos);
  // The captured view SQL round-trips through the parser.
  EXPECT_TRUE(ParseStatement(stmt.create_view->select_sql).ok());
}

TEST(ParserTest, CreateOrReplaceView) {
  Statement stmt = Parse("create or replace view v as select a from t");
  EXPECT_TRUE(stmt.create_view->or_replace);
}

TEST(ParserTest, ErrorMessagesCarryLocation) {
  Result<Statement> bad = ParseStatement("select from t");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseStatement("select a from t garbage garbage").ok());
  // A single trailing semicolon is fine.
  EXPECT_TRUE(ParseStatement("select a from t;").ok());
}


TEST(ParserTest, DateLiteral) {
  Statement stmt = Parse("select * from t where d >= date '2024-02-29'");
  std::string rendered = stmt.select->cores[0].where->ToString();
  EXPECT_NE(rendered.find("2024-02-29"), std::string::npos);
  EXPECT_FALSE(
      ParseStatement("select * from t where d = date '2023-02-29'").ok());
  EXPECT_FALSE(
      ParseStatement("select * from t where d = date 'garbage'").ok());
}

TEST(ParseExpressionTest, Standalone) {
  Result<ExprRef> expr = ParseExpression("coalesce(a, 0) < 63 and b = 'x'");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(SplitConjuncts(*expr).size(), 2u);
  EXPECT_FALSE(ParseExpression("a = 1 extra").ok());
}

}  // namespace
}  // namespace vdm
