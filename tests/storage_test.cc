// Unit tests for the columnar storage layer: delta/main fragments,
// dictionary compression, merge, constraint enforcement, uniqueness
// verification.
#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "storage/table.h"

namespace vdm {
namespace {

TableSchema MakeSchema() {
  TableSchema schema("t");
  schema.AddColumn("k", DataType::Int64(), /*nullable=*/false)
      .AddColumn("name", DataType::String())
      .AddColumn("amount", DataType::Decimal(2))
      .AddColumn("score", DataType::Double());
  schema.SetPrimaryKey({"k"});
  return schema;
}

std::vector<Value> Row(int64_t k, const std::string& name, int64_t cents,
                       double score) {
  return {Value::Int64(k), Value::String(name), Value::Decimal(cents, 2),
          Value::Double(score)};
}

TEST(TableTest, AppendAndScan) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.AppendRow(Row(1, "a", 100, 0.5)).ok());
  ASSERT_TRUE(table.AppendRow(Row(2, "b", 200, 1.5)).ok());
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.NumDeltaRows(), 2u);
  EXPECT_EQ(table.NumMainRows(), 0u);
  ColumnData names = table.ScanColumn(1);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names.strings()[0], "a");
  EXPECT_EQ(names.strings()[1], "b");
}

TEST(TableTest, MergeMovesDeltaToMain) {
  Table table(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.AppendRow(Row(i, "n" + std::to_string(i % 3), i, i))
                    .ok());
  }
  table.MergeDelta();
  EXPECT_EQ(table.NumMainRows(), 10u);
  EXPECT_EQ(table.NumDeltaRows(), 0u);
  EXPECT_EQ(table.NumRows(), 10u);
  // Scans decode dictionary-compressed strings correctly.
  ColumnData names = table.ScanColumn(1);
  EXPECT_EQ(names.strings()[4], "n1");
  EXPECT_EQ(names.strings()[9], "n0");
}

TEST(TableTest, ScanSpansBothFragments) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.AppendRow(Row(1, "main", 1, 1)).ok());
  table.MergeDelta();
  ASSERT_TRUE(table.AppendRow(Row(2, "delta", 2, 2)).ok());
  ColumnData names = table.ScanColumn(1);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names.strings()[0], "main");
  EXPECT_EQ(names.strings()[1], "delta");
}

TEST(TableTest, RepeatedMergesAreIdempotent) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.AppendRow(Row(1, "x", 1, 1)).ok());
  table.MergeDelta();
  table.MergeDelta();  // no-op
  EXPECT_EQ(table.NumRows(), 1u);
  ASSERT_TRUE(table.AppendRow(Row(2, "y", 2, 2)).ok());
  table.MergeDelta();
  EXPECT_EQ(table.NumMainRows(), 2u);
}

TEST(TableTest, NullsSurviveMerge) {
  TableSchema schema("n");
  schema.AddColumn("k", DataType::Int64())
      .AddColumn("s", DataType::String());
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({Value::Int64(1), Value::Null()}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Null(), Value::String("x")}).ok());
  table.MergeDelta();
  ColumnData k = table.ScanColumn(0);
  ColumnData s = table.ScanColumn(1);
  EXPECT_FALSE(k.IsNull(0));
  EXPECT_TRUE(k.IsNull(1));
  EXPECT_TRUE(s.IsNull(0));
  EXPECT_FALSE(s.IsNull(1));
}

TEST(TableTest, ArityMismatchRejected) {
  Table table(MakeSchema());
  Status status = table.AppendRow({Value::Int64(1)});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, EnforcedConstraints) {
  Table table(MakeSchema());
  table.SetEnforceConstraints(true);
  ASSERT_TRUE(table.AppendRow(Row(1, "a", 1, 1)).ok());
  // Duplicate primary key.
  Status dup = table.AppendRow(Row(1, "b", 2, 2));
  EXPECT_EQ(dup.code(), StatusCode::kConstraintViolation);
  // NULL in NOT NULL column.
  Status null_pk = table.AppendRow(
      {Value::Null(), Value::String("c"), Value::Decimal(1, 2),
       Value::Double(1)});
  EXPECT_EQ(null_pk.code(), StatusCode::kConstraintViolation);
  // Enforcement can be preloaded: existing rows are replayed.
  Table late(MakeSchema());
  ASSERT_TRUE(late.AppendRow(Row(7, "x", 1, 1)).ok());
  late.SetEnforceConstraints(true);
  EXPECT_EQ(late.AppendRow(Row(7, "y", 2, 2)).code(),
            StatusCode::kConstraintViolation);
}

TEST(TableTest, UnenforcedByDefault) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.AppendRow(Row(1, "a", 1, 1)).ok());
  // Paper §4.5: applications avoid constraint enforcement; duplicates are
  // accepted unless enforcement is explicitly enabled.
  EXPECT_TRUE(table.AppendRow(Row(1, "b", 2, 2)).ok());
}

TEST(TableTest, VerifyUnique) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.AppendRow(Row(1, "a", 1, 1)).ok());
  ASSERT_TRUE(table.AppendRow(Row(2, "a", 2, 2)).ok());
  Result<bool> k_unique = table.VerifyUnique({"k"});
  ASSERT_TRUE(k_unique.ok());
  EXPECT_TRUE(*k_unique);
  Result<bool> name_unique = table.VerifyUnique({"name"});
  ASSERT_TRUE(name_unique.ok());
  EXPECT_FALSE(*name_unique);
  Result<bool> composite = table.VerifyUnique({"name", "amount"});
  ASSERT_TRUE(composite.ok());
  EXPECT_TRUE(*composite);
  EXPECT_FALSE(table.VerifyUnique({"missing"}).ok());
}

TEST(TableTest, ScanByNames) {
  Table table(MakeSchema());
  ASSERT_TRUE(table.AppendRow(Row(1, "a", 1, 1)).ok());
  Result<Chunk> chunk = table.Scan({"name", "k"});
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->names[0], "name");
  EXPECT_EQ(chunk->names[1], "k");
  EXPECT_FALSE(table.Scan({"nope"}).ok());
  Result<Chunk> all = table.Scan({});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->NumColumns(), 4u);
}

TEST(StorageManagerTest, CreateFindDrop) {
  StorageManager storage;
  ASSERT_TRUE(storage.CreateTable(MakeSchema()).ok());
  EXPECT_NE(storage.FindTable("t"), nullptr);
  EXPECT_NE(storage.FindTable("T"), nullptr);  // case-insensitive
  EXPECT_EQ(storage.FindTable("missing"), nullptr);
  EXPECT_EQ(storage.CreateTable(MakeSchema()).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(storage.DropTable("t").ok());
  EXPECT_EQ(storage.FindTable("t"), nullptr);
  EXPECT_EQ(storage.DropTable("t").code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ValidationCatchesErrors) {
  TableSchema no_name;
  EXPECT_FALSE(no_name.Validate().ok());

  TableSchema dup("d");
  dup.AddColumn("a", DataType::Int64()).AddColumn("A", DataType::Int64());
  EXPECT_FALSE(dup.Validate().ok());

  TableSchema bad_key("b");
  bad_key.AddColumn("a", DataType::Int64());
  bad_key.AddUniqueKey({"missing"});
  EXPECT_FALSE(bad_key.Validate().ok());

  TableSchema bad_fk("f");
  bad_fk.AddColumn("a", DataType::Int64());
  bad_fk.AddForeignKey({"a"}, "other", {"x", "y"});
  EXPECT_FALSE(bad_fk.Validate().ok());
}

TEST(SchemaTest, PrimaryKeyImpliesNotNull) {
  TableSchema schema("p");
  schema.AddColumn("k", DataType::Int64(), /*nullable=*/true);
  schema.SetPrimaryKey({"k"});
  EXPECT_FALSE(schema.column(0).nullable);
  EXPECT_EQ(schema.PrimaryKey(), std::vector<std::string>{"k"});
}

TEST(SchemaTest, DeclaredKeysAreNotEnforced) {
  TableSchema schema("d");
  schema.AddColumn("k", DataType::Int64());
  schema.AddDeclaredUniqueKey({"k"});
  ASSERT_EQ(schema.unique_keys().size(), 1u);
  EXPECT_FALSE(schema.unique_keys()[0].enforced);
  Table table(schema);
  table.SetEnforceConstraints(true);
  ASSERT_TRUE(table.AppendRow({Value::Int64(1)}).ok());
  // Declared (unenforced) keys never reject rows.
  EXPECT_TRUE(table.AppendRow({Value::Int64(1)}).ok());
}

}  // namespace
}  // namespace vdm
