// Unit tests for the type system: DataType, Value, ColumnData.
#include <gtest/gtest.h>

#include "expr/eval.h"
#include "types/column.h"
#include "types/date_util.h"
#include "types/type.h"
#include "types/value.h"

namespace vdm {
namespace {

TEST(DataTypeTest, EqualityIncludesDecimalScale) {
  EXPECT_EQ(DataType::Int64(), DataType::Int64());
  EXPECT_EQ(DataType::Decimal(2), DataType::Decimal(2));
  EXPECT_NE(DataType::Decimal(2), DataType::Decimal(3));
  EXPECT_NE(DataType::Int64(), DataType::Double());
}

TEST(DataTypeTest, IntegerBackedClassification) {
  EXPECT_TRUE(DataType::Bool().IsIntegerBacked());
  EXPECT_TRUE(DataType::Int64().IsIntegerBacked());
  EXPECT_TRUE(DataType::Decimal(4).IsIntegerBacked());
  EXPECT_TRUE(DataType::Date().IsIntegerBacked());
  EXPECT_FALSE(DataType::Double().IsIntegerBacked());
  EXPECT_FALSE(DataType::String().IsIntegerBacked());
}

TEST(DataTypeTest, ToStringRendering) {
  EXPECT_EQ(DataType::Decimal(2).ToString(), "DECIMAL(2)");
  EXPECT_EQ(DataType::String().ToString(), "VARCHAR");
  EXPECT_EQ(DataType::Int64().ToString(), "BIGINT");
}

TEST(DecimalPow10Test, Powers) {
  EXPECT_EQ(DecimalPow10(0), 1);
  EXPECT_EQ(DecimalPow10(1), 10);
  EXPECT_EQ(DecimalPow10(5), 100000);
  EXPECT_EQ(DecimalPow10(18), 1000000000000000000LL);
}

TEST(ValueTest, NullBehaviour) {
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(null.Equals(Value::Int64(0)));
  EXPECT_FALSE(Value::Int64(0).Equals(null));
  // operator== treats two NULLs as identical (catalog/test usage).
  EXPECT_TRUE(null == Value::Null());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int64(5).Equals(Value::Double(5.0)));
  EXPECT_TRUE(Value::Decimal(500, 2).Equals(Value::Int64(5)));
  EXPECT_TRUE(Value::Decimal(550, 2).Equals(Value::Double(5.5)));
  EXPECT_FALSE(Value::Decimal(550, 2).Equals(Value::Int64(5)));
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_GT(Value::Int64(-100).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareStringsLexicographically) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
}

TEST(ValueTest, DecimalToString) {
  EXPECT_EQ(Value::Decimal(1319, 2).ToString(), "13.19");
  EXPECT_EQ(Value::Decimal(-1319, 2).ToString(), "-13.19");
  EXPECT_EQ(Value::Decimal(5, 2).ToString(), "0.05");
  EXPECT_EQ(Value::Decimal(-5, 2).ToString(), "-0.05");
  EXPECT_EQ(Value::Decimal(100, 0).ToString(), "100");
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(ColumnDataTest, AppendAndGet) {
  ColumnData col(DataType::Int64());
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(0), Value::Int64(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2), Value::Int64(3));
}

TEST(ColumnDataTest, LazyValidityMaterialization) {
  ColumnData col(DataType::String());
  col.AppendString("a");
  EXPECT_FALSE(col.HasNulls());
  col.AppendNull();
  EXPECT_TRUE(col.HasNulls());
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
}

TEST(ColumnDataTest, GatherWithInvalidIndexYieldsNull) {
  ColumnData col(DataType::Int64());
  col.AppendInt(10);
  col.AppendInt(20);
  ColumnData gathered =
      col.Gather({1, ColumnData::kInvalidIndex, 0, 0});
  ASSERT_EQ(gathered.size(), 4u);
  EXPECT_EQ(gathered.GetValue(0), Value::Int64(20));
  EXPECT_TRUE(gathered.IsNull(1));
  EXPECT_EQ(gathered.GetValue(2), Value::Int64(10));
}

TEST(ColumnDataTest, AppendValuePromotesIntToDecimal) {
  ColumnData col(DataType::Decimal(2));
  col.AppendValue(Value::Int64(5));
  EXPECT_EQ(col.GetValue(0), Value::Decimal(500, 2));
}

TEST(ColumnDataTest, NullsFactory) {
  ColumnData nulls = ColumnData::Nulls(DataType::Double(), 4);
  ASSERT_EQ(nulls.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(nulls.IsNull(i));
}

TEST(ChunkTest, FindColumn) {
  Chunk chunk;
  chunk.names = {"a", "b"};
  chunk.columns.emplace_back(DataType::Int64());
  chunk.columns.emplace_back(DataType::Int64());
  EXPECT_EQ(chunk.FindColumn("a"), 0);
  EXPECT_EQ(chunk.FindColumn("b"), 1);
  EXPECT_EQ(chunk.FindColumn("c"), -1);
}

// --- decimal rounding (§7.1 relies on exact semantics) --------------------

struct RoundCase {
  int64_t unscaled;
  uint8_t from;
  uint8_t to;
  int64_t expected;
};

class RoundUnscaledTest : public ::testing::TestWithParam<RoundCase> {};

TEST_P(RoundUnscaledTest, HalfAwayFromZero) {
  const RoundCase& c = GetParam();
  EXPECT_EQ(RoundUnscaled(c.unscaled, c.from, c.to), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rounding, RoundUnscaledTest,
    ::testing::Values(
        RoundCase{131945, 4, 2, 1319},   // 13.1945 -> 13.19 (paper example)
        RoundCase{13195, 3, 2, 1320},    // 13.195 -> 13.20 (half up)
        RoundCase{-13195, 3, 2, -1320},  // symmetric for negatives
        RoundCase{13, 1, 0, 1},          // 1.3 -> 1
        RoundCase{24, 1, 0, 2},          // 2.4 -> 2
        RoundCase{37, 1, 0, 4},          // 1.3 + 2.4 -> 3.7 -> 4
        RoundCase{25, 1, 0, 3},          // 2.5 -> 3 (away from zero)
        RoundCase{-25, 1, 0, -3},        // -2.5 -> -3
        RoundCase{7, 0, 2, 700},         // upscaling
        RoundCase{0, 3, 1, 0}));

// --- calendar functions ----------------------------------------------------

TEST(DateFunctionsTest, EpochIsJan1st1970) {
  EXPECT_EQ(YearFromDays(0), 1970);
  EXPECT_EQ(MonthFromDays(0), 1);
}

TEST(DateFunctionsTest, KnownDates) {
  // 2000-03-01 is day 11017.
  EXPECT_EQ(YearFromDays(11017), 2000);
  EXPECT_EQ(MonthFromDays(11017), 3);
  // 1999-12-31 is day 10956.
  EXPECT_EQ(YearFromDays(10956), 1999);
  EXPECT_EQ(MonthFromDays(10956), 12);
  // Leap day 2024-02-29 is day 19782.
  EXPECT_EQ(YearFromDays(19782), 2024);
  EXPECT_EQ(MonthFromDays(19782), 2);
}

TEST(DateFunctionsTest, PreEpochDates) {
  // 1969-12-31.
  EXPECT_EQ(YearFromDays(-1), 1969);
  EXPECT_EQ(MonthFromDays(-1), 12);
}

// --- civil-calendar edge cases (types/date_util.h) -------------------------

int64_t Days(int64_t y, int m, int d) { return DaysFromCivil({y, m, d}); }

TEST(DateUtilTest, LeapYearRules) {
  // Divisible by 4: leap. By 100: not. By 400: leap again.
  EXPECT_TRUE(ParseDate("2024-02-29").has_value());
  EXPECT_TRUE(ParseDate("2000-02-29").has_value());
  EXPECT_FALSE(ParseDate("1900-02-29").has_value());
  EXPECT_FALSE(ParseDate("2023-02-29").has_value());
  // Feb 28 -> next day differs between leap and common years.
  EXPECT_EQ(FormatDate(Days(2024, 2, 28) + 1), "2024-02-29");
  EXPECT_EQ(FormatDate(Days(2023, 2, 28) + 1), "2023-03-01");
  EXPECT_EQ(FormatDate(Days(1900, 2, 28) + 1), "1900-03-01");
  EXPECT_EQ(FormatDate(Days(2000, 2, 28) + 1), "2000-02-29");
}

TEST(DateUtilTest, MonthEndArithmetic) {
  // Crossing every kind of month boundary by +1 day.
  EXPECT_EQ(FormatDate(Days(2024, 1, 31) + 1), "2024-02-01");
  EXPECT_EQ(FormatDate(Days(2024, 2, 29) + 1), "2024-03-01");
  EXPECT_EQ(FormatDate(Days(2024, 4, 30) + 1), "2024-05-01");
  EXPECT_EQ(FormatDate(Days(2024, 12, 31) + 1), "2025-01-01");
  // And backwards into a month end.
  EXPECT_EQ(FormatDate(Days(2024, 3, 1) - 1), "2024-02-29");
  EXPECT_EQ(FormatDate(Days(2025, 1, 1) - 1), "2024-12-31");
  // A 31-day difference spans exactly January.
  EXPECT_EQ(Days(2024, 2, 1) - Days(2024, 1, 1), 31);
  EXPECT_EQ(Days(2024, 3, 1) - Days(2024, 2, 1), 29);  // leap February
  EXPECT_EQ(Days(2023, 3, 1) - Days(2023, 2, 1), 28);
}

TEST(DateUtilTest, RoundTripAcrossFourCenturies) {
  // Every civil date must survive days -> civil -> days, including the
  // full 400-year Gregorian cycle boundaries around the epoch.
  for (int64_t day : {int64_t{-719468} /* 0001-01-01 */, int64_t{-141428},
                      int64_t{-1}, int64_t{0}, int64_t{11016}, int64_t{11017},
                      int64_t{19781}, int64_t{19782}, int64_t{2932896}}) {
    CivilDate civil = CivilFromDays(day);
    EXPECT_EQ(DaysFromCivil(civil), day)
        << civil.year << "-" << civil.month << "-" << civil.day;
  }
  EXPECT_EQ(FormatDate(DaysFromCivil({1, 1, 1})), "0001-01-01");
}

TEST(DateUtilTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseDate("").has_value());
  EXPECT_FALSE(ParseDate("2024-1-05").has_value());   // unpadded month
  EXPECT_FALSE(ParseDate("24-01-05").has_value());    // 2-digit year
  EXPECT_FALSE(ParseDate("2024/01/05").has_value());  // wrong separator
  EXPECT_FALSE(ParseDate("2024-00-10").has_value());
  EXPECT_FALSE(ParseDate("2024-13-10").has_value());
  EXPECT_FALSE(ParseDate("2024-04-31").has_value());  // April has 30 days
  EXPECT_FALSE(ParseDate("2024-01-00").has_value());
  EXPECT_FALSE(ParseDate("2024-01-32").has_value());
  ASSERT_TRUE(ParseDate("2024-04-30").has_value());
  EXPECT_EQ(FormatDate(*ParseDate("2024-04-30")), "2024-04-30");
}

}  // namespace
}  // namespace vdm
