// Unit tests for the static inference lattice (analysis/infer):
// uniqueness from base keys / GROUP BY / selective equality, functional
// dependencies through projection, many-to-one joins, and UNION ALL branch
// intersection, 3VL NULL-ability through LEFT OUTER joins, and the shared
// structural primitives (ExtractSimpleRelation, TableKeyCovered,
// NullRejectedColumns).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/infer/inference.h"
#include "engine/database.h"
#include "expr/expr.h"

namespace vdm {
namespace {

class InferTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(db_->Execute("create table t (k int primary key, a int, "
                             "b int, c int not null)")
                    .ok());
    ASSERT_TRUE(
        db_->Execute("create table u (k int primary key, v int)").ok());
    ASSERT_TRUE(db_->Execute("create table t2 (a int, b int, c int, "
                             "primary key (a, b))")
                    .ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static PlanRef Bind(const std::string& sql) {
    Result<PlanRef> plan = db_->BindQuery(sql);
    EXPECT_TRUE(plan.ok()) << sql << "\n" << plan.status().ToString();
    return plan.ok() ? *plan : nullptr;
  }

  static InferredProps InferSql(const std::string& sql,
                                InferOptions options = {}) {
    PlanRef plan = Bind(sql);
    if (!plan) return {};
    InferenceEngine engine(options);
    return engine.Infer(plan);
  }

  static Database* db_;
};

Database* InferTest::db_ = nullptr;

TEST_F(InferTest, UniquenessFromBaseTableKey) {
  InferredProps props = InferSql("select k, a from t");
  EXPECT_TRUE(props.UniqueOn({"k"}));
  EXPECT_FALSE(props.UniqueOn({"a"}));

  InferOptions no_keys;
  no_keys.base_table_keys = false;
  EXPECT_FALSE(InferSql("select k, a from t", no_keys).UniqueOn({"k"}));
}

TEST_F(InferTest, UniquenessFromGroupBy) {
  const std::string sql =
      "select a as ga, b as gb, count(*) as n from t group by a, b";
  InferredProps props = InferSql(sql);
  EXPECT_TRUE(props.UniqueOn({"ga", "gb"}));
  EXPECT_FALSE(props.UniqueOn({"ga"}));

  InferOptions no_groupby;
  no_groupby.groupby_keys = false;
  EXPECT_FALSE(InferSql(sql, no_groupby).UniqueOn({"ga", "gb"}));
}

TEST_F(InferTest, UniquenessFromSelectiveEquality) {
  // The composite key (a, b) collapses to {b} once a is pinned.
  const std::string sql = "select a, b, c from t2 where a = 7";
  InferredProps props = InferSql(sql);
  EXPECT_TRUE(props.UniqueOn({"b"}));
  EXPECT_TRUE(props.UniqueOn({"a", "b"}));

  InferOptions no_pinning;
  no_pinning.const_pinning = false;
  InferredProps weak = InferSql(sql, no_pinning);
  EXPECT_FALSE(weak.UniqueOn({"b"}));
  EXPECT_TRUE(weak.UniqueOn({"a", "b"}));
}

TEST_F(InferTest, GlobalAggregateIsSingleRow) {
  InferredProps props = InferSql("select count(*) as n from t");
  EXPECT_TRUE(props.at_most_one_row);
  EXPECT_TRUE(props.UniqueOn({"n"}));
}

TEST_F(InferTest, NotNullFromSchemaAndPredicates) {
  InferredProps props = InferSql("select k, a, c from t");
  EXPECT_TRUE(props.IsNotNull("k"));  // primary key
  EXPECT_TRUE(props.IsNotNull("c"));  // declared NOT NULL
  EXPECT_FALSE(props.IsNotNull("a"));

  // A comparison is NULL-rejecting under 3VL.
  EXPECT_TRUE(InferSql("select a from t where a > 3").IsNotNull("a"));
}

TEST_F(InferTest, NullabilityThroughLeftJoin) {
  // Without a NULL-rejecting filter, the right side's columns may be
  // null-extended even though u.k is the (NOT NULL) primary key.
  InferredProps loj = InferSql(
      "select t.k as k, u.v as v from t left outer join u on t.k = u.k");
  EXPECT_TRUE(loj.IsNotNull("k"));
  EXPECT_FALSE(loj.IsNotNull("v"));

  // A NULL-rejecting WHERE on the right side restores non-NULL-ness.
  InferredProps filtered = InferSql(
      "select t.k as k, u.v as v from t left outer join u on t.k = u.k "
      "where u.v > 0");
  EXPECT_TRUE(filtered.IsNotNull("v"));
}

TEST_F(InferTest, FdThroughProjection) {
  // The filter equality a = b induces {a}→{b} and {b}→{a}; the projection
  // renames both columns and the FD follows.
  InferredProps props =
      InferSql("select a as x, b as y from t where a = b");
  EXPECT_TRUE(props.FdHolds({"x"}, "y"));
  EXPECT_TRUE(props.FdHolds({"y"}, "x"));
  EXPECT_FALSE(props.FdHolds({"x"}, "x_missing"));
}

TEST_F(InferTest, FdThroughManyToOneJoin) {
  // u's primary key makes the join many-to-one: t.a determines every
  // u column (LEFT OUTER included: a NULL t.a null-extends consistently).
  InferredProps props = InferSql(
      "select t.k as k, t.a as a, u.v as v "
      "from t left outer join u on t.a = u.k");
  EXPECT_TRUE(props.FdHolds({"a"}, "v"));
  EXPECT_FALSE(props.FdHolds({"v"}, "a"));
  // The left key survives a many-to-one join.
  EXPECT_TRUE(props.UniqueOn({"k"}));
}

TEST_F(InferTest, FdThroughUnionAllByBranchIntersection) {
  // Both branches carry {x}→{y}; positionally-common FDs survive the
  // union with the branch discriminator added to the determinants.
  InferredProps props = InferSql(
      "select a as x, b as y, 1 as bid from t where a = b "
      "union all "
      "select a as x, b as y, 2 as bid from t where a = b");
  EXPECT_TRUE(props.FdHolds({"x", "bid"}, "y"));
}

TEST_F(InferTest, UniquenessThroughUnionAllBranchIds) {
  // Fig. 12: distinct per-branch constants make {k, bid} unique.
  const std::string sql =
      "select k, 1 as bid from t union all select k, 2 as bid from t";
  InferredProps props = InferSql(sql);
  EXPECT_TRUE(props.UniqueOn({"k", "bid"}));
  EXPECT_FALSE(props.UniqueOn({"k"}));

  InferOptions no_union;
  no_union.keys_through_union_all = false;
  EXPECT_FALSE(InferSql(sql, no_union).UniqueOn({"k", "bid"}));
}

TEST_F(InferTest, ValueSourcesThroughEqualities) {
  // u.k takes t.a's source through the join equality (via_equality), so a
  // further self-join on u.k can be traced back to t's scan.
  PlanRef plan =
      Bind("select t.a as a, u.k as uk from t join u on t.a = u.k");
  ASSERT_NE(plan, nullptr);
  InferenceEngine engine;
  const InferredProps& props = engine.Infer(plan);
  const ValueSource* direct = props.FindSource("a", "t", "a");
  ASSERT_NE(direct, nullptr);
  const ValueSource* derived = props.FindSource("uk", "t", "a");
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(direct->source_id, derived->source_id);
  EXPECT_TRUE(derived->via_equality);
}

TEST_F(InferTest, ExtractSimpleRelationAndKeyCoverage) {
  PlanRef plan = Bind("select k as kk, a from t where a > 1");
  ASSERT_NE(plan, nullptr);
  std::optional<SimpleRelation> rel = ExtractSimpleRelation(plan);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->scan->table_name(), "t");
  ASSERT_EQ(rel->base_preds.size(), 1u);
  EXPECT_EQ(rel->out_to_base.at("kk"), "k");

  InferOptions options;
  EXPECT_TRUE(TableKeyCovered(rel->scan->table_schema(), {"k"}, options));
  EXPECT_FALSE(TableKeyCovered(rel->scan->table_schema(), {"a"}, options));

  // Aggregates are not simple relations.
  EXPECT_FALSE(ExtractSimpleRelation(
                   Bind("select a, count(*) as n from t group by a"))
                   .has_value());
}

TEST_F(InferTest, NullRejectedColumnsThreeValuedLogic) {
  ExprRef cmp = Bin(BinaryOpKind::kGreater, Col("a"), Col("b"));
  EXPECT_EQ(NullRejectedColumns(cmp),
            (std::set<std::string>{"a", "b"}));

  // AND unions, OR intersects.
  ExprRef both = And(Bin(BinaryOpKind::kGreater, Col("a"), LitInt(1)),
                     Eq(Col("b"), LitInt(2)));
  EXPECT_EQ(NullRejectedColumns(both),
            (std::set<std::string>{"a", "b"}));
  ExprRef either = Bin(BinaryOpKind::kOr,
                       Bin(BinaryOpKind::kGreater, Col("a"), LitInt(1)),
                       Eq(Col("a"), LitInt(0)));
  EXPECT_EQ(NullRejectedColumns(either), (std::set<std::string>{"a"}));
  ExprRef mixed = Bin(BinaryOpKind::kOr,
                      Bin(BinaryOpKind::kGreater, Col("a"), LitInt(1)),
                      Eq(Col("b"), LitInt(0)));
  EXPECT_TRUE(NullRejectedColumns(mixed).empty());

  // IS NOT NULL rejects; IS NULL does not.
  EXPECT_EQ(NullRejectedColumns(
                std::make_shared<IsNullExpr>(Col("a"), /*negated=*/true)),
            (std::set<std::string>{"a"}));
  EXPECT_TRUE(NullRejectedColumns(
                  std::make_shared<IsNullExpr>(Col("a"), /*negated=*/false))
                  .empty());
}

}  // namespace
}  // namespace vdm
