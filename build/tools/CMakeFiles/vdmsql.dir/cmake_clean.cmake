file(REMOVE_RECURSE
  "CMakeFiles/vdmsql.dir/vdmsql.cc.o"
  "CMakeFiles/vdmsql.dir/vdmsql.cc.o.d"
  "vdmsql"
  "vdmsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdmsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
