# Empty compiler generated dependencies file for vdmsql.
# This may be replaced when dependencies are built.
