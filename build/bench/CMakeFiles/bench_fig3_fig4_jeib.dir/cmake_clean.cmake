file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fig4_jeib.dir/bench_fig3_fig4_jeib.cc.o"
  "CMakeFiles/bench_fig3_fig4_jeib.dir/bench_fig3_fig4_jeib.cc.o.d"
  "bench_fig3_fig4_jeib"
  "bench_fig3_fig4_jeib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fig4_jeib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
