file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_unionall.dir/bench_table4_unionall.cc.o"
  "CMakeFiles/bench_table4_unionall.dir/bench_table4_unionall.cc.o.d"
  "bench_table4_unionall"
  "bench_table4_unionall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_unionall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
