# Empty compiler generated dependencies file for bench_table4_unionall.
# This may be replaced when dependencies are built.
