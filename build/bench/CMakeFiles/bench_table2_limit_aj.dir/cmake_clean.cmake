file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_limit_aj.dir/bench_table2_limit_aj.cc.o"
  "CMakeFiles/bench_table2_limit_aj.dir/bench_table2_limit_aj.cc.o.d"
  "bench_table2_limit_aj"
  "bench_table2_limit_aj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_limit_aj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
