# Empty dependencies file for bench_table2_limit_aj.
# This may be replaced when dependencies are built.
