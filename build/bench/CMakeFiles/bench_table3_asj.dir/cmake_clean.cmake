file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_asj.dir/bench_table3_asj.cc.o"
  "CMakeFiles/bench_table3_asj.dir/bench_table3_asj.cc.o.d"
  "bench_table3_asj"
  "bench_table3_asj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_asj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
