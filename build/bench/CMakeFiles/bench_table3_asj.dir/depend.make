# Empty dependencies file for bench_table3_asj.
# This may be replaced when dependencies are built.
