
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_asj.cc" "bench/CMakeFiles/bench_table3_asj.dir/bench_table3_asj.cc.o" "gcc" "bench/CMakeFiles/bench_table3_asj.dir/bench_table3_asj.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/vdm_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vdm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vdm/CMakeFiles/vdm_vdm.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/vdm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/vdm_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/vdm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/vdm_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vdm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/vdm_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/vdm_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
