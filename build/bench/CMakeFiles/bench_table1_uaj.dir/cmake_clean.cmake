file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_uaj.dir/bench_table1_uaj.cc.o"
  "CMakeFiles/bench_table1_uaj.dir/bench_table1_uaj.cc.o.d"
  "bench_table1_uaj"
  "bench_table1_uaj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_uaj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
