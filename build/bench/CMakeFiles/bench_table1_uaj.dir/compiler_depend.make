# Empty compiler generated dependencies file for bench_table1_uaj.
# This may be replaced when dependencies are built.
