file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_precision_loss.dir/bench_sec7_precision_loss.cc.o"
  "CMakeFiles/bench_sec7_precision_loss.dir/bench_sec7_precision_loss.cc.o.d"
  "bench_sec7_precision_loss"
  "bench_sec7_precision_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_precision_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
