# Empty compiler generated dependencies file for bench_sec7_precision_loss.
# This may be replaced when dependencies are built.
