file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_macros.dir/bench_sec7_macros.cc.o"
  "CMakeFiles/bench_sec7_macros.dir/bench_sec7_macros.cc.o.d"
  "bench_sec7_macros"
  "bench_sec7_macros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_macros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
