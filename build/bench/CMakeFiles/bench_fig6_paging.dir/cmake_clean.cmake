file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_paging.dir/bench_fig6_paging.cc.o"
  "CMakeFiles/bench_fig6_paging.dir/bench_fig6_paging.cc.o.d"
  "bench_fig6_paging"
  "bench_fig6_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
