# Empty dependencies file for bench_fig6_paging.
# This may be replaced when dependencies are built.
