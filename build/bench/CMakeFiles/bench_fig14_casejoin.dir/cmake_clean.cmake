file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_casejoin.dir/bench_fig14_casejoin.cc.o"
  "CMakeFiles/bench_fig14_casejoin.dir/bench_fig14_casejoin.cc.o.d"
  "bench_fig14_casejoin"
  "bench_fig14_casejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_casejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
