# Empty dependencies file for bench_fig14_casejoin.
# This may be replaced when dependencies are built.
