file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_cardinality.dir/bench_sec7_cardinality.cc.o"
  "CMakeFiles/bench_sec7_cardinality.dir/bench_sec7_cardinality.cc.o.d"
  "bench_sec7_cardinality"
  "bench_sec7_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
