# Empty compiler generated dependencies file for bench_sec7_cardinality.
# This may be replaced when dependencies are built.
