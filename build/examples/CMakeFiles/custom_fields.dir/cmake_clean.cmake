file(REMOVE_RECURSE
  "CMakeFiles/custom_fields.dir/custom_fields.cpp.o"
  "CMakeFiles/custom_fields.dir/custom_fields.cpp.o.d"
  "custom_fields"
  "custom_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
