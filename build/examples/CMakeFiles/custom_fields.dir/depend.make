# Empty dependencies file for custom_fields.
# This may be replaced when dependencies are built.
