file(REMOVE_RECURSE
  "CMakeFiles/embedded_analytics.dir/embedded_analytics.cpp.o"
  "CMakeFiles/embedded_analytics.dir/embedded_analytics.cpp.o.d"
  "embedded_analytics"
  "embedded_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
