# Empty compiler generated dependencies file for embedded_analytics.
# This may be replaced when dependencies are built.
