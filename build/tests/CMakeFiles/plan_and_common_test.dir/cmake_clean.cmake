file(REMOVE_RECURSE
  "CMakeFiles/plan_and_common_test.dir/plan_and_common_test.cc.o"
  "CMakeFiles/plan_and_common_test.dir/plan_and_common_test.cc.o.d"
  "plan_and_common_test"
  "plan_and_common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_and_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
