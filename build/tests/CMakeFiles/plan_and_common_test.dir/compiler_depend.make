# Empty compiler generated dependencies file for plan_and_common_test.
# This may be replaced when dependencies are built.
