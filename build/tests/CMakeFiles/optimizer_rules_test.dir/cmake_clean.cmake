file(REMOVE_RECURSE
  "CMakeFiles/optimizer_rules_test.dir/optimizer_rules_test.cc.o"
  "CMakeFiles/optimizer_rules_test.dir/optimizer_rules_test.cc.o.d"
  "optimizer_rules_test"
  "optimizer_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
