# Empty compiler generated dependencies file for insert_dcv_test.
# This may be replaced when dependencies are built.
