file(REMOVE_RECURSE
  "CMakeFiles/insert_dcv_test.dir/insert_dcv_test.cc.o"
  "CMakeFiles/insert_dcv_test.dir/insert_dcv_test.cc.o.d"
  "insert_dcv_test"
  "insert_dcv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insert_dcv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
