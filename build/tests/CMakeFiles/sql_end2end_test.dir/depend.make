# Empty dependencies file for sql_end2end_test.
# This may be replaced when dependencies are built.
