file(REMOVE_RECURSE
  "CMakeFiles/sql_end2end_test.dir/sql_end2end_test.cc.o"
  "CMakeFiles/sql_end2end_test.dir/sql_end2end_test.cc.o.d"
  "sql_end2end_test"
  "sql_end2end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_end2end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
