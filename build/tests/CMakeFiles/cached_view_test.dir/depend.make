# Empty dependencies file for cached_view_test.
# This may be replaced when dependencies are built.
