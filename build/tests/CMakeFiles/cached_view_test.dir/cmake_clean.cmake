file(REMOVE_RECURSE
  "CMakeFiles/cached_view_test.dir/cached_view_test.cc.o"
  "CMakeFiles/cached_view_test.dir/cached_view_test.cc.o.d"
  "cached_view_test"
  "cached_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cached_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
