# Empty compiler generated dependencies file for vdm_views_test.
# This may be replaced when dependencies are built.
