file(REMOVE_RECURSE
  "CMakeFiles/vdm_views_test.dir/vdm_views_test.cc.o"
  "CMakeFiles/vdm_views_test.dir/vdm_views_test.cc.o.d"
  "vdm_views_test"
  "vdm_views_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
