file(REMOVE_RECURSE
  "CMakeFiles/associations_test.dir/associations_test.cc.o"
  "CMakeFiles/associations_test.dir/associations_test.cc.o.d"
  "associations_test"
  "associations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/associations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
