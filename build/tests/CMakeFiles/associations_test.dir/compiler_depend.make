# Empty compiler generated dependencies file for associations_test.
# This may be replaced when dependencies are built.
