# Empty dependencies file for vdm_common.
# This may be replaced when dependencies are built.
