file(REMOVE_RECURSE
  "libvdm_common.a"
)
