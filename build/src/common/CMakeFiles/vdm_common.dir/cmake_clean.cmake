file(REMOVE_RECURSE
  "CMakeFiles/vdm_common.dir/status.cc.o"
  "CMakeFiles/vdm_common.dir/status.cc.o.d"
  "CMakeFiles/vdm_common.dir/string_util.cc.o"
  "CMakeFiles/vdm_common.dir/string_util.cc.o.d"
  "libvdm_common.a"
  "libvdm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
