file(REMOVE_RECURSE
  "CMakeFiles/vdm_plan.dir/logical_plan.cc.o"
  "CMakeFiles/vdm_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/vdm_plan.dir/plan_builder.cc.o"
  "CMakeFiles/vdm_plan.dir/plan_builder.cc.o.d"
  "CMakeFiles/vdm_plan.dir/plan_printer.cc.o"
  "CMakeFiles/vdm_plan.dir/plan_printer.cc.o.d"
  "libvdm_plan.a"
  "libvdm_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
