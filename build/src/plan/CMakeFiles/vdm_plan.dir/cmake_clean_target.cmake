file(REMOVE_RECURSE
  "libvdm_plan.a"
)
