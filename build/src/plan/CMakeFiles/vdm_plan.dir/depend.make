# Empty dependencies file for vdm_plan.
# This may be replaced when dependencies are built.
