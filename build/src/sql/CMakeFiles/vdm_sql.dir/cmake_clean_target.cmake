file(REMOVE_RECURSE
  "libvdm_sql.a"
)
