# Empty compiler generated dependencies file for vdm_sql.
# This may be replaced when dependencies are built.
