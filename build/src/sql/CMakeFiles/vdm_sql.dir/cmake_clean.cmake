file(REMOVE_RECURSE
  "CMakeFiles/vdm_sql.dir/binder.cc.o"
  "CMakeFiles/vdm_sql.dir/binder.cc.o.d"
  "CMakeFiles/vdm_sql.dir/lexer.cc.o"
  "CMakeFiles/vdm_sql.dir/lexer.cc.o.d"
  "CMakeFiles/vdm_sql.dir/parser.cc.o"
  "CMakeFiles/vdm_sql.dir/parser.cc.o.d"
  "libvdm_sql.a"
  "libvdm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
