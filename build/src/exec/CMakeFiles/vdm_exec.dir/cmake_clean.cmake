file(REMOVE_RECURSE
  "CMakeFiles/vdm_exec.dir/executor.cc.o"
  "CMakeFiles/vdm_exec.dir/executor.cc.o.d"
  "libvdm_exec.a"
  "libvdm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
