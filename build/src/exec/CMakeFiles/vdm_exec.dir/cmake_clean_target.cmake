file(REMOVE_RECURSE
  "libvdm_exec.a"
)
