# Empty compiler generated dependencies file for vdm_exec.
# This may be replaced when dependencies are built.
