file(REMOVE_RECURSE
  "libvdm_vdm.a"
)
