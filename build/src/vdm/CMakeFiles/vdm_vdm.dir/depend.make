# Empty dependencies file for vdm_vdm.
# This may be replaced when dependencies are built.
