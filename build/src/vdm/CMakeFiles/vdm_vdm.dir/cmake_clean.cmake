file(REMOVE_RECURSE
  "CMakeFiles/vdm_vdm.dir/generator.cc.o"
  "CMakeFiles/vdm_vdm.dir/generator.cc.o.d"
  "CMakeFiles/vdm_vdm.dir/jeib.cc.o"
  "CMakeFiles/vdm_vdm.dir/jeib.cc.o.d"
  "libvdm_vdm.a"
  "libvdm_vdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_vdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
