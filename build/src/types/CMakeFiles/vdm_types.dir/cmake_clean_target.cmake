file(REMOVE_RECURSE
  "libvdm_types.a"
)
