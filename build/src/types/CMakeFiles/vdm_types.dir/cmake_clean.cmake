file(REMOVE_RECURSE
  "CMakeFiles/vdm_types.dir/column.cc.o"
  "CMakeFiles/vdm_types.dir/column.cc.o.d"
  "CMakeFiles/vdm_types.dir/date_util.cc.o"
  "CMakeFiles/vdm_types.dir/date_util.cc.o.d"
  "CMakeFiles/vdm_types.dir/type.cc.o"
  "CMakeFiles/vdm_types.dir/type.cc.o.d"
  "CMakeFiles/vdm_types.dir/value.cc.o"
  "CMakeFiles/vdm_types.dir/value.cc.o.d"
  "libvdm_types.a"
  "libvdm_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
