# Empty compiler generated dependencies file for vdm_types.
# This may be replaced when dependencies are built.
