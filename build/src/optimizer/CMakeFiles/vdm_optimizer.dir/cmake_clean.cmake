file(REMOVE_RECURSE
  "CMakeFiles/vdm_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/vdm_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/properties.cc.o"
  "CMakeFiles/vdm_optimizer.dir/properties.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/rule_agg.cc.o"
  "CMakeFiles/vdm_optimizer.dir/rule_agg.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/rule_asj.cc.o"
  "CMakeFiles/vdm_optimizer.dir/rule_asj.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/rule_joinorder.cc.o"
  "CMakeFiles/vdm_optimizer.dir/rule_joinorder.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/rule_limit.cc.o"
  "CMakeFiles/vdm_optimizer.dir/rule_limit.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/rule_prune.cc.o"
  "CMakeFiles/vdm_optimizer.dir/rule_prune.cc.o.d"
  "CMakeFiles/vdm_optimizer.dir/rules_basic.cc.o"
  "CMakeFiles/vdm_optimizer.dir/rules_basic.cc.o.d"
  "libvdm_optimizer.a"
  "libvdm_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
