file(REMOVE_RECURSE
  "libvdm_optimizer.a"
)
