# Empty compiler generated dependencies file for vdm_optimizer.
# This may be replaced when dependencies are built.
