
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/properties.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/properties.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/properties.cc.o.d"
  "/root/repo/src/optimizer/rule_agg.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_agg.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_agg.cc.o.d"
  "/root/repo/src/optimizer/rule_asj.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_asj.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_asj.cc.o.d"
  "/root/repo/src/optimizer/rule_joinorder.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_joinorder.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_joinorder.cc.o.d"
  "/root/repo/src/optimizer/rule_limit.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_limit.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_limit.cc.o.d"
  "/root/repo/src/optimizer/rule_prune.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_prune.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rule_prune.cc.o.d"
  "/root/repo/src/optimizer/rules_basic.cc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rules_basic.cc.o" "gcc" "src/optimizer/CMakeFiles/vdm_optimizer.dir/rules_basic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/vdm_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/vdm_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/vdm_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
