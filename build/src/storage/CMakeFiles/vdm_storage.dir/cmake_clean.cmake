file(REMOVE_RECURSE
  "CMakeFiles/vdm_storage.dir/table.cc.o"
  "CMakeFiles/vdm_storage.dir/table.cc.o.d"
  "libvdm_storage.a"
  "libvdm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
