file(REMOVE_RECURSE
  "libvdm_storage.a"
)
