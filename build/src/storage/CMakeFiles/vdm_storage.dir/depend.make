# Empty dependencies file for vdm_storage.
# This may be replaced when dependencies are built.
