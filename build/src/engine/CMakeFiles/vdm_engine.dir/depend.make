# Empty dependencies file for vdm_engine.
# This may be replaced when dependencies are built.
