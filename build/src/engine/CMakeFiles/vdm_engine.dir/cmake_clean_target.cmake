file(REMOVE_RECURSE
  "libvdm_engine.a"
)
