file(REMOVE_RECURSE
  "CMakeFiles/vdm_engine.dir/csv.cc.o"
  "CMakeFiles/vdm_engine.dir/csv.cc.o.d"
  "CMakeFiles/vdm_engine.dir/database.cc.o"
  "CMakeFiles/vdm_engine.dir/database.cc.o.d"
  "libvdm_engine.a"
  "libvdm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
