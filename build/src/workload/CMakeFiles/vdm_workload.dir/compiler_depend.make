# Empty compiler generated dependencies file for vdm_workload.
# This may be replaced when dependencies are built.
