file(REMOVE_RECURSE
  "libvdm_workload.a"
)
