file(REMOVE_RECURSE
  "CMakeFiles/vdm_workload.dir/s4.cc.o"
  "CMakeFiles/vdm_workload.dir/s4.cc.o.d"
  "CMakeFiles/vdm_workload.dir/tpch.cc.o"
  "CMakeFiles/vdm_workload.dir/tpch.cc.o.d"
  "libvdm_workload.a"
  "libvdm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
