file(REMOVE_RECURSE
  "CMakeFiles/vdm_expr.dir/eval.cc.o"
  "CMakeFiles/vdm_expr.dir/eval.cc.o.d"
  "CMakeFiles/vdm_expr.dir/expr.cc.o"
  "CMakeFiles/vdm_expr.dir/expr.cc.o.d"
  "CMakeFiles/vdm_expr.dir/fold.cc.o"
  "CMakeFiles/vdm_expr.dir/fold.cc.o.d"
  "libvdm_expr.a"
  "libvdm_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
