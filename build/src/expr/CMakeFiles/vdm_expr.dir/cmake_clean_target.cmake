file(REMOVE_RECURSE
  "libvdm_expr.a"
)
