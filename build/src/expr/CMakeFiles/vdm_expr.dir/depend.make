# Empty dependencies file for vdm_expr.
# This may be replaced when dependencies are built.
