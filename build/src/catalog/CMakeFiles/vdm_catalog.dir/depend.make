# Empty dependencies file for vdm_catalog.
# This may be replaced when dependencies are built.
