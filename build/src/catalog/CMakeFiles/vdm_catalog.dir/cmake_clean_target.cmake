file(REMOVE_RECURSE
  "libvdm_catalog.a"
)
