file(REMOVE_RECURSE
  "CMakeFiles/vdm_catalog.dir/catalog.cc.o"
  "CMakeFiles/vdm_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/vdm_catalog.dir/schema.cc.o"
  "CMakeFiles/vdm_catalog.dir/schema.cc.o.d"
  "libvdm_catalog.a"
  "libvdm_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdm_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
