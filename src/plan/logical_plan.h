// Logical query plan operators.
//
// Plans are shared_ptr trees of immutable nodes (rewrites build new nodes).
// Every operator exposes a flat list of named output columns; scans qualify
// column names with their alias ("o.o_orderkey") so that self-joins — the
// heart of the paper's ASJ pattern — are unambiguous.
//
// JoinOp carries the paper-specific attributes:
//  * declared join cardinality (§7.3 `left outer many to one join`)
//  * the case-join flag (§6.3): an explicit declaration that this join is an
//    augmentation self-join whose augmenter may be a UNION ALL, instructing
//    the optimizer to preserve the augmenter subtree and attempt ASJ
//    elimination even across UNION ALL on both sides.
#ifndef VDMQO_PLAN_LOGICAL_PLAN_H_
#define VDMQO_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "expr/expr.h"

namespace vdm {

class LogicalOp;
using PlanRef = std::shared_ptr<const LogicalOp>;

enum class OpKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kUnionAll,
  kSort,
  kLimit,
  kDistinct,
};

enum class JoinType {
  kInner,
  kLeftOuter,
};

/// Declared join cardinality of the *right* side relative to the left
/// (paper §7.3). kExactOne means 1..1 (many-to-exact-one), kAtMostOne means
/// 0..1 (many-to-one). Unenforced; trusted by the optimizer.
enum class DeclaredCardinality {
  kNone,
  kAtMostOne,   // "many to one"
  kExactOne,    // "many to exact one"
};

class LogicalOp : public std::enable_shared_from_this<LogicalOp> {
 public:
  explicit LogicalOp(OpKind kind) : kind_(kind), id_(NextId()) {}
  virtual ~LogicalOp() = default;

  OpKind kind() const { return kind_; }
  /// Unique node id, stable across shallow copies that preserve identity
  /// semantics (scan instances are identified by id for provenance).
  uint64_t id() const { return id_; }

  const std::vector<PlanRef>& children() const { return children_; }
  const PlanRef& child(size_t i) const { return children_[i]; }
  size_t NumChildren() const { return children_.size(); }

  /// Names of the output columns, in order.
  virtual std::vector<std::string> OutputNames() const = 0;

  /// Single-line description (without children) for plan printing.
  virtual std::string Describe() const = 0;

  /// Rebuilds this node with new children, preserving attributes AND the
  /// node id (rewrites replace subtrees but keep the node's identity).
  virtual PlanRef WithChildren(std::vector<PlanRef> children) const = 0;

 protected:
  static uint64_t NextId();

  void CopyIdFrom(const LogicalOp& other) { id_ = other.id_; }

  OpKind kind_;
  uint64_t id_;
  std::vector<PlanRef> children_;
};

// ---------------------------------------------------------------------------

class ScanOp : public LogicalOp {
 public:
  /// Scans `schema` under `alias`; output columns are "alias.column" for
  /// each entry of `columns` (indexes into the schema).
  ScanOp(TableSchema schema, std::string alias, std::vector<size_t> columns);

  const TableSchema& table_schema() const { return schema_; }
  const std::string& table_name() const { return schema_.name(); }
  const std::string& alias() const { return alias_; }
  const std::vector<size_t>& column_indexes() const { return columns_; }

  /// Qualified name for schema column index c: "alias.colname".
  std::string QualifiedName(size_t schema_column_index) const;
  /// The schema column index behind output position i.
  size_t SchemaIndexOfOutput(size_t output_index) const {
    return columns_[output_index];
  }

  /// New scan node (same identity) restricted to the given schema columns.
  PlanRef WithColumns(std::vector<size_t> columns) const;

  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  TableSchema schema_;
  std::string alias_;
  std::vector<size_t> columns_;
};

class FilterOp : public LogicalOp {
 public:
  FilterOp(PlanRef input, ExprRef predicate);
  const ExprRef& predicate() const { return predicate_; }
  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  ExprRef predicate_;
};

class ProjectOp : public LogicalOp {
 public:
  struct Item {
    ExprRef expr;
    std::string name;
  };
  ProjectOp(PlanRef input, std::vector<Item> items);
  const std::vector<Item>& items() const { return items_; }
  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  std::vector<Item> items_;
};

class JoinOp : public LogicalOp {
 public:
  JoinOp(PlanRef left, PlanRef right, JoinType join_type, ExprRef condition,
         DeclaredCardinality cardinality = DeclaredCardinality::kNone,
         bool is_case_join = false);

  JoinType join_type() const { return join_type_; }
  const ExprRef& condition() const { return condition_; }
  DeclaredCardinality declared_cardinality() const { return cardinality_; }
  bool is_case_join() const { return case_join_; }

  /// Executor hint: the smallest LIMIT budget (offset + limit) known to
  /// apply to this join's output; -1 = none. Set by AnnotateJoinLimitHints
  /// after optimization; lets the probe loop stop early even when the
  /// LimitOp itself could not be pushed below the join. Does not affect
  /// plan semantics or Describe() output.
  int64_t limit_hint() const { return limit_hint_; }
  /// Copy of this node (same identity and children) with the given hint.
  PlanRef WithLimitHint(int64_t hint) const;

  const PlanRef& left() const { return children_[0]; }
  const PlanRef& right() const { return children_[1]; }

  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  JoinType join_type_;
  ExprRef condition_;
  DeclaredCardinality cardinality_;
  bool case_join_;
  int64_t limit_hint_ = -1;
};

class AggregateOp : public LogicalOp {
 public:
  struct GroupItem {
    ExprRef expr;  // usually a column ref
    std::string name;
  };
  struct AggItem {
    ExprRef expr;  // an AggregateExpr, possibly wrapped in scalar exprs
    std::string name;
  };
  AggregateOp(PlanRef input, std::vector<GroupItem> group_by,
              std::vector<AggItem> aggregates);

  const std::vector<GroupItem>& group_by() const { return group_by_; }
  const std::vector<AggItem>& aggregates() const { return aggregates_; }

  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  std::vector<GroupItem> group_by_;
  std::vector<AggItem> aggregates_;
};

class UnionAllOp : public LogicalOp {
 public:
  /// All children must produce the same column count; `output_names` names
  /// the union's columns. If `branch_id_column` >= 0, that output position
  /// is a literal branch discriminator distinct per child (paper Fig. 12(b)),
  /// which lets the optimizer derive composite-key uniqueness.
  UnionAllOp(std::vector<PlanRef> inputs,
             std::vector<std::string> output_names,
             int branch_id_column = -1, std::string logical_table = "");

  const std::vector<std::string>& output_names() const {
    return output_names_;
  }
  int branch_id_column() const { return branch_id_column_; }
  /// Name of the logical table this union represents (e.g. the draft/active
  /// pattern of Fig. 11(b), where Active ∪ Draft acts as one table from the
  /// application's perspective). Empty when the union is not table-like.
  const std::string& logical_table() const { return logical_table_; }

  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  std::vector<std::string> output_names_;
  int branch_id_column_;
  std::string logical_table_;
};

class SortOp : public LogicalOp {
 public:
  struct SortKey {
    ExprRef expr;
    bool ascending = true;
  };
  SortOp(PlanRef input, std::vector<SortKey> keys);
  const std::vector<SortKey>& keys() const { return keys_; }
  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  std::vector<SortKey> keys_;
};

class LimitOp : public LogicalOp {
 public:
  LimitOp(PlanRef input, int64_t limit, int64_t offset = 0);
  int64_t limit() const { return limit_; }
  int64_t offset() const { return offset_; }
  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;

 private:
  int64_t limit_;
  int64_t offset_;
};

class DistinctOp : public LogicalOp {
 public:
  explicit DistinctOp(PlanRef input);
  std::vector<std::string> OutputNames() const override;
  std::string Describe() const override;
  PlanRef WithChildren(std::vector<PlanRef> children) const override;
};

// ---------------------------------------------------------------------------
// Traversal helpers

/// Applies fn bottom-up; fn may return a replacement node or nullptr to
/// keep the (possibly rebuilt) node.
PlanRef TransformPlan(const PlanRef& plan,
                      const std::function<PlanRef(const PlanRef&)>& fn);

/// Pre-order visit.
void VisitPlan(const PlanRef& plan,
               const std::function<void(const PlanRef&)>& fn);

/// Finds the (unique) scan node with the given node id, or nullptr.
std::shared_ptr<const ScanOp> FindScanById(const PlanRef& plan, uint64_t id);

}  // namespace vdm

#endif  // VDMQO_PLAN_LOGICAL_PLAN_H_
