// Plan rendering and plan-shape statistics (the measurements behind the
// paper's Fig. 3 / Fig. 4 discussion: table instances, join count, union
// count, nesting depth).
#ifndef VDMQO_PLAN_PLAN_PRINTER_H_
#define VDMQO_PLAN_PLAN_PRINTER_H_

#include <string>

#include "plan/logical_plan.h"
#include "plan/plan_estimates.h"

namespace vdm {

/// Indented tree rendering of a plan.
std::string PrintPlan(const PlanRef& plan);

/// Same rendering with per-operator cardinality/cost annotations appended
/// (`[est rows=... cost=...]`) for nodes present in `estimates`.
/// `estimates` may be nullptr, which degrades to the plain rendering.
std::string PrintPlan(const PlanRef& plan, const PlanEstimates* estimates);

/// Stable operator-kind name ("Scan", "Join", ...) for diagnostics such as
/// the plan verifier's failing-op paths.
const char* OpKindName(OpKind kind);

/// Structural statistics of a plan.
struct PlanStats {
  size_t table_instances = 0;
  size_t joins = 0;
  size_t left_outer_joins = 0;
  size_t union_alls = 0;
  size_t union_all_children = 0;
  size_t aggregates = 0;
  size_t distincts = 0;
  size_t filters = 0;
  size_t projects = 0;
  size_t limits = 0;
  size_t max_depth = 0;

  std::string ToString() const;
};

PlanStats ComputePlanStats(const PlanRef& plan);

}  // namespace vdm

#endif  // VDMQO_PLAN_PLAN_PRINTER_H_
