#include "plan/plan_printer.h"

#include <algorithm>

#include "common/string_util.h"

namespace vdm {

namespace {

void PrintRec(const PlanRef& plan, size_t depth, const PlanEstimates* est,
              std::string* out) {
  out->append(depth * 2, ' ');
  out->append(plan->Describe());
  if (est != nullptr) {
    auto it = est->find(plan->id());
    if (it != est->end()) {
      out->append(StrFormat("  [est rows=%.0f cost=%.0f]", it->second.rows,
                            it->second.cost));
    }
  }
  out->append("\n");
  for (const PlanRef& child : plan->children()) {
    PrintRec(child, depth + 1, est, out);
  }
}

void StatsRec(const PlanRef& plan, size_t depth, PlanStats* stats) {
  stats->max_depth = std::max(stats->max_depth, depth);
  switch (plan->kind()) {
    case OpKind::kScan:
      ++stats->table_instances;
      break;
    case OpKind::kJoin: {
      ++stats->joins;
      const auto& join = static_cast<const JoinOp&>(*plan);
      if (join.join_type() == JoinType::kLeftOuter) {
        ++stats->left_outer_joins;
      }
      break;
    }
    case OpKind::kUnionAll:
      ++stats->union_alls;
      stats->union_all_children += plan->NumChildren();
      break;
    case OpKind::kAggregate:
      ++stats->aggregates;
      break;
    case OpKind::kDistinct:
      ++stats->distincts;
      break;
    case OpKind::kFilter:
      ++stats->filters;
      break;
    case OpKind::kProject:
      ++stats->projects;
      break;
    case OpKind::kLimit:
      ++stats->limits;
      break;
    case OpKind::kSort:
      break;
  }
  for (const PlanRef& child : plan->children()) {
    StatsRec(child, depth + 1, stats);
  }
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kUnionAll:
      return "UnionAll";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kLimit:
      return "Limit";
    case OpKind::kDistinct:
      return "Distinct";
  }
  return "?";
}

std::string PrintPlan(const PlanRef& plan) {
  std::string out;
  PrintRec(plan, 0, nullptr, &out);
  return out;
}

std::string PrintPlan(const PlanRef& plan, const PlanEstimates* estimates) {
  std::string out;
  PrintRec(plan, 0, estimates, &out);
  return out;
}

std::string PlanStats::ToString() const {
  return StrFormat(
      "tables=%zu joins=%zu (loj=%zu) unions=%zu aggs=%zu distincts=%zu "
      "filters=%zu projects=%zu limits=%zu depth=%zu",
      table_instances, joins, left_outer_joins, union_alls, aggregates,
      distincts, filters, projects, limits, max_depth);
}

PlanStats ComputePlanStats(const PlanRef& plan) {
  PlanStats stats;
  StatsRec(plan, 0, &stats);
  return stats;
}

}  // namespace vdm
