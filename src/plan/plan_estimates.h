// Per-operator cardinality / cost annotations, keyed by LogicalOp::id().
//
// The cardinality estimator (analysis/stats/cardinality.h) fills one map
// per optimized plan; the engine threads it to the executor (build-side
// sizing, serial-vs-parallel choice) and to ExplainAnalyze (per-operator
// `est` lines via plan_printer.h). Node ids survive WithChildren-style
// rewrites — in particular the plan cache's parameter rebinding — so a
// map computed at plan time stays valid for every execution of the
// cached plan until the stats (catalog) version moves.
#ifndef VDMQO_PLAN_PLAN_ESTIMATES_H_
#define VDMQO_PLAN_PLAN_ESTIMATES_H_

#include <cstdint>
#include <unordered_map>

namespace vdm {

struct PlanEstimate {
  /// Estimated output rows of the operator.
  double rows = 0.0;
  /// Estimated cumulative cost of the subtree rooted here, in abstract
  /// row-touch units (see CardinalityEstimator for the per-operator
  /// weights). Comparable only within one plan.
  double cost = 0.0;
};

/// LogicalOp::id() -> estimate for the whole plan tree.
using PlanEstimates = std::unordered_map<uint64_t, PlanEstimate>;

}  // namespace vdm

#endif  // VDMQO_PLAN_PLAN_ESTIMATES_H_
