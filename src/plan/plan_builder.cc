#include "plan/plan_builder.h"

#include "common/macros.h"

namespace vdm {

PlanBuilder PlanBuilder::Scan(const Catalog& catalog,
                              const std::string& table,
                              const std::string& alias) {
  const TableSchema* schema = catalog.FindTable(table);
  VDM_CHECK(schema != nullptr);
  return ScanSchema(*schema, alias);
}

PlanBuilder PlanBuilder::ScanSchema(TableSchema schema,
                                    const std::string& alias) {
  return PlanBuilder(
      std::make_shared<ScanOp>(std::move(schema), alias,
                               std::vector<size_t>{}));
}

PlanBuilder PlanBuilder::Filter(ExprRef predicate) const {
  return PlanBuilder(std::make_shared<FilterOp>(plan_, std::move(predicate)));
}

PlanBuilder PlanBuilder::Project(std::vector<ProjectOp::Item> items) const {
  return PlanBuilder(std::make_shared<ProjectOp>(plan_, std::move(items)));
}

PlanBuilder PlanBuilder::ProjectColumns(
    const std::vector<std::string>& inputs,
    std::vector<std::string> outputs) const {
  VDM_CHECK(outputs.empty() || outputs.size() == inputs.size());
  std::vector<ProjectOp::Item> items;
  items.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    items.push_back(
        {Col(inputs[i]), outputs.empty() ? inputs[i] : outputs[i]});
  }
  return Project(std::move(items));
}

PlanBuilder PlanBuilder::Join(const PlanBuilder& right, JoinType join_type,
                              ExprRef condition,
                              DeclaredCardinality cardinality,
                              bool case_join) const {
  return PlanBuilder(std::make_shared<JoinOp>(plan_, right.plan_, join_type,
                                              std::move(condition),
                                              cardinality, case_join));
}

PlanBuilder PlanBuilder::Aggregate(
    std::vector<AggregateOp::GroupItem> group_by,
    std::vector<AggregateOp::AggItem> aggregates) const {
  return PlanBuilder(std::make_shared<AggregateOp>(plan_, std::move(group_by),
                                                   std::move(aggregates)));
}

PlanBuilder PlanBuilder::UnionAll(const std::vector<PlanBuilder>& inputs,
                                  std::vector<std::string> output_names,
                                  int branch_id_column,
                                  std::string logical_table) {
  std::vector<PlanRef> children;
  children.reserve(inputs.size());
  for (const PlanBuilder& b : inputs) children.push_back(b.plan_);
  return PlanBuilder(std::make_shared<UnionAllOp>(
      std::move(children), std::move(output_names), branch_id_column,
      std::move(logical_table)));
}

PlanBuilder PlanBuilder::Sort(std::vector<SortOp::SortKey> keys) const {
  return PlanBuilder(std::make_shared<SortOp>(plan_, std::move(keys)));
}

PlanBuilder PlanBuilder::Limit(int64_t limit, int64_t offset) const {
  return PlanBuilder(std::make_shared<LimitOp>(plan_, limit, offset));
}

PlanBuilder PlanBuilder::Distinct() const {
  return PlanBuilder(std::make_shared<DistinctOp>(plan_));
}

}  // namespace vdm
