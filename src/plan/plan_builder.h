// Fluent construction of logical plans without going through SQL.
// Used by tests, benchmarks, and the programmatic VDM view generator.
#ifndef VDMQO_PLAN_PLAN_BUILDER_H_
#define VDMQO_PLAN_PLAN_BUILDER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace vdm {

class PlanBuilder {
 public:
  explicit PlanBuilder(PlanRef plan) : plan_(std::move(plan)) {}

  /// Scans a catalog table; output names are "alias.column".
  static PlanBuilder Scan(const Catalog& catalog, const std::string& table,
                          const std::string& alias = "");
  /// Scans from an explicit schema (no catalog needed).
  static PlanBuilder ScanSchema(TableSchema schema,
                                const std::string& alias = "");

  PlanBuilder Filter(ExprRef predicate) const;
  PlanBuilder Project(std::vector<ProjectOp::Item> items) const;
  /// Projects the named child columns 1:1 under the given output names
  /// (same-length lists); empty outputs keep the input names.
  PlanBuilder ProjectColumns(const std::vector<std::string>& inputs,
                             std::vector<std::string> outputs = {}) const;
  PlanBuilder Join(const PlanBuilder& right, JoinType join_type,
                   ExprRef condition,
                   DeclaredCardinality cardinality = DeclaredCardinality::kNone,
                   bool case_join = false) const;
  PlanBuilder Aggregate(std::vector<AggregateOp::GroupItem> group_by,
                        std::vector<AggregateOp::AggItem> aggregates) const;
  static PlanBuilder UnionAll(const std::vector<PlanBuilder>& inputs,
                              std::vector<std::string> output_names,
                              int branch_id_column = -1,
                              std::string logical_table = "");
  PlanBuilder Sort(std::vector<SortOp::SortKey> keys) const;
  PlanBuilder Limit(int64_t limit, int64_t offset = 0) const;
  PlanBuilder Distinct() const;

  const PlanRef& plan() const { return plan_; }
  PlanRef Build() const { return plan_; }

 private:
  PlanRef plan_;
};

}  // namespace vdm

#endif  // VDMQO_PLAN_PLAN_BUILDER_H_
