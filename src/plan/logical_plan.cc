#include "plan/logical_plan.h"

#include <atomic>

#include "common/macros.h"
#include "common/string_util.h"

namespace vdm {

uint64_t LogicalOp::NextId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1);
}

// ---------------------------------------------------------------------------
// ScanOp

ScanOp::ScanOp(TableSchema schema, std::string alias,
               std::vector<size_t> columns)
    : LogicalOp(OpKind::kScan),
      schema_(std::move(schema)),
      alias_(std::move(alias)),
      columns_(std::move(columns)) {
  if (alias_.empty()) alias_ = schema_.name();
  if (columns_.empty()) {
    columns_.resize(schema_.NumColumns());
    for (size_t i = 0; i < columns_.size(); ++i) columns_[i] = i;
  }
}

std::string ScanOp::QualifiedName(size_t schema_column_index) const {
  return alias_ + "." + schema_.column(schema_column_index).name;
}

PlanRef ScanOp::WithColumns(std::vector<size_t> columns) const {
  auto copy = std::make_shared<ScanOp>(schema_, alias_, std::move(columns));
  copy->CopyIdFrom(*this);
  return copy;
}

std::vector<std::string> ScanOp::OutputNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (size_t c : columns_) out.push_back(QualifiedName(c));
  return out;
}

std::string ScanOp::Describe() const {
  std::string out = "Scan " + schema_.name();
  if (alias_ != schema_.name()) out += " AS " + alias_;
  out += StrFormat(" [%zu/%zu cols]", columns_.size(), schema_.NumColumns());
  return out;
}

PlanRef ScanOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.empty());
  (void)children;
  auto copy = std::make_shared<ScanOp>(schema_, alias_, columns_);
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// FilterOp

FilterOp::FilterOp(PlanRef input, ExprRef predicate)
    : LogicalOp(OpKind::kFilter), predicate_(std::move(predicate)) {
  children_ = {std::move(input)};
}

std::vector<std::string> FilterOp::OutputNames() const {
  return children_[0]->OutputNames();
}

std::string FilterOp::Describe() const {
  return "Filter " + predicate_->ToString();
}

PlanRef FilterOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 1);
  auto copy = std::make_shared<FilterOp>(std::move(children[0]), predicate_);
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// ProjectOp

ProjectOp::ProjectOp(PlanRef input, std::vector<Item> items)
    : LogicalOp(OpKind::kProject), items_(std::move(items)) {
  children_ = {std::move(input)};
}

std::vector<std::string> ProjectOp::OutputNames() const {
  std::vector<std::string> out;
  out.reserve(items_.size());
  for (const Item& item : items_) out.push_back(item.name);
  return out;
}

std::string ProjectOp::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(items_.size());
  for (const Item& item : items_) {
    std::string rendered = item.expr->ToString();
    if (rendered == item.name) {
      parts.push_back(rendered);
    } else {
      parts.push_back(rendered + " AS " + item.name);
    }
  }
  std::string joined = Join(parts, ", ");
  if (joined.size() > 120) joined = joined.substr(0, 117) + "...";
  return "Project [" + joined + "]";
}

PlanRef ProjectOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 1);
  auto copy = std::make_shared<ProjectOp>(std::move(children[0]), items_);
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// JoinOp

JoinOp::JoinOp(PlanRef left, PlanRef right, JoinType join_type,
               ExprRef condition, DeclaredCardinality cardinality,
               bool is_case_join)
    : LogicalOp(OpKind::kJoin),
      join_type_(join_type),
      condition_(std::move(condition)),
      cardinality_(cardinality),
      case_join_(is_case_join) {
  children_ = {std::move(left), std::move(right)};
}

std::vector<std::string> JoinOp::OutputNames() const {
  std::vector<std::string> out = children_[0]->OutputNames();
  std::vector<std::string> right = children_[1]->OutputNames();
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

std::string JoinOp::Describe() const {
  std::string out =
      join_type_ == JoinType::kInner ? "Join INNER" : "Join LEFT OUTER";
  if (cardinality_ == DeclaredCardinality::kAtMostOne) out += " MANY-TO-ONE";
  if (cardinality_ == DeclaredCardinality::kExactOne) {
    out += " MANY-TO-EXACT-ONE";
  }
  if (case_join_) out += " (CASE JOIN)";
  out += " ON " + condition_->ToString();
  return out;
}

PlanRef JoinOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 2);
  auto copy = std::make_shared<JoinOp>(std::move(children[0]),
                                       std::move(children[1]), join_type_,
                                       condition_, cardinality_, case_join_);
  copy->limit_hint_ = limit_hint_;
  copy->CopyIdFrom(*this);
  return copy;
}

PlanRef JoinOp::WithLimitHint(int64_t hint) const {
  auto copy = std::make_shared<JoinOp>(left(), right(), join_type_,
                                       condition_, cardinality_, case_join_);
  copy->limit_hint_ = hint;
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// AggregateOp

AggregateOp::AggregateOp(PlanRef input, std::vector<GroupItem> group_by,
                         std::vector<AggItem> aggregates)
    : LogicalOp(OpKind::kAggregate),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {
  children_ = {std::move(input)};
}

std::vector<std::string> AggregateOp::OutputNames() const {
  std::vector<std::string> out;
  out.reserve(group_by_.size() + aggregates_.size());
  for (const GroupItem& g : group_by_) out.push_back(g.name);
  for (const AggItem& a : aggregates_) out.push_back(a.name);
  return out;
}

std::string AggregateOp::Describe() const {
  std::vector<std::string> parts;
  for (const GroupItem& g : group_by_) parts.push_back(g.expr->ToString());
  std::string out = "Aggregate";
  if (!parts.empty()) out += " GROUP BY [" + Join(parts, ", ") + "]";
  parts.clear();
  for (const AggItem& a : aggregates_) {
    parts.push_back(a.expr->ToString() + " AS " + a.name);
  }
  out += " [" + Join(parts, ", ") + "]";
  if (out.size() > 140) out = out.substr(0, 137) + "...";
  return out;
}

PlanRef AggregateOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 1);
  auto copy = std::make_shared<AggregateOp>(std::move(children[0]), group_by_,
                                            aggregates_);
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// UnionAllOp

UnionAllOp::UnionAllOp(std::vector<PlanRef> inputs,
                       std::vector<std::string> output_names,
                       int branch_id_column, std::string logical_table)
    : LogicalOp(OpKind::kUnionAll),
      output_names_(std::move(output_names)),
      branch_id_column_(branch_id_column),
      logical_table_(std::move(logical_table)) {
  children_ = std::move(inputs);
  VDM_CHECK(!children_.empty());
  for (const PlanRef& child : children_) {
    VDM_CHECK(child->OutputNames().size() == output_names_.size());
  }
}

std::vector<std::string> UnionAllOp::OutputNames() const {
  return output_names_;
}

std::string UnionAllOp::Describe() const {
  std::string out = StrFormat("UnionAll [%zu children]", children_.size());
  // An out-of-range branch id is exactly what the verifier reports via this
  // string, so render the raw index instead of indexing output_names_.
  if (branch_id_column_ >= 0) {
    out += " branch_id=";
    out += static_cast<size_t>(branch_id_column_) < output_names_.size()
               ? output_names_[static_cast<size_t>(branch_id_column_)]
               : StrFormat("#%d", branch_id_column_);
  }
  return out;
}

PlanRef UnionAllOp::WithChildren(std::vector<PlanRef> children) const {
  auto copy = std::make_shared<UnionAllOp>(std::move(children), output_names_,
                                           branch_id_column_, logical_table_);
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// SortOp / LimitOp / DistinctOp

SortOp::SortOp(PlanRef input, std::vector<SortKey> keys)
    : LogicalOp(OpKind::kSort), keys_(std::move(keys)) {
  children_ = {std::move(input)};
}

std::vector<std::string> SortOp::OutputNames() const {
  return children_[0]->OutputNames();
}

std::string SortOp::Describe() const {
  std::vector<std::string> parts;
  for (const SortKey& key : keys_) {
    parts.push_back(key.expr->ToString() + (key.ascending ? "" : " DESC"));
  }
  return "Sort [" + Join(parts, ", ") + "]";
}

PlanRef SortOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 1);
  auto copy = std::make_shared<SortOp>(std::move(children[0]), keys_);
  copy->CopyIdFrom(*this);
  return copy;
}

LimitOp::LimitOp(PlanRef input, int64_t limit, int64_t offset)
    : LogicalOp(OpKind::kLimit), limit_(limit), offset_(offset) {
  children_ = {std::move(input)};
}

std::vector<std::string> LimitOp::OutputNames() const {
  return children_[0]->OutputNames();
}

std::string LimitOp::Describe() const {
  std::string out = StrFormat("Limit %lld", static_cast<long long>(limit_));
  if (offset_ > 0) {
    out += StrFormat(" OFFSET %lld", static_cast<long long>(offset_));
  }
  return out;
}

PlanRef LimitOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 1);
  auto copy = std::make_shared<LimitOp>(std::move(children[0]), limit_,
                                        offset_);
  copy->CopyIdFrom(*this);
  return copy;
}

DistinctOp::DistinctOp(PlanRef input) : LogicalOp(OpKind::kDistinct) {
  children_ = {std::move(input)};
}

std::vector<std::string> DistinctOp::OutputNames() const {
  return children_[0]->OutputNames();
}

std::string DistinctOp::Describe() const { return "Distinct"; }

PlanRef DistinctOp::WithChildren(std::vector<PlanRef> children) const {
  VDM_CHECK(children.size() == 1);
  auto copy = std::make_shared<DistinctOp>(std::move(children[0]));
  copy->CopyIdFrom(*this);
  return copy;
}

// ---------------------------------------------------------------------------
// Traversal

PlanRef TransformPlan(const PlanRef& plan,
                      const std::function<PlanRef(const PlanRef&)>& fn) {
  std::vector<PlanRef> new_children;
  bool changed = false;
  new_children.reserve(plan->NumChildren());
  for (const PlanRef& child : plan->children()) {
    PlanRef transformed = TransformPlan(child, fn);
    changed |= (transformed != child);
    new_children.push_back(std::move(transformed));
  }
  PlanRef rebuilt =
      changed ? plan->WithChildren(std::move(new_children)) : plan;
  PlanRef replaced = fn(rebuilt);
  return replaced ? replaced : rebuilt;
}

void VisitPlan(const PlanRef& plan,
               const std::function<void(const PlanRef&)>& fn) {
  fn(plan);
  for (const PlanRef& child : plan->children()) VisitPlan(child, fn);
}

std::shared_ptr<const ScanOp> FindScanById(const PlanRef& plan, uint64_t id) {
  if (plan->kind() == OpKind::kScan && plan->id() == id) {
    return std::static_pointer_cast<const ScanOp>(plan);
  }
  for (const PlanRef& child : plan->children()) {
    std::shared_ptr<const ScanOp> found = FindScanById(child, id);
    if (found) return found;
  }
  return nullptr;
}

}  // namespace vdm
