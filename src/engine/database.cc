#include "engine/database.h"

#include <chrono>
#include <cstdlib>

#include "analysis/plan_verifier.h"
#include "analysis/rewrite_auditor.h"
#include "analysis/stats/cardinality.h"
#include "analysis/stats/table_stats.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "expr/eval.h"
#include "expr/fold.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"
#include "sql/parameterize.h"
#include "sql/parser.h"

namespace vdm {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return std::strtoll(env, nullptr, 10);
}

/// Estimated total plan cost (abstract row-touch units) below which a
/// query runs serially even when a worker pool is available: morsel
/// fan-out overhead exceeds the work. Results are byte-identical either
/// way, so this is purely a latency decision.
constexpr double kSerialCostThreshold = 50000.0;

}  // namespace

Database::Database()
    : optimizer_config_(ConfigForProfile(SystemProfile::kHana)) {
  size_t capacity = kDefaultPlanCacheCapacity;
  if (const char* env = std::getenv("VDM_PLAN_CACHE_CAPACITY")) {
    capacity = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  plan_cache_ = std::make_unique<PlanCache>(capacity);
  if (const char* env = std::getenv("VDM_PLAN_CACHE")) {
    plan_cache_enabled_ = env[0] != '\0' && std::string(env) != "0";
  }
  config_fingerprint_ = FingerprintConfig(optimizer_config_);
  // Governor defaults (ExecLimits doc comment lists the knobs).
  default_limits_.timeout_ms = EnvInt64("VDM_TIMEOUT_MS", 0);
  int64_t mem_mb = EnvInt64("VDM_MEM_LIMIT_MB", 0);
  if (mem_mb > 0) default_limits_.memory_budget = mem_mb * (int64_t{1} << 20);
  default_limits_.max_queued_ms =
      EnvInt64("VDM_MAX_QUEUED_MS", default_limits_.max_queued_ms);
  int64_t max_concurrent = EnvInt64("VDM_MAX_CONCURRENT", 0);
  if (max_concurrent > 0) {
    max_concurrent_ = static_cast<size_t>(max_concurrent);
  }
  stats_enabled_ = EnvInt64("VDM_STATS", 1) != 0;
  ApplyEnvOverrides();
}

void Database::ApplyEnvOverrides() {
  // VDM_JOIN_REORDER=0 pins the view-text join order (the pre-§14
  // behavior) regardless of profile; =1 forces reordering on. Applied to
  // profile-derived configs only — an explicit SetOptimizerConfig is the
  // caller's exact intent and is left alone.
  if (const char* env = std::getenv("VDM_JOIN_REORDER")) {
    if (env[0] != '\0') {
      optimizer_config_.join_reordering = std::string(env) != "0";
    }
  }
  config_fingerprint_ = FingerprintConfig(optimizer_config_);
}

void Database::SetProfile(SystemProfile profile) {
  optimizer_config_ = ConfigForProfile(profile);
  ApplyEnvOverrides();
  OnOptimizerConfigChanged();
}

void Database::SetOptimizerConfig(OptimizerConfig config) {
  optimizer_config_ = std::move(config);
  OnOptimizerConfigChanged();
}

void Database::OnOptimizerConfigChanged() {
  config_fingerprint_ = FingerprintConfig(optimizer_config_);
  optimizer_.reset();
  plan_cache_->Clear();
}

void Database::EnablePlanCache(size_t capacity) {
  plan_cache_ = std::make_unique<PlanCache>(capacity);
  plan_cache_enabled_ = true;
}

void Database::DisablePlanCache() {
  plan_cache_enabled_ = false;
  plan_cache_->Clear();
}

bool Database::PlanCacheUsable() const {
  // verify_rewrites_exec re-executes every rewrite against real data and
  // debug_corrupt_pass injects per-query faults: both must see the full
  // compile pipeline on every statement.
  return plan_cache_enabled_ && !optimizer_config_.verify_rewrites_exec &&
         optimizer_config_.debug_corrupt_pass == nullptr;
}

Result<Chunk> Database::Execute(const std::string& sql) {
  return Execute(sql, default_limits_);
}

Result<Chunk> Database::Execute(const std::string& sql,
                                const ExecLimits& limits) {
  VDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return Query(sql, limits);
    case Statement::Kind::kCreateTable: {
      VDM_RETURN_NOT_OK(catalog_.RegisterTable(stmt.create_table->schema));
      VDM_RETURN_NOT_OK(storage_.CreateTable(stmt.create_table->schema));
      return Chunk{};
    }
    case Statement::Kind::kCreateView: {
      ViewDef view;
      view.name = stmt.create_view->name;
      view.sql = stmt.create_view->select_sql;
      view.macros = stmt.create_view->macros;
      view.associations = stmt.create_view->associations;
      // Validate the view definition binds cleanly now, not at first use.
      Binder binder(&catalog_);
      Result<PlanRef> bound = binder.BindSelect(*stmt.create_view->select);
      if (!bound.ok()) return bound.status();
      if (stmt.create_view->or_replace) {
        VDM_RETURN_NOT_OK(catalog_.ReplaceView(std::move(view)));
      } else {
        VDM_RETURN_NOT_OK(catalog_.RegisterView(std::move(view)));
      }
      return Chunk{};
    }
    case Statement::Kind::kInsert: {
      const InsertStmt& insert = *stmt.insert;
      const TableSchema* schema = catalog_.FindTable(insert.table);
      if (schema == nullptr) {
        return Status::NotFound("unknown table: " + insert.table);
      }
      // Map target columns to schema positions.
      std::vector<size_t> positions;
      if (insert.columns.empty()) {
        for (size_t c = 0; c < schema->NumColumns(); ++c) {
          positions.push_back(c);
        }
      } else {
        for (const std::string& column : insert.columns) {
          int idx = schema->FindColumn(column);
          if (idx < 0) {
            return Status::BindError("unknown column " + column +
                                     " in table " + insert.table);
          }
          positions.push_back(static_cast<size_t>(idx));
        }
      }
      std::vector<std::vector<Value>> rows;
      for (const std::vector<ExprRef>& exprs : insert.rows) {
        if (exprs.size() != positions.size()) {
          return Status::BindError("INSERT value count mismatch");
        }
        std::vector<Value> row(schema->NumColumns(), Value::Null());
        for (size_t i = 0; i < exprs.size(); ++i) {
          std::optional<Value> value = EvaluateConstantExpr(exprs[i]);
          if (!value.has_value()) {
            return Status::BindError("INSERT values must be constant: " +
                                     exprs[i]->ToString());
          }
          // Coerce to the column type so decimals land at the declared
          // scale regardless of the literal's rendering.
          const DataType& type = schema->column(positions[i]).type;
          if (!value->is_null() && type.id == TypeId::kDecimal &&
              value->type().id == TypeId::kDecimal &&
              value->type().scale != type.scale) {
            int64_t unscaled = RoundUnscaled(value->AsUnscaled(),
                                             value->type().scale,
                                             type.scale);
            value = Value::Decimal(unscaled, type.scale);
          }
          row[positions[i]] = std::move(*value);
        }
        rows.push_back(std::move(row));
      }
      VDM_RETURN_NOT_OK(Insert(insert.table, rows));
      return Chunk{};
    }
  }
  return Status::Internal("unreachable");
}

Result<Chunk> Database::Query(const std::string& sql, ExecMetrics* metrics,
                              QueryTiming* timing) {
  return Query(sql, default_limits_, metrics, timing);
}

Result<Chunk> Database::Query(const std::string& sql, const ExecLimits& limits,
                              ExecMetrics* metrics, QueryTiming* timing,
                              QueryContext* ctx) {
  VDM_RETURN_NOT_OK(EnsureFreshCaches());
  QueryTiming local;
  QueryTiming* t = timing != nullptr ? timing : &local;
  *t = QueryTiming{};
  PlanRef plan;
  if (PlanCacheUsable()) {
    t->used_cache = true;
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryCached(sql, t));
  } else {
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryTimed(sql, t));
  }
  int64_t start = NowNs();
  Result<Chunk> result = GovernedExecute(plan, limits, metrics, ctx);
  t->execute_ns = NowNs() - start;
  return result;
}

namespace {

/// Releases one admission-gate slot on scope exit (all GovernedExecute
/// return paths, including degradation retries and injected faults).
struct AdmissionRelease {
  std::mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
  size_t* running = nullptr;
  AdmissionRelease() = default;
  AdmissionRelease(const AdmissionRelease&) = delete;
  AdmissionRelease& operator=(const AdmissionRelease&) = delete;
  ~AdmissionRelease() {
    if (mu == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(*mu);
      --*running;
    }
    cv->notify_one();
  }
};

}  // namespace

Result<Chunk> Database::GovernedExecute(const PlanRef& plan,
                                        const ExecLimits& limits,
                                        ExecMetrics* metrics,
                                        QueryContext* ctx) const {
  QueryContext local_ctx;
  QueryContext* qc = ctx != nullptr ? ctx : &local_ctx;
  if (limits.timeout_ms > 0) qc->SetTimeout(limits.timeout_ms);
  if (limits.memory_budget > 0) qc->memory().set_limit(limits.memory_budget);

  // Admission gate: bounded queueing, not rejection. Nested engine work
  // (cache refresh snapshots) goes through ExecutePlan directly and never
  // re-enters the gate, so a running query cannot deadlock itself here.
  AdmissionRelease release;
  if (max_concurrent_ > 0) {
    int64_t wait_start = NowNs();
    std::unique_lock<std::mutex> lock(admit_mu_);
    bool admitted = admit_cv_.wait_for(
        lock, std::chrono::milliseconds(std::max<int64_t>(0, limits.max_queued_ms)),
        [&] { return running_queries_ < max_concurrent_; });
    if (!admitted) {
      return Status::ResourceExhausted(StrFormat(
          "admission queue timeout: %zu queries running, waited %lld ms",
          running_queries_,
          static_cast<long long>(std::max<int64_t>(0, limits.max_queued_ms))));
    }
    ++running_queries_;
    release.mu = &admit_mu_;
    release.cv = &admit_cv_;
    release.running = &running_queries_;
    lock.unlock();
    if (metrics != nullptr) {
      metrics->admission_wait_ns += static_cast<uint64_t>(NowNs() - wait_start);
    }
  }

  Result<Chunk> result = ExecutePlan(plan, metrics, qc);
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted &&
      !qc->degraded() && !qc->cancel_requested()) {
    // Degradation ladder rung 2: retry serially with tight hash-table
    // reservations and the per-query budget unenforced (the process-wide
    // limit still applies). num_threads = 1 is the legacy serial path, so
    // a successful retry is byte-identical to the parallel result.
    qc->set_degraded(true);
    qc->memory().set_enforced(false);
    if (metrics != nullptr) ++metrics->degraded_serial_retries;
    ExecOptions serial = exec_options_;
    serial.num_threads = 1;
    Executor executor(&storage_, serial, nullptr);
    result = executor.Execute(plan, metrics, qc);
  }
  return result;
}

Result<PlanRef> Database::PlanQueryTimed(const std::string& sql,
                                         QueryTiming* timing) const {
  int64_t start = NowNs();
  Result<Statement> stmt = ParseStatement(sql);
  timing->parse_ns += NowNs() - start;
  if (!stmt.ok()) return stmt.status();
  if (stmt->kind != Statement::Kind::kSelect || stmt->select == nullptr) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  start = NowNs();
  Binder binder(&catalog_);
  Result<PlanRef> bound = binder.BindSelect(*stmt->select);
  timing->bind_ns += NowNs() - start;
  if (!bound.ok()) return bound.status();
  start = NowNs();
  Result<PlanRef> optimized = OptimizePlan(*bound);
  timing->optimize_ns += NowNs() - start;
  return optimized;
}

Result<PlanRef> Database::PlanQueryCached(const std::string& sql,
                                          QueryTiming* timing) {
  // Every early `return PlanQueryTimed(...)` below is the safety valve:
  // anything unusual about the parameterized path (not cacheable, sentinel
  // ambiguity, parse/bind/optimize/verify/rebind failure) reverts to the
  // plain pipeline, which must behave exactly as with the cache disabled.
  int64_t start = NowNs();
  Result<ParameterizedStatement> ps = ParameterizeStatement(sql);
  timing->parameterize_ns += NowNs() - start;
  if (!ps.ok() || !ps->cacheable) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  // An injected cache failure exercises the same safety valve as any
  // other parameterized-path problem: revert to the plain pipeline.
  if (!FaultInjection::Check("engine.plan_cache.lookup").ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  const std::string key =
      ComposePlanCacheKey(ps->key, config_fingerprint_, catalog_.version());
  if (std::shared_ptr<const CachedPlan> hit = plan_cache_->Lookup(key)) {
    start = NowNs();
    Result<PlanRef> rebound =
        BindCachedPlan(*hit, ps->params, ps->limit, ps->offset);
    timing->rebind_ns += NowNs() - start;
    if (rebound.ok()) {
      timing->cache_hit = true;
      return rebound;
    }
    // Rebind mismatch: recompile from scratch below.
  }
  start = NowNs();
  Result<Statement> stmt = ParseTokenStream(sql, ps->tokens);
  timing->parse_ns += NowNs() - start;
  if (!stmt.ok() || stmt->kind != Statement::Kind::kSelect ||
      stmt->select == nullptr) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  start = NowNs();
  Binder binder(&catalog_);
  Result<PlanRef> bound = binder.BindSelect(*stmt->select);
  timing->bind_ns += NowNs() - start;
  if (!bound.ok() ||
      !LimitSentinelsUnambiguous(*bound, ps->has_limit, ps->has_offset)) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  start = NowNs();
  Result<PlanRef> optimized = OptimizePlan(*bound);
  timing->optimize_ns += NowNs() - start;
  if (!optimized.ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  // Plan integrity is checked once here, at insertion; hits skip it.
  if (!PlanVerifier::Verify(*optimized).ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  auto cached = std::make_shared<CachedPlan>();
  cached->plan = *optimized;
  cached->param_types = ps->param_types;
  cached->has_limit = ps->has_limit;
  cached->has_offset = ps->has_offset;
  start = NowNs();
  Result<PlanRef> rebound =
      BindCachedPlan(*cached, ps->params, ps->limit, ps->offset);
  timing->rebind_ns += NowNs() - start;
  if (!rebound.ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  plan_cache_->Insert(key, std::move(cached));
  return rebound;
}

Status Database::Insert(const std::string& table,
                        const std::vector<std::vector<Value>>& rows) {
  Table* t = storage_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table: " + table);
  for (const std::vector<Value>& row : rows) {
    VDM_RETURN_NOT_OK(t->AppendRow(row));
  }
  return Status::OK();
}

Result<PlanRef> Database::BindQuery(const std::string& sql) const {
  Binder binder(&catalog_);
  return binder.BindSql(sql);
}

Result<PlanRef> Database::PlanQuery(const std::string& sql) const {
  VDM_ASSIGN_OR_RETURN(PlanRef plan, BindQuery(sql));
  return OptimizePlan(plan);
}

Result<PlanRef> Database::OptimizePlan(const PlanRef& plan) const {
  if (optimizer_config_.verify_rewrites &&
      optimizer_config_.verification_hook == nullptr) {
    // The auditor lives on the stack, so this path still builds a
    // per-query Optimizer around it.
    OptimizerConfig config = optimizer_config_;
    config.stats_catalog = &catalog_;
    RewriteAuditor::Options options;
    options.derivation = config.derivation;
    if (config.verify_rewrites_exec) options.storage = &storage_;
    RewriteAuditor auditor(options);
    config.verification_hook = &auditor;
    Optimizer optimizer(config);
    return optimizer.OptimizeChecked(plan);
  }
  // Common path: the Optimizer (and its config copy) is built once per
  // config change, not once per query. stats_catalog points at the live
  // catalog, so refreshed statistics are picked up without a rebuild.
  if (optimizer_ == nullptr) {
    OptimizerConfig config = optimizer_config_;
    config.stats_catalog = &catalog_;
    optimizer_ = std::make_unique<Optimizer>(std::move(config));
  }
  return optimizer_->OptimizeChecked(plan);
}

Result<Chunk> Database::ExecutePlan(const PlanRef& plan, ExecMetrics* metrics,
                                    QueryContext* ctx) const {
  size_t threads = exec_options_.num_threads == 0
                       ? ThreadPool::DefaultThreads()
                       : exec_options_.num_threads;
  if (exec_options_.num_threads == 0 && threads > 1) {
    // Cost-based degree of parallelism (§14): when the caller left the
    // thread count automatic, small plans skip the pool — morsel fan-out
    // overhead exceeds the estimated work. Results are byte-identical
    // either way. An explicit num_threads setting is always honored.
    CardinalityOptions copt;
    copt.use_inference = false;
    CardinalityEstimator estimator(&catalog_, copt);
    PlanEstimates estimates;
    if (estimator.Annotate(plan, &estimates).cost < kSerialCostThreshold) {
      threads = 1;
    }
  }
  if (threads > 1 && exec_pool_ == nullptr) {
    exec_pool_ = std::make_unique<ThreadPool>(threads);
  }
  Executor executor(&storage_, exec_options_,
                    threads > 1 ? exec_pool_.get() : nullptr);
  return executor.Execute(plan, metrics, ctx);
}

Result<std::string> Database::Explain(const std::string& sql) const {
  VDM_ASSIGN_OR_RETURN(PlanRef plan, PlanQuery(sql));
  return PrintPlan(plan);
}

Result<std::string> Database::ExplainRaw(const std::string& sql) const {
  VDM_ASSIGN_OR_RETURN(PlanRef plan, BindQuery(sql));
  return PrintPlan(plan);
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql) {
  VDM_RETURN_NOT_OK(EnsureFreshCaches());
  QueryTiming timing;
  PlanRef plan;
  if (PlanCacheUsable()) {
    timing.used_cache = true;
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryCached(sql, &timing));
  } else {
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryTimed(sql, &timing));
  }
  ExecMetrics metrics;
  int64_t start = NowNs();
  VDM_ASSIGN_OR_RETURN(Chunk result,
                       GovernedExecute(plan, default_limits_, &metrics,
                                       /*ctx=*/nullptr));
  timing.execute_ns = NowNs() - start;
  // Annotate the rendered plan with per-operator cardinality/cost
  // estimates (§14) so estimation errors are visible next to the actual
  // timings below.
  PlanEstimates estimates;
  {
    CardinalityOptions copt;
    copt.use_inference = false;
    CardinalityEstimator estimator(&catalog_, copt);
    estimator.Annotate(plan, &estimates);
  }
  std::string out = PrintPlan(plan, &estimates);
  auto ms = [](int64_t ns) { return static_cast<double>(ns) / 1e6; };
  out += "-- explain analyze --\n";
  out += StrFormat("plan cache: %s\n",
                   !timing.used_cache ? "off"
                   : timing.cache_hit ? "hit"
                                      : "miss");
  if (timing.parameterize_ns > 0) {
    out += StrFormat("parameterize: %.3f ms\n", ms(timing.parameterize_ns));
  }
  if (timing.parse_ns > 0) {
    out += StrFormat("parse: %.3f ms\n", ms(timing.parse_ns));
  }
  if (timing.bind_ns > 0) {
    out += StrFormat("bind: %.3f ms\n", ms(timing.bind_ns));
  }
  if (timing.optimize_ns > 0) {
    out += StrFormat("optimize: %.3f ms\n", ms(timing.optimize_ns));
  }
  if (timing.rebind_ns > 0) {
    out += StrFormat("rebind: %.3f ms\n", ms(timing.rebind_ns));
  }
  out += StrFormat("compile total: %.3f ms\n", ms(timing.compile_ns()));
  out += StrFormat("execute: %.3f ms (%zu rows)\n", ms(timing.execute_ns),
                   result.NumRows());
  out += StrFormat(
      "governor: %llu cancel checks, peak tracked memory %.2f MiB\n",
      static_cast<unsigned long long>(metrics.cancel_checks),
      static_cast<double>(metrics.peak_memory_bytes) / (1 << 20));
  if (metrics.admission_wait_ns > 0) {
    out += StrFormat("admission wait: %.3f ms\n",
                     ms(static_cast<int64_t>(metrics.admission_wait_ns)));
  }
  if (metrics.degraded_serial_retries > 0) {
    out += StrFormat("degraded: %llu serial retry within memory budget\n",
                     static_cast<unsigned long long>(
                         metrics.degraded_serial_retries));
  }
  return out;
}

Status Database::RegisterViewPlan(const std::string& name, PlanRef plan,
                                  VdmLayer layer,
                                  const std::string& dac_filter_sql) {
  ViewDef view;
  view.name = name;
  view.layer = layer;
  view.dac_filter_sql = dac_filter_sql;
  view.bound_plan = std::move(plan);
  return catalog_.ReplaceView(std::move(view));
}

namespace {

/// Schema for a materialized snapshot, derived from a result chunk.
TableSchema SnapshotSchema(const std::string& table_name,
                           const Chunk& chunk) {
  TableSchema schema(table_name);
  for (size_t c = 0; c < chunk.NumColumns(); ++c) {
    schema.AddColumn(chunk.names[c], chunk.columns[c].type());
  }
  return schema;
}

Status InsertChunk(Table* table, const Chunk& chunk) {
  std::vector<Value> row(chunk.NumColumns());
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row[c] = chunk.columns[c].GetValue(r);
    }
    VDM_RETURN_NOT_OK(table->AppendRow(row));
  }
  table->MergeDelta();
  return Status::OK();
}

}  // namespace

Status Database::MaterializeView(const std::string& name,
                                 ViewDef::CacheMode mode) {
  const ViewDef* view = catalog_.FindView(name);
  if (view == nullptr) return Status::NotFound("view not found: " + name);
  if (!view->materialized_table.empty()) {
    ViewDef updated = *view;
    updated.cache_mode = mode;
    VDM_RETURN_NOT_OK(catalog_.ReplaceView(std::move(updated)));
    return RefreshMaterializedView(name);
  }
  ViewDef updated = *view;
  updated.materialized_table = "__scv_" + ToLower(name);
  updated.cache_mode = mode;
  return BuildSnapshot(std::move(updated), /*replace_existing=*/false);
}

Status Database::RefreshMaterializedView(const std::string& name) {
  const ViewDef* view = catalog_.FindView(name);
  if (view == nullptr) return Status::NotFound("view not found: " + name);
  if (view->materialized_table.empty()) {
    return Status::InvalidArgument("view is not materialized: " + name);
  }
  return BuildSnapshot(*view, /*replace_existing=*/true);
}

Status Database::BuildSnapshot(ViewDef view, bool replace_existing) {
  // Rebind with materialization temporarily disabled so the definition —
  // not a stale snapshot — is evaluated.
  std::string table_name = view.materialized_table;
  ViewDef transparent = view;
  transparent.materialized_table.clear();
  VDM_RETURN_NOT_OK(catalog_.ReplaceView(transparent));
  Binder binder(&catalog_);
  Result<PlanRef> bound =
      transparent.bound_plan ? Result<PlanRef>(transparent.bound_plan)
                             : binder.BindSql(transparent.sql);
  if (!bound.ok()) return bound.status();
  Result<PlanRef> optimized = OptimizePlan(*bound);
  if (!optimized.ok()) return optimized.status();
  Result<Chunk> snapshot = ExecutePlan(*optimized);
  if (!snapshot.ok()) return snapshot.status();

  // Record base-table dependencies (for DCV staleness checks).
  view.snapshot_dependencies.clear();
  VisitPlan(*bound, [&](const PlanRef& node) {
    if (node->kind() != OpKind::kScan) return;
    const std::string& table = static_cast<const ScanOp&>(*node).table_name();
    const Table* t = storage_.FindTable(table);
    if (t == nullptr) return;
    for (const auto& [existing, version] : view.snapshot_dependencies) {
      if (EqualsIgnoreCase(existing, table)) return;
    }
    view.snapshot_dependencies.emplace_back(table, t->version());
  });

  if (replace_existing) {
    VDM_RETURN_NOT_OK(storage_.DropTable(table_name));
    VDM_RETURN_NOT_OK(catalog_.DropTable(table_name));
  }
  TableSchema schema = SnapshotSchema(table_name, *snapshot);
  VDM_RETURN_NOT_OK(catalog_.RegisterTable(schema));
  VDM_RETURN_NOT_OK(storage_.CreateTable(schema));
  VDM_RETURN_NOT_OK(InsertChunk(storage_.FindTable(table_name), *snapshot));
  return catalog_.ReplaceView(std::move(view));
}

Status Database::DematerializeView(const std::string& name) {
  const ViewDef* view = catalog_.FindView(name);
  if (view == nullptr) return Status::NotFound("view not found: " + name);
  if (view->materialized_table.empty()) return Status::OK();
  ViewDef updated = *view;
  std::string table_name = updated.materialized_table;
  updated.materialized_table.clear();
  updated.snapshot_dependencies.clear();
  VDM_RETURN_NOT_OK(catalog_.ReplaceView(std::move(updated)));
  VDM_RETURN_NOT_OK(catalog_.DropTable(table_name));
  return storage_.DropTable(table_name);
}

Status Database::EnsureFreshCaches() {
  for (const std::string& name : catalog_.ViewNames()) {
    const ViewDef* view = catalog_.FindView(name);
    if (view == nullptr || view->materialized_table.empty() ||
        view->cache_mode != ViewDef::CacheMode::kDynamic) {
      continue;
    }
    bool stale = false;
    for (const auto& [table, version] : view->snapshot_dependencies) {
      const Table* t = storage_.FindTable(table);
      if (t == nullptr || t->version() != version) {
        stale = true;
        break;
      }
    }
    if (stale) {
      VDM_RETURN_NOT_OK(RefreshMaterializedView(name));
    }
  }
  return Status::OK();
}

Result<bool> Database::VerifyDeclaredUnique(
    const std::string& table, const std::vector<std::string>& columns) const {
  const Table* t = storage_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table: " + table);
  return t->VerifyUnique(columns);
}

void Database::MergeAllDeltas() {
  for (const std::string& name : catalog_.TableNames()) {
    Table* t = storage_.FindTable(name);
    if (t != nullptr) t->MergeDelta();
  }
  AnalyzeTables();
}

void Database::AnalyzeTables() {
  for (const std::string& name : catalog_.TableNames()) {
    const Table* t = storage_.FindTable(name);
    if (t != nullptr) {
      catalog_.SetTableStats(name, stats_enabled_ ? CollectTableStats(*t)
                                                  : CollectRowCountOnly(*t));
    }
  }
}

}  // namespace vdm
