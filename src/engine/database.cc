#include "engine/database.h"

#include <chrono>
#include <cstdlib>

#include <algorithm>
#include <thread>

#include "analysis/plan_verifier.h"
#include "analysis/rewrite_auditor.h"
#include "analysis/stats/cardinality.h"
#include "analysis/stats/table_stats.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "engine/dml.h"
#include "expr/eval.h"
#include "expr/fold.h"
#include "plan/plan_printer.h"
#include "sql/binder.h"
#include "sql/parameterize.h"
#include "sql/parser.h"

namespace vdm {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return std::strtoll(env, nullptr, 10);
}

/// Estimated total plan cost (abstract row-touch units) below which a
/// query runs serially even when a worker pool is available: morsel
/// fan-out overhead exceeds the work. Results are byte-identical either
/// way, so this is purely a latency decision.
constexpr double kSerialCostThreshold = 50000.0;

}  // namespace

Database::Database()
    : optimizer_config_(ConfigForProfile(SystemProfile::kHana)) {
  size_t capacity = kDefaultPlanCacheCapacity;
  if (const char* env = std::getenv("VDM_PLAN_CACHE_CAPACITY")) {
    capacity = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  plan_cache_ = std::make_unique<PlanCache>(capacity);
  if (const char* env = std::getenv("VDM_PLAN_CACHE")) {
    plan_cache_enabled_ = env[0] != '\0' && std::string(env) != "0";
  }
  config_fingerprint_ = FingerprintConfig(optimizer_config_);
  // Governor defaults (ExecLimits doc comment lists the knobs).
  default_limits_.timeout_ms = EnvInt64("VDM_TIMEOUT_MS", 0);
  int64_t mem_mb = EnvInt64("VDM_MEM_LIMIT_MB", 0);
  if (mem_mb > 0) default_limits_.memory_budget = mem_mb * (int64_t{1} << 20);
  default_limits_.max_queued_ms =
      EnvInt64("VDM_MAX_QUEUED_MS", default_limits_.max_queued_ms);
  int64_t max_concurrent = EnvInt64("VDM_MAX_CONCURRENT", 0);
  if (max_concurrent > 0) {
    max_concurrent_ = static_cast<size_t>(max_concurrent);
  }
  stats_enabled_ = EnvInt64("VDM_STATS", 1) != 0;
  txn_retries_ = static_cast<int>(
      std::max<int64_t>(0, EnvInt64("VDM_TXN_RETRIES", txn_retries_)));
  ApplyEnvOverrides();
  int64_t merge_threshold = EnvInt64("VDM_MERGE_THRESHOLD", 0);
  if (merge_threshold > 0) {
    SetMergeThreshold(static_cast<size_t>(merge_threshold));
  }
}

Database::~Database() {
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_stop_ = true;
  }
  merge_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
  // Roll back any transaction the caller abandoned (handle destructors
  // use the fault-free primitive).
  std::lock_guard<std::mutex> lock(txns_mu_);
  open_txns_.clear();
}

void Database::ApplyEnvOverrides() {
  // VDM_JOIN_REORDER=0 pins the view-text join order (the pre-§14
  // behavior) regardless of profile; =1 forces reordering on. Applied to
  // profile-derived configs only — an explicit SetOptimizerConfig is the
  // caller's exact intent and is left alone.
  if (const char* env = std::getenv("VDM_JOIN_REORDER")) {
    if (env[0] != '\0') {
      optimizer_config_.join_reordering = std::string(env) != "0";
    }
  }
  config_fingerprint_ = FingerprintConfig(optimizer_config_);
}

void Database::SetProfile(SystemProfile profile) {
  optimizer_config_ = ConfigForProfile(profile);
  ApplyEnvOverrides();
  OnOptimizerConfigChanged();
}

void Database::SetOptimizerConfig(OptimizerConfig config) {
  optimizer_config_ = std::move(config);
  OnOptimizerConfigChanged();
}

void Database::OnOptimizerConfigChanged() {
  config_fingerprint_ = FingerprintConfig(optimizer_config_);
  {
    std::lock_guard<std::mutex> lock(optimizer_mu_);
    optimizer_.reset();
  }
  plan_cache_->Clear();
}

void Database::EnablePlanCache(size_t capacity) {
  plan_cache_ = std::make_unique<PlanCache>(capacity);
  plan_cache_enabled_ = true;
}

void Database::DisablePlanCache() {
  plan_cache_enabled_ = false;
  plan_cache_->Clear();
}

bool Database::PlanCacheUsable() const {
  // verify_rewrites_exec re-executes every rewrite against real data and
  // debug_corrupt_pass injects per-query faults: both must see the full
  // compile pipeline on every statement.
  return plan_cache_enabled_ && !optimizer_config_.verify_rewrites_exec &&
         optimizer_config_.debug_corrupt_pass == nullptr;
}

Result<Chunk> Database::Execute(const std::string& sql) {
  return Execute(sql, default_limits_);
}

Result<Chunk> Database::Execute(const std::string& sql,
                                const ExecLimits& limits) {
  VDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt, sql, limits, /*session=*/nullptr);
}

Result<Chunk> Database::ExecuteSession(const std::string& sql,
                                       Transaction** session) {
  VDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt, sql, default_limits_, session);
}

Result<Chunk> Database::ExecuteSession(const std::string& sql,
                                       Transaction** session,
                                       const ExecLimits& limits,
                                       QueryContext* ctx,
                                       QueryTiming* timing) {
  VDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt, sql, limits, session, ctx, timing);
}

namespace {

/// The one-row result every DML statement returns.
Chunk DmlResultChunk(size_t affected) {
  Chunk out;
  out.names.push_back("rows_affected");
  ColumnData col(DataType::Int64());
  col.AppendInt(static_cast<int64_t>(affected));
  out.columns.push_back(std::move(col));
  return out;
}

}  // namespace

Result<Chunk> Database::ExecuteStatement(const Statement& stmt,
                                         const std::string& sql,
                                         const ExecLimits& limits,
                                         Transaction** session,
                                         QueryContext* ctx,
                                         QueryTiming* timing) {
  Transaction* txn = session != nullptr ? *session : nullptr;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      if (txn != nullptr) {
        QueryContext local_ctx;
        QueryContext* qc = ctx != nullptr ? ctx : &local_ctx;
        qc->set_snapshot(txn->snapshot());
        return Query(sql, limits, nullptr, timing, qc);
      }
      return Query(sql, limits, nullptr, timing, ctx);
    case Statement::Kind::kCreateTable: {
      if (txn != nullptr) {
        return Status::InvalidArgument(
            "DDL inside an open transaction is not supported");
      }
      VDM_RETURN_NOT_OK(catalog_.RegisterTable(stmt.create_table->schema));
      VDM_RETURN_NOT_OK(storage_.CreateTable(stmt.create_table->schema));
      return Chunk{};
    }
    case Statement::Kind::kCreateView: {
      if (txn != nullptr) {
        return Status::InvalidArgument(
            "DDL inside an open transaction is not supported");
      }
      ViewDef view;
      view.name = stmt.create_view->name;
      view.sql = stmt.create_view->select_sql;
      view.macros = stmt.create_view->macros;
      view.associations = stmt.create_view->associations;
      // Validate the view definition binds cleanly now, not at first use.
      Binder binder(&catalog_);
      Result<PlanRef> bound = binder.BindSelect(*stmt.create_view->select);
      if (!bound.ok()) return bound.status();
      if (stmt.create_view->or_replace) {
        VDM_RETURN_NOT_OK(catalog_.ReplaceView(std::move(view)));
      } else {
        VDM_RETURN_NOT_OK(catalog_.RegisterView(std::move(view)));
      }
      return Chunk{};
    }
    case Statement::Kind::kInsert:
    case Statement::Kind::kUpdate:
    case Statement::Kind::kDelete: {
      if (txn == nullptr) return ExecuteDmlAutoCommit(stmt);
      // Inside an explicit transaction a conflict surfaces immediately —
      // the statement left no partial effects, and the caller decides
      // whether to roll the whole transaction back and retry.
      Result<size_t> affected =
          ExecuteDmlStatement(stmt, catalog_, &storage_, txn);
      if (!affected.ok()) {
        if (affected.status().code() == StatusCode::kSerializationFailure) {
          conflicts_.fetch_add(1, std::memory_order_relaxed);
        }
        return affected.status();
      }
      return DmlResultChunk(*affected);
    }
    case Statement::Kind::kBegin: {
      if (session == nullptr) {
        return Status::InvalidArgument(
            "transaction control requires a session (use ExecuteSession)");
      }
      if (txn != nullptr) {
        return Status::InvalidArgument("a transaction is already open");
      }
      *session = BeginTxn();
      return Chunk{};
    }
    case Statement::Kind::kCommit: {
      if (session == nullptr || *session == nullptr) {
        return Status::InvalidArgument("no open transaction to commit");
      }
      // CommitTxn consumes the handle even on a commit-time conflict (it
      // rolls back first), so the session slot clears either way.
      Status st = CommitTxn(*session);
      *session = nullptr;
      if (!st.ok()) return st;
      return Chunk{};
    }
    case Statement::Kind::kRollback: {
      if (session == nullptr || *session == nullptr) {
        return Status::InvalidArgument("no open transaction to roll back");
      }
      // An injected txn.rollback fault leaves the transaction open and
      // the statement retryable, so the session slot is kept.
      Status st = RollbackTxn(*session);
      if (!st.ok()) return st;
      *session = nullptr;
      return Chunk{};
    }
  }
  return Status::Internal("unreachable");
}

Result<Chunk> Database::Query(const std::string& sql, ExecMetrics* metrics,
                              QueryTiming* timing) {
  return Query(sql, default_limits_, metrics, timing);
}

Result<Chunk> Database::Query(const std::string& sql, const ExecLimits& limits,
                              ExecMetrics* metrics, QueryTiming* timing,
                              QueryContext* ctx) {
  VDM_RETURN_NOT_OK(EnsureFreshCaches());
  QueryTiming local;
  QueryTiming* t = timing != nullptr ? timing : &local;
  *t = QueryTiming{};
  PlanRef plan;
  if (PlanCacheUsable()) {
    t->used_cache = true;
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryCached(sql, t));
  } else {
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryTimed(sql, t));
  }
  int64_t start = NowNs();
  Result<Chunk> result = GovernedExecute(plan, limits, metrics, ctx);
  t->execute_ns = NowNs() - start;
  return result;
}

namespace {

/// Releases one admission-gate slot on scope exit (all GovernedExecute
/// return paths, including degradation retries and injected faults).
struct AdmissionRelease {
  std::mutex* mu = nullptr;
  std::condition_variable* cv = nullptr;
  size_t* running = nullptr;
  AdmissionRelease() = default;
  AdmissionRelease(const AdmissionRelease&) = delete;
  AdmissionRelease& operator=(const AdmissionRelease&) = delete;
  ~AdmissionRelease() {
    if (mu == nullptr) return;
    {
      std::lock_guard<std::mutex> lock(*mu);
      --*running;
    }
    cv->notify_one();
  }
};

}  // namespace

Result<Chunk> Database::GovernedExecute(const PlanRef& plan,
                                        const ExecLimits& limits,
                                        ExecMetrics* metrics,
                                        QueryContext* ctx) const {
  QueryContext local_ctx;
  QueryContext* qc = ctx != nullptr ? ctx : &local_ctx;
  if (limits.timeout_ms > 0) qc->SetTimeout(limits.timeout_ms);
  if (limits.memory_budget > 0) qc->memory().set_limit(limits.memory_budget);
  // Pin the read snapshot at the latest PUBLISHED commit unless the
  // caller installed one (an explicit transaction's repeatable-read
  // snapshot). The commit clock is published only after every write of a
  // committing transaction is stamped, so a query admitted here can never
  // observe a torn commit even while writers run concurrently.
  if (qc->snapshot().read_ts == kMaxTs && qc->snapshot().txn_id == 0) {
    qc->set_snapshot(TxnSnapshot{txn_mgr_.clock(), 0});
  }

  // Admission gate: bounded queueing, not rejection. Nested engine work
  // (cache refresh snapshots) goes through ExecutePlan directly and never
  // re-enters the gate, so a running query cannot deadlock itself here.
  AdmissionRelease release;
  if (max_concurrent_ > 0) {
    int64_t wait_start = NowNs();
    std::unique_lock<std::mutex> lock(admit_mu_);
    bool admitted = admit_cv_.wait_for(
        lock, std::chrono::milliseconds(std::max<int64_t>(0, limits.max_queued_ms)),
        [&] { return running_queries_ < max_concurrent_; });
    if (!admitted) {
      return Status::ResourceExhausted(StrFormat(
          "admission queue timeout: %zu queries running, waited %lld ms",
          running_queries_,
          static_cast<long long>(std::max<int64_t>(0, limits.max_queued_ms))));
    }
    ++running_queries_;
    release.mu = &admit_mu_;
    release.cv = &admit_cv_;
    release.running = &running_queries_;
    lock.unlock();
    if (metrics != nullptr) {
      metrics->admission_wait_ns += static_cast<uint64_t>(NowNs() - wait_start);
    }
  }

  Result<Chunk> result = ExecutePlan(plan, metrics, qc);
  if (!result.ok() &&
      result.status().code() == StatusCode::kResourceExhausted &&
      !qc->degraded() && !qc->cancel_requested()) {
    // Degradation ladder rung 2: retry serially with tight hash-table
    // reservations and the per-query budget unenforced (the process-wide
    // limit still applies). num_threads = 1 is the legacy serial path, so
    // a successful retry is byte-identical to the parallel result.
    qc->set_degraded(true);
    qc->memory().set_enforced(false);
    if (metrics != nullptr) ++metrics->degraded_serial_retries;
    ExecOptions serial = exec_options_;
    serial.num_threads = 1;
    Executor executor(&storage_, serial, nullptr);
    result = executor.Execute(plan, metrics, qc);
  }
  return result;
}

Result<PlanRef> Database::PlanQueryTimed(const std::string& sql,
                                         QueryTiming* timing) const {
  int64_t start = NowNs();
  Result<Statement> stmt = ParseStatement(sql);
  timing->parse_ns += NowNs() - start;
  if (!stmt.ok()) return stmt.status();
  if (stmt->kind != Statement::Kind::kSelect || stmt->select == nullptr) {
    return Status::InvalidArgument("not a SELECT statement: " + sql);
  }
  start = NowNs();
  Binder binder(&catalog_);
  Result<PlanRef> bound = binder.BindSelect(*stmt->select);
  timing->bind_ns += NowNs() - start;
  if (!bound.ok()) return bound.status();
  start = NowNs();
  Result<PlanRef> optimized = OptimizePlan(*bound);
  timing->optimize_ns += NowNs() - start;
  return optimized;
}

Result<PlanRef> Database::PlanQueryCached(const std::string& sql,
                                          QueryTiming* timing) {
  // Every early `return PlanQueryTimed(...)` below is the safety valve:
  // anything unusual about the parameterized path (not cacheable, sentinel
  // ambiguity, parse/bind/optimize/verify/rebind failure) reverts to the
  // plain pipeline, which must behave exactly as with the cache disabled.
  int64_t start = NowNs();
  Result<ParameterizedStatement> ps = ParameterizeStatement(sql);
  timing->parameterize_ns += NowNs() - start;
  if (!ps.ok() || !ps->cacheable) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  // An injected cache failure exercises the same safety valve as any
  // other parameterized-path problem: revert to the plain pipeline.
  if (!FaultInjection::Check("engine.plan_cache.lookup").ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  const std::string key =
      ComposePlanCacheKey(ps->key, config_fingerprint_, catalog_.version());
  if (std::shared_ptr<const CachedPlan> hit = plan_cache_->Lookup(key)) {
    // The key covers the schema version only; data changes bump the
    // written table's data version instead, validated per hit — DML on
    // table A must not evict plans that only touch table B.
    bool data_current = true;
    for (const auto& [table, dv] : hit->table_data_versions) {
      if (catalog_.data_version(table) != dv) {
        data_current = false;
        break;
      }
    }
    if (!data_current) {
      plan_cache_->Invalidate(key);
    } else {
      start = NowNs();
      Result<PlanRef> rebound =
          BindCachedPlan(*hit, ps->params, ps->limit, ps->offset);
      timing->rebind_ns += NowNs() - start;
      if (rebound.ok()) {
        timing->cache_hit = true;
        return rebound;
      }
      // Rebind mismatch: recompile from scratch below.
    }
  }
  start = NowNs();
  Result<Statement> stmt = ParseTokenStream(sql, ps->tokens);
  timing->parse_ns += NowNs() - start;
  if (!stmt.ok() || stmt->kind != Statement::Kind::kSelect ||
      stmt->select == nullptr) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  start = NowNs();
  Binder binder(&catalog_);
  Result<PlanRef> bound = binder.BindSelect(*stmt->select);
  timing->bind_ns += NowNs() - start;
  if (!bound.ok() ||
      !LimitSentinelsUnambiguous(*bound, ps->has_limit, ps->has_offset)) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  start = NowNs();
  Result<PlanRef> optimized = OptimizePlan(*bound);
  timing->optimize_ns += NowNs() - start;
  if (!optimized.ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  // Plan integrity is checked once here, at insertion; hits skip it.
  if (!PlanVerifier::Verify(*optimized).ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  auto cached = std::make_shared<CachedPlan>();
  cached->plan = *optimized;
  cached->param_types = ps->param_types;
  cached->has_limit = ps->has_limit;
  cached->has_offset = ps->has_offset;
  // Record the data version of every base table the *bound* plan scans
  // (the optimizer may prove scans redundant and drop them, but the
  // statement's result still only depends on tables the bound form
  // reads). Validated on every hit.
  VisitPlan(*bound, [&](const PlanRef& node) {
    if (node->kind() != OpKind::kScan) return;
    const std::string table =
        ToLower(static_cast<const ScanOp&>(*node).table_name());
    for (const auto& [existing, version] : cached->table_data_versions) {
      if (existing == table) return;
    }
    cached->table_data_versions.emplace_back(table,
                                             catalog_.data_version(table));
  });
  start = NowNs();
  Result<PlanRef> rebound =
      BindCachedPlan(*cached, ps->params, ps->limit, ps->offset);
  timing->rebind_ns += NowNs() - start;
  if (!rebound.ok()) {
    timing->used_cache = false;
    return PlanQueryTimed(sql, timing);
  }
  plan_cache_->Insert(key, std::move(cached));
  return rebound;
}

// --- prepared statements (server EXECUTE-BOUND path) --------------------

Result<std::shared_ptr<const PreparedStatement>> Database::Prepare(
    const std::string& sql) {
  VDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect || stmt.select == nullptr) {
    return Status::NotImplemented(
        "only SELECT statements can be prepared; run DML/DDL as plain "
        "statements");
  }
  auto out = std::make_shared<PreparedStatement>();
  out->sql = sql;
  Result<ParameterizedStatement> ps = ParameterizeStatement(sql);
  if (ps.ok() && ps->cacheable) {
    // Trial compile: prove the stored token stream parses + binds and the
    // limit sentinels rebind unambiguously NOW, so an EXECUTE can only
    // fail for reasons that would fail the plain query path too.
    Result<Statement> tok_stmt = ParseTokenStream(sql, ps->tokens);
    if (tok_stmt.ok() && tok_stmt->kind == Statement::Kind::kSelect &&
        tok_stmt->select != nullptr) {
      Binder binder(&catalog_);
      Result<PlanRef> bound = binder.BindSelect(*tok_stmt->select);
      if (bound.ok() &&
          LimitSentinelsUnambiguous(*bound, ps->has_limit, ps->has_offset)) {
        out->parameterized = std::move(*ps);
        out->parameterized_ok = true;
      }
    }
  }
  if (!out->parameterized_ok) {
    // Direct mode: validate the text binds at all (same check CREATE VIEW
    // makes), then EXECUTE re-runs it verbatim.
    Binder binder(&catalog_);
    Result<PlanRef> bound = binder.BindSelect(*stmt.select);
    if (!bound.ok()) return bound.status();
  }
  return std::shared_ptr<const PreparedStatement>(std::move(out));
}

Result<PlanRef> Database::PlanPrepared(const PreparedStatement& stmt,
                                       const std::vector<Value>& params,
                                       int64_t limit, int64_t offset,
                                       QueryTiming* timing) {
  const ParameterizedStatement& ps = stmt.parameterized;
  std::string key;
  if (PlanCacheUsable()) {
    timing->used_cache = true;
    key = ComposePlanCacheKey(ps.key, config_fingerprint_, catalog_.version());
    if (std::shared_ptr<const CachedPlan> hit = plan_cache_->Lookup(key)) {
      bool data_current = true;
      for (const auto& [table, dv] : hit->table_data_versions) {
        if (catalog_.data_version(table) != dv) {
          data_current = false;
          break;
        }
      }
      if (!data_current) {
        plan_cache_->Invalidate(key);
      } else {
        int64_t start = NowNs();
        Result<PlanRef> rebound = BindCachedPlan(*hit, params, limit, offset);
        timing->rebind_ns += NowNs() - start;
        if (rebound.ok()) {
          timing->cache_hit = true;
          return rebound;
        }
        // Rebind mismatch: recompile from the token stream below.
      }
    }
  }
  // Miss (or cache unusable): recompile from the stored token stream.
  // There is deliberately no original-text fallback here — the text
  // carries the PREPARE-time literals, not this call's `params`.
  int64_t start = NowNs();
  Result<Statement> tok_stmt = ParseTokenStream(stmt.sql, ps.tokens);
  timing->parse_ns += NowNs() - start;
  if (!tok_stmt.ok()) return tok_stmt.status();
  if (tok_stmt->kind != Statement::Kind::kSelect ||
      tok_stmt->select == nullptr) {
    return Status::Internal("prepared token stream is no longer a SELECT");
  }
  start = NowNs();
  Binder binder(&catalog_);
  Result<PlanRef> bound = binder.BindSelect(*tok_stmt->select);
  timing->bind_ns += NowNs() - start;
  if (!bound.ok()) return bound.status();
  if (!LimitSentinelsUnambiguous(*bound, ps.has_limit, ps.has_offset)) {
    // A view replacement introduced a colliding literal since Prepare.
    return Status::InvalidArgument(
        "prepared statement is no longer rebindable (limit-sentinel "
        "collision after a view change); re-prepare it");
  }
  start = NowNs();
  VDM_ASSIGN_OR_RETURN(PlanRef optimized, OptimizePlan(*bound));
  timing->optimize_ns += NowNs() - start;
  auto cached = std::make_shared<CachedPlan>();
  cached->plan = optimized;
  cached->param_types = ps.param_types;
  cached->has_limit = ps.has_limit;
  cached->has_offset = ps.has_offset;
  VisitPlan(*bound, [&](const PlanRef& node) {
    if (node->kind() != OpKind::kScan) return;
    const std::string table =
        ToLower(static_cast<const ScanOp&>(*node).table_name());
    for (const auto& [existing, version] : cached->table_data_versions) {
      if (existing == table) return;
    }
    cached->table_data_versions.emplace_back(table,
                                             catalog_.data_version(table));
  });
  start = NowNs();
  Result<PlanRef> rebound = BindCachedPlan(*cached, params, limit, offset);
  timing->rebind_ns += NowNs() - start;
  if (!rebound.ok()) return rebound.status();
  // Integrity-check once at insertion, like PlanQueryCached; a failed
  // verify keeps the plan out of the cache but this call still runs it —
  // the verifier flags structural invariants, not wrong results.
  if (PlanCacheUsable() && PlanVerifier::Verify(optimized).ok()) {
    plan_cache_->Insert(key, std::move(cached));
  }
  return rebound;
}

Result<Chunk> Database::ExecutePrepared(const PreparedStatement& stmt,
                                        const std::vector<Value>& params,
                                        int64_t limit, int64_t offset,
                                        const ExecLimits& limits,
                                        ExecMetrics* metrics,
                                        QueryTiming* timing,
                                        QueryContext* ctx) {
  QueryTiming local_timing;
  QueryTiming* t = timing != nullptr ? timing : &local_timing;
  if (!stmt.parameterized_ok) {
    if (!params.empty() || limit >= 0 || offset >= 0) {
      return Status::InvalidArgument(
          "prepared statement is not parameterized; EXECUTE it without "
          "values");
    }
    return Query(stmt.sql, limits, metrics, timing, ctx);
  }
  const ParameterizedStatement& ps = stmt.parameterized;
  if (!params.empty() && params.size() != ps.param_types.size()) {
    return Status::InvalidArgument(StrFormat(
        "prepared statement takes %zu parameters, got %zu",
        ps.param_types.size(), params.size()));
  }
  if (limit >= 0 && !ps.has_limit) {
    return Status::InvalidArgument(
        "prepared statement has no LIMIT clause to bind");
  }
  if (offset >= 0 && !ps.has_offset) {
    return Status::InvalidArgument(
        "prepared statement has no OFFSET clause to bind");
  }
  const std::vector<Value>& values = params.empty() ? ps.params : params;
  const int64_t eff_limit = limit >= 0 ? limit : ps.limit;
  const int64_t eff_offset = offset >= 0 ? offset : ps.offset;
  VDM_RETURN_NOT_OK(EnsureFreshCaches());
  *t = QueryTiming{};
  VDM_ASSIGN_OR_RETURN(PlanRef plan,
                       PlanPrepared(stmt, values, eff_limit, eff_offset, t));
  int64_t start = NowNs();
  Result<Chunk> result = GovernedExecute(plan, limits, metrics, ctx);
  t->execute_ns = NowNs() - start;
  return result;
}

Status Database::Insert(const std::string& table,
                        const std::vector<std::vector<Value>>& rows) {
  Table* t = storage_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table: " + table);
  for (const std::vector<Value>& row : rows) {
    VDM_RETURN_NOT_OK(t->AppendRow(row));
  }
  catalog_.BumpDataVersion(table);
  return Status::OK();
}

// --- transactions (DESIGN.md §15) --------------------------------------

Transaction* Database::BeginTxn() {
  std::unique_ptr<Transaction> txn = txn_mgr_.Begin();
  Transaction* raw = txn.get();
  std::lock_guard<std::mutex> lock(txns_mu_);
  open_txns_.emplace(raw, std::move(txn));
  return raw;
}

Status Database::CommitTxn(Transaction* txn) {
  if (txn == nullptr || txn->finished()) {
    return Status::InvalidArgument("commit of a finished transaction");
  }
  // The injected commit-time conflict models a validation failure another
  // engine would detect here: the transaction rolls back (leaving the
  // database exactly as if it never ran) and the caller sees a retryable
  // kSerializationFailure.
  Status injected = FaultInjection::Check("txn.commit.conflict");
  if (!injected.ok()) {
    conflicts_.fetch_add(1, std::memory_order_relaxed);
    FinishRollback(txn);
    return Status::SerializationFailure(
        "transaction aborted by commit-time conflict (injected)");
  }
  std::vector<Table*> written = txn->written_tables();
  txn_mgr_.Commit(txn);
  commits_.fetch_add(1, std::memory_order_relaxed);
  ReleaseTxnHandle(txn);
  AfterCommit(written);
  return Status::OK();
}

Status Database::RollbackTxn(Transaction* txn) {
  if (txn == nullptr || txn->finished()) {
    return Status::InvalidArgument("rollback of a finished transaction");
  }
  // The fault fires BEFORE any state changes: the transaction stays open
  // and fully intact, so the caller can simply retry the rollback.
  Status injected = FaultInjection::Check("txn.rollback");
  if (!injected.ok()) return injected;
  FinishRollback(txn);
  return Status::OK();
}

void Database::FinishRollback(Transaction* txn) {
  txn_mgr_.Rollback(txn);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  ReleaseTxnHandle(txn);
}

void Database::ReleaseTxnHandle(Transaction* txn) {
  std::lock_guard<std::mutex> lock(txns_mu_);
  open_txns_.erase(txn);
}

TxnStats Database::txn_stats() const {
  TxnStats out;
  out.commits = commits_.load(std::memory_order_relaxed);
  out.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  out.conflicts = conflicts_.load(std::memory_order_relaxed);
  out.retries = txn_retries_used_.load(std::memory_order_relaxed);
  out.merges = merges_done_.load(std::memory_order_relaxed);
  return out;
}

Result<Chunk> Database::ExecuteDmlAutoCommit(const Statement& stmt) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= txn_retries_; ++attempt) {
    if (attempt > 0) {
      txn_retries_used_.fetch_add(1, std::memory_order_relaxed);
      // Exponential backoff (1, 2, 4, ... ms, capped) so colliding
      // writers de-synchronize instead of re-conflicting in lockstep.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(int64_t{1} << std::min(attempt - 1, 5)));
    }
    Transaction* txn = BeginTxn();
    Result<size_t> affected =
        ExecuteDmlStatement(stmt, catalog_, &storage_, txn);
    if (!affected.ok()) {
      FinishRollback(txn);
      if (affected.status().code() == StatusCode::kSerializationFailure) {
        conflicts_.fetch_add(1, std::memory_order_relaxed);
        last = affected.status();
        continue;
      }
      return affected.status();
    }
    Status committed = CommitTxn(txn);
    if (!committed.ok()) {
      if (committed.code() == StatusCode::kSerializationFailure) {
        last = committed;
        continue;
      }
      return committed;
    }
    return DmlResultChunk(*affected);
  }
  return last;
}

void Database::AfterCommit(const std::vector<Table*>& written) {
  size_t threshold;
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    threshold = merge_threshold_;
  }
  for (Table* t : written) {
    const std::string& name = t->schema().name();
    catalog_.BumpDataVersion(name);
    const size_t delta = t->NumDeltaRows();
    const size_t total = t->NumRows();
    // Delta-heavy auto-analyze: once the delta outgrows a fifth of the
    // table the collected statistics (and the optimizer decisions built
    // on them) have drifted too far — recollect from the committed state.
    if (delta > std::max<size_t>(64, total / 5)) {
      RefreshTableStats(name);
    }
    if (threshold > 0 && delta >= threshold) EnqueueMerge(name);
  }
}

void Database::RefreshTableStats(const std::string& name) {
  const Table* t = storage_.FindTable(name);
  if (t == nullptr) return;
  catalog_.SetTableStats(name, stats_enabled_ ? CollectTableStats(*t)
                                              : CollectRowCountOnly(*t));
}

// --- background MVCC merge ---------------------------------------------

void Database::SetMergeThreshold(size_t rows) {
  std::lock_guard<std::mutex> lock(merge_mu_);
  merge_threshold_ = rows;
  if (rows > 0 && !merge_thread_.joinable()) {
    merge_thread_ = std::thread([this] { MergeWorkerLoop(); });
  }
}

void Database::EnqueueMerge(const std::string& table) {
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    if (merge_stop_) return;
    for (const std::string& queued : merge_queue_) {
      if (queued == table) return;
    }
    merge_queue_.push_back(table);
  }
  merge_cv_.notify_one();
}

void Database::MergeWorkerLoop() {
  std::unique_lock<std::mutex> lock(merge_mu_);
  while (true) {
    merge_cv_.wait(lock, [&] { return merge_stop_ || !merge_queue_.empty(); });
    if (merge_stop_) return;
    std::string table = std::move(merge_queue_.front());
    merge_queue_.pop_front();
    lock.unlock();
    Status st = MergeTableMvcc(table);
    lock.lock();
    if (!st.ok() && st.code() == StatusCode::kResourceExhausted &&
        !merge_stop_) {
      // Active writers or a racing version publish: requeue and back off
      // so the writer can finish (commit/rollback wakes nothing — the
      // timeout is the retry tick).
      merge_queue_.push_back(std::move(table));
      merge_cv_.wait_for(lock, std::chrono::milliseconds(1),
                         [&] { return merge_stop_; });
    }
    // Any other failure (injected merge fault, cancelled) drops the
    // request: the next threshold-crossing commit re-enqueues it, and the
    // aborted merge left the table untouched.
  }
}

Status Database::MergeTableMvcc(const std::string& table) {
  Table* t = storage_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table: " + table);
  MergeOptions opts;
  opts.watermark = txn_mgr_.Watermark();
  opts.has_active_writers = [this, t] { return txn_mgr_.HasActiveWriters(t); };
  opts.check_alive = [this] {
    std::lock_guard<std::mutex> lock(merge_mu_);
    return merge_stop_ ? Status::Cancelled("database shutting down")
                       : Status::OK();
  };
  VDM_RETURN_NOT_OK(t->MergeDeltaMvcc(opts));
  merges_done_.fetch_add(1, std::memory_order_relaxed);
  // A merge rewrites the physical layout and purges dead rows: refresh
  // the table's statistics (which also bumps its data version, retiring
  // cached plans compiled against the pre-merge state).
  RefreshTableStats(table);
  return Status::OK();
}

Result<PlanRef> Database::BindQuery(const std::string& sql) const {
  Binder binder(&catalog_);
  return binder.BindSql(sql);
}

Result<PlanRef> Database::PlanQuery(const std::string& sql) const {
  VDM_ASSIGN_OR_RETURN(PlanRef plan, BindQuery(sql));
  return OptimizePlan(plan);
}

Result<PlanRef> Database::OptimizePlan(const PlanRef& plan) const {
  if (optimizer_config_.verify_rewrites &&
      optimizer_config_.verification_hook == nullptr) {
    // The auditor lives on the stack, so this path still builds a
    // per-query Optimizer around it.
    OptimizerConfig config = optimizer_config_;
    config.stats_catalog = &catalog_;
    RewriteAuditor::Options options;
    options.derivation = config.derivation;
    if (config.verify_rewrites_exec) options.storage = &storage_;
    RewriteAuditor auditor(options);
    config.verification_hook = &auditor;
    Optimizer optimizer(config);
    return optimizer.OptimizeChecked(plan);
  }
  // Common path: the Optimizer (and its config copy) is built once per
  // config change, not once per query. stats_catalog points at the live
  // catalog, so refreshed statistics are picked up without a rebuild.
  // The lock spans the OptimizeChecked call too: the hoisted instance
  // keeps per-run state (last_run_converged), and with the plan cache
  // warm concurrent sessions rarely compile at all.
  std::lock_guard<std::mutex> lock(optimizer_mu_);
  if (optimizer_ == nullptr) {
    OptimizerConfig config = optimizer_config_;
    config.stats_catalog = &catalog_;
    optimizer_ = std::make_unique<Optimizer>(std::move(config));
  }
  return optimizer_->OptimizeChecked(plan);
}

Result<Chunk> Database::ExecutePlan(const PlanRef& plan, ExecMetrics* metrics,
                                    QueryContext* ctx) const {
  size_t threads = exec_options_.num_threads == 0
                       ? ThreadPool::DefaultThreads()
                       : exec_options_.num_threads;
  if (exec_options_.num_threads == 0 && threads > 1) {
    // Cost-based degree of parallelism (§14): when the caller left the
    // thread count automatic, small plans skip the pool — morsel fan-out
    // overhead exceeds the estimated work. Results are byte-identical
    // either way. An explicit num_threads setting is always honored.
    CardinalityOptions copt;
    copt.use_inference = false;
    CardinalityEstimator estimator(&catalog_, copt);
    PlanEstimates estimates;
    if (estimator.Annotate(plan, &estimates).cost < kSerialCostThreshold) {
      threads = 1;
    }
  }
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    // Guarded lazy creation: concurrent sessions reach the first parallel
    // query together. The built pool is used without the lock
    // (ParallelFor serializes internally; extra callers run inline).
    std::lock_guard<std::mutex> lock(exec_pool_mu_);
    if (exec_pool_ == nullptr) {
      exec_pool_ = std::make_unique<ThreadPool>(threads);
    }
    pool = exec_pool_.get();
  }
  Executor executor(&storage_, exec_options_, pool);
  return executor.Execute(plan, metrics, ctx);
}

Result<std::string> Database::Explain(const std::string& sql) const {
  VDM_ASSIGN_OR_RETURN(PlanRef plan, PlanQuery(sql));
  return PrintPlan(plan);
}

Result<std::string> Database::ExplainRaw(const std::string& sql) const {
  VDM_ASSIGN_OR_RETURN(PlanRef plan, BindQuery(sql));
  return PrintPlan(plan);
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql) {
  VDM_RETURN_NOT_OK(EnsureFreshCaches());
  QueryTiming timing;
  PlanRef plan;
  if (PlanCacheUsable()) {
    timing.used_cache = true;
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryCached(sql, &timing));
  } else {
    VDM_ASSIGN_OR_RETURN(plan, PlanQueryTimed(sql, &timing));
  }
  ExecMetrics metrics;
  int64_t start = NowNs();
  VDM_ASSIGN_OR_RETURN(Chunk result,
                       GovernedExecute(plan, default_limits_, &metrics,
                                       /*ctx=*/nullptr));
  timing.execute_ns = NowNs() - start;
  // Annotate the rendered plan with per-operator cardinality/cost
  // estimates (§14) so estimation errors are visible next to the actual
  // timings below.
  PlanEstimates estimates;
  {
    CardinalityOptions copt;
    copt.use_inference = false;
    CardinalityEstimator estimator(&catalog_, copt);
    estimator.Annotate(plan, &estimates);
  }
  std::string out = PrintPlan(plan, &estimates);
  auto ms = [](int64_t ns) { return static_cast<double>(ns) / 1e6; };
  out += "-- explain analyze --\n";
  out += StrFormat("plan cache: %s\n",
                   !timing.used_cache ? "off"
                   : timing.cache_hit ? "hit"
                                      : "miss");
  if (timing.parameterize_ns > 0) {
    out += StrFormat("parameterize: %.3f ms\n", ms(timing.parameterize_ns));
  }
  if (timing.parse_ns > 0) {
    out += StrFormat("parse: %.3f ms\n", ms(timing.parse_ns));
  }
  if (timing.bind_ns > 0) {
    out += StrFormat("bind: %.3f ms\n", ms(timing.bind_ns));
  }
  if (timing.optimize_ns > 0) {
    out += StrFormat("optimize: %.3f ms\n", ms(timing.optimize_ns));
  }
  if (timing.rebind_ns > 0) {
    out += StrFormat("rebind: %.3f ms\n", ms(timing.rebind_ns));
  }
  out += StrFormat("compile total: %.3f ms\n", ms(timing.compile_ns()));
  out += StrFormat("execute: %.3f ms (%zu rows)\n", ms(timing.execute_ns),
                   result.NumRows());
  out += StrFormat(
      "governor: %llu cancel checks, peak tracked memory %.2f MiB\n",
      static_cast<unsigned long long>(metrics.cancel_checks),
      static_cast<double>(metrics.peak_memory_bytes) / (1 << 20));
  if (metrics.admission_wait_ns > 0) {
    out += StrFormat("admission wait: %.3f ms\n",
                     ms(static_cast<int64_t>(metrics.admission_wait_ns)));
  }
  if (metrics.degraded_serial_retries > 0) {
    out += StrFormat("degraded: %llu serial retry within memory budget\n",
                     static_cast<unsigned long long>(
                         metrics.degraded_serial_retries));
  }
  const TxnStats txn = txn_stats();
  if (txn.commits > 0 || txn.rollbacks > 0 || txn.conflicts > 0 ||
      txn.merges > 0) {
    out += StrFormat(
        "txn: %llu commits, %llu rollbacks, %llu conflicts, %llu retries, "
        "%llu merges\n",
        static_cast<unsigned long long>(txn.commits),
        static_cast<unsigned long long>(txn.rollbacks),
        static_cast<unsigned long long>(txn.conflicts),
        static_cast<unsigned long long>(txn.retries),
        static_cast<unsigned long long>(txn.merges));
  }
  return out;
}

Status Database::RegisterViewPlan(const std::string& name, PlanRef plan,
                                  VdmLayer layer,
                                  const std::string& dac_filter_sql) {
  ViewDef view;
  view.name = name;
  view.layer = layer;
  view.dac_filter_sql = dac_filter_sql;
  view.bound_plan = std::move(plan);
  return catalog_.ReplaceView(std::move(view));
}

namespace {

/// Schema for a materialized snapshot, derived from a result chunk.
TableSchema SnapshotSchema(const std::string& table_name,
                           const Chunk& chunk) {
  TableSchema schema(table_name);
  for (size_t c = 0; c < chunk.NumColumns(); ++c) {
    schema.AddColumn(chunk.names[c], chunk.columns[c].type());
  }
  return schema;
}

Status InsertChunk(Table* table, const Chunk& chunk) {
  std::vector<Value> row(chunk.NumColumns());
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      row[c] = chunk.columns[c].GetValue(r);
    }
    VDM_RETURN_NOT_OK(table->AppendRow(row));
  }
  table->MergeDelta();
  return Status::OK();
}

}  // namespace

Status Database::MaterializeView(const std::string& name,
                                 ViewDef::CacheMode mode) {
  const ViewDef* view = catalog_.FindView(name);
  if (view == nullptr) return Status::NotFound("view not found: " + name);
  if (!view->materialized_table.empty()) {
    ViewDef updated = *view;
    updated.cache_mode = mode;
    VDM_RETURN_NOT_OK(catalog_.ReplaceView(std::move(updated)));
    return RefreshMaterializedView(name);
  }
  ViewDef updated = *view;
  updated.materialized_table = "__scv_" + ToLower(name);
  updated.cache_mode = mode;
  return BuildSnapshot(std::move(updated), /*replace_existing=*/false);
}

Status Database::RefreshMaterializedView(const std::string& name) {
  const ViewDef* view = catalog_.FindView(name);
  if (view == nullptr) return Status::NotFound("view not found: " + name);
  if (view->materialized_table.empty()) {
    return Status::InvalidArgument("view is not materialized: " + name);
  }
  return BuildSnapshot(*view, /*replace_existing=*/true);
}

Status Database::BuildSnapshot(ViewDef view, bool replace_existing) {
  // Rebind with materialization temporarily disabled so the definition —
  // not a stale snapshot — is evaluated.
  std::string table_name = view.materialized_table;
  ViewDef transparent = view;
  transparent.materialized_table.clear();
  VDM_RETURN_NOT_OK(catalog_.ReplaceView(transparent));
  Binder binder(&catalog_);
  Result<PlanRef> bound =
      transparent.bound_plan ? Result<PlanRef>(transparent.bound_plan)
                             : binder.BindSql(transparent.sql);
  if (!bound.ok()) return bound.status();
  Result<PlanRef> optimized = OptimizePlan(*bound);
  if (!optimized.ok()) return optimized.status();
  Result<Chunk> snapshot = ExecutePlan(*optimized);
  if (!snapshot.ok()) return snapshot.status();

  // Record base-table dependencies (for DCV staleness checks).
  view.snapshot_dependencies.clear();
  VisitPlan(*bound, [&](const PlanRef& node) {
    if (node->kind() != OpKind::kScan) return;
    const std::string& table = static_cast<const ScanOp&>(*node).table_name();
    const Table* t = storage_.FindTable(table);
    if (t == nullptr) return;
    for (const auto& [existing, version] : view.snapshot_dependencies) {
      if (EqualsIgnoreCase(existing, table)) return;
    }
    view.snapshot_dependencies.emplace_back(table, t->version());
  });

  if (replace_existing) {
    VDM_RETURN_NOT_OK(storage_.DropTable(table_name));
    VDM_RETURN_NOT_OK(catalog_.DropTable(table_name));
  }
  TableSchema schema = SnapshotSchema(table_name, *snapshot);
  VDM_RETURN_NOT_OK(catalog_.RegisterTable(schema));
  VDM_RETURN_NOT_OK(storage_.CreateTable(schema));
  VDM_RETURN_NOT_OK(InsertChunk(storage_.FindTable(table_name), *snapshot));
  return catalog_.ReplaceView(std::move(view));
}

Status Database::DematerializeView(const std::string& name) {
  const ViewDef* view = catalog_.FindView(name);
  if (view == nullptr) return Status::NotFound("view not found: " + name);
  if (view->materialized_table.empty()) return Status::OK();
  ViewDef updated = *view;
  std::string table_name = updated.materialized_table;
  updated.materialized_table.clear();
  updated.snapshot_dependencies.clear();
  VDM_RETURN_NOT_OK(catalog_.ReplaceView(std::move(updated)));
  VDM_RETURN_NOT_OK(catalog_.DropTable(table_name));
  return storage_.DropTable(table_name);
}

Status Database::EnsureFreshCaches() {
  // One session at a time: a refresh rewrites catalog + storage state,
  // and two sessions observing the same stale DCV must not race to
  // rebuild it. The no-stale-view common case only pays the lock.
  std::lock_guard<std::mutex> lock(caches_mu_);
  for (const std::string& name : catalog_.ViewNames()) {
    const ViewDef* view = catalog_.FindView(name);
    if (view == nullptr || view->materialized_table.empty() ||
        view->cache_mode != ViewDef::CacheMode::kDynamic) {
      continue;
    }
    bool stale = false;
    for (const auto& [table, version] : view->snapshot_dependencies) {
      const Table* t = storage_.FindTable(table);
      if (t == nullptr || t->version() != version) {
        stale = true;
        break;
      }
    }
    if (stale) {
      VDM_RETURN_NOT_OK(RefreshMaterializedView(name));
    }
  }
  return Status::OK();
}

Result<bool> Database::VerifyDeclaredUnique(
    const std::string& table, const std::vector<std::string>& columns) const {
  const Table* t = storage_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table: " + table);
  return t->VerifyUnique(columns);
}

void Database::MergeAllDeltas() {
  for (const std::string& name : catalog_.TableNames()) {
    Table* t = storage_.FindTable(name);
    if (t == nullptr) continue;
    // Merge at the transaction watermark with fault injection off: this
    // is the bulk-load / maintenance API, safe to call while transactions
    // are open (tables with active writers are skipped and stay
    // mergeable later).
    MergeOptions opts;
    opts.watermark = txn_mgr_.Watermark();
    opts.inject_faults = false;
    opts.has_active_writers = [this, t] {
      return txn_mgr_.HasActiveWriters(t);
    };
    Status st = t->MergeDeltaMvcc(opts);
    if (st.ok()) merges_done_.fetch_add(1, std::memory_order_relaxed);
  }
  AnalyzeTables();
}

void Database::AnalyzeTables() {
  for (const std::string& name : catalog_.TableNames()) {
    RefreshTableStats(name);
  }
}

}  // namespace vdm
