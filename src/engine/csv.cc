#include "engine/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "expr/eval.h"
#include "types/date_util.h"

namespace vdm {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV line: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> CoerceCsvValue(const std::string& field,
                             const DataType& type) {
  if (field.empty()) return Value::Null();
  switch (type.id) {
    case TypeId::kBool: {
      if (EqualsIgnoreCase(field, "true") || field == "1") {
        return Value::Bool(true);
      }
      if (EqualsIgnoreCase(field, "false") || field == "0") {
        return Value::Bool(false);
      }
      return Status::InvalidArgument("bad bool in CSV: " + field);
    }
    case TypeId::kDate: {
      std::optional<int64_t> days = ParseDate(field);
      if (days.has_value()) return Value::Date(*days);
      // Fall through to integer parsing (days since epoch).
      try {
        size_t consumed = 0;
        int64_t v = std::stoll(field, &consumed);
        if (consumed != field.size()) {
          return Status::InvalidArgument("bad date in CSV: " + field);
        }
        return Value::Date(v);
      } catch (...) {
        return Status::InvalidArgument("bad date in CSV: " + field);
      }
    }
    case TypeId::kInt64: {
      try {
        size_t consumed = 0;
        int64_t v = std::stoll(field, &consumed);
        if (consumed != field.size()) {
          return Status::InvalidArgument("bad integer in CSV: " + field);
        }
        return Value::Int64(v);
      } catch (...) {
        return Status::InvalidArgument("bad integer in CSV: " + field);
      }
    }
    case TypeId::kDouble: {
      try {
        size_t consumed = 0;
        double v = std::stod(field, &consumed);
        if (consumed != field.size()) {
          return Status::InvalidArgument("bad double in CSV: " + field);
        }
        return Value::Double(v);
      } catch (...) {
        return Status::InvalidArgument("bad double in CSV: " + field);
      }
    }
    case TypeId::kDecimal: {
      // Parse as sign, digits, optional fraction; rescale to the column.
      size_t i = 0;
      bool negative = false;
      if (i < field.size() && (field[i] == '-' || field[i] == '+')) {
        negative = field[i] == '-';
        ++i;
      }
      int64_t unscaled = 0;
      uint8_t scale = 0;
      bool seen_dot = false, seen_digit = false;
      for (; i < field.size(); ++i) {
        char c = field[i];
        if (c == '.') {
          if (seen_dot) {
            return Status::InvalidArgument("bad decimal in CSV: " + field);
          }
          seen_dot = true;
          continue;
        }
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::InvalidArgument("bad decimal in CSV: " + field);
        }
        seen_digit = true;
        // Checked accumulation: a value past int64 range used to wrap
        // silently and load a garbage decimal; reject the row instead.
        if (__builtin_mul_overflow(unscaled, int64_t{10}, &unscaled) ||
            __builtin_add_overflow(unscaled, int64_t{c - '0'}, &unscaled)) {
          return Status::InvalidArgument("decimal out of range in CSV: " +
                                         field);
        }
        if (seen_dot) ++scale;
      }
      if (!seen_digit) {
        return Status::InvalidArgument("bad decimal in CSV: " + field);
      }
      if (negative) unscaled = -unscaled;
      // RoundUnscaled also handles upscaling when scale < type.scale.
      return Value::Decimal(RoundUnscaled(unscaled, scale, type.scale),
                            type.scale);
    }
    case TypeId::kString:
      return Value::String(field);
  }
  return Status::Internal("unreachable");
}

Result<size_t> ImportCsv(Database* db, const std::string& table,
                         const std::string& path) {
  VDM_FAULT_POINT("engine.csv.load");
  const TableSchema* schema = db->catalog().FindTable(table);
  if (schema == nullptr) return Status::NotFound("unknown table: " + table);
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::InvalidArgument("cannot open file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  VDM_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line));
  std::vector<size_t> positions;
  for (const std::string& column : header) {
    int idx = schema->FindColumn(column);
    if (idx < 0) {
      return Status::InvalidArgument("CSV column " + column +
                                     " not in table " + table);
    }
    positions.push_back(static_cast<size_t>(idx));
  }
  std::vector<std::vector<Value>> rows;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    VDM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseCsvLine(line));
    if (fields.size() != positions.size()) {
      return Status::InvalidArgument(
          StrFormat("CSV line %zu has %zu fields, expected %zu", line_number,
                    fields.size(), positions.size()));
    }
    std::vector<Value> row(schema->NumColumns(), Value::Null());
    for (size_t i = 0; i < fields.size(); ++i) {
      Result<Value> value =
          CoerceCsvValue(fields[i], schema->column(positions[i]).type);
      if (!value.ok()) {
        return Status(value.status().code(),
                      StrFormat("line %zu: %s", line_number,
                                value.status().message().c_str()));
      }
      row[positions[i]] = std::move(value).value();
    }
    rows.push_back(std::move(row));
  }
  VDM_RETURN_NOT_OK(db->Insert(table, rows));
  return rows.size();
}

Status ExportCsv(const Chunk& chunk, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open file for write: " + path);
  }
  auto quote = [](const std::string& s) {
    bool needs_quote = s.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) return s;
    std::string quoted = "\"";
    for (char c : s) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted += "\"";
    return quoted;
  };
  for (size_t c = 0; c < chunk.NumColumns(); ++c) {
    if (c > 0) out << ",";
    out << quote(chunk.names[c]);
  }
  out << "\n";
  for (size_t r = 0; r < chunk.NumRows(); ++r) {
    for (size_t c = 0; c < chunk.NumColumns(); ++c) {
      if (c > 0) out << ",";
      if (!chunk.columns[c].IsNull(r)) {
        out << quote(chunk.columns[c].GetValue(r).ToString());
      }
    }
    out << "\n";
  }
  return Status::OK();
}

}  // namespace vdm
