// Minimal CSV import/export for the engine: header row, comma separator,
// double-quote quoting. Values are coerced to the target table's column
// types; empty unquoted fields import as NULL.
#ifndef VDMQO_ENGINE_CSV_H_
#define VDMQO_ENGINE_CSV_H_

#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace vdm {

/// Appends the file's rows to an existing table. The header row must name
/// a subset of the table's columns (case-insensitive); unnamed columns
/// are filled with NULL. Returns the number of imported rows.
Result<size_t> ImportCsv(Database* db, const std::string& table,
                         const std::string& path);

/// Writes a result chunk as CSV (with header).
Status ExportCsv(const Chunk& chunk, const std::string& path);

/// Parsing helpers, exposed for testing. Empty fields import as NULL.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);
Result<Value> CoerceCsvValue(const std::string& field, const DataType& type);

}  // namespace vdm

#endif  // VDMQO_ENGINE_CSV_H_
