#include "engine/dml.h"

#include <utility>

#include "expr/eval.h"
#include "expr/fold.h"

namespace vdm {

/// Rescales decimals to the column's declared scale (the same rule the
/// INSERT literal path applies); every other promotion is AppendValue's.
Value CoerceToColumnType(Value value, const DataType& type) {
  if (value.is_null() || type.id != TypeId::kDecimal ||
      value.type().id != TypeId::kDecimal || value.type().scale == type.scale) {
    return value;
  }
  int64_t unscaled = value.AsUnscaled();
  if (value.type().scale > type.scale) {
    unscaled = RoundUnscaled(unscaled, value.type().scale, type.scale);
  } else {
    for (uint8_t s = value.type().scale; s < type.scale; ++s) unscaled *= 10;
  }
  return Value::Decimal(unscaled, type.scale);
}

namespace {

/// WHERE evaluation over the statement-visible chunk: SQL boolean
/// semantics, NULL = not selected. A null predicate selects every row.
Result<SelectionVector> EvalWhere(const ExprRef& where, const Chunk& visible) {
  SelectionVector selected;
  const size_t n = visible.NumRows();
  if (where == nullptr) {
    for (size_t r = 0; r < n; ++r) selected.push_back(static_cast<uint32_t>(r));
    return selected;
  }
  VDM_ASSIGN_OR_RETURN(ColumnData mask, EvalExpr(where, visible));
  for (size_t r = 0; r < n; ++r) {
    if (!mask.IsNull(r) && mask.ints()[r] != 0) {
      selected.push_back(static_cast<uint32_t>(r));
    }
  }
  return selected;
}

Result<size_t> RunInsert(const InsertStmt& insert, const Catalog& catalog,
                         StorageManager* storage, Transaction* txn) {
  const TableSchema* schema = catalog.FindTable(insert.table);
  if (schema == nullptr) {
    return Status::NotFound("unknown table: " + insert.table);
  }
  Table* table = storage->FindTable(insert.table);
  if (table == nullptr) {
    return Status::NotFound("unknown table: " + insert.table);
  }
  std::vector<size_t> positions;
  if (insert.columns.empty()) {
    for (size_t c = 0; c < schema->NumColumns(); ++c) positions.push_back(c);
  } else {
    for (const std::string& column : insert.columns) {
      int idx = schema->FindColumn(column);
      if (idx < 0) {
        return Status::BindError("unknown column " + column + " in table " +
                                 insert.table);
      }
      positions.push_back(static_cast<size_t>(idx));
    }
  }
  std::vector<std::vector<Value>> rows;
  rows.reserve(insert.rows.size());
  for (const std::vector<ExprRef>& exprs : insert.rows) {
    if (exprs.size() != positions.size()) {
      return Status::BindError("INSERT value count mismatch");
    }
    std::vector<Value> row(schema->NumColumns(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      std::optional<Value> value = EvaluateConstantExpr(exprs[i]);
      if (!value.has_value()) {
        return Status::BindError("INSERT values must be constant: " +
                                 exprs[i]->ToString());
      }
      row[positions[i]] = CoerceToColumnType(
          std::move(*value), schema->column(positions[i]).type);
    }
    rows.push_back(std::move(row));
  }
  std::vector<WriteOp>* ops = txn->WritesFor(table);
  for (const std::vector<Value>& row : rows) {
    VDM_RETURN_NOT_OK(table->InsertRowTxn(row, txn->marker(), ops));
  }
  return rows.size();
}

Result<size_t> RunUpdate(const UpdateStmt& update, const Catalog& catalog,
                         StorageManager* storage, Transaction* txn) {
  const TableSchema* schema = catalog.FindTable(update.table);
  Table* table = storage->FindTable(update.table);
  if (schema == nullptr || table == nullptr) {
    return Status::NotFound("unknown table: " + update.table);
  }
  std::vector<size_t> set_cols;
  set_cols.reserve(update.sets.size());
  for (const auto& [name, expr] : update.sets) {
    int idx = schema->FindColumn(name);
    if (idx < 0) {
      return Status::BindError("unknown column " + name + " in table " +
                               update.table);
    }
    set_cols.push_back(static_cast<size_t>(idx));
  }
  // The MutationFn runs under the table's unique lock; any error it
  // returns aborts the statement before a single end stamp is written.
  MutationFn fn = [&](const Chunk& visible) -> Result<MutationPlan> {
    MutationPlan plan;
    VDM_ASSIGN_OR_RETURN(plan.selected, EvalWhere(update.where, visible));
    if (plan.selected.empty()) return plan;
    // Every SET right-hand side is evaluated against the pre-update rows,
    // so `set a = b, b = a` swaps.
    std::vector<ColumnData> rhs;
    rhs.reserve(update.sets.size());
    for (const auto& [name, expr] : update.sets) {
      VDM_ASSIGN_OR_RETURN(ColumnData col, EvalExpr(expr, visible));
      rhs.push_back(std::move(col));
    }
    plan.replacements.reserve(plan.selected.size());
    for (uint32_t li : plan.selected) {
      std::vector<Value> row(schema->NumColumns());
      for (size_t c = 0; c < schema->NumColumns(); ++c) {
        row[c] = visible.columns[c].GetValue(li);
      }
      for (size_t i = 0; i < set_cols.size(); ++i) {
        const ColumnDef& col = schema->column(set_cols[i]);
        Value v = CoerceToColumnType(rhs[i].GetValue(li), col.type);
        if (v.is_null() && !col.nullable) {
          return Status::ConstraintViolation("NULL in NOT NULL column " +
                                             col.name + " of " + update.table);
        }
        row[set_cols[i]] = std::move(v);
      }
      plan.replacements.push_back(std::move(row));
    }
    return plan;
  };
  return table->Mutate(txn->snapshot(), txn->marker(), fn,
                       txn->WritesFor(table));
}

Result<size_t> RunDelete(const DeleteStmt& del, const Catalog& catalog,
                         StorageManager* storage, Transaction* txn) {
  if (catalog.FindTable(del.table) == nullptr) {
    return Status::NotFound("unknown table: " + del.table);
  }
  Table* table = storage->FindTable(del.table);
  if (table == nullptr) {
    return Status::NotFound("unknown table: " + del.table);
  }
  MutationFn fn = [&](const Chunk& visible) -> Result<MutationPlan> {
    MutationPlan plan;
    VDM_ASSIGN_OR_RETURN(plan.selected, EvalWhere(del.where, visible));
    return plan;
  };
  return table->Mutate(txn->snapshot(), txn->marker(), fn,
                       txn->WritesFor(table));
}

}  // namespace

Result<size_t> ExecuteDmlStatement(const Statement& stmt,
                                   const Catalog& catalog,
                                   StorageManager* storage, Transaction* txn) {
  switch (stmt.kind) {
    case Statement::Kind::kInsert:
      return RunInsert(*stmt.insert, catalog, storage, txn);
    case Statement::Kind::kUpdate:
      return RunUpdate(*stmt.update, catalog, storage, txn);
    case Statement::Kind::kDelete:
      return RunDelete(*stmt.del, catalog, storage, txn);
    default:
      return Status::InvalidArgument("not a DML statement");
  }
}

}  // namespace vdm
