// Database facade: catalog + storage + binder + optimizer + executor.
//
// This is the public entry point a downstream user works with:
//
//   vdm::Database db;
//   db.Execute("create table t (k int primary key, v varchar)");
//   db.Insert("t", {{Value::Int64(1), Value::String("x")}});
//   auto result = db.Query("select * from t");
//   std::cout << result->ToString();
//
// Query optimization runs under a configurable capability profile (see
// optimizer.h); Explain() shows the optimized plan, ExplainRaw() the plan
// as bound (all views inlined, nothing removed — the paper's Fig. 3 form).
#ifndef VDMQO_ENGINE_DATABASE_H_
#define VDMQO_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "storage/table.h"
#include "types/column.h"

namespace vdm {

class Database {
 public:
  Database() : optimizer_config_(ConfigForProfile(SystemProfile::kHana)) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StorageManager& storage() { return storage_; }
  const StorageManager& storage() const { return storage_; }

  /// Sets the optimizer capability profile for subsequent queries.
  void SetProfile(SystemProfile profile) {
    optimizer_config_ = ConfigForProfile(profile);
  }
  void SetOptimizerConfig(OptimizerConfig config) {
    optimizer_config_ = std::move(config);
  }
  const OptimizerConfig& optimizer_config() const {
    return optimizer_config_;
  }

  /// Sets executor options (thread count, morsel size, limit early-exit)
  /// for subsequent queries. The worker pool is recreated lazily on the
  /// next query.
  void SetExecOptions(ExecOptions options) {
    exec_options_ = options;
    exec_pool_.reset();
  }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// Executes a DDL or query statement. For SELECT, returns the result
  /// chunk; for DDL, returns an empty chunk.
  Result<Chunk> Execute(const std::string& sql);

  /// Executes a SELECT and returns its result. Refreshes any stale
  /// dynamic cached views first (DCV semantics, §3).
  Result<Chunk> Query(const std::string& sql,
                      ExecMetrics* metrics = nullptr);

  /// Appends rows to a table (storage delta fragment).
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows);

  /// Binds a SELECT without optimizing (the raw inlined plan, Fig. 3).
  Result<PlanRef> BindQuery(const std::string& sql) const;
  /// Binds and optimizes under the current profile.
  Result<PlanRef> PlanQuery(const std::string& sql) const;
  /// Optimizes an already-bound plan under the current profile. When the
  /// config enables verify_rewrites (and no hook is installed already), a
  /// RewriteAuditor checks every rewrite; audit failures surface here.
  Result<PlanRef> OptimizePlan(const PlanRef& plan) const;
  /// Executes an arbitrary plan directly.
  Result<Chunk> ExecutePlan(const PlanRef& plan,
                            ExecMetrics* metrics = nullptr) const;

  /// Rendered optimized plan.
  Result<std::string> Explain(const std::string& sql) const;
  /// Rendered raw (bound, unoptimized) plan.
  Result<std::string> ExplainRaw(const std::string& sql) const;

  /// Registers a programmatically built view plan (VDM generator path).
  Status RegisterViewPlan(const std::string& name, PlanRef plan,
                          VdmLayer layer = VdmLayer::kPlain,
                          const std::string& dac_filter_sql = "");

  /// Cached views (paper §3): materializes the view's current result into
  /// a hidden table; subsequent queries read the snapshot. kStatic (SCV)
  /// snapshots are stale until RefreshMaterializedView; kDynamic (DCV)
  /// snapshots are refreshed automatically when a Query() observes that a
  /// base table changed. (The paper's DCV is incrementally maintained;
  /// refresh-on-read is the observably equivalent simplification.)
  Status MaterializeView(
      const std::string& name,
      ViewDef::CacheMode mode = ViewDef::CacheMode::kStatic);
  /// Recomputes the snapshot from current data.
  Status RefreshMaterializedView(const std::string& name);
  /// Returns the view to on-the-fly evaluation.
  Status DematerializeView(const std::string& name);
  /// Refreshes every stale dynamic cached view (called by Query()).
  Status EnsureFreshCaches();

  /// §7.3 tool: verifies a declared join-cardinality / unique-key claim
  /// against the actual data.
  Result<bool> VerifyDeclaredUnique(const std::string& table,
                                    const std::vector<std::string>& columns)
      const;

  /// Merges all delta fragments into main (dictionary-compressed) storage
  /// and refreshes table statistics.
  void MergeAllDeltas();

  /// Refreshes catalog row-count statistics from storage (the ANALYZE
  /// equivalent; feeds join ordering).
  void AnalyzeTables();

 private:
  Status BuildSnapshot(ViewDef view, bool replace_existing);

  Catalog catalog_;
  StorageManager storage_;
  OptimizerConfig optimizer_config_;
  ExecOptions exec_options_;
  // Shared worker pool, created on first parallel query and reused across
  // ExecutePlan calls (thread spawn cost amortizes over the session).
  mutable std::unique_ptr<ThreadPool> exec_pool_;
};

}  // namespace vdm

#endif  // VDMQO_ENGINE_DATABASE_H_
