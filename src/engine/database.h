// Database facade: catalog + storage + binder + optimizer + executor.
//
// This is the public entry point a downstream user works with:
//
//   vdm::Database db;
//   db.Execute("create table t (k int primary key, v varchar)");
//   db.Insert("t", {{Value::Int64(1), Value::String("x")}});
//   auto result = db.Query("select * from t");
//   std::cout << result->ToString();
//
// Query optimization runs under a configurable capability profile (see
// optimizer.h); Explain() shows the optimized plan, ExplainRaw() the plan
// as bound (all views inlined, nothing removed — the paper's Fig. 3 form).
#ifndef VDMQO_ENGINE_DATABASE_H_
#define VDMQO_ENGINE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/plan_cache.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "sql/parameterize.h"
#include "storage/table.h"
#include "txn/transaction.h"
#include "types/column.h"

namespace vdm {

/// Per-query time breakdown (nanoseconds). Populated by Query() when a
/// timing sink is passed; rendered by ExplainAnalyze() and the benchmark
/// JSON reports. On a plan-cache hit, parse/bind/optimize are zero and
/// rebind_ns carries the parameter-rebinding cost.
/// Per-query resource limits — the query lifecycle governor's contract.
/// Zero or negative fields disable that limit. Database's session defaults
/// come from the environment at construction: VDM_TIMEOUT_MS,
/// VDM_MEM_LIMIT_MB, and VDM_MAX_QUEUED_MS (per-call values override).
struct ExecLimits {
  /// Wall-clock execution deadline; exceeding it returns
  /// kDeadlineExceeded within one morsel.
  int64_t timeout_ms = 0;
  /// Bytes of tracked allocation (hash tables, probe buffers) this query
  /// may hold. Exceeding it triggers the degradation ladder: retry
  /// serially with tight hash tables, and only then kResourceExhausted.
  int64_t memory_budget = 0;
  /// Longest a query waits at the admission gate (VDM_MAX_CONCURRENT)
  /// before giving up with kResourceExhausted. Queueing, not rejection.
  int64_t max_queued_ms = 10000;
};

/// Session-level transaction counters (rendered by ExplainAnalyze and the
/// vdmsql `.analyze` output).
struct TxnStats {
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  /// kSerializationFailure conflicts observed (statement- or commit-time).
  uint64_t conflicts = 0;
  /// Auto-commit DML statements re-run after a conflict.
  uint64_t retries = 0;
  /// Background / explicit MVCC delta merges completed.
  uint64_t merges = 0;
};

/// A prepared statement (server EXECUTE-BOUND path): one SELECT's
/// parameterization, captured once at Prepare. Execution goes through the
/// parameterized plan cache with the caller's values, so DML-driven
/// invalidation transparently recompiles ("rebind across invalidation") —
/// the handle itself never goes stale. Immutable after Prepare; safe to
/// share across threads and sessions.
struct PreparedStatement {
  /// Original statement text (also the direct-mode execution form).
  std::string sql;
  /// Parameterized form; `parameterized.params` are the prepare-time
  /// literal values, used as defaults when EXECUTE passes none.
  ParameterizedStatement parameterized;
  /// False = not parameterizable (or limit-sentinel-ambiguous): EXECUTE
  /// re-runs the original text and accepts no parameter overrides.
  bool parameterized_ok = false;
};

struct QueryTiming {
  int64_t parameterize_ns = 0;
  int64_t parse_ns = 0;
  int64_t bind_ns = 0;
  int64_t optimize_ns = 0;
  int64_t rebind_ns = 0;
  int64_t execute_ns = 0;
  /// The plan-cache path was eligible for this statement.
  bool used_cache = false;
  bool cache_hit = false;
  int64_t compile_ns() const {
    return parameterize_ns + parse_ns + bind_ns + optimize_ns + rebind_ns;
  }
};

class Database {
 public:
  /// Default plan-cache capacity (entries) when enabled without an
  /// explicit size.
  static constexpr size_t kDefaultPlanCacheCapacity = 64;

  /// Honors VDM_PLAN_CACHE / VDM_PLAN_CACHE_CAPACITY environment knobs.
  Database();
  /// Stops the background merge worker and rolls back open transactions.
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StorageManager& storage() { return storage_; }
  const StorageManager& storage() const { return storage_; }

  /// Sets the optimizer capability profile for subsequent queries.
  /// Invalidates the plan cache.
  void SetProfile(SystemProfile profile);
  void SetOptimizerConfig(OptimizerConfig config);
  const OptimizerConfig& optimizer_config() const {
    return optimizer_config_;
  }

  /// Sets executor options (thread count, morsel size, limit early-exit)
  /// for subsequent queries. The worker pool is recreated lazily on the
  /// next query.
  void SetExecOptions(ExecOptions options) {
    std::lock_guard<std::mutex> lock(exec_pool_mu_);
    exec_options_ = options;
    exec_pool_.reset();
  }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// Executes a DDL, DML, or query statement. For SELECT, returns the
  /// result chunk; for DML, a one-row `rows_affected` chunk; for DDL, an
  /// empty chunk. DML auto-commits (with bounded retry on serialization
  /// failures — VDM_TXN_RETRIES); transaction control statements require
  /// ExecuteSession. The overload taking ExecLimits applies them to
  /// SELECTs (DDL and DML are not governed).
  Result<Chunk> Execute(const std::string& sql);
  Result<Chunk> Execute(const std::string& sql, const ExecLimits& limits);

  // --- transactions (DESIGN.md §15) ---
  /// Opens an explicit snapshot-isolation transaction. The handle stays
  /// valid until CommitTxn or RollbackTxn finishes it (Database teardown
  /// rolls back any still-open transaction).
  Transaction* BeginTxn();
  /// Commits. On a serialization failure (including the injected
  /// `txn.commit.conflict` fault) the transaction is rolled back before
  /// kSerializationFailure is returned, so the handle is consumed either
  /// way — never reuse it after CommitTxn returns.
  Status CommitTxn(Transaction* txn);
  /// Rolls back. Under the injected `txn.rollback` fault this returns the
  /// injected error with the transaction STILL OPEN — the call is
  /// retryable, and teardown cleans up if the caller gives up.
  Status RollbackTxn(Transaction* txn);

  /// Session-statement entry point: like Execute, but BEGIN / COMMIT /
  /// ROLLBACK manage `*session`, and while `*session` is non-null every
  /// SELECT reads the transaction's snapshot and every DML statement
  /// joins its write set (conflicts surface immediately — the caller owns
  /// retry; auto-commit retry applies only outside a transaction).
  Result<Chunk> ExecuteSession(const std::string& sql, Transaction** session);
  /// Server variant: explicit limits, an optional caller-owned governor
  /// context (cross-thread CANCEL; its memory tracker may charge into a
  /// tenant class), and an optional timing sink (the server's RESULT frame
  /// reports the plan-cache outcome).
  Result<Chunk> ExecuteSession(const std::string& sql, Transaction** session,
                               const ExecLimits& limits,
                               QueryContext* ctx = nullptr,
                               QueryTiming* timing = nullptr);

  // --- prepared statements (server EXECUTE-BOUND path) ---
  /// Parameterizes and trial-compiles one SELECT. Statements that cannot
  /// be parameterized still prepare (direct mode: EXECUTE re-runs the
  /// text); non-SELECT statements are rejected.
  Result<std::shared_ptr<const PreparedStatement>> Prepare(
      const std::string& sql);
  /// Executes a prepared statement with `params` (empty = prepare-time
  /// values; count and types must otherwise match). `limit` / `offset`
  /// < 0 keep the prepare-time values. Plans come from the parameterized
  /// plan cache when enabled (DML invalidation forces a recompile), or
  /// are recompiled from the stored token stream per call.
  Result<Chunk> ExecutePrepared(const PreparedStatement& stmt,
                                const std::vector<Value>& params,
                                int64_t limit, int64_t offset,
                                const ExecLimits& limits,
                                ExecMetrics* metrics = nullptr,
                                QueryTiming* timing = nullptr,
                                QueryContext* ctx = nullptr);

  TxnManager& txn_manager() { return txn_mgr_; }
  TxnStats txn_stats() const;

  /// Sets the delta-rows threshold at which a commit enqueues the written
  /// table for a background MVCC merge (0 disables; also settable via
  /// VDM_MERGE_THRESHOLD at construction). Starts the worker on demand.
  void SetMergeThreshold(size_t rows);
  /// Runs one MVCC delta-to-main merge of `table` synchronously at the
  /// current transaction watermark, then refreshes its statistics and data
  /// version. kResourceExhausted = concurrent writers or a racing version
  /// publish; retry later. Fault points: storage.merge.remap,
  /// storage.merge.abort.
  Status MergeTableMvcc(const std::string& table);

  /// Executes a SELECT and returns its result. Refreshes any stale
  /// dynamic cached views first (DCV semantics, §3). With the plan cache
  /// enabled, repeated statements that differ only in eligible literals
  /// (see sql/parameterize.h) skip parse + bind + optimize and only rebind
  /// values. `timing`, when given, receives the compile/execute breakdown.
  /// The first overload runs under the session default limits.
  Result<Chunk> Query(const std::string& sql, ExecMetrics* metrics = nullptr,
                      QueryTiming* timing = nullptr);
  /// Governed variant: `limits` set the deadline / memory budget /
  /// admission wait for this call. `ctx`, when given, is the caller-owned
  /// governor handle — RequestCancel() on it from any thread cancels the
  /// running query; it also carries the limits, so reusing one context
  /// across calls accumulates its counters.
  Result<Chunk> Query(const std::string& sql, const ExecLimits& limits,
                      ExecMetrics* metrics = nullptr,
                      QueryTiming* timing = nullptr,
                      QueryContext* ctx = nullptr);

  /// Session default limits (seeded from the environment; see ExecLimits).
  const ExecLimits& default_limits() const { return default_limits_; }
  void set_default_limits(const ExecLimits& limits) {
    default_limits_ = limits;
  }

  // --- plan cache (engine/plan_cache.h) ---
  /// Enables the parameterized plan cache for subsequent queries.
  void EnablePlanCache(size_t capacity = kDefaultPlanCacheCapacity);
  void DisablePlanCache();
  bool plan_cache_enabled() const { return plan_cache_enabled_; }
  PlanCacheStats plan_cache_stats() const { return plan_cache_->stats(); }
  void ResetPlanCacheStats() { plan_cache_->ResetStats(); }
  size_t plan_cache_size() const { return plan_cache_->size(); }

  /// Runs the query and renders its plan together with the compile/execute
  /// time split and the plan-cache outcome.
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Appends rows to a table (storage delta fragment).
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows);

  /// Binds a SELECT without optimizing (the raw inlined plan, Fig. 3).
  Result<PlanRef> BindQuery(const std::string& sql) const;
  /// Binds and optimizes under the current profile.
  Result<PlanRef> PlanQuery(const std::string& sql) const;
  /// Optimizes an already-bound plan under the current profile. When the
  /// config enables verify_rewrites (and no hook is installed already), a
  /// RewriteAuditor checks every rewrite; audit failures surface here.
  Result<PlanRef> OptimizePlan(const PlanRef& plan) const;
  /// Executes an arbitrary plan directly. `ctx`, when given, governs the
  /// run (cancellation, deadline, memory charging); there is no admission
  /// gate or degradation retry on this low-level path.
  Result<Chunk> ExecutePlan(const PlanRef& plan,
                            ExecMetrics* metrics = nullptr,
                            QueryContext* ctx = nullptr) const;

  /// Rendered optimized plan.
  Result<std::string> Explain(const std::string& sql) const;
  /// Rendered raw (bound, unoptimized) plan.
  Result<std::string> ExplainRaw(const std::string& sql) const;

  /// Registers a programmatically built view plan (VDM generator path).
  Status RegisterViewPlan(const std::string& name, PlanRef plan,
                          VdmLayer layer = VdmLayer::kPlain,
                          const std::string& dac_filter_sql = "");

  /// Cached views (paper §3): materializes the view's current result into
  /// a hidden table; subsequent queries read the snapshot. kStatic (SCV)
  /// snapshots are stale until RefreshMaterializedView; kDynamic (DCV)
  /// snapshots are refreshed automatically when a Query() observes that a
  /// base table changed. (The paper's DCV is incrementally maintained;
  /// refresh-on-read is the observably equivalent simplification.)
  Status MaterializeView(
      const std::string& name,
      ViewDef::CacheMode mode = ViewDef::CacheMode::kStatic);
  /// Recomputes the snapshot from current data.
  Status RefreshMaterializedView(const std::string& name);
  /// Returns the view to on-the-fly evaluation.
  Status DematerializeView(const std::string& name);
  /// Refreshes every stale dynamic cached view (called by Query()).
  Status EnsureFreshCaches();

  /// §7.3 tool: verifies a declared join-cardinality / unique-key claim
  /// against the actual data.
  Result<bool> VerifyDeclaredUnique(const std::string& table,
                                    const std::vector<std::string>& columns)
      const;

  /// Merges all delta fragments into main (dictionary-compressed) storage
  /// and refreshes table statistics.
  void MergeAllDeltas();

  /// Refreshes catalog table statistics from storage (the ANALYZE
  /// equivalent; feeds join ordering and cardinality estimation). Full
  /// per-column statistics by default; VDM_STATS=0 degrades to row counts
  /// only. Bumps the catalog version, invalidating cached plans.
  void AnalyzeTables();

 private:
  Status BuildSnapshot(ViewDef view, bool replace_existing);

  /// Shared statement dispatch behind Execute and ExecuteSession.
  /// `session` may be null (plain Execute): transaction control then
  /// fails and DML auto-commits.
  Result<Chunk> ExecuteStatement(const Statement& stmt, const std::string& sql,
                                 const ExecLimits& limits,
                                 Transaction** session,
                                 QueryContext* ctx = nullptr,
                                 QueryTiming* timing = nullptr);

  /// Auto-commit DML: begin, execute, commit; on kSerializationFailure
  /// roll back and retry up to txn_retries_ times with exponential
  /// backoff before surfacing the failure.
  Result<Chunk> ExecuteDmlAutoCommit(const Statement& stmt);

  /// Fault-free rollback primitive (internal cleanup paths; the
  /// fault-checked RollbackTxn wraps it).
  void FinishRollback(Transaction* txn);
  /// Post-commit bookkeeping for every written table: bump its data
  /// version, auto-analyze delta-heavy tables, enqueue background merges.
  void AfterCommit(const std::vector<Table*>& written);
  void EnqueueMerge(const std::string& table);
  void MergeWorkerLoop();
  /// Drops the handle from open_txns_ (destroying the Transaction).
  void ReleaseTxnHandle(Transaction* txn);
  /// Recollects one table's statistics under the current VDM_STATS mode
  /// (bumps its data version via SetTableStats).
  void RefreshTableStats(const std::string& name);

  /// The governed execution path shared by Query and ExplainAnalyze:
  /// admission gate, context setup from `limits`, parallel execution, and
  /// the serial degradation retry on kResourceExhausted.
  Result<Chunk> GovernedExecute(const PlanRef& plan, const ExecLimits& limits,
                                ExecMetrics* metrics, QueryContext* ctx) const;

  /// Recomputes the config fingerprint, clears the plan cache, and drops
  /// the hoisted optimizer. Called whenever optimizer_config_ changes.
  void OnOptimizerConfigChanged();

  /// Applies environment overrides (VDM_JOIN_REORDER) to the current
  /// profile-derived optimizer config. Called from the constructor and
  /// SetProfile — not from SetOptimizerConfig, which is taken verbatim.
  void ApplyEnvOverrides();

  /// True when this statement may use the plan cache at all (cache enabled
  /// and no per-query verification/fault-injection mode active).
  bool PlanCacheUsable() const;

  /// Produces an executable plan via the plan cache: parameterize, look
  /// up, rebind on hit; parse + bind + optimize + verify + insert on miss.
  /// Any failure along the parameterized path falls back to the plain
  /// compile pipeline (PlanQueryTimed).
  Result<PlanRef> PlanQueryCached(const std::string& sql,
                                  QueryTiming* timing);

  /// Plans a prepared statement with the given values: plan-cache lookup
  /// and rebind when usable, otherwise recompile from the stored token
  /// stream. Unlike PlanQueryCached there is no original-text fallback —
  /// the text carries prepare-time literals, not `params`.
  Result<PlanRef> PlanPrepared(const PreparedStatement& stmt,
                               const std::vector<Value>& params,
                               int64_t limit, int64_t offset,
                               QueryTiming* timing);

  /// Uncached compile pipeline with the same timing breakdown.
  Result<PlanRef> PlanQueryTimed(const std::string& sql,
                                 QueryTiming* timing) const;

  Catalog catalog_;
  StorageManager storage_;
  OptimizerConfig optimizer_config_;
  ExecOptions exec_options_;
  // Shared worker pool, created on first parallel query and reused across
  // ExecutePlan calls (thread spawn cost amortizes over the session).
  // Creation is guarded by exec_pool_mu_ — concurrent server sessions hit
  // the first parallel query at the same time; use of the built pool is
  // lock-free (ParallelFor serializes internally, extra callers inline).
  mutable std::mutex exec_pool_mu_;
  mutable std::unique_ptr<ThreadPool> exec_pool_;
  // Hoisted optimizer for the common non-verifying path: constructed once
  // per config change instead of per query (the config copy is large
  // enough to show up on short compile paths). Lazily built because
  // OptimizePlan is const. optimizer_mu_ covers creation AND the
  // OptimizeChecked call (the instance keeps per-run state); compiles are
  // rare once the plan cache is warm, so serializing them is cheap.
  mutable std::mutex optimizer_mu_;
  mutable std::unique_ptr<Optimizer> optimizer_;
  // Serializes dynamic-cached-view freshness checks/refreshes across
  // concurrent sessions (a refresh rewrites catalog + storage state).
  mutable std::mutex caches_mu_;
  std::unique_ptr<PlanCache> plan_cache_;
  bool plan_cache_enabled_ = false;
  // Full per-column statistics collection in AnalyzeTables (VDM_STATS;
  // off = row counts only, the pre-§14 behavior).
  bool stats_enabled_ = true;
  uint64_t config_fingerprint_ = 0;
  // Governor state. The admission gate (VDM_MAX_CONCURRENT; 0 = open)
  // bounds concurrent GovernedExecute calls; excess queries queue up to
  // ExecLimits::max_queued_ms, then fail kResourceExhausted.
  ExecLimits default_limits_;
  size_t max_concurrent_ = 0;
  mutable std::mutex admit_mu_;
  mutable std::condition_variable admit_cv_;
  mutable size_t running_queries_ = 0;  // guarded by admit_mu_

  // --- transactions & background merge (§15) ---
  // txn_mgr_ must outlive open_txns_ (handle destructors roll back into
  // it) — declared first so it is destroyed last.
  TxnManager txn_mgr_;
  std::mutex txns_mu_;
  std::map<Transaction*, std::unique_ptr<Transaction>> open_txns_;
  int txn_retries_ = 5;  // VDM_TXN_RETRIES
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> rollbacks_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> txn_retries_used_{0};
  std::atomic<uint64_t> merges_done_{0};
  // Background merge worker: commits enqueue tables whose delta crossed
  // merge_threshold_; the worker merges at the transaction watermark and
  // retries kResourceExhausted with backoff. Joined in the destructor.
  std::mutex merge_mu_;
  std::condition_variable merge_cv_;
  std::deque<std::string> merge_queue_;  // guarded by merge_mu_
  bool merge_stop_ = false;              // guarded by merge_mu_
  size_t merge_threshold_ = 0;           // guarded by merge_mu_
  std::thread merge_thread_;
};

}  // namespace vdm

#endif  // VDMQO_ENGINE_DATABASE_H_
