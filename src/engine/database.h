// Database facade: catalog + storage + binder + optimizer + executor.
//
// This is the public entry point a downstream user works with:
//
//   vdm::Database db;
//   db.Execute("create table t (k int primary key, v varchar)");
//   db.Insert("t", {{Value::Int64(1), Value::String("x")}});
//   auto result = db.Query("select * from t");
//   std::cout << result->ToString();
//
// Query optimization runs under a configurable capability profile (see
// optimizer.h); Explain() shows the optimized plan, ExplainRaw() the plan
// as bound (all views inlined, nothing removed — the paper's Fig. 3 form).
#ifndef VDMQO_ENGINE_DATABASE_H_
#define VDMQO_ENGINE_DATABASE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/plan_cache.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "storage/table.h"
#include "types/column.h"

namespace vdm {

/// Per-query time breakdown (nanoseconds). Populated by Query() when a
/// timing sink is passed; rendered by ExplainAnalyze() and the benchmark
/// JSON reports. On a plan-cache hit, parse/bind/optimize are zero and
/// rebind_ns carries the parameter-rebinding cost.
/// Per-query resource limits — the query lifecycle governor's contract.
/// Zero or negative fields disable that limit. Database's session defaults
/// come from the environment at construction: VDM_TIMEOUT_MS,
/// VDM_MEM_LIMIT_MB, and VDM_MAX_QUEUED_MS (per-call values override).
struct ExecLimits {
  /// Wall-clock execution deadline; exceeding it returns
  /// kDeadlineExceeded within one morsel.
  int64_t timeout_ms = 0;
  /// Bytes of tracked allocation (hash tables, probe buffers) this query
  /// may hold. Exceeding it triggers the degradation ladder: retry
  /// serially with tight hash tables, and only then kResourceExhausted.
  int64_t memory_budget = 0;
  /// Longest a query waits at the admission gate (VDM_MAX_CONCURRENT)
  /// before giving up with kResourceExhausted. Queueing, not rejection.
  int64_t max_queued_ms = 10000;
};

struct QueryTiming {
  int64_t parameterize_ns = 0;
  int64_t parse_ns = 0;
  int64_t bind_ns = 0;
  int64_t optimize_ns = 0;
  int64_t rebind_ns = 0;
  int64_t execute_ns = 0;
  /// The plan-cache path was eligible for this statement.
  bool used_cache = false;
  bool cache_hit = false;
  int64_t compile_ns() const {
    return parameterize_ns + parse_ns + bind_ns + optimize_ns + rebind_ns;
  }
};

class Database {
 public:
  /// Default plan-cache capacity (entries) when enabled without an
  /// explicit size.
  static constexpr size_t kDefaultPlanCacheCapacity = 64;

  /// Honors VDM_PLAN_CACHE / VDM_PLAN_CACHE_CAPACITY environment knobs.
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StorageManager& storage() { return storage_; }
  const StorageManager& storage() const { return storage_; }

  /// Sets the optimizer capability profile for subsequent queries.
  /// Invalidates the plan cache.
  void SetProfile(SystemProfile profile);
  void SetOptimizerConfig(OptimizerConfig config);
  const OptimizerConfig& optimizer_config() const {
    return optimizer_config_;
  }

  /// Sets executor options (thread count, morsel size, limit early-exit)
  /// for subsequent queries. The worker pool is recreated lazily on the
  /// next query.
  void SetExecOptions(ExecOptions options) {
    exec_options_ = options;
    exec_pool_.reset();
  }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// Executes a DDL or query statement. For SELECT, returns the result
  /// chunk; for DDL, returns an empty chunk. The overload taking
  /// ExecLimits applies them to SELECTs (DDL is not governed).
  Result<Chunk> Execute(const std::string& sql);
  Result<Chunk> Execute(const std::string& sql, const ExecLimits& limits);

  /// Executes a SELECT and returns its result. Refreshes any stale
  /// dynamic cached views first (DCV semantics, §3). With the plan cache
  /// enabled, repeated statements that differ only in eligible literals
  /// (see sql/parameterize.h) skip parse + bind + optimize and only rebind
  /// values. `timing`, when given, receives the compile/execute breakdown.
  /// The first overload runs under the session default limits.
  Result<Chunk> Query(const std::string& sql, ExecMetrics* metrics = nullptr,
                      QueryTiming* timing = nullptr);
  /// Governed variant: `limits` set the deadline / memory budget /
  /// admission wait for this call. `ctx`, when given, is the caller-owned
  /// governor handle — RequestCancel() on it from any thread cancels the
  /// running query; it also carries the limits, so reusing one context
  /// across calls accumulates its counters.
  Result<Chunk> Query(const std::string& sql, const ExecLimits& limits,
                      ExecMetrics* metrics = nullptr,
                      QueryTiming* timing = nullptr,
                      QueryContext* ctx = nullptr);

  /// Session default limits (seeded from the environment; see ExecLimits).
  const ExecLimits& default_limits() const { return default_limits_; }
  void set_default_limits(const ExecLimits& limits) {
    default_limits_ = limits;
  }

  // --- plan cache (engine/plan_cache.h) ---
  /// Enables the parameterized plan cache for subsequent queries.
  void EnablePlanCache(size_t capacity = kDefaultPlanCacheCapacity);
  void DisablePlanCache();
  bool plan_cache_enabled() const { return plan_cache_enabled_; }
  PlanCacheStats plan_cache_stats() const { return plan_cache_->stats(); }
  void ResetPlanCacheStats() { plan_cache_->ResetStats(); }
  size_t plan_cache_size() const { return plan_cache_->size(); }

  /// Runs the query and renders its plan together with the compile/execute
  /// time split and the plan-cache outcome.
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Appends rows to a table (storage delta fragment).
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows);

  /// Binds a SELECT without optimizing (the raw inlined plan, Fig. 3).
  Result<PlanRef> BindQuery(const std::string& sql) const;
  /// Binds and optimizes under the current profile.
  Result<PlanRef> PlanQuery(const std::string& sql) const;
  /// Optimizes an already-bound plan under the current profile. When the
  /// config enables verify_rewrites (and no hook is installed already), a
  /// RewriteAuditor checks every rewrite; audit failures surface here.
  Result<PlanRef> OptimizePlan(const PlanRef& plan) const;
  /// Executes an arbitrary plan directly. `ctx`, when given, governs the
  /// run (cancellation, deadline, memory charging); there is no admission
  /// gate or degradation retry on this low-level path.
  Result<Chunk> ExecutePlan(const PlanRef& plan,
                            ExecMetrics* metrics = nullptr,
                            QueryContext* ctx = nullptr) const;

  /// Rendered optimized plan.
  Result<std::string> Explain(const std::string& sql) const;
  /// Rendered raw (bound, unoptimized) plan.
  Result<std::string> ExplainRaw(const std::string& sql) const;

  /// Registers a programmatically built view plan (VDM generator path).
  Status RegisterViewPlan(const std::string& name, PlanRef plan,
                          VdmLayer layer = VdmLayer::kPlain,
                          const std::string& dac_filter_sql = "");

  /// Cached views (paper §3): materializes the view's current result into
  /// a hidden table; subsequent queries read the snapshot. kStatic (SCV)
  /// snapshots are stale until RefreshMaterializedView; kDynamic (DCV)
  /// snapshots are refreshed automatically when a Query() observes that a
  /// base table changed. (The paper's DCV is incrementally maintained;
  /// refresh-on-read is the observably equivalent simplification.)
  Status MaterializeView(
      const std::string& name,
      ViewDef::CacheMode mode = ViewDef::CacheMode::kStatic);
  /// Recomputes the snapshot from current data.
  Status RefreshMaterializedView(const std::string& name);
  /// Returns the view to on-the-fly evaluation.
  Status DematerializeView(const std::string& name);
  /// Refreshes every stale dynamic cached view (called by Query()).
  Status EnsureFreshCaches();

  /// §7.3 tool: verifies a declared join-cardinality / unique-key claim
  /// against the actual data.
  Result<bool> VerifyDeclaredUnique(const std::string& table,
                                    const std::vector<std::string>& columns)
      const;

  /// Merges all delta fragments into main (dictionary-compressed) storage
  /// and refreshes table statistics.
  void MergeAllDeltas();

  /// Refreshes catalog table statistics from storage (the ANALYZE
  /// equivalent; feeds join ordering and cardinality estimation). Full
  /// per-column statistics by default; VDM_STATS=0 degrades to row counts
  /// only. Bumps the catalog version, invalidating cached plans.
  void AnalyzeTables();

 private:
  Status BuildSnapshot(ViewDef view, bool replace_existing);

  /// The governed execution path shared by Query and ExplainAnalyze:
  /// admission gate, context setup from `limits`, parallel execution, and
  /// the serial degradation retry on kResourceExhausted.
  Result<Chunk> GovernedExecute(const PlanRef& plan, const ExecLimits& limits,
                                ExecMetrics* metrics, QueryContext* ctx) const;

  /// Recomputes the config fingerprint, clears the plan cache, and drops
  /// the hoisted optimizer. Called whenever optimizer_config_ changes.
  void OnOptimizerConfigChanged();

  /// Applies environment overrides (VDM_JOIN_REORDER) to the current
  /// profile-derived optimizer config. Called from the constructor and
  /// SetProfile — not from SetOptimizerConfig, which is taken verbatim.
  void ApplyEnvOverrides();

  /// True when this statement may use the plan cache at all (cache enabled
  /// and no per-query verification/fault-injection mode active).
  bool PlanCacheUsable() const;

  /// Produces an executable plan via the plan cache: parameterize, look
  /// up, rebind on hit; parse + bind + optimize + verify + insert on miss.
  /// Any failure along the parameterized path falls back to the plain
  /// compile pipeline (PlanQueryTimed).
  Result<PlanRef> PlanQueryCached(const std::string& sql,
                                  QueryTiming* timing);

  /// Uncached compile pipeline with the same timing breakdown.
  Result<PlanRef> PlanQueryTimed(const std::string& sql,
                                 QueryTiming* timing) const;

  Catalog catalog_;
  StorageManager storage_;
  OptimizerConfig optimizer_config_;
  ExecOptions exec_options_;
  // Shared worker pool, created on first parallel query and reused across
  // ExecutePlan calls (thread spawn cost amortizes over the session).
  mutable std::unique_ptr<ThreadPool> exec_pool_;
  // Hoisted optimizer for the common non-verifying path: constructed once
  // per config change instead of per query (the config copy is large
  // enough to show up on short compile paths). Lazily built because
  // OptimizePlan is const.
  mutable std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<PlanCache> plan_cache_;
  bool plan_cache_enabled_ = false;
  // Full per-column statistics collection in AnalyzeTables (VDM_STATS;
  // off = row counts only, the pre-§14 behavior).
  bool stats_enabled_ = true;
  uint64_t config_fingerprint_ = 0;
  // Governor state. The admission gate (VDM_MAX_CONCURRENT; 0 = open)
  // bounds concurrent GovernedExecute calls; excess queries queue up to
  // ExecLimits::max_queued_ms, then fail kResourceExhausted.
  ExecLimits default_limits_;
  size_t max_concurrent_ = 0;
  mutable std::mutex admit_mu_;
  mutable std::condition_variable admit_cv_;
  mutable size_t running_queries_ = 0;  // guarded by admit_mu_
};

}  // namespace vdm

#endif  // VDMQO_ENGINE_DATABASE_H_
