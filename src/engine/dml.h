// DML statement execution (INSERT / UPDATE / DELETE) over the MVCC delta
// store (DESIGN.md §15). Expression evaluation stays up here: storage only
// sees a MutationFn that maps the statement-visible rows to a selection
// plus replacement rows, so find-and-stamp is atomic under the table lock
// while WHERE / SET evaluation reuses the engine's vectorized EvalExpr.
#ifndef VDMQO_ENGINE_DML_H_
#define VDMQO_ENGINE_DML_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"
#include "storage/table.h"
#include "txn/transaction.h"

namespace vdm {

/// Executes one INSERT / UPDATE / DELETE statement inside `txn`,
/// registering every stamped or appended row in the transaction's write
/// set. Returns the number of affected rows. kSerializationFailure means a
/// first-updater-wins conflict with a concurrent transaction; the
/// statement left no partial effects, and the caller decides whether to
/// roll back the whole transaction and retry.
Result<size_t> ExecuteDmlStatement(const Statement& stmt,
                                   const Catalog& catalog,
                                   StorageManager* storage, Transaction* txn);

/// Rescales decimals to the column's declared scale (the rule every DML
/// value path applies before storing). Exposed so the DML differential
/// shadow (testing/dml_differential.cc) mirrors the engine exactly.
Value CoerceToColumnType(Value value, const DataType& type);

}  // namespace vdm

#endif  // VDMQO_ENGINE_DML_H_
