// Parameterized plan cache (paper §8 "compile-time matters for VDM").
//
// Enterprise VDM statements are machine-generated and highly repetitive;
// with deep view stacks the parse + bind (view inlining) + optimize path
// dominates short transactional queries. The cache stores fully optimized
// plans keyed on the parameterized statement text (sql/parameterize.h)
// plus an optimizer-config fingerprint and the catalog version, so a hit
// skips compilation entirely and only rebinds parameter values.
//
// Cached plans contain ParamExpr slots where literals were lifted and
// sentinel LIMIT/OFFSET values (kLimitSentinel / kOffsetSentinel) where
// the real paging window goes. BindCachedPlan substitutes both and then
// re-derives JoinOp::limit_hint so the executor's early-exit budgets match
// the real window, not the sentinel.
//
// Invalidation is structural: the catalog version is part of the key, so
// any DDL or stats refresh makes every old entry unreachable; profile and
// optimizer-config changes additionally clear the cache outright.
#ifndef VDMQO_ENGINE_PLAN_CACHE_H_
#define VDMQO_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "optimizer/optimizer.h"
#include "plan/logical_plan.h"
#include "types/value.h"

namespace vdm {

/// One cached, optimized, verified plan. Immutable after insertion; shared
/// by concurrent readers.
struct CachedPlan {
  PlanRef plan;
  std::vector<DataType> param_types;
  bool has_limit = false;
  bool has_offset = false;
  /// Data version of every base table the bound plan scans, recorded at
  /// compile time. A hit is only served while all of them still match:
  /// DML or a delta merge bumps the written table's data version, so
  /// plans over *other* tables stay warm (the schema version in the key
  /// only covers DDL).
  std::vector<std::pair<std::string, uint64_t>> table_data_versions;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

/// Bounded, thread-safe LRU map from cache-key text to CachedPlan.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry (moving it to most-recently-used) or nullptr.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key);

  /// Inserts (or replaces) the entry, evicting the least recently used
  /// entry when over capacity.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  /// Drops one entry whose recorded table data versions no longer match
  /// (counted as an invalidation, not an eviction). No-op when absent.
  void Invalidate(const std::string& key);

  /// Drops every entry (profile / optimizer-config change).
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;
  void ResetStats();

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CachedPlan>>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

/// Stable hash of every plan-shaping OptimizerConfig field. Pointer-valued
/// fields (stats_catalog, verification_hook) are excluded: statistics are
/// covered by the catalog version in the cache key, and hooks do not change
/// the produced plan.
uint64_t FingerprintConfig(const OptimizerConfig& config);

/// Composes the full cache key for a parameterized statement.
std::string ComposePlanCacheKey(const std::string& normalized_sql,
                                uint64_t config_fingerprint,
                                uint64_t catalog_version);

/// Insert-time safety check on the *bound* (pre-optimization) plan: the
/// sentinel limit values must appear in exactly the one LimitOp the
/// parameterizer introduced — a view-inlined LIMIT whose limit, offset, or
/// limit+offset collides with a sentinel combination would make hit-time
/// rebinding ambiguous, so such statements are not cached.
bool LimitSentinelsUnambiguous(const PlanRef& bound_plan, bool has_limit,
                               bool has_offset);

/// Rebinds a cached plan to concrete values: replaces every ParamExpr slot
/// with a literal, rewrites sentinel LimitOps to the real (limit, offset)
/// window, clears stale JoinOp::limit_hint annotations and re-derives them.
/// Fails (caller falls back to uncached compilation) on any slot/sentinel
/// mismatch.
Result<PlanRef> BindCachedPlan(const CachedPlan& cached,
                               const std::vector<Value>& params,
                               int64_t limit, int64_t offset);

}  // namespace vdm

#endif  // VDMQO_ENGINE_PLAN_CACHE_H_
