#include "engine/plan_cache.h"

#include "sql/parameterize.h"

namespace vdm {

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += lru_.size();
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PlanCacheStats{};
}

uint64_t FingerprintConfig(const OptimizerConfig& config) {
  uint64_t bits = 0;
  auto push = [&bits](bool b) { bits = (bits << 1) | (b ? 1u : 0u); };
  push(config.constant_folding);
  push(config.filter_pushdown);
  push(config.projection_pruning);
  push(config.uaj_elimination);
  push(config.derivation.base_table_keys);
  push(config.derivation.groupby_keys);
  push(config.derivation.const_pinning);
  push(config.derivation.keys_through_joins);
  push(config.derivation.keys_through_order_limit);
  push(config.derivation.keys_through_union_all);
  push(config.derivation.trust_declared_cardinality);
  push(config.limit_pushdown_over_aj);
  push(config.asj_elimination);
  push(config.asj_union_all_anchor);
  push(config.case_join);
  push(config.agg_pushdown);
  push(config.allow_precision_loss_rewrites);
  push(config.join_reordering);
  push(config.distinct_elimination);
  push(config.verify_rewrites);
  push(config.verify_rewrites_exec);
  push(config.debug_corrupt_pass != nullptr);
  uint64_t h = HashCombine(0x56444d504c414e43ULL, bits);
  h = HashCombine(h, static_cast<uint64_t>(config.max_passes));
  return h;
}

std::string ComposePlanCacheKey(const std::string& normalized_sql,
                                uint64_t config_fingerprint,
                                uint64_t catalog_version) {
  std::string key = normalized_sql;
  key += "|cfg:";
  key += std::to_string(config_fingerprint);
  key += "|cat:";
  key += std::to_string(catalog_version);
  return key;
}

namespace {

bool IsSentinelValue(int64_t v) {
  return v == kLimitSentinel || v == kOffsetSentinel ||
         v == kLimitSentinel + kOffsetSentinel;
}

bool TouchesSentinels(const LimitOp& op) {
  return IsSentinelValue(op.limit()) || IsSentinelValue(op.offset()) ||
         IsSentinelValue(op.limit() + op.offset());
}

}  // namespace

bool LimitSentinelsUnambiguous(const PlanRef& bound_plan, bool has_limit,
                               bool has_offset) {
  int sentinel_limits = 0;
  bool top_shape_ok = false;
  VisitPlan(bound_plan, [&](const PlanRef& node) {
    if (node->kind() != OpKind::kLimit) return;
    const auto& op = static_cast<const LimitOp&>(*node);
    if (!TouchesSentinels(op)) return;
    ++sentinel_limits;
    top_shape_ok = op.limit() == kLimitSentinel &&
                   op.offset() == (has_offset ? kOffsetSentinel : 0);
  });
  if (!has_limit) return sentinel_limits == 0;
  return sentinel_limits == 1 && top_shape_ok;
}

Result<PlanRef> BindCachedPlan(const CachedPlan& cached,
                               const std::vector<Value>& params,
                               int64_t limit, int64_t offset) {
  if (params.size() != cached.param_types.size()) {
    return Status::ExecutionError("plan cache: parameter count mismatch");
  }
  Status error = Status::OK();
  auto subst = [&](const ExprRef& e) -> ExprRef {
    return TransformExpr(e, [&](const ExprRef& node) -> ExprRef {
      if (node->kind() != ExprKind::kParam) return nullptr;
      const auto& p = static_cast<const ParamExpr&>(*node);
      if (p.slot() < 0 || static_cast<size_t>(p.slot()) >= params.size()) {
        error = Status::ExecutionError("plan cache: parameter slot " +
                                       std::to_string(p.slot()) +
                                       " out of range");
        return nullptr;
      }
      return std::make_shared<LiteralExpr>(params[p.slot()]);
    });
  };

  bool joins_touched = false;
  PlanRef bound = TransformPlan(cached.plan, [&](const PlanRef& node) -> PlanRef {
    switch (node->kind()) {
      case OpKind::kFilter: {
        const auto& op = static_cast<const FilterOp&>(*node);
        ExprRef pred = subst(op.predicate());
        if (pred == op.predicate()) return nullptr;
        return std::make_shared<FilterOp>(op.child(0), std::move(pred));
      }
      case OpKind::kProject: {
        const auto& op = static_cast<const ProjectOp&>(*node);
        std::vector<ProjectOp::Item> items = op.items();
        bool any = false;
        for (ProjectOp::Item& item : items) {
          ExprRef e = subst(item.expr);
          any |= (e != item.expr);
          item.expr = std::move(e);
        }
        if (!any) return nullptr;
        return std::make_shared<ProjectOp>(op.child(0), std::move(items));
      }
      case OpKind::kJoin: {
        const auto& op = static_cast<const JoinOp&>(*node);
        ExprRef cond = subst(op.condition());
        if (cond == op.condition() && op.limit_hint() < 0) return nullptr;
        joins_touched = true;
        // Fresh construction drops the (possibly sentinel-derived)
        // limit_hint; all hints are re-derived below.
        return std::make_shared<JoinOp>(op.left(), op.right(), op.join_type(),
                                        std::move(cond),
                                        op.declared_cardinality(),
                                        op.is_case_join());
      }
      case OpKind::kAggregate: {
        const auto& op = static_cast<const AggregateOp&>(*node);
        std::vector<AggregateOp::GroupItem> groups = op.group_by();
        std::vector<AggregateOp::AggItem> aggs = op.aggregates();
        bool any = false;
        for (auto& g : groups) {
          ExprRef e = subst(g.expr);
          any |= (e != g.expr);
          g.expr = std::move(e);
        }
        for (auto& a : aggs) {
          ExprRef e = subst(a.expr);
          any |= (e != a.expr);
          a.expr = std::move(e);
        }
        if (!any) return nullptr;
        return std::make_shared<AggregateOp>(op.child(0), std::move(groups),
                                             std::move(aggs));
      }
      case OpKind::kSort: {
        const auto& op = static_cast<const SortOp&>(*node);
        std::vector<SortOp::SortKey> keys = op.keys();
        bool any = false;
        for (auto& k : keys) {
          ExprRef e = subst(k.expr);
          any |= (e != k.expr);
          k.expr = std::move(e);
        }
        if (!any) return nullptr;
        return std::make_shared<SortOp>(op.child(0), std::move(keys));
      }
      case OpKind::kLimit: {
        const auto& op = static_cast<const LimitOp&>(*node);
        if (!TouchesSentinels(op)) return nullptr;
        // The three shapes a sentinel LIMIT can take after optimization
        // (SinkLimit keeps the node, sinks it whole, or splits it into
        // (limit+offset, 0) union-branch budgets + the original on top).
        if (op.limit() == kLimitSentinel && op.offset() == kOffsetSentinel) {
          return std::make_shared<LimitOp>(op.child(0), limit, offset);
        }
        if (op.limit() == kLimitSentinel && op.offset() == 0) {
          return std::make_shared<LimitOp>(op.child(0), limit, 0);
        }
        if (op.limit() == kLimitSentinel + kOffsetSentinel &&
            op.offset() == 0) {
          return std::make_shared<LimitOp>(op.child(0), limit + offset, 0);
        }
        error = Status::ExecutionError(
            "plan cache: unrecognized sentinel limit shape " +
            std::to_string(op.limit()) + "/" + std::to_string(op.offset()));
        return nullptr;
      }
      default:
        return nullptr;
    }
  });
  VDM_RETURN_NOT_OK(error);
  if (cached.has_limit || joins_touched) {
    bound = AnnotateJoinLimitHints(bound);
  }
  return bound;
}

}  // namespace vdm
