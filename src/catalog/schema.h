// Table schemas: column definitions, primary keys, unique constraints,
// foreign keys, and declared join-cardinality metadata.
//
// Note the paper's §4.5 / §7.3 observations: SAP applications avoid foreign
// key and uniqueness constraints, relying on declared (unenforced) join
// cardinalities instead. The catalog therefore distinguishes *enforced*
// constraints from *declared* ones; the optimizer trusts both, and the
// CardinalityVerifier tool (engine/) validates declared ones against data.
#ifndef VDMQO_CATALOG_SCHEMA_H_
#define VDMQO_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/type.h"

namespace vdm {

struct ColumnDef {
  std::string name;
  DataType type;
  bool nullable = true;

  ColumnDef() = default;
  ColumnDef(std::string column_name, DataType column_type,
            bool is_nullable = true)
      : name(std::move(column_name)),
        type(column_type),
        nullable(is_nullable) {}
};

/// A uniqueness declaration over one or more columns.
struct UniqueKeyDef {
  std::vector<std::string> columns;
  bool is_primary = false;
  /// Enforced keys are validated on insert; declared keys are trusted
  /// (paper §7.3: cardinality specifications without index overhead).
  bool enforced = true;
};

struct ForeignKeyDef {
  std::vector<std::string> columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;
};

class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  TableSchema& AddColumn(std::string column_name, DataType type,
                         bool nullable = true) {
    columns_.emplace_back(std::move(column_name), type, nullable);
    return *this;
  }
  /// Declares the primary key (unique + not null, enforced).
  TableSchema& SetPrimaryKey(std::vector<std::string> columns);
  /// Declares an enforced unique constraint.
  TableSchema& AddUniqueKey(std::vector<std::string> columns);
  /// Declares a trusted-but-unenforced unique key (paper §7.3).
  TableSchema& AddDeclaredUniqueKey(std::vector<std::string> columns);
  TableSchema& AddForeignKey(std::vector<std::string> columns,
                             std::string referenced_table,
                             std::vector<std::string> referenced_columns);

  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<UniqueKeyDef>& unique_keys() const { return unique_keys_; }
  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  size_t NumColumns() const { return columns_.size(); }
  /// Column index by (case-insensitive) name, or -1.
  int FindColumn(const std::string& column_name) const;
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// The primary key columns, or empty if none declared.
  std::vector<std::string> PrimaryKey() const;

  /// Validates internal consistency (key columns exist, etc.).
  Status Validate() const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<UniqueKeyDef> unique_keys_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

}  // namespace vdm

#endif  // VDMQO_CATALOG_SCHEMA_H_
