#include "catalog/schema.h"

#include "common/string_util.h"

namespace vdm {

TableSchema& TableSchema::SetPrimaryKey(std::vector<std::string> columns) {
  UniqueKeyDef key;
  key.columns = std::move(columns);
  key.is_primary = true;
  key.enforced = true;
  // Primary key columns are implicitly NOT NULL.
  for (const std::string& kc : key.columns) {
    int idx = FindColumn(kc);
    if (idx >= 0) columns_[static_cast<size_t>(idx)].nullable = false;
  }
  unique_keys_.insert(unique_keys_.begin(), std::move(key));
  return *this;
}

TableSchema& TableSchema::AddUniqueKey(std::vector<std::string> columns) {
  UniqueKeyDef key;
  key.columns = std::move(columns);
  unique_keys_.push_back(std::move(key));
  return *this;
}

TableSchema& TableSchema::AddDeclaredUniqueKey(
    std::vector<std::string> columns) {
  UniqueKeyDef key;
  key.columns = std::move(columns);
  key.enforced = false;
  unique_keys_.push_back(std::move(key));
  return *this;
}

TableSchema& TableSchema::AddForeignKey(
    std::vector<std::string> columns, std::string referenced_table,
    std::vector<std::string> referenced_columns) {
  ForeignKeyDef fk;
  fk.columns = std::move(columns);
  fk.referenced_table = std::move(referenced_table);
  fk.referenced_columns = std::move(referenced_columns);
  foreign_keys_.push_back(std::move(fk));
  return *this;
}

int TableSchema::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<std::string> TableSchema::PrimaryKey() const {
  for (const UniqueKeyDef& key : unique_keys_) {
    if (key.is_primary) return key.columns;
  }
  return {};
}

Status TableSchema::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("table has no name");
  if (columns_.empty()) {
    return Status::InvalidArgument("table " + name_ + " has no columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (EqualsIgnoreCase(columns_[i].name, columns_[j].name)) {
        return Status::InvalidArgument("duplicate column " + columns_[i].name +
                                       " in table " + name_);
      }
    }
  }
  for (const UniqueKeyDef& key : unique_keys_) {
    if (key.columns.empty()) {
      return Status::InvalidArgument("empty unique key in table " + name_);
    }
    for (const std::string& kc : key.columns) {
      if (FindColumn(kc) < 0) {
        return Status::InvalidArgument("unique key column " + kc +
                                       " not in table " + name_);
      }
    }
  }
  for (const ForeignKeyDef& fk : foreign_keys_) {
    if (fk.columns.size() != fk.referenced_columns.size()) {
      return Status::InvalidArgument("foreign key arity mismatch in table " +
                                     name_);
    }
    for (const std::string& kc : fk.columns) {
      if (FindColumn(kc) < 0) {
        return Status::InvalidArgument("foreign key column " + kc +
                                       " not in table " + name_);
      }
    }
  }
  return Status::OK();
}

}  // namespace vdm
