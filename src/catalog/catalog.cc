#include "catalog/catalog.h"

#include "common/string_util.h"

namespace vdm {

const ExpressionMacro* ViewDef::FindMacro(const std::string& macro_name) const {
  for (const ExpressionMacro& m : macros) {
    if (EqualsIgnoreCase(m.name, macro_name)) return &m;
  }
  return nullptr;
}

std::string Catalog::ToLowerKey(const std::string& name) {
  return ToLower(name);
}

const AssociationDef* ViewDef::FindAssociation(
    const std::string& assoc_name) const {
  for (const AssociationDef& assoc : associations) {
    if (EqualsIgnoreCase(assoc.name, assoc_name)) return &assoc;
  }
  return nullptr;
}

Status Catalog::RegisterTable(TableSchema schema) {
  VDM_RETURN_NOT_OK(schema.Validate());
  std::string key = ToLower(schema.name());
  if (Exists(key)) {
    return Status::AlreadyExists("object already exists: " + schema.name());
  }
  tables_.emplace(std::move(key), std::move(schema));
  ++version_;
  return Status::OK();
}

Status Catalog::RegisterView(ViewDef view) {
  if (view.name.empty()) return Status::InvalidArgument("view has no name");
  std::string key = ToLower(view.name);
  if (Exists(key)) {
    return Status::AlreadyExists("object already exists: " + view.name);
  }
  views_.emplace(std::move(key), std::move(view));
  ++version_;
  return Status::OK();
}

Status Catalog::ReplaceView(ViewDef view) {
  if (view.name.empty()) return Status::InvalidArgument("view has no name");
  std::string key = ToLower(view.name);
  if (tables_.count(key) > 0) {
    return Status::InvalidArgument("cannot replace table with view: " +
                                   view.name);
  }
  views_[std::move(key)] = std::move(view);
  ++version_;
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  std::string key = ToLower(name);
  if (views_.erase(key) == 0) {
    return Status::NotFound("view not found: " + name);
  }
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.erase(ToLower(name));
    data_versions_.erase(ToLower(name));
  }
  ++version_;
  return Status::OK();
}

const TableSchema* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

const ViewDef* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, schema] : tables_) out.push_back(schema.name());
  return out;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [key, view] : views_) out.push_back(view.name);
  return out;
}

}  // namespace vdm
