// The catalog: metadata registry for tables, views, and expression macros.
//
// Views model the paper's VDM artifacts: each view carries its defining SQL
// text, its VDM layer (basic / composite / consumption, §2.3), optional
// expression macros (§7.2), and an optional data-access-control predicate
// that the binder injects on top of the view when it is queried (§3).
//
// The catalog stores metadata only; row data lives in storage::StorageManager.
#ifndef VDMQO_CATALOG_CATALOG_H_
#define VDMQO_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace vdm {

class LogicalOp;  // defined in plan/logical_plan.h

/// VDM layering (paper Fig. 2). kPlain marks non-VDM views.
enum class VdmLayer {
  kPlain = 0,
  kBasic,
  kComposite,
  kConsumption,
};

/// A named calculation formula over aggregates, attached to a view
/// (paper §7.2, "expression macros"). The body is SQL expression text that
/// the binder expands at the aggregation site referencing the macro.
struct ExpressionMacro {
  std::string name;
  std::string body_sql;
};

/// A CDS-style association (§2.3): a named, to-one link from a view to
/// another view or table. Queries use path notation — `v.assoc.column` —
/// and the binder injects the corresponding many-to-one LEFT OUTER join
/// on demand ("an easy and convenient way to join a view and project
/// columns from it"). In the ON condition, target columns are written
/// `<name>.<column>` and source columns bare.
struct AssociationDef {
  std::string name;
  std::string target;  // view or table name
  std::string condition_sql;
};

struct ViewDef {
  std::string name;
  /// Defining query; parsed and inlined by the binder on every reference.
  std::string sql;
  VdmLayer layer = VdmLayer::kPlain;
  std::vector<ExpressionMacro> macros;
  std::vector<AssociationDef> associations;
  /// Optional record-wise data access control filter (SQL boolean
  /// expression over the view's output columns). Injected per query.
  std::string dac_filter_sql;
  /// Pre-bound plan for programmatically constructed views (bypasses the
  /// parser). If set, takes precedence over `sql`.
  std::shared_ptr<const LogicalOp> bound_plan;
  /// Cached views (§3): when materialized_table is non-empty, queries
  /// against this view read the named snapshot table instead of inlining
  /// the definition. kStatic snapshots are refreshed explicitly (SCV);
  /// kDynamic snapshots are kept up to date automatically (DCV) by
  /// checking the recorded base-table versions on access.
  enum class CacheMode { kStatic, kDynamic };
  std::string materialized_table;
  CacheMode cache_mode = CacheMode::kStatic;
  /// Base tables the snapshot was computed from, with their versions.
  std::vector<std::pair<std::string, uint64_t>> snapshot_dependencies;

  const ExpressionMacro* FindMacro(const std::string& macro_name) const;
  const AssociationDef* FindAssociation(const std::string& assoc_name) const;
};

/// Per-column statistics for cardinality estimation. Distinct counts for
/// string columns come straight from the sorted main dictionary (free to
/// maintain — DESIGN.md §14); min/max apply to integer-backed columns
/// (ints, decimals, dates) only.
struct ColumnStatsEntry {
  /// Distinct non-NULL values; 0 = unknown / never collected.
  uint64_t distinct_count = 0;
  /// Fraction of rows with a NULL value, in [0, 1].
  double null_fraction = 0.0;
  /// Value range for integer-backed columns (raw stored representation,
  /// i.e. scaled decimals / day numbers). Meaningless when !has_minmax.
  bool has_minmax = false;
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
};

/// Per-table statistics for cost-based decisions (join ordering,
/// build-side selection, serial-vs-parallel execution). Collected by
/// Database::AnalyzeTables(); `columns` is schema-parallel and may be
/// empty when only row counts were gathered (VDM_STATS=0).
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStatsEntry> columns;

  const ColumnStatsEntry* Column(size_t idx) const {
    return idx < columns.size() ? &columns[idx] : nullptr;
  }
};

class Catalog {
 public:
  Catalog() = default;
  // The catalog is referenced throughout; avoid accidental copies.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status RegisterTable(TableSchema schema);
  Status RegisterView(ViewDef view);
  /// Replaces an existing view (used by the custom-fields extension, §5,
  /// which redefines the consumption view while keeping interim views).
  Status ReplaceView(ViewDef view);
  Status DropView(const std::string& name);
  Status DropTable(const std::string& name);

  const TableSchema* FindTable(const std::string& name) const;
  const ViewDef* FindView(const std::string& name) const;
  bool Exists(const std::string& name) const {
    return FindTable(name) != nullptr || FindView(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// Publishes fresh statistics for a table and bumps its data version
  /// (new stats can change the plan shape, so cached plans scanning this
  /// table must recompile — but only those; see data_version()).
  /// Thread-safe: callable from the background merge worker while queries
  /// plan concurrently.
  void SetTableStats(const std::string& name, TableStats stats) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_[ToLowerKey(name)] =
        std::make_shared<const TableStats>(std::move(stats));
    ++data_versions_[ToLowerKey(name)];
  }
  /// Stats for a table, or nullptr when never analyzed. The returned
  /// snapshot stays valid (immutable) even if SetTableStats replaces it
  /// concurrently.
  std::shared_ptr<const TableStats> FindTableStats(
      const std::string& name) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    auto it = stats_.find(ToLowerKey(name));
    return it == stats_.end() ? nullptr : it->second;
  }

  /// Monotonic *schema* version. Bumped by every mutation that can change
  /// what a statement binds to (DDL, view replacement). The plan cache
  /// keys on it, so any schema change invalidates all cached plans
  /// without explicit bookkeeping. Data changes do NOT bump it — they
  /// bump the written table's data_version() instead, so DML against one
  /// table keeps every other table's cached plans warm.
  uint64_t version() const { return version_; }

  /// Monotonic per-table *data* version. Bumped on every committed write,
  /// delta merge, or stats refresh of that table. Cached plans record the
  /// data version of every base table they scan at compile time and are
  /// re-validated per hit. Unknown tables report 0.
  uint64_t data_version(const std::string& name) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    auto it = data_versions_.find(ToLowerKey(name));
    return it == data_versions_.end() ? 0 : it->second;
  }
  void BumpDataVersion(const std::string& name) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++data_versions_[ToLowerKey(name)];
  }

 private:
  static std::string ToLowerKey(const std::string& name);

  uint64_t version_ = 0;

  // Keyed by lower-cased name (SQL identifiers are case-insensitive here).
  std::map<std::string, TableSchema> tables_;
  std::map<std::string, ViewDef> views_;
  // Statistics and data versions are written by the background merge
  // worker and read by concurrent planners; both live behind stats_mu_.
  mutable std::mutex stats_mu_;
  std::map<std::string, std::shared_ptr<const TableStats>> stats_;
  std::map<std::string, uint64_t> data_versions_;
};

}  // namespace vdm

#endif  // VDMQO_CATALOG_CATALOG_H_
