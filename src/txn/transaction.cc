#include "txn/transaction.h"

#include <algorithm>

namespace vdm {

Transaction::~Transaction() {
  if (!finished_) mgr_->Rollback(this);
}

std::vector<WriteOp>* Transaction::WritesFor(Table* t) {
  auto it = writes_.find(t);
  if (it == writes_.end()) {
    mgr_->NoteWriter(t);
    it = writes_.emplace(t, std::vector<WriteOp>()).first;
  }
  return &it->second;
}

std::unique_ptr<Transaction> TxnManager::Begin() {
  std::lock_guard<std::mutex> lk(mu_);
  TxnSnapshot snap;
  snap.read_ts = clock_.load(std::memory_order_acquire);
  snap.txn_id = next_txn_id_++;
  txns_begun_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::unique_ptr<Transaction>(new Transaction(this, snap));
  active_[snap.txn_id] = txn.get();
  return txn;
}

void TxnManager::Commit(Transaction* txn) {
  if (txn->finished_) return;
  if (txn->writes_.empty()) {
    Retire(txn);
    return;
  }
  {
    // Stamp every table's ops, then publish the clock. Snapshots taken
    // while stamping is in progress read the old clock and so see none of
    // the new stamps (they carry a timestamp above the old clock);
    // snapshots taken after the publish see all of them.
    std::lock_guard<std::mutex> commit_lk(commit_mu_);
    const uint64_t commit_ts = clock_.load(std::memory_order_relaxed) + 1;
    for (auto& [table, ops] : txn->writes_) {
      table->FinalizeWrites(ops, commit_ts);
    }
    clock_.store(commit_ts, std::memory_order_release);
  }
  Retire(txn);
}

void TxnManager::Rollback(Transaction* txn) {
  if (txn->finished_) return;
  for (auto& [table, ops] : txn->writes_) {
    table->AbortWrites(ops);
  }
  Retire(txn);
}

void TxnManager::Retire(Transaction* txn) {
  std::lock_guard<std::mutex> lk(mu_);
  active_.erase(txn->snap_.txn_id);
  for (const auto& [table, ops] : txn->writes_) {
    auto it = writers_.find(table);
    if (it != writers_.end() && --it->second == 0) writers_.erase(it);
  }
  txn->finished_ = true;
}

void TxnManager::NoteWriter(Table* t) {
  std::lock_guard<std::mutex> lk(mu_);
  ++writers_[t];
}

uint64_t TxnManager::Watermark() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t wm = clock_.load(std::memory_order_acquire);
  for (const auto& [id, txn] : active_) {
    wm = std::min(wm, txn->snap_.read_ts);
  }
  return wm;
}

bool TxnManager::HasActiveWriters(const Table* t) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = writers_.find(t);
  return it != writers_.end() && it->second > 0;
}

}  // namespace vdm
