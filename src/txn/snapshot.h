// MVCC snapshot visibility (DESIGN.md §15). Every delta row (and, after
// deletes reach the main fragment, every main row) carries a begin and an
// end timestamp. Committed stamps are commit-clock values; in-flight stamps
// are the writing transaction's id with the high bit set, so a reader can
// tell "committed at time T" from "uncommitted, owned by txn X" without a
// lookup. A snapshot sees a row iff the row began at or before the
// snapshot's read timestamp (or is the snapshot's own uncommitted write)
// and has not ended by then.
#ifndef VDMQO_TXN_SNAPSHOT_H_
#define VDMQO_TXN_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>

namespace vdm {

/// High bit set = the stamp is an in-flight transaction id, not a commit
/// timestamp. Txn ids start at 1; commit timestamps start at 1 (0 is the
/// loader's "visible since always" stamp).
inline constexpr uint64_t kTxnFlag = 1ull << 63;

/// Largest commit timestamp; a snapshot at kMaxTs sees every committed row.
inline constexpr uint64_t kMaxTs = kTxnFlag - 1;

/// End stamp meaning "not deleted".
inline constexpr uint64_t kInfinity = ~0ull;

/// Begin stamp for rows whose inserting transaction aborted: the flag with
/// txn id 0, which no live transaction ever holds, so the row is invisible
/// to every snapshot forever. (Physically reclaimed by the next merge.)
inline constexpr uint64_t kNeverVisible = kTxnFlag;

/// A transaction's read view: committed state as of `read_ts`, plus its own
/// uncommitted writes (`txn_id`). Default-constructed = autocommit read of
/// the latest committed state with no writes of its own.
struct TxnSnapshot {
  uint64_t read_ts = kMaxTs;
  uint64_t txn_id = 0;
};

/// True if a row with begin stamp `begin` is visible to `snap` (ignoring
/// deletion, which EndHides handles).
inline bool BeginVisible(uint64_t begin, const TxnSnapshot& snap) {
  if (begin & kTxnFlag) {
    const uint64_t tid = begin & ~kTxnFlag;
    return tid != 0 && tid == snap.txn_id;  // own uncommitted insert
  }
  return begin <= snap.read_ts;
}

/// True if a row with end stamp `end` is deleted from `snap`'s view.
inline bool EndHides(uint64_t end, const TxnSnapshot& snap) {
  if (end == kInfinity) return false;
  if (end & kTxnFlag) {
    const uint64_t tid = end & ~kTxnFlag;
    return tid != 0 && tid == snap.txn_id;  // own uncommitted delete
  }
  return end <= snap.read_ts;
}

inline bool RowVisible(uint64_t begin, uint64_t end, const TxnSnapshot& snap) {
  return BeginVisible(begin, snap) && !EndHides(end, snap);
}

/// One uncommitted mutation, recorded in the owning transaction's write set
/// so commit can stamp it with the commit timestamp and abort can revert
/// it. Row positions are stable while the transaction is live: the merge
/// refuses to install while any writer is active on the table, and the
/// delta only grows.
struct WriteOp {
  bool in_main = false;   // row lives in the main fragment (delete only)
  size_t row = 0;         // position within the fragment
  bool is_insert = false; // true: this txn appended the row (begin stamped);
                          // false: this txn deleted it (end stamped)
};

}  // namespace vdm

#endif  // VDMQO_TXN_SNAPSHOT_H_
