// Transaction manager (DESIGN.md §15): monotonic transaction ids, a commit
// clock whose published value is every new snapshot's read timestamp, and
// per-transaction write sets that commit stamps and abort reverts.
//
// Lock ordering (deadlock freedom): commit_mu_ → a table's shared_mutex →
// mu_. No path acquires a table lock while holding mu_, and the merge's
// install phase (table lock held, then HasActiveWriters → mu_) follows the
// same order. The commit clock is published only after every write of the
// committing transaction is stamped, so a snapshot taken at read_ts T sees
// either all or none of any transaction's writes — never a torn commit.
#ifndef VDMQO_TXN_TRANSACTION_H_
#define VDMQO_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "txn/snapshot.h"

namespace vdm {

class TxnManager;

/// One open transaction: a fixed snapshot (repeatable reads) plus per-table
/// write sets of uncommitted stamps. Destroying an unfinished transaction
/// rolls it back.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  uint64_t id() const { return snap_.txn_id; }
  /// The in-flight stamp this transaction writes into begin/end slots.
  uint64_t marker() const { return kTxnFlag | snap_.txn_id; }
  const TxnSnapshot& snapshot() const { return snap_; }

  /// The write set for `t`, created on first use — which also registers
  /// this transaction as an active writer on `t`, blocking merge installs
  /// until commit or rollback retires the raw row positions the ops hold.
  std::vector<WriteOp>* WritesFor(Table* t);
  bool has_writes() const { return !writes_.empty(); }
  bool finished() const { return finished_; }

  /// Tables this transaction has written (non-empty write sets).
  std::vector<Table*> written_tables() const {
    std::vector<Table*> out;
    for (const auto& [t, ops] : writes_) {
      if (!ops.empty()) out.push_back(t);
    }
    return out;
  }

 private:
  friend class TxnManager;
  Transaction(TxnManager* mgr, TxnSnapshot snap) : mgr_(mgr), snap_(snap) {}

  TxnManager* mgr_;
  TxnSnapshot snap_;
  bool finished_ = false;
  std::map<Table*, std::vector<WriteOp>> writes_;
};

class TxnManager {
 public:
  TxnManager() = default;
  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Opens a transaction reading the latest published commit state.
  std::unique_ptr<Transaction> Begin();

  /// Stamps every write with the next commit timestamp, publishes the
  /// clock, and retires the transaction. Cannot fail: write-write
  /// conflicts were already rejected statement-side (first-updater-wins).
  void Commit(Transaction* txn);

  /// Reverts every write and retires the transaction.
  void Rollback(Transaction* txn);

  /// Latest published commit timestamp.
  uint64_t clock() const { return clock_.load(std::memory_order_acquire); }

  /// Highest commit timestamp a merge may fold: commits at or below it are
  /// visible to every active and every future snapshot.
  uint64_t Watermark() const;

  /// True while any live transaction holds uncommitted writes on `t`.
  bool HasActiveWriters(const Table* t) const;

  /// Number of transactions begun (diagnostics).
  uint64_t txns_begun() const {
    return txns_begun_.load(std::memory_order_relaxed);
  }

 private:
  friend class Transaction;
  void NoteWriter(Table* t);
  void Retire(Transaction* txn);

  mutable std::mutex mu_;
  std::mutex commit_mu_;  // serializes stamp-then-publish sequences
  uint64_t next_txn_id_ = 1;
  std::atomic<uint64_t> clock_{0};
  std::atomic<uint64_t> txns_begun_{0};
  std::map<uint64_t, Transaction*> active_;
  std::map<const Table*, size_t> writers_;
};

}  // namespace vdm

#endif  // VDMQO_TXN_TRANSACTION_H_
