// Generic rewrites: constant folding, filter pushdown, distinct elimination.
#include <algorithm>
#include <map>
#include <set>

#include "expr/fold.h"
#include "optimizer/optimizer.h"

namespace vdm {

namespace {

/// Substitutes project-item definitions into an expression (used when a
/// filter is pushed below a projection).
ExprRef SubstituteItems(const ExprRef& expr,
                        const std::vector<ProjectOp::Item>& items) {
  std::map<std::string, ExprRef> defs;
  for (const ProjectOp::Item& item : items) defs[item.name] = item.expr;
  return RemapColumns(expr, [&](const std::string& name) -> ExprRef {
    auto it = defs.find(name);
    return it == defs.end() ? nullptr : it->second;
  });
}

/// Merges Project-over-Project stacks (the binder and the ASJ rewiring
/// produce long rename chains). Merging is skipped when it would duplicate
/// a non-trivial computed expression.
PlanRef TryMergeProjects(const PlanRef& node, bool* changed) {
  if (node->kind() != OpKind::kProject ||
      node->child(0)->kind() != OpKind::kProject) {
    return nullptr;
  }
  const auto& outer = static_cast<const ProjectOp&>(*node);
  const auto& inner = static_cast<const ProjectOp&>(*node->child(0));
  // Count outer references per inner item — including multiple references
  // within a single expression (CollectColumnRefs deduplicates, which is
  // not what we want here).
  std::map<std::string, int> ref_counts;
  std::function<void(const ExprRef&)> count = [&](const ExprRef& e) {
    if (e->kind() == ExprKind::kColumnRef) {
      ++ref_counts[static_cast<const ColumnRefExpr&>(*e).name()];
      return;
    }
    for (const ExprRef& child : e->children()) count(child);
  };
  for (const ProjectOp::Item& item : outer.items()) count(item.expr);
  for (const ProjectOp::Item& item : inner.items()) {
    bool trivial = item.expr->kind() == ExprKind::kColumnRef ||
                   item.expr->kind() == ExprKind::kLiteral;
    if (!trivial && ref_counts[item.name] > 1) return nullptr;
  }
  std::vector<ProjectOp::Item> merged;
  merged.reserve(outer.items().size());
  for (const ProjectOp::Item& item : outer.items()) {
    merged.push_back({SubstituteItems(item.expr, inner.items()), item.name});
  }
  *changed = true;
  return std::make_shared<ProjectOp>(inner.child(0), std::move(merged));
}

}  // namespace

PlanRef PassConstantFolding(const PlanRef& plan, const OptimizerConfig& config,
                            bool* changed) {
  (void)config;
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (PlanRef merged = TryMergeProjects(node, changed)) return merged;
    // FoldConstants is clone-avoiding (TransformExpr returns the input
    // node when nothing changed), so pointer comparison detects "nothing
    // folded" without a structural walk — and the folded result is
    // inspected directly instead of being folded a second time.
    if (node->kind() == OpKind::kFilter) {
      const auto& filter = static_cast<const FilterOp&>(*node);
      ExprRef folded = FoldConstants(filter.predicate());
      if (IsLiteralTrue(folded)) {
        *changed = true;
        return node->child(0);
      }
      if (folded != filter.predicate()) {
        *changed = true;
        return std::make_shared<FilterOp>(node->child(0), folded);
      }
      return nullptr;
    }
    if (node->kind() == OpKind::kProject) {
      const auto& project = static_cast<const ProjectOp&>(*node);
      bool any = false;
      std::vector<ProjectOp::Item> items;
      items.reserve(project.items().size());
      for (const ProjectOp::Item& item : project.items()) {
        ExprRef folded = FoldConstants(item.expr);
        any |= (folded != item.expr);
        items.push_back({std::move(folded), item.name});
      }
      if (!any) return nullptr;
      *changed = true;
      return std::make_shared<ProjectOp>(node->child(0), std::move(items));
    }
    if (node->kind() == OpKind::kJoin) {
      const auto& join = static_cast<const JoinOp&>(*node);
      ExprRef folded = FoldConstants(join.condition());
      if (folded == join.condition()) return nullptr;
      *changed = true;
      return std::make_shared<JoinOp>(join.left(), join.right(),
                                      join.join_type(), folded,
                                      join.declared_cardinality(),
                                      join.is_case_join());
    }
    return nullptr;
  });
}

PlanRef PassFilterPushdown(const PlanRef& plan, const OptimizerConfig& config,
                           bool* changed) {
  (void)config;
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (node->kind() != OpKind::kFilter) return nullptr;
    const auto& filter = static_cast<const FilterOp&>(*node);
    const PlanRef& child = node->child(0);

    switch (child->kind()) {
      case OpKind::kFilter: {
        const auto& inner = static_cast<const FilterOp&>(*child);
        *changed = true;
        return std::make_shared<FilterOp>(
            child->child(0), And(inner.predicate(), filter.predicate()));
      }
      case OpKind::kProject: {
        const auto& project = static_cast<const ProjectOp&>(*child);
        // Cannot push a filter below a projection that computes aggregates
        // (none exist in Project) — always safe to substitute.
        ExprRef pushed = SubstituteItems(filter.predicate(), project.items());
        *changed = true;
        return std::make_shared<ProjectOp>(
            std::make_shared<FilterOp>(child->child(0), pushed),
            project.items());
      }
      case OpKind::kJoin: {
        const auto& join = static_cast<const JoinOp&>(*child);
        std::vector<std::string> left_names = join.left()->OutputNames();
        std::vector<std::string> right_names = join.right()->OutputNames();
        std::vector<ExprRef> to_left, to_right, keep;
        for (const ExprRef& conjunct : SplitConjuncts(filter.predicate())) {
          if (ReferencesOnly(conjunct, left_names)) {
            to_left.push_back(conjunct);
          } else if (join.join_type() == JoinType::kInner &&
                     ReferencesOnly(conjunct, right_names)) {
            to_right.push_back(conjunct);
          } else {
            keep.push_back(conjunct);
          }
        }
        if (to_left.empty() && to_right.empty()) return nullptr;
        *changed = true;
        PlanRef new_left = join.left();
        PlanRef new_right = join.right();
        if (!to_left.empty()) {
          new_left =
              std::make_shared<FilterOp>(new_left, AndAll(std::move(to_left)));
        }
        if (!to_right.empty()) {
          new_right = std::make_shared<FilterOp>(new_right,
                                                 AndAll(std::move(to_right)));
        }
        PlanRef new_join = std::make_shared<JoinOp>(
            new_left, new_right, join.join_type(), join.condition(),
            join.declared_cardinality(), join.is_case_join());
        if (keep.empty()) return new_join;
        return std::make_shared<FilterOp>(new_join, AndAll(std::move(keep)));
      }
      case OpKind::kUnionAll: {
        const auto& u = static_cast<const UnionAllOp&>(*child);
        std::vector<PlanRef> new_children;
        for (const PlanRef& uc : child->children()) {
          std::vector<std::string> child_names = uc->OutputNames();
          // Positional rename: union output name -> child output name.
          std::map<std::string, ExprRef> rename;
          for (size_t p = 0; p < u.output_names().size(); ++p) {
            rename[u.output_names()[p]] = Col(child_names[p]);
          }
          ExprRef renamed = RemapColumns(
              filter.predicate(), [&](const std::string& name) -> ExprRef {
                auto it = rename.find(name);
                return it == rename.end() ? nullptr : it->second;
              });
          new_children.push_back(std::make_shared<FilterOp>(uc, renamed));
        }
        *changed = true;
        return std::make_shared<UnionAllOp>(std::move(new_children),
                                            u.output_names(),
                                            u.branch_id_column(),
                                            u.logical_table());
      }
      case OpKind::kSort: {
        const auto& sort = static_cast<const SortOp&>(*child);
        *changed = true;
        return std::make_shared<SortOp>(
            std::make_shared<FilterOp>(child->child(0), filter.predicate()),
            sort.keys());
      }
      case OpKind::kAggregate: {
        // Conjuncts that reference only group columns select whole groups
        // and may be applied before aggregation.
        const auto& agg = static_cast<const AggregateOp&>(*child);
        if (agg.group_by().empty()) return nullptr;
        std::map<std::string, ExprRef> group_defs;
        std::vector<std::string> group_names;
        for (const AggregateOp::GroupItem& g : agg.group_by()) {
          group_defs[g.name] = g.expr;
          group_names.push_back(g.name);
        }
        std::vector<ExprRef> push, keep;
        for (const ExprRef& conjunct : SplitConjuncts(filter.predicate())) {
          if (ReferencesOnly(conjunct, group_names)) {
            push.push_back(RemapColumns(
                conjunct, [&](const std::string& name) -> ExprRef {
                  auto it = group_defs.find(name);
                  return it == group_defs.end() ? nullptr : it->second;
                }));
          } else {
            keep.push_back(conjunct);
          }
        }
        if (push.empty()) return nullptr;
        *changed = true;
        PlanRef new_agg = std::make_shared<AggregateOp>(
            std::make_shared<FilterOp>(child->child(0),
                                       AndAll(std::move(push))),
            agg.group_by(), agg.aggregates());
        if (keep.empty()) return new_agg;
        return std::make_shared<FilterOp>(std::move(new_agg),
                                          AndAll(std::move(keep)));
      }
      default:
        return nullptr;
    }
  });
}

PlanRef PassDistinctElimination(const PlanRef& plan,
                                const OptimizerConfig& config, bool* changed) {
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (node->kind() != OpKind::kDistinct) return nullptr;
    RelProps props = DeriveProps(node->child(0), config.derivation);
    if (props.HasKey(node->child(0)->OutputNames())) {
      *changed = true;
      return node->child(0);
    }
    return nullptr;
  });
}

}  // namespace vdm
