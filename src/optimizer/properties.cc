#include "optimizer/properties.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "expr/fold.h"

namespace vdm {

namespace {

constexpr size_t kMaxKeysPerNode = 8;

std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

/// key ⊆ available?
bool Subset(const std::vector<std::string>& key,
            const std::set<std::string>& available) {
  for (const std::string& k : key) {
    if (available.count(k) == 0) return false;
  }
  return true;
}

/// For every key containing pinned-constant columns, also add the key with
/// those columns removed (AJ 2a-3: (x, y) unique + y = 1 ⇒ x unique).
void ReduceKeysByConstants(RelProps* props) {
  std::vector<std::vector<std::string>> extra;
  for (const std::vector<std::string>& key : props->unique_keys) {
    std::vector<std::string> reduced;
    for (const std::string& col : key) {
      if (props->constants.count(col) == 0) reduced.push_back(col);
    }
    if (!reduced.empty() && reduced.size() < key.size()) {
      extra.push_back(std::move(reduced));
    }
  }
  for (std::vector<std::string>& key : extra) {
    props->AddKey(std::move(key));
  }
}

RelProps DeriveScan(const ScanOp& scan, const DerivationConfig& config) {
  RelProps props;
  std::vector<std::string> outputs = scan.OutputNames();
  std::set<std::string> available(outputs.begin(), outputs.end());
  for (size_t i = 0; i < scan.column_indexes().size(); ++i) {
    size_t schema_idx = scan.column_indexes()[i];
    ColumnOrigin origin;
    origin.source_id = scan.id();
    origin.table = ToLower(scan.table_name());
    origin.column = ToLower(scan.table_schema().column(schema_idx).name);
    props.origins[outputs[i]] = std::move(origin);
  }
  if (config.base_table_keys) {
    for (const UniqueKeyDef& key : scan.table_schema().unique_keys()) {
      if (!key.enforced && !config.trust_declared_cardinality) continue;
      std::vector<std::string> qualified;
      bool all_present = true;
      for (const std::string& col : key.columns) {
        int idx = scan.table_schema().FindColumn(col);
        std::string name = scan.QualifiedName(static_cast<size_t>(idx));
        if (available.count(name) == 0) {
          all_present = false;
          break;
        }
        qualified.push_back(std::move(name));
      }
      if (all_present) props.AddKey(std::move(qualified));
    }
  }
  return props;
}

RelProps DeriveFilter(const FilterOp& filter, const RelProps& child,
                      const DerivationConfig& config) {
  RelProps props = child;
  if (IsAlwaysFalse(filter.predicate())) props.empty_relation = true;
  if (config.const_pinning) {
    for (const ExprRef& conjunct : SplitConjuncts(filter.predicate())) {
      std::optional<ColumnConstant> cc = MatchColumnEqConstant(conjunct);
      if (cc.has_value()) props.constants.emplace(cc->column, cc->value);
    }
    ReduceKeysByConstants(&props);
  }
  return props;
}

RelProps DeriveProject(const ProjectOp& project, const RelProps& child,
                       const DerivationConfig& config) {
  RelProps props;
  props.empty_relation = child.empty_relation;
  props.base_constants = child.base_constants;
  // Map child column name -> first output name that passes it through.
  std::map<std::string, std::string> passthrough;
  for (const ProjectOp::Item& item : project.items()) {
    if (item.expr->kind() == ExprKind::kColumnRef) {
      const std::string& child_name =
          static_cast<const ColumnRefExpr&>(*item.expr).name();
      if (passthrough.count(child_name) == 0) {
        passthrough[child_name] = item.name;
      }
      auto origin_it = child.origins.find(child_name);
      if (origin_it != child.origins.end()) {
        props.origins[item.name] = origin_it->second;
      }
      auto const_it = child.constants.find(child_name);
      if (const_it != child.constants.end()) {
        props.constants.emplace(item.name, const_it->second);
      }
    } else if (item.expr->kind() == ExprKind::kLiteral) {
      props.constants.emplace(
          item.name, static_cast<const LiteralExpr&>(*item.expr).value());
    }
  }
  for (const std::vector<std::string>& key : child.unique_keys) {
    std::vector<std::string> mapped;
    bool ok = true;
    for (const std::string& col : key) {
      auto it = passthrough.find(col);
      if (it == passthrough.end()) {
        ok = false;
        break;
      }
      mapped.push_back(it->second);
    }
    if (ok) props.AddKey(std::move(mapped));
  }
  if (config.const_pinning) ReduceKeysByConstants(&props);
  return props;
}

RelProps DeriveAggregate(const AggregateOp& agg, const RelProps& child,
                         const DerivationConfig& config) {
  RelProps props;
  props.empty_relation = child.empty_relation && !agg.group_by().empty();
  props.base_constants = child.base_constants;
  std::vector<std::string> group_names;
  for (const AggregateOp::GroupItem& g : agg.group_by()) {
    group_names.push_back(g.name);
    if (g.expr->kind() == ExprKind::kColumnRef) {
      const std::string& child_name =
          static_cast<const ColumnRefExpr&>(*g.expr).name();
      auto origin_it = child.origins.find(child_name);
      if (origin_it != child.origins.end()) {
        props.origins[g.name] = origin_it->second;
      }
      auto const_it = child.constants.find(child_name);
      if (const_it != child.constants.end()) {
        props.constants.emplace(g.name, const_it->second);
      }
    } else if (g.expr->kind() == ExprKind::kLiteral) {
      props.constants.emplace(
          g.name, static_cast<const LiteralExpr&>(*g.expr).value());
    }
  }
  if (agg.group_by().empty()) {
    // Global aggregation: a single output row; every column is unique.
    for (const std::string& name : agg.OutputNames()) {
      props.AddKey({name});
    }
    return props;
  }
  if (!config.groupby_keys) return props;
  props.AddKey(group_names);
  // Aggregate items that merely re-project a group expression are aliases
  // of the group column: give them the same origins/constants, and emit
  // alias-substituted keys so a projection keeping only the alias still
  // sees the uniqueness (e.g. "select l_orderkey, sum(q) ... group by
  // l_orderkey" projected to the bare alias).
  std::map<std::string, std::vector<std::string>> alias_of;  // group -> names
  for (size_t gi = 0; gi < agg.group_by().size(); ++gi) {
    alias_of[agg.group_by()[gi].name] = {agg.group_by()[gi].name};
  }
  for (const AggregateOp::AggItem& item : agg.aggregates()) {
    for (size_t gi = 0; gi < agg.group_by().size(); ++gi) {
      const AggregateOp::GroupItem& g = agg.group_by()[gi];
      if (item.expr->Equals(*g.expr) ||
          (item.expr->kind() == ExprKind::kColumnRef &&
           static_cast<const ColumnRefExpr&>(*item.expr).name() == g.name)) {
        alias_of[g.name].push_back(item.name);
        auto origin_it = props.origins.find(g.name);
        if (origin_it != props.origins.end()) {
          props.origins[item.name] = origin_it->second;
        }
        auto const_it = props.constants.find(g.name);
        if (const_it != props.constants.end()) {
          props.constants.emplace(item.name, const_it->second);
        }
      }
    }
  }
  // Alias-substituted keys. Two variants cover the common shapes without
  // a combinatorial blow-up: substituting a single alias at a time, and
  // substituting every group column by its first alias at once (the shape
  // a projection keeping only the aliases sees).
  for (const auto& [group_name, aliases] : alias_of) {
    for (size_t a = 1; a < aliases.size(); ++a) {
      std::vector<std::string> key;
      for (const std::string& gn : group_names) {
        key.push_back(gn == group_name ? aliases[a] : gn);
      }
      props.AddKey(std::move(key));
    }
  }
  {
    std::vector<std::string> key;
    bool any_alias = false;
    for (const std::string& gn : group_names) {
      const std::vector<std::string>& aliases = alias_of[gn];
      if (aliases.size() > 1) {
        key.push_back(aliases[1]);
        any_alias = true;
      } else {
        key.push_back(gn);
      }
    }
    if (any_alias) props.AddKey(std::move(key));
  }
  if (config.const_pinning) ReduceKeysByConstants(&props);
  return props;
}

RelProps DeriveUnionAll(const UnionAllOp& u,
                        const std::vector<RelProps>& children,
                        const std::vector<std::vector<std::string>>&
                            child_output_names,
                        const DerivationConfig& config) {
  RelProps props;
  props.empty_relation = true;
  for (const RelProps& child : children) {
    props.empty_relation = props.empty_relation && child.empty_relation;
  }
  size_t arity = u.output_names().size();
  size_t n_children = children.size();

  // Per-position constants (pinned in every child to the same value) and
  // origin agreement (same base column in every child).
  std::vector<bool> all_pin_distinct(arity, false);
  for (size_t p = 0; p < arity; ++p) {
    const std::string& out_name = u.output_names()[p];
    // Constant agreement.
    bool all_const = true, all_same = true, all_distinct = true;
    std::vector<Value> vals;
    for (size_t c = 0; c < n_children; ++c) {
      auto it = children[c].constants.find(child_output_names[c][p]);
      if (it == children[c].constants.end()) {
        all_const = false;
        break;
      }
      vals.push_back(it->second);
    }
    if (all_const) {
      for (size_t i = 0; i < vals.size(); ++i) {
        for (size_t j = i + 1; j < vals.size(); ++j) {
          if (vals[i] == vals[j]) {
            all_distinct = false;
          } else {
            all_same = false;
          }
        }
      }
      if (all_same && !vals.empty()) {
        props.constants.emplace(out_name, vals[0]);
      }
      all_pin_distinct[p] = all_distinct && n_children > 1;
    }
    // Origin agreement.
    bool have_all = true;
    std::string column;
    std::string table;
    bool same_table = true;
    bool null_extended = false;
    for (size_t c = 0; c < n_children; ++c) {
      auto it = children[c].origins.find(child_output_names[c][p]);
      if (it == children[c].origins.end()) {
        have_all = false;
        break;
      }
      null_extended |= it->second.null_extended;
      if (c == 0) {
        column = it->second.column;
        table = it->second.table;
      } else {
        if (it->second.column != column) have_all = false;
        if (it->second.table != table) same_table = false;
      }
    }
    if (have_all) {
      ColumnOrigin origin;
      origin.source_id = u.id();
      origin.column = column;
      origin.null_extended = null_extended;
      if (!u.logical_table().empty()) {
        origin.table = ToLower(u.logical_table());
        props.origins[out_name] = std::move(origin);
      } else if (same_table) {
        origin.table = table;
        props.origins[out_name] = std::move(origin);
      }
    }
  }

  if (!config.keys_through_union_all) return props;

  // Candidate keys: keys of child 0 (mapped to union names) that are unique
  // in every child.
  std::vector<std::vector<std::string>> candidates;
  for (const std::vector<std::string>& key : children[0].unique_keys) {
    // Map child-0 names to positions, then to union names.
    std::vector<size_t> positions;
    bool ok = true;
    for (const std::string& col : key) {
      auto it = std::find(child_output_names[0].begin(),
                          child_output_names[0].end(), col);
      if (it == child_output_names[0].end()) {
        ok = false;
        break;
      }
      positions.push_back(static_cast<size_t>(
          std::distance(child_output_names[0].begin(), it)));
    }
    if (!ok) continue;
    for (size_t c = 1; c < n_children && ok; ++c) {
      std::vector<std::string> child_key;
      for (size_t p : positions) child_key.push_back(child_output_names[c][p]);
      std::set<std::string> as_set(child_key.begin(), child_key.end());
      bool unique_in_child = false;
      for (const std::vector<std::string>& ck : children[c].unique_keys) {
        if (Subset(ck, as_set)) {
          unique_in_child = true;
          break;
        }
      }
      if (!unique_in_child) ok = false;
    }
    if (!ok) continue;
    std::vector<std::string> union_key;
    for (size_t p : positions) union_key.push_back(u.output_names()[p]);
    candidates.push_back(std::move(union_key));
  }
  if (candidates.empty()) return props;

  // Branch-id position: explicit, or any position pinned to pairwise
  // distinct constants per child (Fig. 12(b)).
  std::vector<size_t> branch_positions;
  if (u.branch_id_column() >= 0) {
    branch_positions.push_back(static_cast<size_t>(u.branch_id_column()));
  }
  for (size_t p = 0; p < arity; ++p) {
    if (all_pin_distinct[p] &&
        std::find(branch_positions.begin(), branch_positions.end(), p) ==
            branch_positions.end()) {
      branch_positions.push_back(p);
    }
  }

  // (a) Branch-id keys: key ∪ {branch column} is unique (Fig. 12(b)).
  for (size_t bp : branch_positions) {
    for (const std::vector<std::string>& key : candidates) {
      std::vector<std::string> with_branch = key;
      if (!Contains(with_branch, u.output_names()[bp])) {
        with_branch.push_back(u.output_names()[bp]);
      }
      props.AddKey(std::move(with_branch));
    }
  }

  // (b) Disjoint-subset keys (Fig. 12(a)): all children are subsets of the
  // same base table, made disjoint by pairwise-distinct pinned predicates
  // on a common base column. Then base-table keys remain unique.
  if (n_children > 1) {
    // Same base table across children for each candidate key column?
    for (const std::vector<std::string>& key : candidates) {
      bool same_source_table = true;
      for (const std::string& col : key) {
        auto it = props.origins.find(col);
        if (it == props.origins.end() ||
            (!u.logical_table().empty() &&
             it->second.table == ToLower(u.logical_table()))) {
          // Logical-table unions mix distinct base tables; handled by the
          // branch-id path above.
          same_source_table = it != props.origins.end() &&
                              u.logical_table().empty();
          if (!same_source_table) break;
        }
      }
      if (!same_source_table) continue;
      // Disjointness certificate: a common base (table, column) pinned to
      // pairwise distinct values in every child.
      bool disjoint = false;
      // Collect (table.column -> value) pins per child from child
      // constants resolved through origins.
      std::vector<std::map<std::string, Value>> pins(n_children);
      for (size_t c = 0; c < n_children; ++c) {
        for (const auto& [col, val] : children[c].constants) {
          auto oit = children[c].origins.find(col);
          if (oit != children[c].origins.end() &&
              !oit->second.null_extended) {
            pins[c].emplace(oit->second.table + "." + oit->second.column,
                            val);
          }
        }
        for (const auto& [key_str, val] : children[c].base_constants) {
          pins[c].emplace(key_str, val);
        }
      }
      for (const auto& [base_col, v0] : pins[0]) {
        bool all_have = true, all_distinct = true;
        std::vector<Value> vals{v0};
        for (size_t c = 1; c < n_children; ++c) {
          auto it = pins[c].find(base_col);
          if (it == pins[c].end()) {
            all_have = false;
            break;
          }
          vals.push_back(it->second);
        }
        if (!all_have) continue;
        for (size_t i = 0; i < vals.size() && all_distinct; ++i) {
          for (size_t j = i + 1; j < vals.size(); ++j) {
            if (vals[i] == vals[j]) {
              all_distinct = false;
              break;
            }
          }
        }
        if (all_distinct) {
          disjoint = true;
          break;
        }
      }
      if (disjoint) {
        props.AddKey(key);
      }
    }
  }
  return props;
}

}  // namespace

InferOptions ToInferOptions(const DerivationConfig& config) {
  InferOptions options;
  options.base_table_keys = config.base_table_keys;
  options.groupby_keys = config.groupby_keys;
  options.const_pinning = config.const_pinning;
  options.keys_through_joins = config.keys_through_joins;
  options.keys_through_order_limit = config.keys_through_order_limit;
  options.keys_through_union_all = config.keys_through_union_all;
  options.trust_declared_cardinality = config.trust_declared_cardinality;
  return options;
}

bool RelProps::HasKey(const std::vector<std::string>& available) const {
  std::set<std::string> set(available.begin(), available.end());
  for (const std::vector<std::string>& key : unique_keys) {
    if (Subset(key, set)) return true;
  }
  return false;
}

void RelProps::AddKey(std::vector<std::string> key) {
  key = Sorted(std::move(key));
  for (const std::vector<std::string>& existing : unique_keys) {
    if (existing == key) return;
  }
  if (unique_keys.size() < kMaxKeysPerNode) {
    unique_keys.push_back(std::move(key));
  }
}

std::string RelProps::ToString() const {
  std::string out = "keys={";
  for (size_t i = 0; i < unique_keys.size(); ++i) {
    if (i > 0) out += "; ";
    out += Join(unique_keys[i], ",");
  }
  out += "} consts={";
  bool first = true;
  for (const auto& [col, val] : constants) {
    if (!first) out += "; ";
    first = false;
    out += col + "=" + val.ToString();
  }
  out += "}";
  if (empty_relation) out += " EMPTY";
  return out;
}

RelProps DeriveProps(const PlanRef& plan, const DerivationConfig& config) {
  switch (plan->kind()) {
    case OpKind::kScan:
      return DeriveScan(static_cast<const ScanOp&>(*plan), config);
    case OpKind::kFilter: {
      const auto& filter = static_cast<const FilterOp&>(*plan);
      RelProps child = DeriveProps(plan->child(0), config);
      RelProps props = DeriveFilter(filter, child, config);
      // Record base-table constants for union-all disjointness analysis.
      for (const ExprRef& conjunct : SplitConjuncts(filter.predicate())) {
        std::optional<ColumnConstant> cc = MatchColumnEqConstant(conjunct);
        if (!cc.has_value()) continue;
        auto oit = child.origins.find(cc->column);
        if (oit != child.origins.end() && !oit->second.null_extended) {
          props.base_constants.emplace(
              oit->second.table + "." + oit->second.column, cc->value);
        }
      }
      return props;
    }
    case OpKind::kProject:
      return DeriveProject(static_cast<const ProjectOp&>(*plan),
                           DeriveProps(plan->child(0), config), config);
    case OpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(*plan);
      RelProps left = DeriveProps(join.left(), config);
      RelProps right = DeriveProps(join.right(), config);
      JoinAnalysis analysis = AnalyzeJoin(join, left, right, config);
      RelProps props;
      bool left_outer = join.join_type() == JoinType::kLeftOuter;
      props.empty_relation =
          left.empty_relation ||
          (!left_outer && right.empty_relation);
      // Origins.
      props.origins = left.origins;
      for (const auto& [col, origin] : right.origins) {
        ColumnOrigin o = origin;
        o.null_extended = o.null_extended || left_outer;
        props.origins.emplace(col, std::move(o));
      }
      // Constants.
      props.constants = left.constants;
      if (!left_outer) {
        for (const auto& [col, val] : right.constants) {
          props.constants.emplace(col, val);
        }
      }
      props.base_constants = left.base_constants;
      for (const auto& [key_str, val] : right.base_constants) {
        props.base_constants.emplace(key_str, val);
      }
      // Keys.
      if (config.keys_through_joins) {
        if (analysis.right_at_most_one) {
          for (const std::vector<std::string>& key : left.unique_keys) {
            props.AddKey(key);
          }
        }
        // For inner joins where the left side matches at most once, right
        // keys survive; computed by a flipped analysis.
        if (!left_outer) {
          JoinAnalysis flipped;
          // Build a pseudo-flipped analysis: equi pairs reversed.
          std::set<std::string> equated_left;
          for (const auto& [l, r] : analysis.equi_pairs) {
            equated_left.insert(l);
          }
          for (const auto& [col, val] : left.constants) {
            equated_left.insert(col);
          }
          for (const std::vector<std::string>& key : left.unique_keys) {
            if (Subset(key, equated_left)) {
              flipped.right_at_most_one = true;
              break;
            }
          }
          if (flipped.right_at_most_one) {
            for (const std::vector<std::string>& key : right.unique_keys) {
              props.AddKey(key);
            }
          }
        }
        // Combined keys: (left key ∪ right key) identifies the row pair.
        size_t added = 0;
        for (const std::vector<std::string>& lk : left.unique_keys) {
          for (const std::vector<std::string>& rk : right.unique_keys) {
            if (added >= 4) break;
            std::vector<std::string> combined = lk;
            combined.insert(combined.end(), rk.begin(), rk.end());
            props.AddKey(std::move(combined));
            ++added;
          }
          if (added >= 4) break;
        }
      }
      if (config.const_pinning) ReduceKeysByConstants(&props);
      return props;
    }
    case OpKind::kAggregate:
      return DeriveAggregate(static_cast<const AggregateOp&>(*plan),
                             DeriveProps(plan->child(0), config), config);
    case OpKind::kUnionAll: {
      const auto& u = static_cast<const UnionAllOp&>(*plan);
      std::vector<RelProps> children;
      std::vector<std::vector<std::string>> names;
      for (const PlanRef& child : plan->children()) {
        children.push_back(DeriveProps(child, config));
        names.push_back(child->OutputNames());
      }
      return DeriveUnionAll(u, children, names, config);
    }
    case OpKind::kSort: {
      RelProps props = DeriveProps(plan->child(0), config);
      if (!config.keys_through_order_limit) props.unique_keys.clear();
      return props;
    }
    case OpKind::kLimit: {
      const auto& limit = static_cast<const LimitOp&>(*plan);
      RelProps props = DeriveProps(plan->child(0), config);
      if (!config.keys_through_order_limit) props.unique_keys.clear();
      if (limit.limit() == 0) props.empty_relation = true;
      return props;
    }
    case OpKind::kDistinct: {
      RelProps props = DeriveProps(plan->child(0), config);
      props.AddKey(plan->OutputNames());
      return props;
    }
  }
  return RelProps{};
}

JoinAnalysis AnalyzeJoin(const JoinOp& join, const RelProps& left_props,
                         const RelProps& right_props,
                         const DerivationConfig& config) {
  JoinAnalysis analysis;
  std::vector<std::string> left_names = join.left()->OutputNames();
  std::vector<std::string> right_names = join.right()->OutputNames();
  std::set<std::string> left_set(left_names.begin(), left_names.end());
  std::set<std::string> right_set(right_names.begin(), right_names.end());

  std::set<std::string> equated_right;
  std::set<std::string> pinned_right;
  for (const auto& [col, val] : right_props.constants) {
    pinned_right.insert(col);
  }

  for (const ExprRef& conjunct : SplitConjuncts(join.condition())) {
    if (IsAlwaysTrue(conjunct)) continue;
    std::optional<ColumnPair> pair = MatchColumnEqColumn(conjunct);
    if (pair.has_value()) {
      if (left_set.count(pair->left) && right_set.count(pair->right)) {
        analysis.equi_pairs.emplace_back(pair->left, pair->right);
        equated_right.insert(pair->right);
        continue;
      }
      if (left_set.count(pair->right) && right_set.count(pair->left)) {
        analysis.equi_pairs.emplace_back(pair->right, pair->left);
        equated_right.insert(pair->left);
        continue;
      }
      analysis.pure_equi = false;
      continue;
    }
    std::optional<ColumnConstant> cc = MatchColumnEqConstant(conjunct);
    if (cc.has_value() && right_set.count(cc->column) &&
        config.const_pinning) {
      pinned_right.insert(cc->column);
      continue;
    }
    analysis.pure_equi = false;
  }

  // Declared cardinality (§7.3) — trusted, not enforced.
  if (config.trust_declared_cardinality) {
    if (join.declared_cardinality() == DeclaredCardinality::kAtMostOne) {
      analysis.right_at_most_one = true;
    }
    if (join.declared_cardinality() == DeclaredCardinality::kExactOne) {
      analysis.right_at_most_one = true;
      analysis.right_exactly_one = true;
    }
  }

  // AJ 2b: empty augmenter — zero matches is "at most one".
  if (right_props.empty_relation) analysis.right_at_most_one = true;

  // AJ 2a: equated/pinned right columns cover a unique key.
  if (!analysis.right_at_most_one) {
    std::set<std::string> covered = equated_right;
    covered.insert(pinned_right.begin(), pinned_right.end());
    for (const std::vector<std::string>& key : right_props.unique_keys) {
      if (Subset(key, covered)) {
        analysis.right_at_most_one = true;
        break;
      }
    }
  }

  // AJ 1a: inner equi-join over a foreign key constraint guarantees
  // exactly one match.
  if (!analysis.right_exactly_one && analysis.pure_equi &&
      join.join_type() == JoinType::kInner && analysis.right_at_most_one &&
      join.right()->kind() == OpKind::kScan) {
    const auto& right_scan = static_cast<const ScanOp&>(*join.right());
    // All left join columns must originate, un-null-extended, from one
    // scan whose table declares a matching FK to the right table.
    uint64_t left_source = 0;
    bool ok = !analysis.equi_pairs.empty();
    std::vector<std::string> fk_cols, ref_cols;
    for (const auto& [l, r] : analysis.equi_pairs) {
      auto lit = left_props.origins.find(l);
      auto rit = right_props.origins.find(r);
      if (lit == left_props.origins.end() ||
          rit == right_props.origins.end() || lit->second.null_extended) {
        ok = false;
        break;
      }
      if (left_source == 0) {
        left_source = lit->second.source_id;
      } else if (left_source != lit->second.source_id) {
        ok = false;
        break;
      }
      fk_cols.push_back(lit->second.column);
      ref_cols.push_back(rit->second.column);
    }
    if (ok && left_source != 0) {
      std::shared_ptr<const ScanOp> left_scan =
          FindScanById(join.left(), left_source);
      if (left_scan) {
        for (const ForeignKeyDef& fk : left_scan->table_schema().foreign_keys()) {
          if (!EqualsIgnoreCase(fk.referenced_table,
                                right_scan.table_name())) {
            continue;
          }
          if (fk.columns.size() != fk_cols.size()) continue;
          // Match columns as unordered pairs.
          bool all_match = true;
          for (size_t i = 0; i < fk_cols.size(); ++i) {
            bool found = false;
            for (size_t j = 0; j < fk.columns.size(); ++j) {
              if (EqualsIgnoreCase(fk.columns[j], fk_cols[i]) &&
                  EqualsIgnoreCase(fk.referenced_columns[j], ref_cols[i])) {
                found = true;
                break;
              }
            }
            if (!found) {
              all_match = false;
              break;
            }
          }
          // FK columns must be NOT NULL for a guaranteed match.
          if (all_match) {
            for (const std::string& col : fk.columns) {
              int idx = left_scan->table_schema().FindColumn(col);
              if (idx < 0 ||
                  left_scan->table_schema()
                      .column(static_cast<size_t>(idx))
                      .nullable) {
                all_match = false;
                break;
              }
            }
          }
          if (all_match) {
            analysis.right_exactly_one = true;
            break;
          }
        }
      }
    }
  }

  bool left_outer = join.join_type() == JoinType::kLeftOuter;
  analysis.purely_augmenting =
      (left_outer && analysis.right_at_most_one) ||
      (!left_outer && analysis.right_exactly_one);
  return analysis;
}

}  // namespace vdm
