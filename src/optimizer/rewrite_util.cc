#include "optimizer/rewrite_util.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "expr/fold.h"

namespace vdm {

PlanRef FindNodeById(const PlanRef& plan, uint64_t id) {
  if (plan->id() == id) return plan;
  for (const PlanRef& child : plan->children()) {
    PlanRef found = FindNodeById(child, id);
    if (found) return found;
  }
  return nullptr;
}

bool ContainsNode(const PlanRef& plan, uint64_t id) {
  return FindNodeById(plan, id) != nullptr;
}

void CollectScanPredicates(const PlanRef& plan, uint64_t source_id,
                           const DerivationConfig& dcfg,
                           std::vector<ExprRef>* out) {
  if (plan->kind() == OpKind::kFilter) {
    const auto& filter = static_cast<const FilterOp&>(*plan);
    RelProps child_props = DeriveProps(plan->child(0), dcfg);
    for (const ExprRef& conjunct : SplitConjuncts(filter.predicate())) {
      bool ok = true;
      ExprRef base_form =
          RemapColumns(conjunct, [&](const std::string& name) -> ExprRef {
            auto it = child_props.origins.find(name);
            if (it == child_props.origins.end() ||
                it->second.source_id != source_id ||
                it->second.null_extended) {
              ok = false;
              return nullptr;
            }
            return Col(it->second.column);
          });
      if (ok) out->push_back(std::move(base_form));
    }
  }
  for (const PlanRef& child : plan->children()) {
    CollectScanPredicates(child, source_id, dcfg, out);
  }
}

namespace {

std::optional<Exposure> ExposeAtScan(
    const std::shared_ptr<const ScanOp>& scan,
    const std::vector<std::string>& base_cols) {
  Exposure result;
  std::vector<size_t> columns = scan->column_indexes();
  for (const std::string& bc : base_cols) {
    int idx = scan->table_schema().FindColumn(bc);
    if (idx < 0) return std::nullopt;
    size_t schema_idx = static_cast<size_t>(idx);
    if (std::find(columns.begin(), columns.end(), schema_idx) ==
        columns.end()) {
      columns.push_back(schema_idx);
    }
    result.base_to_name[bc] = scan->QualifiedName(schema_idx);
  }
  result.plan = columns == scan->column_indexes()
                    ? PlanRef(scan)
                    : scan->WithColumns(std::move(columns));
  return result;
}

std::optional<Exposure> ExposeAtUnion(
    const std::shared_ptr<const UnionAllOp>& u,
    const std::vector<std::string>& base_cols,
    const DerivationConfig& dcfg) {
  // Each child must expose each base column; columns are appended in the
  // same order to every child so positions line up.
  std::vector<PlanRef> new_children;
  for (const PlanRef& child : u->children()) {
    RelProps child_props = DeriveProps(child, dcfg);
    std::vector<std::string> child_names = child->OutputNames();
    // Which columns are already available, and which scan to widen for the
    // missing ones?
    std::map<std::string, std::string> available;  // base col -> child name
    uint64_t branch_scan = 0;
    for (const auto& [name, origin] : child_props.origins) {
      if (origin.null_extended) continue;
      if (available.count(origin.column) == 0) {
        available[origin.column] = name;
      }
      if (branch_scan == 0) branch_scan = origin.source_id;
    }
    std::vector<std::string> missing;
    for (const std::string& bc : base_cols) {
      if (available.count(bc) == 0) missing.push_back(bc);
    }
    PlanRef widened = child;
    std::map<std::string, std::string> exposed_names;
    if (!missing.empty()) {
      if (branch_scan == 0) return std::nullopt;
      std::optional<Exposure> e =
          ExposeColumns(child, branch_scan, missing, dcfg);
      if (!e.has_value()) return std::nullopt;
      widened = e->plan;
      exposed_names = e->base_to_name;
    }
    // Normalize: original child columns in order, then the base columns.
    std::vector<ProjectOp::Item> items;
    for (const std::string& name : child_names) {
      items.push_back({Col(name), name});
    }
    for (const std::string& bc : base_cols) {
      auto it = available.find(bc);
      std::string src = it != available.end() ? it->second
                                              : exposed_names[bc];
      items.push_back({Col(src), src + "$exp"});
    }
    new_children.push_back(
        std::make_shared<ProjectOp>(widened, std::move(items)));
  }
  Exposure result;
  std::vector<std::string> names = u->output_names();
  for (const std::string& bc : base_cols) {
    std::string name = StrFormat("__exp%llu.%s",
                                 static_cast<unsigned long long>(u->id()),
                                 bc.c_str());
    result.base_to_name[bc] = name;
    names.push_back(std::move(name));
  }
  result.plan = std::make_shared<UnionAllOp>(
      std::move(new_children), std::move(names), u->branch_id_column(),
      u->logical_table());
  return result;
}

}  // namespace

std::optional<Exposure> ExposeColumns(const PlanRef& plan, uint64_t source_id,
                                      const std::vector<std::string>& base_cols,
                                      const DerivationConfig& dcfg) {
  if (plan->id() == source_id) {
    if (plan->kind() == OpKind::kScan) {
      return ExposeAtScan(std::static_pointer_cast<const ScanOp>(plan),
                          base_cols);
    }
    if (plan->kind() == OpKind::kUnionAll) {
      return ExposeAtUnion(std::static_pointer_cast<const UnionAllOp>(plan),
                           base_cols, dcfg);
    }
    return std::nullopt;
  }
  switch (plan->kind()) {
    case OpKind::kFilter:
    case OpKind::kSort:
    case OpKind::kLimit: {
      std::optional<Exposure> e =
          ExposeColumns(plan->child(0), source_id, base_cols, dcfg);
      if (!e.has_value()) return std::nullopt;
      e->plan = plan->WithChildren({e->plan});
      return e;
    }
    case OpKind::kProject: {
      const auto& project = static_cast<const ProjectOp&>(*plan);
      std::optional<Exposure> e =
          ExposeColumns(plan->child(0), source_id, base_cols, dcfg);
      if (!e.has_value()) return std::nullopt;
      std::vector<ProjectOp::Item> items = project.items();
      std::set<std::string> out_names;
      for (const ProjectOp::Item& item : items) out_names.insert(item.name);
      std::map<std::string, std::string> mapped;
      for (const std::string& bc : base_cols) {
        const std::string& child_name = e->base_to_name.at(bc);
        // Reuse an existing pass-through item if present.
        std::string found;
        for (const ProjectOp::Item& item : items) {
          if (item.expr->kind() == ExprKind::kColumnRef &&
              static_cast<const ColumnRefExpr&>(*item.expr).name() ==
                  child_name) {
            found = item.name;
            break;
          }
        }
        if (found.empty()) {
          std::string out_name = child_name;
          while (out_names.count(out_name) > 0) out_name += "$e";
          items.push_back({Col(child_name), out_name});
          out_names.insert(out_name);
          found = out_name;
        }
        mapped[bc] = found;
      }
      Exposure result;
      result.plan = std::make_shared<ProjectOp>(e->plan, std::move(items));
      result.base_to_name = std::move(mapped);
      return result;
    }
    case OpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(*plan);
      bool in_left = ContainsNode(join.left(), source_id);
      const PlanRef& side = in_left ? join.left() : join.right();
      std::optional<Exposure> e =
          ExposeColumns(side, source_id, base_cols, dcfg);
      if (!e.has_value()) return std::nullopt;
      e->plan = std::make_shared<JoinOp>(
          in_left ? e->plan : join.left(), in_left ? join.right() : e->plan,
          join.join_type(), join.condition(), join.declared_cardinality(),
          join.is_case_join());
      return e;
    }
    default:
      // Aggregates, DISTINCT, and union-alls on the path (other than the
      // source itself) block exposure.
      return std::nullopt;
  }
}

}  // namespace vdm
