// Relational property derivation: unique keys, constant bindings, and
// column provenance. This is the engineering core the paper calls out in
// §4.3 — "UAJ optimization doesn't demand novel algorithms but does require
// strong engineering to accurately derive join cardinality".
//
// Derivation is *capability-gated* by DerivationConfig: switching individual
// derivation features off reproduces the behaviour of the weaker optimizers
// in the paper's Tables 1–4 (see optimizer.h SystemProfile).
#ifndef VDMQO_OPTIMIZER_PROPERTIES_H_
#define VDMQO_OPTIMIZER_PROPERTIES_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/infer/inference.h"
#include "plan/logical_plan.h"
#include "types/value.h"

namespace vdm {

/// Which derivation features are active. Each flag corresponds to a
/// capability the paper probes with one of its micro-queries.
struct DerivationConfig {
  /// Derive keys from base-table unique constraints (UAJ 1). All evaluated
  /// systems except "System X" do this.
  bool base_table_keys = true;
  /// Derive a key from GROUP BY columns (UAJ 2 / AJ 2a-2).
  bool groupby_keys = true;
  /// Reduce composite keys by filter-pinned constants (UAJ 3 / AJ 2a-3).
  bool const_pinning = true;
  /// Propagate keys through join operators (UAJ 1a / 3a).
  bool keys_through_joins = true;
  /// Propagate keys through ORDER BY / LIMIT (UAJ 1b).
  bool keys_through_order_limit = true;
  /// Derive keys through UNION ALL via disjoint branches or branch ids
  /// (Fig. 12). Only SAP HANA does this.
  bool keys_through_union_all = true;
  /// Honor declared (unenforced) join cardinalities (§7.3).
  bool trust_declared_cardinality = true;
};

/// The inference engine (analysis/infer) is gated by the same capability
/// flags; this keeps one profile definition authoritative for both.
InferOptions ToInferOptions(const DerivationConfig& config);

/// Where an output column comes from: a pass-through path to a base-table
/// scan (or to a table-like UNION ALL node). Drives ASJ rewiring.
struct ColumnOrigin {
  /// Node id of the originating ScanOp, or of a table-like UnionAllOp.
  uint64_t source_id = 0;
  /// Base (or logical) table name, lower-cased.
  std::string table;
  /// Base column name (unqualified).
  std::string column;
  /// True if the path from the source crosses the null-padded side of an
  /// outer join — then the value may be NULL even if the base column isn't.
  bool null_extended = false;
};

struct RelProps {
  /// Sets of output-column names guaranteed duplicate-free. Kept small and
  /// deduplicated; order of columns inside a key is sorted.
  std::vector<std::vector<std::string>> unique_keys;
  /// Output columns pinned to a literal by filters/projections.
  std::map<std::string, Value> constants;
  /// Provenance of pass-through output columns.
  std::map<std::string, ColumnOrigin> origins;
  /// Base-table columns pinned by predicates anywhere in the subtree,
  /// keyed "table.column" — even when the column is not projected. Used to
  /// certify UNION ALL branch disjointness (Fig. 12(a)).
  std::map<std::string, Value> base_constants;
  /// True if the relation is statically known to be empty (AJ 2b).
  bool empty_relation = false;

  bool HasKey(const std::vector<std::string>& available) const;
  void AddKey(std::vector<std::string> key);
  std::string ToString() const;
};

/// Derives properties bottom-up. Results are not cached across calls; plans
/// here are small enough that recomputation is cheap and always consistent.
RelProps DeriveProps(const PlanRef& plan, const DerivationConfig& config);

/// Join-cardinality analysis of a JoinOp (paper §4.2).
struct JoinAnalysis {
  /// Every left row matches at most one right row.
  bool right_at_most_one = false;
  /// Every left row matches exactly one right row (FK or declared).
  bool right_exactly_one = false;
  /// Purely augmenting: LEFT OUTER + at-most-one (AJ 2), or INNER +
  /// exactly-one (AJ 1). Such a join neither filters nor duplicates.
  bool purely_augmenting = false;
  /// Equi-join pairs (left output name, right output name).
  std::vector<std::pair<std::string, std::string>> equi_pairs;
  /// True if the condition consists solely of column=column equalities
  /// (plus literal TRUE conjuncts).
  bool pure_equi = true;
};

JoinAnalysis AnalyzeJoin(const JoinOp& join, const RelProps& left_props,
                         const RelProps& right_props,
                         const DerivationConfig& config);

}  // namespace vdm

#endif  // VDMQO_OPTIMIZER_PROPERTIES_H_
