// The rule-based optimizer and its capability profiles.
//
// OptimizerConfig switches each paper-relevant rewrite on or off. The five
// SystemProfile presets reproduce the capability sets the paper observed in
// SAP HANA Cloud, PostgreSQL 17, and the three anonymous commercial systems
// (Tables 1–4); running the same query under different profiles regenerates
// the paper's Y/- matrices and the corresponding runtime differences.
#ifndef VDMQO_OPTIMIZER_OPTIMIZER_H_
#define VDMQO_OPTIMIZER_OPTIMIZER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/properties.h"
#include "plan/logical_plan.h"

namespace vdm {

/// Observer interface the optimizer driver calls after every pass that
/// reported a change (see OptimizerConfig::verify_rewrites). Implemented by
/// analysis/RewriteAuditor; declared here so the optimizer does not depend
/// on the analysis library. Returning an error aborts optimization and is
/// surfaced through Optimizer::OptimizeChecked.
class PlanVerificationHook {
 public:
  virtual ~PlanVerificationHook() = default;
  /// `pass_name` identifies the rewrite pass; `before`/`after` are the plan
  /// going into and coming out of the pass.
  virtual Status AfterPass(const std::string& pass_name,
                           const PlanRef& before, const PlanRef& after) = 0;
};

struct OptimizerConfig {
  // --- generic rewrites (implemented by every evaluated system) ---
  bool constant_folding = true;
  bool filter_pushdown = true;
  bool projection_pruning = true;

  // --- UAJ elimination (§4, Table 1) ---
  bool uaj_elimination = true;
  DerivationConfig derivation;

  // --- Limit pushdown across augmentation joins (§4.4, Table 2) ---
  bool limit_pushdown_over_aj = true;

  // --- ASJ elimination (§5, Table 3) and UNION ALL extensions (§6) ---
  bool asj_elimination = true;
  bool asj_union_all_anchor = true;  // Fig. 13(a)
  /// Fig. 13(b): recognize ASJ with UNION ALL on *both* sides. Without the
  /// explicit case-join intent this recognition is deliberately fragile
  /// (only canonical shapes), mirroring Fig. 14(a); with a case join the
  /// augmenter subtree is preserved and matching is robust (Fig. 14(b)).
  bool case_join = true;
  /// General self-join elimination over arbitrary same-table pairs, proven
  /// by the shared static inference engine (analysis/infer): both sides
  /// unique on the join column set via join clauses or per-side constant
  /// equalities, all outputs computable from one side (ROADMAP item 5).
  bool selfjoin_general = true;

  // --- aggregation (§7.1) ---
  bool agg_pushdown = true;
  bool allow_precision_loss_rewrites = true;

  // --- cost-based join ordering (substrate; §2.2) ---
  bool join_reordering = true;
  /// Statistics source for cardinality estimates; may be null (falls back
  /// to defaults). Set automatically by Database::OptimizePlan.
  const Catalog* stats_catalog = nullptr;

  // --- misc ---
  bool distinct_elimination = true;
  /// Fixpoint iteration cap.
  int max_passes = 10;

  // --- rewrite verification (src/analysis/) ---
  /// Run the verification hook after every pass that changed the plan.
  /// Database::OptimizePlan installs a RewriteAuditor automatically when
  /// this is set and no hook is given.
  bool verify_rewrites = false;
  /// When additionally set, the auditor executes before/after plans against
  /// real data and diffs the results (slow; small data sets only).
  bool verify_rewrites_exec = false;
  /// The hook itself; not owned. Only consulted when verify_rewrites is on.
  PlanVerificationHook* verification_hook = nullptr;
  /// Test-only fault injection: after the named pass first fires, the driver
  /// deliberately corrupts the plan (drops the last output column) so tests
  /// can prove the auditor catches broken rewrites. Never set in production.
  const char* debug_corrupt_pass = nullptr;
};

/// Capability presets named after the paper's Table 1–4 columns.
enum class SystemProfile {
  kHana,      // full capability set: everything on
  kPostgres,  // UAJ 1/2/3/2a only; no limit-on-AJ, no ASJ, no union-all
  kSystemX,   // no UAJ at all
  kSystemY,   // UAJ 1 and 3 only
  kSystemZ,   // all UAJ except 1b (no keys through order/limit)
  kNone,      // optimizer disabled (raw view expansion — paper Fig. 3)
};

OptimizerConfig ConfigForProfile(SystemProfile profile);
std::string ProfileName(SystemProfile profile);

class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config) : config_(std::move(config)) {}
  explicit Optimizer(SystemProfile profile)
      : Optimizer(ConfigForProfile(profile)) {}

  const OptimizerConfig& config() const { return config_; }

  /// Rewrites the plan to fixpoint (bounded by config.max_passes).
  /// Aborts on verification-hook failure; use OptimizeChecked when a hook
  /// is installed.
  PlanRef Optimize(const PlanRef& plan) const;

  /// Like Optimize, but surfaces verification-hook failures as a Status.
  /// With verification off the behaviour is identical to Optimize().
  Result<PlanRef> OptimizeChecked(const PlanRef& plan) const;

  /// True if the last Optimize/OptimizeChecked call reached a fixpoint
  /// before exhausting config.max_passes. False means the returned plan may
  /// be under-optimized (more passes would have changed it further).
  bool last_run_converged() const { return last_converged_; }

 private:
  OptimizerConfig config_;
  mutable bool last_converged_ = true;
};

// ---------------------------------------------------------------------------
// Individual passes, exposed for unit testing. Each returns the rewritten
// plan and sets *changed when a rewrite fired.

/// Folds literal expressions in filters/projections; removes always-true
/// filters; marks/propagates always-false filters.
PlanRef PassConstantFolding(const PlanRef& plan, const OptimizerConfig& config,
                            bool* changed);

/// Pushes filters through projects, into join sides, through union all.
PlanRef PassFilterPushdown(const PlanRef& plan, const OptimizerConfig& config,
                           bool* changed);

/// Combined projection pruning and unused-augmentation-join elimination:
/// a single top-down pass carrying the required-column set (§4.3).
PlanRef PassPruneAndEliminate(const PlanRef& plan,
                              const OptimizerConfig& config, bool* changed);

/// Augmentation self-join elimination (§5.3, §6.3).
PlanRef PassAsjElimination(const PlanRef& plan, const OptimizerConfig& config,
                           bool* changed);

/// General self-join elimination driven by the inference engine.
PlanRef PassSelfJoinGeneral(const PlanRef& plan, const OptimizerConfig& config,
                            bool* changed);

/// The single-join core of PassSelfJoinGeneral, exposed so the vdmlint
/// catalog audit can probe exactly what the optimizer would remove.
/// Returns the replacement subtree, or nullptr if the join is not a
/// provably removable self-join.
PlanRef TryEliminateGeneralSelfJoin(const std::shared_ptr<const JoinOp>& join,
                                    const OptimizerConfig& config);

/// Limit pushdown across augmentation joins and projections (§4.4).
PlanRef PassLimitPushdown(const PlanRef& plan, const OptimizerConfig& config,
                          bool* changed);

/// allow_precision_loss rewrites + eager aggregation below augmentation
/// joins (§7.1).
PlanRef PassAggregatePushdown(const PlanRef& plan,
                              const OptimizerConfig& config, bool* changed);

/// Cost-based join reordering (DESIGN.md §14): exhaustive DP over small
/// flattened chains, greedy over large ones, driven by the stats-backed
/// cardinality estimator. Chooses build sides too. Runs once after the
/// fixpoint loop, not inside it.
PlanRef PassJoinOrder(const PlanRef& plan, const OptimizerConfig& config,
                      bool* changed);

/// Removes DISTINCT over inputs that are already duplicate-free.
PlanRef PassDistinctElimination(const PlanRef& plan,
                                const OptimizerConfig& config, bool* changed);

/// Final annotation step (not a rewrite pass): records each remaining
/// LIMIT's row budget on the joins below it (JoinOp::limit_hint), so the
/// executor's probe loops can stop early even when the LimitOp could not
/// sink. Plan semantics and rendering are unchanged. Runs after the pass
/// loop in Optimize/OptimizeChecked; exposed for tests.
PlanRef AnnotateJoinLimitHints(const PlanRef& plan);

}  // namespace vdm

#endif  // VDMQO_OPTIMIZER_OPTIMIZER_H_
