// Combined projection pruning and unused-augmentation-join (UAJ)
// elimination (paper §4). A single top-down pass carries the set of columns
// required by ancestors; a join whose right side contributes no required
// column and is *purely augmenting* (AJ 1 / AJ 2) is replaced by its anchor.
//
// The `arity_flexible` flag tracks whether the current subtree's output
// column list may shrink (true below Project/Aggregate; false below a
// UNION ALL child or DISTINCT, whose semantics are positional/whole-row).
#include <algorithm>
#include <set>

#include "optimizer/optimizer.h"

namespace vdm {

namespace {

using NameSet = std::set<std::string>;

void AddRefs(const ExprRef& expr, NameSet* out) {
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  out->insert(refs.begin(), refs.end());
}

PlanRef Prune(const PlanRef& plan, const NameSet& required,
              bool arity_flexible, const OptimizerConfig& config,
              bool* changed);

PlanRef PruneScan(const std::shared_ptr<const ScanOp>& scan,
                  const NameSet& required, bool arity_flexible,
                  const OptimizerConfig& config, bool* changed) {
  if (!arity_flexible || !config.projection_pruning) return scan;
  std::vector<size_t> kept;
  for (size_t i = 0; i < scan->column_indexes().size(); ++i) {
    size_t schema_idx = scan->column_indexes()[i];
    if (required.count(scan->QualifiedName(schema_idx)) > 0) {
      kept.push_back(schema_idx);
    }
  }
  if (kept.empty()) {
    // Keep one column so the scan still yields a row count (e.g. for
    // count(*)): prefer the first primary-key column.
    std::vector<std::string> pk = scan->table_schema().PrimaryKey();
    size_t keep_idx = scan->column_indexes().empty()
                          ? 0
                          : scan->column_indexes()[0];
    if (!pk.empty()) {
      int idx = scan->table_schema().FindColumn(pk[0]);
      if (idx >= 0) keep_idx = static_cast<size_t>(idx);
    }
    kept.push_back(keep_idx);
  }
  if (kept == scan->column_indexes()) return scan;
  *changed = true;
  return scan->WithColumns(std::move(kept));
}

PlanRef PruneProject(const std::shared_ptr<const ProjectOp>& project,
                     const NameSet& required, bool arity_flexible,
                     const OptimizerConfig& config, bool* changed) {
  std::vector<ProjectOp::Item> kept;
  if (arity_flexible && config.projection_pruning) {
    for (const ProjectOp::Item& item : project->items()) {
      if (required.count(item.name) > 0) kept.push_back(item);
    }
    if (kept.empty()) kept.push_back(project->items()[0]);
  } else {
    kept = project->items();
  }
  NameSet child_required;
  for (const ProjectOp::Item& item : kept) AddRefs(item.expr, &child_required);
  PlanRef new_child =
      Prune(project->child(0), child_required, /*arity_flexible=*/true,
            config, changed);
  if (kept.size() == project->items().size() &&
      new_child == project->child(0)) {
    return project;
  }
  *changed = true;
  return std::make_shared<ProjectOp>(std::move(new_child), std::move(kept));
}

PlanRef PruneJoin(const std::shared_ptr<const JoinOp>& join,
                  const NameSet& required, bool arity_flexible,
                  const OptimizerConfig& config, bool* changed) {
  std::vector<std::string> left_names = join->left()->OutputNames();
  std::vector<std::string> right_names = join->right()->OutputNames();
  NameSet left_set(left_names.begin(), left_names.end());
  NameSet right_set(right_names.begin(), right_names.end());

  bool right_used = false, left_used = false;
  for (const std::string& name : required) {
    if (right_set.count(name) > 0) right_used = true;
    if (left_set.count(name) > 0) left_used = true;
  }

  if (!right_used && arity_flexible && config.uaj_elimination) {
    RelProps left_props = DeriveProps(join->left(), config.derivation);
    RelProps right_props = DeriveProps(join->right(), config.derivation);
    JoinAnalysis analysis =
        AnalyzeJoin(*join, left_props, right_props, config.derivation);
    if (analysis.purely_augmenting) {
      *changed = true;
      return Prune(join->left(), required, arity_flexible, config, changed);
    }
  }
  // Inner joins are symmetric: an unused *left* side that augments the
  // right (e.g. the referenced side of a foreign key after join
  // reordering) is removable too.
  if (!left_used && arity_flexible && config.uaj_elimination &&
      join->join_type() == JoinType::kInner) {
    auto flipped = std::make_shared<JoinOp>(
        join->right(), join->left(), JoinType::kInner, join->condition(),
        DeclaredCardinality::kNone, join->is_case_join());
    RelProps left_props = DeriveProps(flipped->left(), config.derivation);
    RelProps right_props = DeriveProps(flipped->right(), config.derivation);
    JoinAnalysis analysis =
        AnalyzeJoin(*flipped, left_props, right_props, config.derivation);
    if (analysis.purely_augmenting) {
      *changed = true;
      return Prune(join->right(), required, arity_flexible, config, changed);
    }
  }

  NameSet cond_refs;
  AddRefs(join->condition(), &cond_refs);
  NameSet left_required, right_required;
  for (const std::string& name : required) {
    if (left_set.count(name) > 0) left_required.insert(name);
    if (right_set.count(name) > 0) right_required.insert(name);
  }
  for (const std::string& name : cond_refs) {
    if (left_set.count(name) > 0) left_required.insert(name);
    if (right_set.count(name) > 0) right_required.insert(name);
  }
  PlanRef new_left =
      Prune(join->left(), left_required, arity_flexible, config, changed);
  PlanRef new_right =
      Prune(join->right(), right_required, arity_flexible, config, changed);
  if (new_left == join->left() && new_right == join->right()) return join;
  return join->WithChildren({std::move(new_left), std::move(new_right)});
}

PlanRef PruneUnionAll(const std::shared_ptr<const UnionAllOp>& u,
                      const NameSet& required, bool arity_flexible,
                      const OptimizerConfig& config, bool* changed) {
  size_t arity = u->output_names().size();
  std::vector<size_t> kept_positions;
  if (arity_flexible && config.projection_pruning) {
    for (size_t p = 0; p < arity; ++p) {
      if (required.count(u->output_names()[p]) > 0) kept_positions.push_back(p);
    }
    if (kept_positions.empty()) kept_positions.push_back(0);
  } else {
    for (size_t p = 0; p < arity; ++p) kept_positions.push_back(p);
  }

  bool shrink = kept_positions.size() < arity;
  std::vector<PlanRef> new_children;
  bool any_child_changed = false;
  for (const PlanRef& child : u->children()) {
    std::vector<std::string> child_names = child->OutputNames();
    NameSet child_required;
    std::vector<std::string> kept_child_names;
    for (size_t p : kept_positions) {
      child_required.insert(child_names[p]);
      kept_child_names.push_back(child_names[p]);
    }
    PlanRef new_child =
        Prune(child, child_required, /*arity_flexible=*/true, config, changed);
    // Normalize the child to exactly the kept columns, in order.
    std::vector<std::string> actual = new_child->OutputNames();
    if (actual != kept_child_names) {
      std::vector<ProjectOp::Item> items;
      for (const std::string& name : kept_child_names) {
        items.push_back({Col(name), name});
      }
      new_child = std::make_shared<ProjectOp>(new_child, std::move(items));
    }
    any_child_changed |= (new_child != child);
    new_children.push_back(std::move(new_child));
  }
  if (!shrink && !any_child_changed) return u;
  *changed = true;

  std::vector<std::string> new_names;
  int new_branch = -1;
  for (size_t i = 0; i < kept_positions.size(); ++i) {
    new_names.push_back(u->output_names()[kept_positions[i]]);
    if (u->branch_id_column() >= 0 &&
        kept_positions[i] == static_cast<size_t>(u->branch_id_column())) {
      new_branch = static_cast<int>(i);
    }
  }
  return std::make_shared<UnionAllOp>(std::move(new_children),
                                      std::move(new_names), new_branch,
                                      u->logical_table());
}

PlanRef Prune(const PlanRef& plan, const NameSet& required,
              bool arity_flexible, const OptimizerConfig& config,
              bool* changed) {
  switch (plan->kind()) {
    case OpKind::kScan:
      return PruneScan(std::static_pointer_cast<const ScanOp>(plan), required,
                       arity_flexible, config, changed);
    case OpKind::kFilter: {
      const auto& filter = static_cast<const FilterOp&>(*plan);
      NameSet child_required = required;
      AddRefs(filter.predicate(), &child_required);
      PlanRef new_child =
          Prune(plan->child(0), child_required, arity_flexible, config,
                changed);
      if (new_child == plan->child(0)) return plan;
      return plan->WithChildren({std::move(new_child)});
    }
    case OpKind::kProject:
      return PruneProject(std::static_pointer_cast<const ProjectOp>(plan),
                          required, arity_flexible, config, changed);
    case OpKind::kJoin:
      return PruneJoin(std::static_pointer_cast<const JoinOp>(plan), required,
                       arity_flexible, config, changed);
    case OpKind::kAggregate: {
      const auto& agg = static_cast<const AggregateOp&>(*plan);
      // Unused aggregate items can be dropped (group items cannot — they
      // define the grouping semantics).
      std::vector<AggregateOp::AggItem> kept_aggs;
      if (arity_flexible && config.projection_pruning) {
        for (const AggregateOp::AggItem& item : agg.aggregates()) {
          if (required.count(item.name) > 0) kept_aggs.push_back(item);
        }
        if (kept_aggs.empty() && agg.group_by().empty() &&
            !agg.aggregates().empty()) {
          kept_aggs.push_back(agg.aggregates()[0]);
        }
      } else {
        kept_aggs = agg.aggregates();
      }
      NameSet child_required;
      for (const AggregateOp::GroupItem& g : agg.group_by()) {
        AddRefs(g.expr, &child_required);
      }
      for (const AggregateOp::AggItem& a : kept_aggs) {
        AddRefs(a.expr, &child_required);
      }
      PlanRef new_child = Prune(plan->child(0), child_required,
                                /*arity_flexible=*/true, config, changed);
      if (new_child == plan->child(0) &&
          kept_aggs.size() == agg.aggregates().size()) {
        return plan;
      }
      *changed = true;
      return std::make_shared<AggregateOp>(std::move(new_child),
                                           agg.group_by(),
                                           std::move(kept_aggs));
    }
    case OpKind::kUnionAll:
      return PruneUnionAll(std::static_pointer_cast<const UnionAllOp>(plan),
                           required, arity_flexible, config, changed);
    case OpKind::kSort: {
      const auto& sort = static_cast<const SortOp&>(*plan);
      NameSet child_required = required;
      for (const SortOp::SortKey& key : sort.keys()) {
        AddRefs(key.expr, &child_required);
      }
      PlanRef new_child = Prune(plan->child(0), child_required,
                                arity_flexible, config, changed);
      if (new_child == plan->child(0)) return plan;
      return plan->WithChildren({std::move(new_child)});
    }
    case OpKind::kLimit: {
      PlanRef new_child =
          Prune(plan->child(0), required, arity_flexible, config, changed);
      if (new_child == plan->child(0)) return plan;
      return plan->WithChildren({std::move(new_child)});
    }
    case OpKind::kDistinct: {
      // All child columns are semantically used by DISTINCT; the child's
      // arity must not change.
      std::vector<std::string> child_names = plan->child(0)->OutputNames();
      NameSet child_required(child_names.begin(), child_names.end());
      PlanRef new_child = Prune(plan->child(0), child_required,
                                /*arity_flexible=*/false, config, changed);
      if (new_child == plan->child(0)) return plan;
      return plan->WithChildren({std::move(new_child)});
    }
  }
  return plan;
}

}  // namespace

PlanRef PassPruneAndEliminate(const PlanRef& plan,
                              const OptimizerConfig& config, bool* changed) {
  std::vector<std::string> outputs = plan->OutputNames();
  NameSet required(outputs.begin(), outputs.end());
  // The root's output columns are the query result and must be preserved.
  return Prune(plan, required, /*arity_flexible=*/false, config, changed);
}

}  // namespace vdm
