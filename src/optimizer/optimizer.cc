#include "optimizer/optimizer.h"

#include <cstdio>
#include <string_view>

namespace vdm {

OptimizerConfig ConfigForProfile(SystemProfile profile) {
  OptimizerConfig config;
  switch (profile) {
    case SystemProfile::kHana:
      // Everything on (defaults).
      break;
    case SystemProfile::kPostgres:
      // Table 1: Y on UAJ 1, 2, 3, 2a — base keys, group-by keys, constant
      // pinning; no key propagation through joins or order/limit.
      config.derivation.keys_through_joins = false;
      config.derivation.keys_through_order_limit = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.selfjoin_general = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kSystemX:
      // Table 1: no UAJ optimization at all.
      config.uaj_elimination = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.selfjoin_general = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kSystemY:
      // Table 1: Y on UAJ 1 and UAJ 3 only.
      config.derivation.groupby_keys = false;
      config.derivation.keys_through_joins = false;
      config.derivation.keys_through_order_limit = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.selfjoin_general = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kSystemZ:
      // Table 1: Y on everything except UAJ 1b.
      config.derivation.keys_through_order_limit = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.selfjoin_general = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kNone:
      config.constant_folding = false;
      config.join_reordering = false;
      config.filter_pushdown = false;
      config.projection_pruning = false;
      config.uaj_elimination = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.selfjoin_general = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      config.distinct_elimination = false;
      break;
  }
  return config;
}

std::string ProfileName(SystemProfile profile) {
  switch (profile) {
    case SystemProfile::kHana:
      return "HANA";
    case SystemProfile::kPostgres:
      return "Postgres";
    case SystemProfile::kSystemX:
      return "System X";
    case SystemProfile::kSystemY:
      return "System Y";
    case SystemProfile::kSystemZ:
      return "System Z";
    case SystemProfile::kNone:
      return "Unoptimized";
  }
  return "?";
}

namespace {

/// Fault injection for the rewrite auditor tests: projects away the last
/// output column, a schema-drift bug a sound pass can never introduce.
PlanRef DropLastColumnForTesting(const PlanRef& plan) {
  std::vector<std::string> names = plan->OutputNames();
  if (names.size() <= 1) return plan;
  std::vector<ProjectOp::Item> items;
  items.reserve(names.size() - 1);
  for (size_t i = 0; i + 1 < names.size(); ++i) {
    items.push_back({Col(names[i]), names[i]});
  }
  return std::make_shared<ProjectOp>(plan, std::move(items));
}

}  // namespace

PlanRef Optimizer::Optimize(const PlanRef& plan) const {
  Result<PlanRef> checked = OptimizeChecked(plan);
  if (!checked.ok()) {
    std::fprintf(stderr, "Optimizer::Optimize: %s\n",
                 checked.status().ToString().c_str());
    std::abort();
  }
  return *checked;
}

Result<PlanRef> Optimizer::OptimizeChecked(const PlanRef& plan) const {
  using PassFn = PlanRef (*)(const PlanRef&, const OptimizerConfig&, bool*);
  struct PassDef {
    const char* name;
    bool enabled;
    PassFn fn;
  };
  // Pass order matters; keep in sync with the headers' pass descriptions.
  // Join ordering is NOT in the fixpoint loop: it runs once afterwards, on
  // the final logical shape, so its cost decisions see the plan the other
  // rewrites actually produce (and so filter pushdown cannot re-split the
  // conjuncts the reorderer grouped).
  const PassDef passes[] = {
      {"constant_folding", config_.constant_folding, &PassConstantFolding},
      {"filter_pushdown", config_.filter_pushdown, &PassFilterPushdown},
      {"aggregate_pushdown",
       config_.allow_precision_loss_rewrites || config_.agg_pushdown,
       &PassAggregatePushdown},
      {"asj_elimination", config_.asj_elimination, &PassAsjElimination},
      {"selfjoin_general", config_.selfjoin_general, &PassSelfJoinGeneral},
      {"prune_and_eliminate",
       config_.projection_pruning || config_.uaj_elimination,
       &PassPruneAndEliminate},
      {"distinct_elimination", config_.distinct_elimination,
       &PassDistinctElimination},
      {"limit_pushdown", config_.limit_pushdown_over_aj, &PassLimitPushdown},
  };
  const bool verify =
      config_.verify_rewrites && config_.verification_hook != nullptr;
  // Post-fixpoint finishing step: cost-based join ordering (once, audited
  // like any pass), then the limit-hint annotation.
  auto finish = [&](PlanRef done) -> Result<PlanRef> {
    if (config_.join_reordering) {
      bool fired = false;
      PlanRef before = done;
      done = PassJoinOrder(done, config_, &fired);
      if (fired) {
        if (config_.debug_corrupt_pass != nullptr &&
            std::string_view(config_.debug_corrupt_pass) == "join_order") {
          done = DropLastColumnForTesting(done);
        }
        if (verify) {
          Status audit = config_.verification_hook->AfterPass("join_order",
                                                              before, done);
          if (!audit.ok()) {
            return Status(audit.code(),
                          "rewrite audit failed in pass 'join_order': " +
                              audit.message());
          }
        }
      }
    }
    return AnnotateJoinLimitHints(done);
  };
  PlanRef current = plan;
  last_converged_ = false;
  for (int pass = 0; pass < config_.max_passes; ++pass) {
    bool changed = false;
    for (const PassDef& def : passes) {
      if (!def.enabled) continue;
      bool fired = false;
      PlanRef before = current;
      current = def.fn(current, config_, &fired);
      if (!fired) continue;
      changed = true;
      if (config_.debug_corrupt_pass != nullptr &&
          std::string_view(config_.debug_corrupt_pass) == def.name) {
        current = DropLastColumnForTesting(current);
      }
      if (verify) {
        Status audit =
            config_.verification_hook->AfterPass(def.name, before, current);
        if (!audit.ok()) {
          return Status(audit.code(), "rewrite audit failed in pass '" +
                                          std::string(def.name) +
                                          "': " + audit.message());
        }
      }
    }
    if (!changed) {
      last_converged_ = true;
      return finish(current);
    }
  }
  return finish(current);
}

}  // namespace vdm
