#include "optimizer/optimizer.h"

namespace vdm {

OptimizerConfig ConfigForProfile(SystemProfile profile) {
  OptimizerConfig config;
  switch (profile) {
    case SystemProfile::kHana:
      // Everything on (defaults).
      break;
    case SystemProfile::kPostgres:
      // Table 1: Y on UAJ 1, 2, 3, 2a — base keys, group-by keys, constant
      // pinning; no key propagation through joins or order/limit.
      config.derivation.keys_through_joins = false;
      config.derivation.keys_through_order_limit = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kSystemX:
      // Table 1: no UAJ optimization at all.
      config.uaj_elimination = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kSystemY:
      // Table 1: Y on UAJ 1 and UAJ 3 only.
      config.derivation.groupby_keys = false;
      config.derivation.keys_through_joins = false;
      config.derivation.keys_through_order_limit = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kSystemZ:
      // Table 1: Y on everything except UAJ 1b.
      config.derivation.keys_through_order_limit = false;
      config.derivation.keys_through_union_all = false;
      config.derivation.trust_declared_cardinality = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      break;
    case SystemProfile::kNone:
      config.constant_folding = false;
      config.join_reordering = false;
      config.filter_pushdown = false;
      config.projection_pruning = false;
      config.uaj_elimination = false;
      config.limit_pushdown_over_aj = false;
      config.asj_elimination = false;
      config.asj_union_all_anchor = false;
      config.case_join = false;
      config.agg_pushdown = false;
      config.allow_precision_loss_rewrites = false;
      config.distinct_elimination = false;
      break;
  }
  return config;
}

std::string ProfileName(SystemProfile profile) {
  switch (profile) {
    case SystemProfile::kHana:
      return "HANA";
    case SystemProfile::kPostgres:
      return "Postgres";
    case SystemProfile::kSystemX:
      return "System X";
    case SystemProfile::kSystemY:
      return "System Y";
    case SystemProfile::kSystemZ:
      return "System Z";
    case SystemProfile::kNone:
      return "Unoptimized";
  }
  return "?";
}

PlanRef Optimizer::Optimize(const PlanRef& plan) const {
  PlanRef current = plan;
  for (int pass = 0; pass < config_.max_passes; ++pass) {
    bool changed = false;
    if (config_.constant_folding) {
      current = PassConstantFolding(current, config_, &changed);
    }
    if (config_.filter_pushdown) {
      current = PassFilterPushdown(current, config_, &changed);
    }
    if (config_.join_reordering) {
      current = PassJoinOrder(current, config_, &changed);
    }
    if (config_.allow_precision_loss_rewrites || config_.agg_pushdown) {
      current = PassAggregatePushdown(current, config_, &changed);
    }
    if (config_.asj_elimination) {
      current = PassAsjElimination(current, config_, &changed);
    }
    if (config_.projection_pruning || config_.uaj_elimination) {
      current = PassPruneAndEliminate(current, config_, &changed);
    }
    if (config_.distinct_elimination) {
      current = PassDistinctElimination(current, config_, &changed);
    }
    if (config_.limit_pushdown_over_aj) {
      current = PassLimitPushdown(current, config_, &changed);
    }
    if (!changed) break;
  }
  return current;
}

}  // namespace vdm
