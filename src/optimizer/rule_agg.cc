// Aggregation pushdown across augmentation joins, with the
// allow_precision_loss SQL extension (paper §7.1).
//
// Two rewrites:
//  1. Precision-loss normalization: within an aggregate marked
//     allow_precision_loss, sum(round(e, d)) becomes round(sum(e), d) and
//     sum(e * c) becomes sum(e) * c for a literal c. This lifts rounding
//     and constant factors out of the summation, which is what unblocks
//     the pushdown.
//  2. Eager aggregation: Aggregate over a purely augmenting join, where
//     every aggregate argument references only the anchor, is split into a
//     partial aggregate on the anchor (grouped by the anchor's group
//     columns plus the join keys) and a final aggregate above the join.
#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "optimizer/optimizer.h"

namespace vdm {

namespace {

/// Rewrite rule 1: precision-loss normalization inside one expression.
ExprRef NormalizePrecisionLoss(const ExprRef& expr, bool* changed) {
  return TransformExpr(expr, [&](const ExprRef& node) -> ExprRef {
    if (node->kind() != ExprKind::kAggregate) return nullptr;
    const auto& agg = static_cast<const AggregateExpr&>(*node);
    if (!agg.allow_precision_loss() || agg.agg() != AggKind::kSum ||
        agg.distinct() || !agg.has_arg()) {
      return nullptr;
    }
    const ExprRef& arg = agg.arg();
    // sum(round(e, d)) -> round(sum(e), d)
    if (arg->kind() == ExprKind::kFunction) {
      const auto& fn = static_cast<const FunctionExpr&>(*arg);
      if (fn.name() == "round" && !fn.children().empty()) {
        ExprRef inner_sum = std::make_shared<AggregateExpr>(
            AggKind::kSum, fn.children()[0], false,
            /*allow_precision_loss=*/true);
        std::vector<ExprRef> args{NormalizePrecisionLoss(inner_sum, changed)};
        for (size_t i = 1; i < fn.children().size(); ++i) {
          args.push_back(fn.children()[i]);
        }
        *changed = true;
        return Func("round", std::move(args));
      }
    }
    // sum(e * c) -> sum(e) * c  /  sum(c * e) -> c * sum(e)
    if (arg->kind() == ExprKind::kBinary) {
      const auto& bin = static_cast<const BinaryExpr&>(*arg);
      if (bin.op() == BinaryOpKind::kMul) {
        const ExprRef* factor = nullptr;
        const ExprRef* term = nullptr;
        if (bin.right()->kind() == ExprKind::kLiteral) {
          factor = &bin.right();
          term = &bin.left();
        } else if (bin.left()->kind() == ExprKind::kLiteral) {
          factor = &bin.left();
          term = &bin.right();
        }
        if (factor != nullptr) {
          ExprRef inner_sum = std::make_shared<AggregateExpr>(
              AggKind::kSum, *term, false, /*allow_precision_loss=*/true);
          *changed = true;
          return Bin(BinaryOpKind::kMul,
                     NormalizePrecisionLoss(inner_sum, changed), *factor);
        }
      }
    }
    return nullptr;
  });
}

/// Collects the distinct AggregateExpr nodes inside an expression.
void CollectAggNodes(const ExprRef& expr, std::vector<ExprRef>* out) {
  if (expr->kind() == ExprKind::kAggregate) {
    for (const ExprRef& existing : *out) {
      if (existing->Equals(*expr)) return;
    }
    out->push_back(expr);
    return;
  }
  for (const ExprRef& child : expr->children()) CollectAggNodes(child, out);
}

/// Partial/final function pair for eager aggregation; returns false when
/// the aggregate cannot be decomposed.
bool DecomposeAgg(AggKind kind, bool distinct, AggKind* partial,
                  AggKind* final_fn) {
  if (distinct) return false;
  switch (kind) {
    case AggKind::kSum:
      *partial = AggKind::kSum;
      *final_fn = AggKind::kSum;
      return true;
    case AggKind::kCount:
      *partial = AggKind::kCount;
      *final_fn = AggKind::kSum;
      return true;
    case AggKind::kCountStar:
      *partial = AggKind::kCountStar;
      *final_fn = AggKind::kSum;
      return true;
    case AggKind::kMin:
      *partial = AggKind::kMin;
      *final_fn = AggKind::kMin;
      return true;
    case AggKind::kMax:
      *partial = AggKind::kMax;
      *final_fn = AggKind::kMax;
      return true;
    case AggKind::kAvg:
      return false;  // would need sum/count decomposition; not needed here
  }
  return false;
}

// ---------------------------------------------------------------------------
// Aggregate merging across rounding (§7.1's two-level case).
//
// VDM views often pre-aggregate with a rounded calculation, e.g. an
// order-level view computing round(sum(price)*0.11, 2); a consumption
// query then sums that field per month. The two aggregation levels can be
// merged into one — eliminating the high-cardinality inner grouping —
// exactly when addition and rounding may be interchanged, i.e. when the
// outer sum is marked allow_precision_loss. (Without rounding in between,
// sum-over-sum merging is exact and performed unconditionally.)

/// Peels pass-through projections, returning the node below and a name
/// mapping (top name -> bottom output name).
PlanRef PeelPassthroughProjects(const PlanRef& plan,
                                std::map<std::string, std::string>* mapping) {
  PlanRef current = plan;
  // Identity mapping for the starting names.
  for (const std::string& name : plan->OutputNames()) {
    (*mapping)[name] = name;
  }
  while (current->kind() == OpKind::kProject) {
    const auto& project = static_cast<const ProjectOp&>(*current);
    std::map<std::string, std::string> item_map;
    for (const ProjectOp::Item& item : project.items()) {
      if (item.expr->kind() != ExprKind::kColumnRef) return current;
      item_map[item.name] =
          static_cast<const ColumnRefExpr&>(*item.expr).name();
    }
    std::map<std::string, std::string> composed;
    for (auto& [top, bottom] : *mapping) {
      auto it = item_map.find(bottom);
      if (it == item_map.end()) return current;
      composed[top] = it->second;
    }
    *mapping = std::move(composed);
    current = current->child(0);
  }
  return current;
}

PlanRef TryAggregateMerge(const std::shared_ptr<const AggregateOp>& outer,
                          const OptimizerConfig& config, bool* changed) {
  std::map<std::string, std::string> names;  // outer-input -> inner output
  PlanRef below = PeelPassthroughProjects(outer->child(0), &names);
  if (below->kind() != OpKind::kAggregate) return nullptr;
  const auto& inner = static_cast<const AggregateOp&>(*below);
  if (outer->group_by().empty() || inner.group_by().empty()) return nullptr;

  // Inner output name -> defining expression.
  std::map<std::string, ExprRef> inner_defs;
  for (const AggregateOp::GroupItem& g : inner.group_by()) {
    inner_defs[g.name] = g.expr;
  }
  for (const AggregateOp::AggItem& a : inner.aggregates()) {
    inner_defs[a.name] = a.expr;
  }
  // Inner aggregate items may reference inner group outputs by name (the
  // binder rewrites grouped select items that way); substitute those back
  // to the group expressions so merged expressions bind against the
  // inner aggregate's input.
  std::map<std::string, ExprRef> inner_group_exprs;
  for (const AggregateOp::GroupItem& g : inner.group_by()) {
    inner_group_exprs[g.name] = g.expr;
  }
  auto resolve = [&](const std::string& outer_name) -> ExprRef {
    auto nit = names.find(outer_name);
    if (nit == names.end()) return nullptr;
    auto dit = inner_defs.find(nit->second);
    if (dit == inner_defs.end()) return nullptr;
    return RemapColumns(dit->second,
                        [&](const std::string& name) -> ExprRef {
                          auto git = inner_group_exprs.find(name);
                          return git == inner_group_exprs.end()
                                     ? nullptr
                                     : git->second;
                        });
  };

  // Outer groups must resolve to inner *group* expressions.
  std::vector<AggregateOp::GroupItem> merged_groups;
  for (const AggregateOp::GroupItem& g : outer->group_by()) {
    if (g.expr->kind() != ExprKind::kColumnRef) return nullptr;
    ExprRef def =
        resolve(static_cast<const ColumnRefExpr&>(*g.expr).name());
    if (!def || ContainsAggregate(def)) return nullptr;
    merged_groups.push_back({std::move(def), g.name});
  }

  // Outer aggregate items must be sums (or counts) over an inner item of
  // the shape sum(e) — possibly wrapped in round(..., d), which requires
  // the allow_precision_loss opt-in.
  std::vector<AggregateOp::AggItem> merged_items;
  for (const AggregateOp::AggItem& item : outer->aggregates()) {
    // Group-passthrough items (references to an outer group output) stay
    // as they are: the merged aggregate keeps the same group names.
    if (item.expr->kind() == ExprKind::kColumnRef) {
      const std::string& ref =
          static_cast<const ColumnRefExpr&>(*item.expr).name();
      bool is_group = false;
      for (const AggregateOp::GroupItem& g : outer->group_by()) {
        if (g.name == ref) {
          is_group = true;
          break;
        }
      }
      if (!is_group) return nullptr;
      merged_items.push_back(item);
      continue;
    }
    if (item.expr->kind() != ExprKind::kAggregate) return nullptr;
    const auto& agg = static_cast<const AggregateExpr&>(*item.expr);
    if (agg.agg() != AggKind::kSum || agg.distinct() || !agg.has_arg() ||
        agg.arg()->kind() != ExprKind::kColumnRef) {
      return nullptr;
    }
    ExprRef def =
        resolve(static_cast<const ColumnRefExpr&>(*agg.arg()).name());
    if (!def) return nullptr;

    const Expr* inner_expr = def.get();
    ExprRef round_digits;  // non-null when a rounding wrapper was peeled
    if (inner_expr->kind() == ExprKind::kFunction) {
      const auto& fn = static_cast<const FunctionExpr&>(*inner_expr);
      if (fn.name() != "round" || fn.children().empty()) return nullptr;
      if (!agg.allow_precision_loss() ||
          !config.allow_precision_loss_rewrites) {
        return nullptr;  // rounding between the levels blocks the merge
      }
      round_digits = fn.children().size() > 1 ? fn.children()[1] : LitInt(0);
      inner_expr = fn.children()[0].get();
      // The rounded operand may itself be sum(e) or sum(e)*c.
      if (inner_expr->kind() == ExprKind::kBinary) {
        const auto& bin = static_cast<const BinaryExpr&>(*inner_expr);
        if (bin.op() == BinaryOpKind::kMul &&
            bin.right()->kind() == ExprKind::kLiteral &&
            bin.left()->kind() == ExprKind::kAggregate) {
          const auto& inner_sum =
              static_cast<const AggregateExpr&>(*bin.left());
          if (inner_sum.agg() != AggKind::kSum || inner_sum.distinct()) {
            return nullptr;
          }
          ExprRef merged_sum = std::make_shared<AggregateExpr>(
              AggKind::kSum, inner_sum.arg(), false, true);
          merged_items.push_back(
              {Func("round",
                    {Bin(BinaryOpKind::kMul, std::move(merged_sum),
                         bin.right()),
                     round_digits}),
               item.name});
          continue;
        }
      }
    }
    if (inner_expr->kind() != ExprKind::kAggregate) return nullptr;
    const auto& inner_sum = static_cast<const AggregateExpr&>(*inner_expr);
    if (inner_sum.agg() != AggKind::kSum || inner_sum.distinct()) {
      return nullptr;
    }
    ExprRef merged_sum = std::make_shared<AggregateExpr>(
        AggKind::kSum, inner_sum.arg(), false, agg.allow_precision_loss());
    if (round_digits) {
      merged_items.push_back(
          {Func("round", {std::move(merged_sum), round_digits}), item.name});
    } else {
      merged_items.push_back({std::move(merged_sum), item.name});
    }
  }

  *changed = true;
  return std::make_shared<AggregateOp>(inner.child(0),
                                       std::move(merged_groups),
                                       std::move(merged_items));
}

PlanRef TryEagerAggregation(const std::shared_ptr<const AggregateOp>& agg,
                            const OptimizerConfig& config, bool* changed) {
  if (agg->child(0)->kind() != OpKind::kJoin) return nullptr;
  auto join = std::static_pointer_cast<const JoinOp>(agg->child(0));

  // Guard against reapplication: the inner partial aggregate is marked by
  // its __partial_ output names.
  for (const std::string& name : join->left()->OutputNames()) {
    if (name.rfind("__partial_", 0) == 0) return nullptr;
  }

  RelProps left_props = DeriveProps(join->left(), config.derivation);
  RelProps right_props = DeriveProps(join->right(), config.derivation);
  JoinAnalysis analysis =
      AnalyzeJoin(*join, left_props, right_props, config.derivation);
  if (!analysis.purely_augmenting) return nullptr;

  std::vector<std::string> left_names = join->left()->OutputNames();
  std::vector<std::string> right_names = join->right()->OutputNames();

  // All aggregate arguments must reference only anchor columns.
  std::vector<ExprRef> agg_nodes;
  for (const AggregateOp::AggItem& item : agg->aggregates()) {
    CollectAggNodes(item.expr, &agg_nodes);
  }
  if (agg_nodes.empty()) return nullptr;
  for (const ExprRef& node : agg_nodes) {
    const auto& a = static_cast<const AggregateExpr&>(*node);
    AggKind partial, final_fn;
    if (!DecomposeAgg(a.agg(), a.distinct(), &partial, &final_fn)) {
      return nullptr;
    }
    if (a.has_arg() && !ReferencesOnly(a.arg(), left_names)) return nullptr;
  }

  // Some group column must come from the augmenter — otherwise the join is
  // simply unused and UAJ elimination already handles it.
  bool group_uses_right = false;
  for (const AggregateOp::GroupItem& g : agg->group_by()) {
    if (ReferencesAny(g.expr, right_names)) group_uses_right = true;
  }
  if (!group_uses_right) return nullptr;

  // Inner grouping: anchor columns used by group expressions + join keys.
  std::set<std::string> inner_group_set;
  for (const AggregateOp::GroupItem& g : agg->group_by()) {
    std::vector<std::string> refs;
    CollectColumnRefs(g.expr, &refs);
    for (const std::string& ref : refs) {
      if (std::find(left_names.begin(), left_names.end(), ref) !=
          left_names.end()) {
        inner_group_set.insert(ref);
      }
    }
  }
  {
    std::vector<std::string> refs;
    CollectColumnRefs(join->condition(), &refs);
    for (const std::string& ref : refs) {
      if (std::find(left_names.begin(), left_names.end(), ref) !=
          left_names.end()) {
        inner_group_set.insert(ref);
      }
    }
  }

  std::vector<AggregateOp::GroupItem> inner_groups;
  for (const std::string& name : inner_group_set) {
    inner_groups.push_back({Col(name), name});
  }
  std::vector<AggregateOp::AggItem> inner_aggs;
  std::vector<std::string> partial_names;
  for (size_t k = 0; k < agg_nodes.size(); ++k) {
    const auto& a = static_cast<const AggregateExpr&>(*agg_nodes[k]);
    AggKind partial, final_fn;
    DecomposeAgg(a.agg(), a.distinct(), &partial, &final_fn);
    std::string pname = StrFormat("__partial_%zu", k);
    ExprRef partial_expr = std::make_shared<AggregateExpr>(
        partial, a.has_arg() ? a.arg() : nullptr, false,
        a.allow_precision_loss());
    inner_aggs.push_back({std::move(partial_expr), pname});
    partial_names.push_back(std::move(pname));
  }

  PlanRef inner_agg = std::make_shared<AggregateOp>(
      join->left(), std::move(inner_groups), std::move(inner_aggs));
  PlanRef new_join = std::make_shared<JoinOp>(
      std::move(inner_agg), join->right(), join->join_type(),
      join->condition(), join->declared_cardinality(), join->is_case_join());

  // Final aggregate: replace each aggregate node with its final function
  // over the partial column.
  std::vector<AggregateOp::AggItem> final_items;
  for (const AggregateOp::AggItem& item : agg->aggregates()) {
    ExprRef rewritten =
        TransformExpr(item.expr, [&](const ExprRef& node) -> ExprRef {
          if (node->kind() != ExprKind::kAggregate) return nullptr;
          for (size_t k = 0; k < agg_nodes.size(); ++k) {
            if (node->Equals(*agg_nodes[k])) {
              const auto& a = static_cast<const AggregateExpr&>(*agg_nodes[k]);
              AggKind partial, final_fn;
              DecomposeAgg(a.agg(), a.distinct(), &partial, &final_fn);
              return std::make_shared<AggregateExpr>(
                  final_fn, Col(partial_names[k]), false,
                  a.allow_precision_loss());
            }
          }
          return nullptr;
        });
    final_items.push_back({std::move(rewritten), item.name});
  }

  *changed = true;
  return std::make_shared<AggregateOp>(std::move(new_join), agg->group_by(),
                                       std::move(final_items));
}

}  // namespace

PlanRef PassAggregatePushdown(const PlanRef& plan,
                              const OptimizerConfig& config, bool* changed) {
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (node->kind() != OpKind::kAggregate) return nullptr;
    auto agg = std::static_pointer_cast<const AggregateOp>(node);

    if (config.allow_precision_loss_rewrites) {
      bool rewrote = false;
      std::vector<AggregateOp::AggItem> items;
      for (const AggregateOp::AggItem& item : agg->aggregates()) {
        items.push_back({NormalizePrecisionLoss(item.expr, &rewrote),
                         item.name});
      }
      if (rewrote) {
        *changed = true;
        agg = std::make_shared<AggregateOp>(agg->child(0), agg->group_by(),
                                            std::move(items));
      }
    }

    if (config.agg_pushdown) {
      PlanRef merged = TryAggregateMerge(agg, config, changed);
      if (merged) return merged;
      PlanRef eager = TryEagerAggregation(agg, config, changed);
      if (eager) return eager;
    }
    return agg == node ? nullptr : PlanRef(agg);
  });
}

}  // namespace vdm
