// General self-join elimination (ROADMAP item 5), powered by the static
// inference engine (analysis/infer).
//
// Unlike the ASJ rule — which requires every anchor-side join column to be
// a direct pass-through of the augmenter's base column — this rule removes
// ANY join whose right side is a simple relation (Scan/Filter/pass-through
// Project) over a base table also scanned on the left, whenever the
// inference engine proves that in every matched row pair the right row IS
// the left-side anchor row:
//
//  * join-clause equalities `l = b.c` where `l` carries provenance (direct
//    or equality-derived, e.g. through a third relation: a.k = d.ref and
//    d.ref = b.k) from the anchor scan's column c, and/or
//  * per-side constant equalities: the right side pinned `c = v` while the
//    anchor is pinned to the same `v`,
//
// together covering a unique key of the base table. Then at most one right
// row can match, and it is the anchor's own row, so every right output is
// computable from the left side:
//  * INNER: the join becomes a filter (the right side's residual predicate,
//    the condition's left-only conjuncts, and IS NOT NULL on join columns
//    not already provably non-NULL — 3VL: a NULL join column never
//    matches) plus a projection rewiring right outputs to anchor columns;
//  * LEFT OUTER: no rows are dropped; the same predicate set becomes a
//    match guard and each right output is CASE WHEN guard THEN anchor-col
//    ELSE NULL (predicate union). With an empty guard the wiring is direct.
//
// Every fired rewrite is audited by the RewriteAuditor like any other pass
// and differentially tested against the reference oracle (tools/vdmfuzz).
#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "analysis/infer/inference.h"
#include "common/string_util.h"
#include "expr/fold.h"
#include "optimizer/optimizer.h"
#include "optimizer/rewrite_util.h"

namespace vdm {

namespace {

/// Collects the ids of all scans of `table` (lower-cased) in the subtree.
void CollectScansOfTable(const PlanRef& plan, const std::string& table,
                         std::vector<uint64_t>* out) {
  if (plan->kind() == OpKind::kScan) {
    const auto& scan = static_cast<const ScanOp&>(*plan);
    if (ToLower(scan.table_name()) == table) out->push_back(plan->id());
  }
  for (const PlanRef& child : plan->children()) {
    CollectScansOfTable(child, table, out);
  }
}

struct Classified {
  /// (left output column, right base column) equalities.
  std::vector<std::pair<std::string, std::string>> equi;  // (left, base col)
  /// Condition conjuncts referencing only left outputs (kept as-is).
  std::vector<ExprRef> left_preds;
  /// Right-side predicates in base-column form: the simple relation's own
  /// filters plus condition conjuncts referencing only right outputs.
  std::vector<ExprRef> right_preds;
  /// Base columns pinned to a constant on the right side.
  std::map<std::string, Value> right_pins;
};

/// Splits the join condition into the shapes the rule can reason about;
/// nullopt on any conjunct it cannot classify (mixed non-equi etc.).
std::optional<Classified> ClassifyCondition(
    const JoinOp& join, const SimpleRelation& rel,
    const InferredProps& left_props) {
  Classified out;
  std::vector<std::string> left_names = join.left()->OutputNames();
  std::set<std::string> left_set(left_names.begin(), left_names.end());
  std::set<std::string> right_set;
  for (const auto& [name, bc] : rel.out_to_base) right_set.insert(name);
  for (const auto& [name, v] : rel.out_literals) right_set.insert(name);

  // The simple relation's own filters are already in base form.
  for (const ExprRef& pred : rel.base_preds) {
    out.right_preds.push_back(pred);
    std::optional<ColumnConstant> cc = MatchColumnEqConstant(pred);
    if (cc.has_value() && !cc->value.is_null()) {
      out.right_pins.emplace(cc->column, cc->value);
    }
  }

  for (const ExprRef& conjunct : SplitConjuncts(join.condition())) {
    if (IsAlwaysTrue(conjunct)) continue;
    std::vector<std::string> refs;
    CollectColumnRefs(conjunct, &refs);
    bool any_left = false, any_right = false, all_known = true;
    for (const std::string& ref : refs) {
      if (left_set.count(ref) > 0) {
        any_left = true;
      } else if (right_set.count(ref) > 0) {
        any_right = true;
      } else {
        all_known = false;
      }
    }
    if (!all_known) return std::nullopt;
    if (!any_right) {
      out.left_preds.push_back(conjunct);
      continue;
    }
    if (!any_left) {
      // Rewrite to base form; literal outputs substitute their value.
      bool ok = true;
      ExprRef base_form =
          RemapColumns(conjunct, [&](const std::string& name) -> ExprRef {
            auto it = rel.out_to_base.find(name);
            if (it != rel.out_to_base.end()) return Col(it->second);
            auto lit = rel.out_literals.find(name);
            if (lit != rel.out_literals.end()) return Lit(lit->second);
            ok = false;
            return nullptr;
          });
      if (!ok) return std::nullopt;
      out.right_preds.push_back(base_form);
      std::optional<ColumnConstant> cc = MatchColumnEqConstant(base_form);
      if (cc.has_value() && !cc->value.is_null()) {
        out.right_pins.emplace(cc->column, cc->value);
      }
      continue;
    }
    // Cross-side conjunct: only plain column equalities qualify.
    std::optional<ColumnPair> pair = MatchColumnEqColumn(conjunct);
    if (!pair.has_value()) return std::nullopt;
    std::string l = left_set.count(pair->left) > 0 ? pair->left : pair->right;
    std::string r = left_set.count(pair->left) > 0 ? pair->right : pair->left;
    if (left_set.count(l) == 0 || right_set.count(r) == 0) {
      return std::nullopt;
    }
    auto lit = rel.out_literals.find(r);
    if (lit != rel.out_literals.end()) {
      // l = <literal right output>: a left-side restriction in disguise.
      if (lit->second.is_null()) return std::nullopt;  // never matches
      out.left_preds.push_back(Eq(Col(l), Lit(lit->second)));
      // If the anchor side pins l to the same literal, this also extends
      // key coverage — handled below through left constants.
      (void)left_props;
      continue;
    }
    auto bit = rel.out_to_base.find(r);
    if (bit == rel.out_to_base.end()) return std::nullopt;
    out.equi.emplace_back(l, bit->second);
  }
  return out;
}

}  // namespace

PlanRef TryEliminateGeneralSelfJoin(const std::shared_ptr<const JoinOp>& join,
                                    const OptimizerConfig& config) {
  // Case joins carry UNION ALL intent; they belong to the ASJ machinery.
  if (join->is_case_join()) return nullptr;
  bool left_outer = join->join_type() == JoinType::kLeftOuter;
  if (!left_outer && join->join_type() != JoinType::kInner) return nullptr;

  std::optional<SimpleRelation> rel = ExtractSimpleRelation(join->right());
  if (!rel.has_value()) return nullptr;
  const std::string table = ToLower(rel->scan->table_name());
  const DerivationConfig& dcfg = config.derivation;
  InferOptions iopts = ToInferOptions(dcfg);

  InferenceEngine engine(iopts);
  const InferredProps& lp = engine.Infer(join->left());

  std::optional<Classified> cls = ClassifyCondition(*join, *rel, lp);
  if (!cls.has_value()) return nullptr;
  if (cls->equi.empty() && cls->right_pins.empty()) return nullptr;

  // Candidate anchors: scans of the same table on the left whose columns
  // feed every cross-side equality.
  std::vector<uint64_t> anchors;
  CollectScansOfTable(join->left(), table, &anchors);

  for (uint64_t anchor : anchors) {
    // Every equi pair must trace (directly or via equality provenance) to
    // this anchor's instance of the base column.
    bool all_traced = true;
    std::set<std::string> covered;
    for (const auto& [l, bc] : cls->equi) {
      const ValueSource* src = lp.FindSource(l, table, bc);
      if (src == nullptr || src->source_id != anchor) {
        all_traced = false;
        break;
      }
      covered.insert(bc);
    }
    if (!all_traced) continue;
    // Condition conjuncts pinning an anchor column (`a.k = 7` stated in the
    // join clause rather than in a filter below it) count toward coverage:
    // they become guard conjuncts, so every surviving/matched row satisfies
    // them.
    std::map<std::string, Value> cond_pins;  // anchor base col -> value
    for (const ExprRef& pred : cls->left_preds) {
      std::optional<ColumnConstant> cc = MatchColumnEqConstant(pred);
      if (!cc.has_value() || cc->value.is_null()) continue;
      auto sit = lp.sources.find(cc->column);
      if (sit == lp.sources.end()) continue;
      for (const ValueSource& src : sit->second) {
        if (src.source_id == anchor && !src.null_extended) {
          cond_pins.emplace(src.column, cc->value);
        }
      }
    }
    // Per-side constant equalities: a right pin `c = v` matched by the
    // anchor-side pin of the same column and value also identifies c.
    for (const auto& [bc, v] : cls->right_pins) {
      const Value* pin = lp.PinOf(anchor, bc);
      if (pin != nullptr && !pin->is_null() && pin->Equals(v)) {
        covered.insert(bc);
        continue;
      }
      auto cit = cond_pins.find(bc);
      if (cit != cond_pins.end() && cit->second.Equals(v)) covered.insert(bc);
    }
    if (!TableKeyCovered(rel->scan->table_schema(), covered, iopts)) continue;

    // Residual right predicates: those the anchor's own predicate stack
    // does not already imply must be re-applied (predicate union).
    std::vector<ExprRef> anchor_preds;
    CollectScanPredicates(join->left(), anchor, dcfg, &anchor_preds);
    std::vector<ExprRef> residual;
    for (const ExprRef& pred : cls->right_preds) {
      if (!ConjunctsSubsume(anchor_preds, {pred})) residual.push_back(pred);
    }

    // Guard conjuncts, in base/left mixed form for now:
    //  * residual right predicates (base-column form),
    //  * condition conjuncts over left outputs only,
    //  * IS NOT NULL for each equi left column not proven non-NULL (3VL:
    //    a NULL join column never satisfies the equality).
    std::vector<ExprRef> left_guards = cls->left_preds;
    for (const auto& [l, bc] : cls->equi) {
      if (!lp.IsNotNull(l)) {
        left_guards.push_back(
            std::make_shared<IsNullExpr>(Col(l), /*negated=*/true));
      }
    }

    // Wire every right output to the anchor instance. Base columns used by
    // residual predicates must be reachable too.
    std::vector<std::string> left_names = join->left()->OutputNames();
    std::vector<std::string> right_names = join->right()->OutputNames();
    std::map<std::string, std::string> base_to_left;  // base col -> left name
    auto resolve = [&](const std::string& bc) -> bool {
      if (base_to_left.count(bc) > 0) return true;
      for (const auto& [name, sources] : lp.sources) {
        for (const ValueSource& src : sources) {
          if (src.source_id == anchor && src.column == bc &&
              !src.null_extended) {
            base_to_left[bc] = name;
            return true;
          }
        }
      }
      return false;
    };
    std::vector<std::string> missing;
    auto require = [&](const std::string& bc) {
      if (!resolve(bc) &&
          std::find(missing.begin(), missing.end(), bc) == missing.end()) {
        missing.push_back(bc);
      }
    };
    for (const std::string& rn : right_names) {
      auto bit = rel->out_to_base.find(rn);
      if (bit != rel->out_to_base.end()) require(bit->second);
    }
    for (const ExprRef& pred : residual) {
      std::vector<std::string> refs;
      CollectColumnRefs(pred, &refs);
      for (const std::string& bc : refs) require(bc);
    }

    PlanRef new_left = join->left();
    if (!missing.empty()) {
      std::optional<Exposure> e =
          ExposeColumns(join->left(), anchor, missing, dcfg);
      if (!e.has_value()) continue;
      new_left = e->plan;
      for (const auto& [bc, name] : e->base_to_name) base_to_left[bc] = name;
    }

    // Remap residual predicates from base form onto the wired left names.
    std::vector<ExprRef> guards = std::move(left_guards);
    bool remap_ok = true;
    for (const ExprRef& pred : residual) {
      ExprRef remapped =
          RemapColumns(pred, [&](const std::string& bc) -> ExprRef {
            auto it = base_to_left.find(bc);
            if (it == base_to_left.end()) {
              remap_ok = false;
              return nullptr;
            }
            return Col(it->second);
          });
      if (!remap_ok) break;
      guards.push_back(std::move(remapped));
    }
    if (!remap_ok) continue;

    // Assemble the replacement.
    std::vector<ProjectOp::Item> items;
    for (const std::string& ln : left_names) items.push_back({Col(ln), ln});
    if (!left_outer) {
      // INNER: guard becomes a filter, right outputs wire directly.
      PlanRef body = new_left;
      if (!guards.empty()) {
        body = std::make_shared<FilterOp>(body, AndAll(guards));
      }
      bool wired = true;
      for (const std::string& rn : right_names) {
        auto lit = rel->out_literals.find(rn);
        if (lit != rel->out_literals.end()) {
          items.push_back({Lit(lit->second), rn});
          continue;
        }
        auto bit = rel->out_to_base.find(rn);
        auto wit = bit != rel->out_to_base.end()
                       ? base_to_left.find(bit->second)
                       : base_to_left.end();
        if (wit == base_to_left.end()) {
          wired = false;
          break;
        }
        items.push_back({Col(wit->second), rn});
      }
      if (!wired) continue;
      return std::make_shared<ProjectOp>(std::move(body), std::move(items));
    }
    // LEFT OUTER: rows survive unconditionally; right outputs are guarded.
    ExprRef guard = guards.empty() ? nullptr : AndAll(guards);
    bool wired = true;
    for (const std::string& rn : right_names) {
      ExprRef value;
      auto lit = rel->out_literals.find(rn);
      if (lit != rel->out_literals.end()) {
        value = Lit(lit->second);
      } else {
        auto bit = rel->out_to_base.find(rn);
        auto wit = bit != rel->out_to_base.end()
                       ? base_to_left.find(bit->second)
                       : base_to_left.end();
        if (wit == base_to_left.end()) {
          wired = false;
          break;
        }
        value = Col(wit->second);
      }
      if (guard) {
        value = std::make_shared<CaseExpr>(
            std::vector<ExprRef>{guard, std::move(value), Lit(Value::Null())});
      }
      items.push_back({std::move(value), rn});
    }
    if (!wired) continue;
    return std::make_shared<ProjectOp>(std::move(new_left), std::move(items));
  }
  return nullptr;
}

PlanRef PassSelfJoinGeneral(const PlanRef& plan, const OptimizerConfig& config,
                            bool* changed) {
  if (!config.selfjoin_general) return plan;
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (node->kind() != OpKind::kJoin) return nullptr;
    auto join = std::static_pointer_cast<const JoinOp>(node);
    PlanRef result = TryEliminateGeneralSelfJoin(join, config);
    if (result) {
      *changed = true;
      return result;
    }
    return nullptr;
  });
}

}  // namespace vdm
