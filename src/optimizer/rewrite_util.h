// Structural rewrite helpers shared by the ASJ and general self-join
// elimination rules: node lookup, anchor-side predicate collection, and
// column exposure (widening interior projections so base columns of a
// source scan / union become available at the subtree root).
#ifndef VDMQO_OPTIMIZER_REWRITE_UTIL_H_
#define VDMQO_OPTIMIZER_REWRITE_UTIL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/properties.h"
#include "plan/logical_plan.h"

namespace vdm {

PlanRef FindNodeById(const PlanRef& plan, uint64_t id);
bool ContainsNode(const PlanRef& plan, uint64_t id);

/// Collects every filter conjunct in the subtree whose references all pass
/// through, un-null-extended, from the given source node, rewritten to
/// bare base-column form (Fig. 10(c) subsumption input).
void CollectScanPredicates(const PlanRef& plan, uint64_t source_id,
                           const DerivationConfig& dcfg,
                           std::vector<ExprRef>* out);

struct Exposure {
  PlanRef plan;
  std::map<std::string, std::string> base_to_name;
};

/// Widens the subtree so the given base columns of the source node (a scan
/// or a table-like UNION ALL) are available at its root. Aggregations and
/// DISTINCT on the path block exposure.
std::optional<Exposure> ExposeColumns(const PlanRef& plan, uint64_t source_id,
                                      const std::vector<std::string>& base_cols,
                                      const DerivationConfig& dcfg);

}  // namespace vdm

#endif  // VDMQO_OPTIMIZER_REWRITE_UTIL_H_
