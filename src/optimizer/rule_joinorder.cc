// Greedy cost-based ordering of inner-join chains (the "Volcano-style
// cost-based optimizer" substrate of §2.2, in miniature).
//
// Maximal chains of pure inner equi-joins are flattened, base cardinalities
// are estimated from catalog statistics (filters discount them), and a
// greedy left-deep order is built starting from the smallest relation,
// always preferring a connected relation with the smallest estimated
// result. Besides join ordering this fixes build sides: the executor
// builds the hash table on the right input, so smaller relations gravitate
// right. A projection on top restores the original column order.
//
// Joins with declared cardinalities or case-join intent are left alone —
// their shape carries optimizer-relevant meaning (§6.3, §7.3).
#include <algorithm>
#include <set>

#include "expr/fold.h"
#include "optimizer/optimizer.h"

namespace vdm {

namespace {

struct ChainRelation {
  PlanRef plan;
  std::set<std::string> outputs;
  double estimated_rows;
};

/// True if this join may participate in a reorderable chain.
bool IsReorderableJoin(const JoinOp& join) {
  if (join.join_type() != JoinType::kInner) return false;
  if (join.is_case_join()) return false;
  if (join.declared_cardinality() != DeclaredCardinality::kNone) return false;
  return true;
}

double EstimateRows(const PlanRef& plan, const Catalog* catalog) {
  switch (plan->kind()) {
    case OpKind::kScan: {
      const auto& scan = static_cast<const ScanOp&>(*plan);
      if (catalog != nullptr) {
        const TableStats* stats = catalog->FindTableStats(scan.table_name());
        if (stats != nullptr) return static_cast<double>(stats->row_count);
      }
      return 1000.0;
    }
    case OpKind::kFilter: {
      const auto& filter = static_cast<const FilterOp&>(*plan);
      double selectivity = 1.0;
      for (size_t i = 0; i < SplitConjuncts(filter.predicate()).size(); ++i) {
        selectivity *= 0.25;
      }
      return std::max(1.0, EstimateRows(plan->child(0), catalog) *
                               selectivity);
    }
    case OpKind::kProject:
    case OpKind::kSort:
    case OpKind::kDistinct:
      return EstimateRows(plan->child(0), catalog);
    case OpKind::kLimit: {
      const auto& limit = static_cast<const LimitOp&>(*plan);
      return std::min(EstimateRows(plan->child(0), catalog),
                      static_cast<double>(limit.limit()));
    }
    case OpKind::kAggregate: {
      const auto& agg = static_cast<const AggregateOp&>(*plan);
      double input = EstimateRows(plan->child(0), catalog);
      return agg.group_by().empty() ? 1.0 : std::max(1.0, input * 0.1);
    }
    case OpKind::kUnionAll: {
      double total = 0;
      for (const PlanRef& child : plan->children()) {
        total += EstimateRows(child, catalog);
      }
      return total;
    }
    case OpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(*plan);
      double left = EstimateRows(join.left(), catalog);
      double right = EstimateRows(join.right(), catalog);
      // Assume a key join: the larger side bounds the result.
      return join.join_type() == JoinType::kLeftOuter
                 ? left
                 : std::max(left, right);
    }
  }
  return 1000.0;
}

/// Flattens a maximal inner-join chain into relations + conjuncts.
void Flatten(const PlanRef& plan, const Catalog* catalog,
             std::vector<ChainRelation>* relations,
             std::vector<ExprRef>* conjuncts) {
  if (plan->kind() == OpKind::kJoin) {
    const auto& join = static_cast<const JoinOp&>(*plan);
    if (IsReorderableJoin(join)) {
      Flatten(join.left(), catalog, relations, conjuncts);
      Flatten(join.right(), catalog, relations, conjuncts);
      for (const ExprRef& conjunct : SplitConjuncts(join.condition())) {
        if (!IsAlwaysTrue(conjunct)) conjuncts->push_back(conjunct);
      }
      return;
    }
  }
  ChainRelation relation;
  relation.plan = plan;
  std::vector<std::string> names = plan->OutputNames();
  relation.outputs.insert(names.begin(), names.end());
  relation.estimated_rows = EstimateRows(plan, catalog);
  relations->push_back(std::move(relation));
}

bool RefsAvailable(const ExprRef& expr, const std::set<std::string>& have) {
  std::vector<std::string> refs;
  CollectColumnRefs(expr, &refs);
  for (const std::string& ref : refs) {
    if (have.count(ref) == 0) return false;
  }
  return true;
}

/// True if the conjunct connects the current set with the relation.
bool Connects(const ExprRef& conjunct, const std::set<std::string>& have,
              const ChainRelation& relation) {
  std::vector<std::string> refs;
  CollectColumnRefs(conjunct, &refs);
  bool uses_have = false, uses_rel = false, uses_other = false;
  for (const std::string& ref : refs) {
    if (relation.outputs.count(ref) > 0) {
      uses_rel = true;
    } else if (have.count(ref) > 0) {
      uses_have = true;
    } else {
      uses_other = true;
    }
  }
  return uses_have && uses_rel && !uses_other;
}

PlanRef TransformBelowChain(const PlanRef& plan,
                            const OptimizerConfig& config, bool* changed);

PlanRef ReorderChain(const std::shared_ptr<const JoinOp>& top,
                     const OptimizerConfig& config, bool* changed) {
  std::vector<ChainRelation> relations;
  std::vector<ExprRef> conjuncts;
  Flatten(top, config.stats_catalog, &relations, &conjuncts);
  if (relations.size() < 2) return nullptr;

  // Greedy order: start from the smallest relation; repeatedly append the
  // connected relation with the smallest estimate (falling back to the
  // smallest overall if nothing connects).
  std::vector<size_t> order;
  std::vector<bool> used(relations.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < relations.size(); ++i) {
    if (relations[i].estimated_rows < relations[first].estimated_rows) {
      first = i;
    }
  }
  order.push_back(first);
  used[first] = true;
  std::set<std::string> have = relations[first].outputs;
  while (order.size() < relations.size()) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < relations.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (const ExprRef& conjunct : conjuncts) {
        if (Connects(conjunct, have, relations[i])) {
          connected = true;
          break;
        }
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           relations[i].estimated_rows <
               relations[static_cast<size_t>(best)].estimated_rows)) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    order.push_back(static_cast<size_t>(best));
    used[static_cast<size_t>(best)] = true;
    const auto& outs = relations[static_cast<size_t>(best)].outputs;
    have.insert(outs.begin(), outs.end());
  }

  // The executor builds the hash table on the right side: within the
  // greedy left-deep order, larger relations should come first. If the
  // chosen order equals the original relation order, leave the plan alone.
  bool same = true;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) {
      same = false;
      break;
    }
  }
  if (same) return nullptr;

  // Rebuild left-deep, attaching each conjunct at the first join where all
  // its references are available.
  std::vector<bool> conjunct_used(conjuncts.size(), false);
  PlanRef current = relations[order[0]].plan;
  std::set<std::string> available = relations[order[0]].outputs;
  for (size_t step = 1; step < order.size(); ++step) {
    const ChainRelation& next = relations[order[step]];
    std::set<std::string> combined = available;
    combined.insert(next.outputs.begin(), next.outputs.end());
    std::vector<ExprRef> here;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (conjunct_used[c]) continue;
      if (RefsAvailable(conjuncts[c], combined)) {
        here.push_back(conjuncts[c]);
        conjunct_used[c] = true;
      }
    }
    current = std::make_shared<JoinOp>(std::move(current), next.plan,
                                       JoinType::kInner,
                                       AndAll(std::move(here)));
    available = std::move(combined);
  }
  // Any conjunct not yet placed (shouldn't happen) becomes a filter.
  std::vector<ExprRef> leftover;
  for (size_t c = 0; c < conjuncts.size(); ++c) {
    if (!conjunct_used[c]) leftover.push_back(conjuncts[c]);
  }
  if (!leftover.empty()) {
    current =
        std::make_shared<FilterOp>(std::move(current), AndAll(leftover));
  }
  // Restore the original column order.
  std::vector<ProjectOp::Item> items;
  for (const std::string& name : top->OutputNames()) {
    items.push_back({Col(name), name});
  }
  *changed = true;
  return std::make_shared<ProjectOp>(std::move(current), std::move(items));
}

PlanRef Reorder(const PlanRef& plan, const OptimizerConfig& config,
                bool* changed) {
  if (plan->kind() == OpKind::kJoin) {
    const auto& join = static_cast<const JoinOp&>(*plan);
    if (IsReorderableJoin(join)) {
      PlanRef reordered = ReorderChain(
          std::static_pointer_cast<const JoinOp>(plan), config, changed);
      PlanRef chain = reordered ? reordered : plan;
      // Recurse into the chain's relations (below the reordered joins).
      return TransformBelowChain(chain, config, changed);
    }
  }
  std::vector<PlanRef> children;
  bool any = false;
  for (const PlanRef& child : plan->children()) {
    PlanRef transformed = Reorder(child, config, changed);
    any |= (transformed != child);
    children.push_back(std::move(transformed));
  }
  return any ? plan->WithChildren(std::move(children)) : plan;
}

/// Recurses into the leaf relations of a (possibly reordered) chain
/// without re-flattening the chain's own joins.
PlanRef TransformBelowChain(const PlanRef& plan,
                            const OptimizerConfig& config, bool* changed) {
  if (plan->kind() == OpKind::kJoin &&
      IsReorderableJoin(static_cast<const JoinOp&>(*plan))) {
    const auto& join = static_cast<const JoinOp&>(*plan);
    PlanRef left = TransformBelowChain(join.left(), config, changed);
    PlanRef right = TransformBelowChain(join.right(), config, changed);
    if (left == join.left() && right == join.right()) return plan;
    return plan->WithChildren({std::move(left), std::move(right)});
  }
  if (plan->kind() == OpKind::kProject || plan->kind() == OpKind::kFilter) {
    PlanRef child = TransformBelowChain(plan->child(0), config, changed);
    if (child == plan->child(0)) return plan;
    return plan->WithChildren({child});
  }
  // A non-chain node: resume the normal recursion.
  std::vector<PlanRef> children;
  bool any = false;
  for (const PlanRef& child : plan->children()) {
    PlanRef transformed = Reorder(child, config, changed);
    any |= (transformed != child);
    children.push_back(std::move(transformed));
  }
  return any ? plan->WithChildren(std::move(children)) : plan;
}

}  // namespace

PlanRef PassJoinOrder(const PlanRef& plan, const OptimizerConfig& config,
                      bool* changed) {
  if (!config.join_reordering) return plan;
  return Reorder(plan, config, changed);
}

}  // namespace vdm
