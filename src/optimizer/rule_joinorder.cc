// Cost-based join ordering (DESIGN.md §14) — DP over small chains, greedy
// over large ones, driven by the statistics subsystem's cardinality
// estimator (analysis/stats).
//
// A maximal join chain is flattened into *units*:
//   - pure inner equi-joins (no declared cardinality, no case-join intent)
//     contribute both sides recursively and pool their conjuncts;
//   - LEFT OUTER joins contribute their left side recursively and turn the
//     right side into an *attachment*: the ON condition stays intact (its
//     null-extension semantics depend on it), the declared §7.3 cardinality
//     rides along, and the attachment may move anywhere the algebra allows;
//   - declared-cardinality INNER joins likewise become attachments, so the
//     §7.3 prior survives on the rebuilt JoinOp instead of dissolving into
//     the conjunct pool;
//   - everything else (case joins, aggregates, unions, scans) is a base
//     unit; the pass recurses *into* such units for nested chains.
//
// Reorder validity (DESIGN.md §14): an inner join commutes freely below a
// LEFT OUTER attachment because (A ⟕p B) ⋈q C = (A ⋈q C) ⟕p B whenever q
// references no B column, and two attachments commute when neither ON
// condition references the other's columns. Both conditions are enforced
// structurally: a unit is eligible only once every column its condition
// (or connecting conjuncts) references is available, and a pooled conjunct
// that references an attachment's null-extendable columns is applied at or
// above the attachment — as an inner-join condition or a FILTER, both of
// which reject the NULL-extended rows exactly like the original inner join
// above the LEFT OUTER did.
//
// Build sides: the executor builds the hash table on the right input, so
// inner steps put the smaller estimated side right (attachments are pinned
// right — LEFT OUTER and declared cardinalities describe the right side).
// Under a LIMIT the chain keeps augmenting attachments *after* all inner
// units, so AnnotateJoinLimitHints can thread the row budget through the
// whole attachment stack (§4.4 paging) — a cheaper-looking interleaving
// that breaks the purely-augmenting prefix would cost more end-to-end.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>

#include "analysis/stats/cardinality.h"
#include "expr/expr.h"
#include "expr/fold.h"
#include "optimizer/optimizer.h"
#include "optimizer/properties.h"

namespace vdm {

namespace {

/// Chains at most this many units run the exhaustive subset DP; larger
/// chains (the 47-join JournalEntryItemBrowser stack) go greedy.
constexpr size_t kDpMaxUnits = 10;

struct Unit {
  PlanRef plan;
  std::set<std::string> outputs;
  double rows = 0.0;
  /// Attachment state: the unit re-enters the plan as the right side of a
  /// join with this type/condition/cardinality (LEFT OUTER, or INNER with
  /// a declared §7.3 cardinality). Non-attachments join via pooled
  /// conjuncts.
  bool is_attachment = false;
  JoinType join_type = JoinType::kInner;
  ExprRef condition;
  DeclaredCardinality cardinality = DeclaredCardinality::kNone;
  /// Columns the attachment condition needs from the rest of the chain.
  std::set<std::string> needs;
};

struct Conjunct {
  ExprRef expr;
  std::vector<std::string> refs;
};

struct Chain {
  std::vector<Unit> units;
  std::vector<Conjunct> pool;
};

bool IsPoolableInner(const JoinOp& join) {
  return join.join_type() == JoinType::kInner && !join.is_case_join() &&
         join.declared_cardinality() == DeclaredCardinality::kNone;
}

bool IsAttachmentJoin(const JoinOp& join) {
  if (join.is_case_join()) return false;
  if (join.join_type() == JoinType::kLeftOuter) return true;
  return join.declared_cardinality() != DeclaredCardinality::kNone;
}

bool IsChainRoot(const PlanRef& plan) {
  if (plan->kind() != OpKind::kJoin) return false;
  const auto& join = static_cast<const JoinOp&>(*plan);
  return IsPoolableInner(join) || IsAttachmentJoin(join);
}

void AddBaseUnit(const PlanRef& plan, Chain* chain) {
  Unit unit;
  unit.plan = plan;
  std::vector<std::string> names = plan->OutputNames();
  unit.outputs.insert(names.begin(), names.end());
  chain->units.push_back(std::move(unit));
}

void Flatten(const PlanRef& plan, Chain* chain) {
  if (plan->kind() == OpKind::kJoin) {
    const auto& join = static_cast<const JoinOp&>(*plan);
    if (IsPoolableInner(join)) {
      Flatten(join.left(), chain);
      Flatten(join.right(), chain);
      for (const ExprRef& conjunct : SplitConjuncts(join.condition())) {
        if (IsAlwaysTrue(conjunct)) continue;
        Conjunct c;
        c.expr = conjunct;
        CollectColumnRefs(conjunct, &c.refs);
        chain->pool.push_back(std::move(c));
      }
      return;
    }
    if (IsAttachmentJoin(join)) {
      Flatten(join.left(), chain);
      Unit unit;
      unit.plan = join.right();
      std::vector<std::string> names = join.right()->OutputNames();
      unit.outputs.insert(names.begin(), names.end());
      unit.is_attachment = true;
      unit.join_type = join.join_type();
      unit.condition = join.condition();
      unit.cardinality = join.declared_cardinality();
      std::vector<std::string> refs;
      CollectColumnRefs(join.condition(), &refs);
      for (const std::string& ref : refs) {
        if (unit.outputs.count(ref) == 0) unit.needs.insert(ref);
      }
      chain->units.push_back(std::move(unit));
      return;
    }
  }
  AddBaseUnit(plan, chain);
}

bool Covered(const std::vector<std::string>& refs,
             const std::set<std::string>& have) {
  for (const std::string& ref : refs) {
    if (have.count(ref) == 0) return false;
  }
  return true;
}

bool Subset(const std::set<std::string>& needs,
            const std::set<std::string>& have) {
  for (const std::string& need : needs) {
    if (have.count(need) == 0) return false;
  }
  return true;
}

/// Shared state for costing one chain.
struct ChainCtx {
  CardinalityEstimator* estimator = nullptr;
  bool trust_declared = false;
  const Chain* chain = nullptr;
  /// Column name -> owning unit index (for resolving the accumulated
  /// side's key statistics back to a unit plan).
  std::map<std::string, size_t> owner;
};

std::optional<ColumnEstimate> ResolveChainColumn(const ChainCtx& ctx,
                                                 const std::string& name) {
  auto it = ctx.owner.find(name);
  if (it == ctx.owner.end()) return std::nullopt;
  return ctx.estimator->ResolveColumn(ctx.chain->units[it->second].plan, name);
}

struct StepEstimate {
  double rows = 0.0;
  double cost = 0.0;
  bool swap = false;  // inner steps: put the new unit left (probe side)
};

/// Estimates joining unit `u` onto an accumulated set with `cur_rows` rows
/// and `cur_outputs` columns. Key pairs come from the unit's attachment
/// condition or from the pooled conjuncts first covered by this step.
StepEstimate CostStep(const ChainCtx& ctx, double cur_rows,
                      const std::set<std::string>& cur_outputs,
                      const Unit& u) {
  std::vector<JoinKeyEstimate> keys;
  std::set<std::string> unit_key_cols;
  size_t residual = 0;
  auto consider = [&](const ExprRef& conjunct) {
    std::optional<ColumnPair> pair = MatchColumnEqColumn(conjunct);
    if (pair) {
      std::string cur_col = pair->left, unit_col = pair->right;
      if (u.outputs.count(cur_col) != 0 && cur_outputs.count(unit_col) != 0) {
        std::swap(cur_col, unit_col);
      }
      if (cur_outputs.count(cur_col) != 0 && u.outputs.count(unit_col) != 0) {
        JoinKeyEstimate key;
        key.left = ResolveChainColumn(ctx, cur_col);
        key.right = ctx.estimator->ResolveColumn(u.plan, unit_col);
        keys.push_back(key);
        unit_key_cols.insert(unit_col);
        return;
      }
    }
    ++residual;
  };
  if (u.is_attachment) {
    for (const ExprRef& conjunct : SplitConjuncts(u.condition)) {
      if (!IsAlwaysTrue(conjunct)) consider(conjunct);
    }
  } else {
    for (const Conjunct& c : ctx.chain->pool) {
      bool touches_unit = false, covered_without = true;
      for (const std::string& ref : c.refs) {
        if (u.outputs.count(ref) != 0) touches_unit = true;
        if (cur_outputs.count(ref) == 0 && u.outputs.count(ref) == 0) {
          covered_without = false;  // references a third, absent unit
          break;
        }
      }
      if (covered_without && touches_unit) consider(c.expr);
    }
  }
  const bool unit_unique =
      ctx.estimator->UniqueOn(u.plan, unit_key_cols);
  StepEstimate step;
  step.rows = EstimateEquiJoinRows(
      cur_rows, u.rows, u.join_type, keys, residual, /*left_unique=*/false,
      unit_unique, u.cardinality, ctx.trust_declared);
  if (u.is_attachment) {
    step.cost = 2.0 * u.rows + cur_rows + step.rows;
  } else {
    step.swap = u.rows > cur_rows;
    const double build = step.swap ? cur_rows : u.rows;
    const double probe = step.swap ? u.rows : cur_rows;
    step.cost = 2.0 * build + probe + step.rows;
  }
  return step;
}

/// True when some pooled conjunct links `u` to the accumulated columns.
bool ConnectedTo(const Chain& chain, const std::set<std::string>& cur_outputs,
                 const Unit& u) {
  for (const Conjunct& c : chain.pool) {
    bool touches_unit = false, touches_cur = false, touches_other = false;
    for (const std::string& ref : c.refs) {
      if (u.outputs.count(ref) != 0) {
        touches_unit = true;
      } else if (cur_outputs.count(ref) != 0) {
        touches_cur = true;
      } else {
        touches_other = true;
      }
    }
    if (touches_unit && touches_cur && !touches_other) return true;
  }
  return false;
}

bool Eligible(const std::set<std::string>& cur_outputs, const Unit& u) {
  return !u.is_attachment || Subset(u.needs, cur_outputs);
}

/// Greedy order: start from the smallest non-attachment unit; repeatedly
/// take the eligible unit with the smallest estimated result (connected
/// inner units and attachments compete on rows; cross joins only as a last
/// resort). Under a LIMIT, inner units go first so the attachment suffix
/// stays purely augmenting for limit-hint threading.
std::vector<size_t> GreedyOrder(const ChainCtx& ctx, bool under_limit) {
  const Chain& chain = *ctx.chain;
  const size_t n = chain.units.size();
  std::vector<size_t> order;
  std::vector<bool> used(n, false);
  size_t first = n;
  for (size_t i = 0; i < n; ++i) {
    if (chain.units[i].is_attachment) continue;
    if (first == n || chain.units[i].rows < chain.units[first].rows) {
      first = i;
    }
  }
  if (first == n) first = 0;  // all attachments: malformed, keep original
  order.push_back(first);
  used[first] = true;
  std::set<std::string> have = chain.units[first].outputs;
  double rows = chain.units[first].rows;
  while (order.size() < n) {
    // Candidate classes, in preference order.
    enum Class { kConnectedInner = 0, kAttachment = 1, kCross = 2 };
    int best = -1;
    Class best_class = kCross;
    StepEstimate best_step;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const Unit& u = chain.units[i];
      if (!Eligible(have, u)) continue;
      Class cls;
      if (u.is_attachment) {
        cls = kAttachment;
      } else {
        cls = ConnectedTo(chain, have, u) ? kConnectedInner : kCross;
      }
      StepEstimate step = CostStep(ctx, rows, have, u);
      bool better;
      if (best < 0) {
        better = true;
      } else if (under_limit && cls != best_class &&
                 (cls == kConnectedInner || best_class == kConnectedInner)) {
        // Keep augmenting attachments behind every inner unit.
        better = cls == kConnectedInner;
      } else if (cls != best_class &&
                 (cls == kCross || best_class == kCross)) {
        better = best_class == kCross;  // anything beats a cross join
      } else if (step.rows != best_step.rows) {
        better = step.rows < best_step.rows;
      } else if (step.cost != best_step.cost) {
        better = step.cost < best_step.cost;
      } else {
        better = false;  // ties keep the earlier (original-order) unit
      }
      if (better) {
        best = static_cast<int>(i);
        best_class = cls;
        best_step = step;
      }
    }
    if (best < 0) {
      // Dependency deadlock (shouldn't happen): append the rest in
      // original order to stay total.
      for (size_t i = 0; i < n; ++i) {
        if (!used[i]) order.push_back(i);
      }
      return order;
    }
    order.push_back(static_cast<size_t>(best));
    used[static_cast<size_t>(best)] = true;
    const Unit& u = chain.units[static_cast<size_t>(best)];
    have.insert(u.outputs.begin(), u.outputs.end());
    rows = best_step.rows;
  }
  return order;
}

/// Exhaustive left-deep DP over unit subsets, minimizing cumulative step
/// cost. Transitions follow the same eligibility rules as the greedy path
/// (attachments wait for their referenced columns; inner units must
/// connect). Falls back to greedy when no connected-only order completes.
std::vector<size_t> DpOrder(const ChainCtx& ctx, bool* complete) {
  const Chain& chain = *ctx.chain;
  const size_t n = chain.units.size();
  const uint32_t full = (1u << n) - 1u;
  struct State {
    double rows = 0.0;
    double cost = std::numeric_limits<double>::infinity();
    int last = -1;
    uint32_t prev = 0;
    bool valid = false;
  };
  std::vector<State> dp(full + 1u);
  std::vector<std::set<std::string>> outputs(full + 1u);
  for (size_t i = 0; i < n; ++i) {
    if (chain.units[i].is_attachment) continue;
    State& s = dp[1u << i];
    s.rows = chain.units[i].rows;
    s.cost = 0.0;
    s.last = static_cast<int>(i);
    s.valid = true;
    outputs[1u << i] = chain.units[i].outputs;
  }
  for (uint32_t set = 1; set <= full; ++set) {
    const State& s = dp[set];
    if (!s.valid) continue;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t bit = 1u << i;
      if ((set & bit) != 0) continue;
      const Unit& u = chain.units[i];
      if (!Eligible(outputs[set], u)) continue;
      if (!u.is_attachment && !ConnectedTo(chain, outputs[set], u)) {
        continue;  // no cross joins in the DP; greedy handles those
      }
      StepEstimate step = CostStep(ctx, s.rows, outputs[set], u);
      const uint32_t next = set | bit;
      const double cost = s.cost + step.cost;
      State& t = dp[next];
      const bool better =
          !t.valid || cost < t.cost ||
          (cost == t.cost && step.rows < t.rows) ||
          (cost == t.cost && step.rows == t.rows &&
           static_cast<int>(i) < t.last);
      if (better) {
        t.rows = step.rows;
        t.cost = cost;
        t.last = static_cast<int>(i);
        t.prev = set;
        t.valid = true;
        if (outputs[next].empty()) {
          outputs[next] = outputs[set];
          outputs[next].insert(u.outputs.begin(), u.outputs.end());
        }
      }
    }
  }
  if (!dp[full].valid) {
    *complete = false;
    return {};
  }
  std::vector<size_t> order;
  uint32_t set = full;
  while (set != 0) {
    const State& s = dp[set];
    order.push_back(static_cast<size_t>(s.last));
    set = s.prev;
  }
  std::reverse(order.begin(), order.end());
  *complete = true;
  return order;
}

PlanRef Reorder(const PlanRef& plan, const OptimizerConfig& config,
                bool under_limit, bool* changed);

/// Cumulative estimated cost of running the chain in `order` (the same
/// per-step model Rebuild applies, including inner build-side swaps).
double OrderCost(const ChainCtx& ctx, const std::vector<size_t>& order) {
  const Chain& chain = *ctx.chain;
  std::set<std::string> have = chain.units[order[0]].outputs;
  double rows = chain.units[order[0]].rows;
  double total = 0.0;
  for (size_t step = 1; step < order.size(); ++step) {
    const Unit& u = chain.units[order[step]];
    StepEstimate est = CostStep(ctx, rows, have, u);
    total += est.cost;
    have.insert(u.outputs.begin(), u.outputs.end());
    rows = est.rows;
  }
  return total;
}

/// Rebuilds the chain left-deep in the chosen order. Pooled conjuncts
/// attach at the first step where all their references are available — as
/// the inner join condition, or as a FILTER above an attachment (its ON
/// condition must stay exactly as declared).
PlanRef Rebuild(const ChainCtx& ctx, const std::vector<size_t>& order,
                const std::shared_ptr<const JoinOp>& top) {
  const Chain& chain = *ctx.chain;
  std::vector<bool> conjunct_used(chain.pool.size(), false);
  auto take_covered = [&](const std::set<std::string>& have) {
    std::vector<ExprRef> here;
    for (size_t c = 0; c < chain.pool.size(); ++c) {
      if (conjunct_used[c]) continue;
      if (Covered(chain.pool[c].refs, have)) {
        here.push_back(chain.pool[c].expr);
        conjunct_used[c] = true;
      }
    }
    return here;
  };

  PlanRef current = chain.units[order[0]].plan;
  std::set<std::string> have = chain.units[order[0]].outputs;
  double rows = chain.units[order[0]].rows;
  {
    // Conjuncts local to the start unit (rare) become a filter on it.
    std::vector<ExprRef> local = take_covered(have);
    if (!local.empty()) {
      current = std::make_shared<FilterOp>(std::move(current),
                                           AndAll(std::move(local)));
    }
  }
  for (size_t step = 1; step < order.size(); ++step) {
    const Unit& u = chain.units[order[step]];
    StepEstimate est = CostStep(ctx, rows, have, u);
    have.insert(u.outputs.begin(), u.outputs.end());
    if (u.is_attachment) {
      current = std::make_shared<JoinOp>(std::move(current), u.plan,
                                         u.join_type, u.condition,
                                         u.cardinality);
      std::vector<ExprRef> extra = take_covered(have);
      if (!extra.empty()) {
        current = std::make_shared<FilterOp>(std::move(current),
                                             AndAll(std::move(extra)));
      }
    } else {
      std::vector<ExprRef> here = take_covered(have);
      PlanRef left = est.swap ? u.plan : current;
      PlanRef right = est.swap ? current : u.plan;
      current =
          std::make_shared<JoinOp>(std::move(left), std::move(right),
                                   JoinType::kInner, AndAll(std::move(here)));
    }
    rows = est.rows;
  }
  // Conjuncts that never became coverable (disconnected references) keep
  // their semantics as a final filter.
  std::vector<ExprRef> leftover;
  for (size_t c = 0; c < chain.pool.size(); ++c) {
    if (!conjunct_used[c]) leftover.push_back(chain.pool[c].expr);
  }
  if (!leftover.empty()) {
    current = std::make_shared<FilterOp>(std::move(current),
                                         AndAll(std::move(leftover)));
  }
  return current;
}

/// Structural fingerprint of a plan subtree (node text + shape). Used for
/// the identity check: a rebuild whose signature matches the original
/// chain is discarded, keeping the original nodes (and their ids, which
/// key executor-side estimates).
std::string TreeSignature(const PlanRef& plan) {
  std::string sig = plan->Describe();
  sig += '(';
  for (const PlanRef& child : plan->children()) {
    sig += TreeSignature(child);
    sig += ',';
  }
  sig += ')';
  return sig;
}

PlanRef ReorderChain(const std::shared_ptr<const JoinOp>& top,
                     const OptimizerConfig& config, bool under_limit,
                     bool* changed) {
  Chain chain;
  Flatten(top, &chain);
  if (chain.units.size() < 2) return nullptr;

  // Recurse into the units first: nested chains (case-join children,
  // aggregate inputs, attachment subtrees) reorder independently, and the
  // estimator should see the final unit plans.
  bool units_changed = false;
  for (Unit& unit : chain.units) {
    PlanRef transformed = Reorder(unit.plan, config, false, &units_changed);
    if (transformed != unit.plan) unit.plan = std::move(transformed);
  }

  CardinalityOptions card_options;
  card_options.infer = ToInferOptions(config.derivation);
  card_options.trust_declared_cardinality =
      config.derivation.trust_declared_cardinality;
  CardinalityEstimator estimator(config.stats_catalog, card_options);
  ChainCtx ctx;
  ctx.estimator = &estimator;
  ctx.trust_declared = config.derivation.trust_declared_cardinality;
  ctx.chain = &chain;
  for (size_t i = 0; i < chain.units.size(); ++i) {
    chain.units[i].rows = estimator.EstimateRows(chain.units[i].plan);
    for (const std::string& name : chain.units[i].outputs) {
      ctx.owner.emplace(name, i);
    }
  }

  std::vector<size_t> order;
  if (!under_limit && chain.units.size() <= kDpMaxUnits) {
    bool complete = false;
    order = DpOrder(ctx, &complete);
    if (!complete) order = GreedyOrder(ctx, under_limit);
  } else {
    order = GreedyOrder(ctx, under_limit);
  }

  // The identity (view-text) order is the baseline — CostStep already
  // prices build-side swaps into it, so a different order must beat it
  // by more than the column-restoring projection a reshuffle drags in
  // (one row-touch per output row of the chain). Near-ties — e.g. the
  // JEIB to-one attachment stack, where every order yields the same
  // cardinalities — keep the view-text order and its node ids.
  std::vector<size_t> identity(chain.units.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  if (order != identity) {
    const double restore_project = estimator.EstimateRows(top);
    if (OrderCost(ctx, order) + restore_project >=
        OrderCost(ctx, identity) * 0.99) {
      order = identity;
    }
  }

  PlanRef body = Rebuild(ctx, order, top);
  // Identity check: a rebuild that reproduces the original tree (same
  // steps, same sides, same conjunct grouping) is discarded so the
  // original nodes — and their ids — survive. Nested-unit changes always
  // alter the signature, so they are never lost here.
  if (!units_changed && TreeSignature(body) == TreeSignature(top)) {
    return nullptr;
  }
  *changed = true;
  // The rebuilt chain may emit columns in a different order; restore the
  // original projection list. When only nested units changed (or the new
  // order happens to preserve column positions) the wrapper would be a
  // full-width per-row copy over the whole intermediate — skip it.
  if (body->OutputNames() == top->OutputNames()) return body;
  std::vector<ProjectOp::Item> items;
  for (const std::string& name : top->OutputNames()) {
    items.push_back({Col(name), name});
  }
  return std::make_shared<ProjectOp>(std::move(body), std::move(items));
}

PlanRef Reorder(const PlanRef& plan, const OptimizerConfig& config,
                bool under_limit, bool* changed) {
  if (IsChainRoot(plan)) {
    PlanRef reordered =
        ReorderChain(std::static_pointer_cast<const JoinOp>(plan), config,
                     under_limit, changed);
    return reordered ? reordered : plan;
  }
  const bool propagates_limit = plan->kind() == OpKind::kLimit ||
                                plan->kind() == OpKind::kSort ||
                                plan->kind() == OpKind::kProject;
  const bool child_under_limit =
      plan->kind() == OpKind::kLimit || (under_limit && propagates_limit);
  std::vector<PlanRef> children;
  bool any = false;
  for (const PlanRef& child : plan->children()) {
    PlanRef transformed = Reorder(child, config, child_under_limit, changed);
    any |= (transformed != child);
    children.push_back(std::move(transformed));
  }
  return any ? plan->WithChildren(std::move(children)) : plan;
}

}  // namespace

PlanRef PassJoinOrder(const PlanRef& plan, const OptimizerConfig& config,
                      bool* changed) {
  if (!config.join_reordering) return plan;
  return Reorder(plan, config, /*under_limit=*/false, changed);
}

}  // namespace vdm
