// Augmentation self-join (ASJ) elimination — paper §5.3 and §6.3.
//
// An ASJ re-joins a view with its own base table on the key to expose
// fields the view does not project (the custom-fields extension pattern,
// Fig. 8/9). Unlike a UAJ it can be removed *even when its fields are
// used*: references to augmenter columns are rewired to the anchor-side
// instance of the same table, widening interior projections as needed.
//
// Preconditions checked here (Fig. 10):
//  * the join is an equi-join whose augmenter-side columns cover a unique
//    key of the augmenter table,
//  * each anchor-side join column passes through, un-null-extended, from a
//    scan of the *same* table with the *same* base column,
//  * the augmenter's predicate is subsumed by the predicates the anchor
//    applies to that scan (Fig. 10(c)),
//  * augmenter columns can be exposed from the anchor (projections are
//    widened; aggregations/DISTINCT block the rewiring).
//
// UNION ALL extensions (Fig. 13): a union anchor is handled through
// union-level origins (13a); union on BOTH sides is handled by a per-branch
// decomposition that requires the explicit case-join intent to be robust
// (13b / Fig. 14) — without the intent, only canonical shapes (bare-scan
// augmenter branches, union directly below the join) are recognized.
#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "analysis/infer/inference.h"
#include "common/string_util.h"
#include "expr/fold.h"
#include "optimizer/optimizer.h"
#include "optimizer/rewrite_util.h"

namespace vdm {

namespace {

// ---------------------------------------------------------------------------
// The simple ASJ path (Fig. 10 / Fig. 13(a)).

PlanRef TrySimpleAsj(const std::shared_ptr<const JoinOp>& join,
                     const OptimizerConfig& config) {
  const DerivationConfig& dcfg = config.derivation;
  std::optional<SimpleRelation> aug = ExtractSimpleRelation(join->right());
  if (!aug.has_value()) return nullptr;

  RelProps left_props = DeriveProps(join->left(), dcfg);
  RelProps right_props = DeriveProps(join->right(), dcfg);
  JoinAnalysis analysis = AnalyzeJoin(*join, left_props, right_props, dcfg);
  if (!analysis.pure_equi || analysis.equi_pairs.empty()) return nullptr;

  const std::string aug_table = ToLower(aug->scan->table_name());

  // Map equi pairs onto base columns and locate the anchor source.
  uint64_t source_id = 0;
  std::set<std::string> covered_base;
  for (const auto& [l, r] : analysis.equi_pairs) {
    // A pair against a literal augmenter column (e.g. a branch id) is
    // acceptable when the anchor pins the same constant on its side.
    auto lit = aug->out_literals.find(r);
    if (lit != aug->out_literals.end()) {
      auto cit = left_props.constants.find(l);
      if (cit == left_props.constants.end() ||
          !cit->second.Equals(lit->second)) {
        return nullptr;
      }
      continue;
    }
    auto bit = aug->out_to_base.find(r);
    if (bit == aug->out_to_base.end()) return nullptr;
    const std::string& bc = bit->second;
    auto oit = left_props.origins.find(l);
    if (oit == left_props.origins.end() || oit->second.null_extended ||
        oit->second.table != aug_table || oit->second.column != bc) {
      return nullptr;
    }
    if (source_id == 0) {
      source_id = oit->second.source_id;
    } else if (source_id != oit->second.source_id) {
      return nullptr;
    }
    covered_base.insert(bc);
  }
  if (source_id == 0) return nullptr;

  // Pinned augmenter columns (col = const predicates) extend coverage.
  for (const ExprRef& pred : aug->base_preds) {
    std::optional<ColumnConstant> cc = MatchColumnEqConstant(pred);
    if (cc.has_value()) covered_base.insert(cc->column);
  }

  // The covered columns must include a unique key of the augmenter table,
  // so each anchor row joins with exactly its own base row. The coverage
  // test is shared with the general self-join rule and the catalog audit
  // (analysis/infer), so the rules cannot disagree about provability.
  if (!TableKeyCovered(aug->scan->table_schema(), covered_base,
                       ToInferOptions(dcfg))) {
    return nullptr;
  }

  // Locate the anchor source node; a union anchor needs Fig. 13(a) support.
  PlanRef source = FindNodeById(join->left(), source_id);
  if (!source) return nullptr;
  if (source->kind() == OpKind::kUnionAll && !config.asj_union_all_anchor) {
    return nullptr;
  }
  if (source->kind() != OpKind::kScan &&
      source->kind() != OpKind::kUnionAll) {
    return nullptr;
  }

  // Predicate subsumption (Fig. 10(c)): the augmenter predicate must be
  // implied by what the anchor already applies to the same table.
  if (!aug->base_preds.empty()) {
    std::vector<ExprRef> anchor_preds;
    if (source->kind() == OpKind::kScan) {
      CollectScanPredicates(join->left(), source_id, dcfg, &anchor_preds);
    } else {
      // Union anchor: each child must subsume on its branch scan.
      const auto& u = static_cast<const UnionAllOp&>(*source);
      for (const PlanRef& child : u.children()) {
        RelProps cp = DeriveProps(child, dcfg);
        uint64_t branch_scan = 0;
        for (const auto& [name, origin] : cp.origins) {
          if (!origin.null_extended) {
            branch_scan = origin.source_id;
            break;
          }
        }
        if (branch_scan == 0) return nullptr;
        std::vector<ExprRef> branch_preds;
        CollectScanPredicates(child, branch_scan, dcfg, &branch_preds);
        if (!ConjunctsSubsume(branch_preds, aug->base_preds)) return nullptr;
      }
      anchor_preds = aug->base_preds;  // per-branch check passed
    }
    if (!ConjunctsSubsume(anchor_preds, aug->base_preds)) return nullptr;
  }

  // Rewire: every augmenter output column must be available (or exposable)
  // from the anchor-side instance.
  std::vector<std::string> left_names = join->left()->OutputNames();
  std::vector<std::string> right_names = join->right()->OutputNames();
  std::map<std::string, std::string> right_to_left;  // right name -> left name
  std::map<std::string, Value> right_literals;       // right name -> literal
  std::vector<std::string> missing_base;
  std::map<std::string, std::string> pending;  // right name -> base col
  for (const std::string& rn : right_names) {
    auto lit = aug->out_literals.find(rn);
    if (lit != aug->out_literals.end()) {
      right_literals.emplace(rn, lit->second);
      continue;
    }
    auto bit = aug->out_to_base.find(rn);
    if (bit == aug->out_to_base.end()) return nullptr;
    const std::string& bc = bit->second;
    std::string found;
    for (const auto& [name, origin] : left_props.origins) {
      if (origin.source_id == source_id && origin.column == bc &&
          !origin.null_extended) {
        found = name;
        break;
      }
    }
    if (!found.empty()) {
      right_to_left[rn] = found;
    } else {
      if (std::find(missing_base.begin(), missing_base.end(), bc) ==
          missing_base.end()) {
        missing_base.push_back(bc);
      }
      pending[rn] = bc;
    }
  }

  PlanRef new_left = join->left();
  if (!missing_base.empty()) {
    std::optional<Exposure> e =
        ExposeColumns(join->left(), source_id, missing_base, dcfg);
    if (!e.has_value()) return nullptr;
    new_left = e->plan;
    for (const auto& [rn, bc] : pending) {
      right_to_left[rn] = e->base_to_name.at(bc);
    }
  }

  // Final projection reproduces the join's output names exactly.
  std::vector<ProjectOp::Item> items;
  for (const std::string& ln : left_names) items.push_back({Col(ln), ln});
  for (const std::string& rn : right_names) {
    auto lit = right_literals.find(rn);
    if (lit != right_literals.end()) {
      items.push_back({Lit(lit->second), rn});
    } else {
      items.push_back({Col(right_to_left.at(rn)), rn});
    }
  }
  return std::make_shared<ProjectOp>(std::move(new_left), std::move(items));
}

// ---------------------------------------------------------------------------
// Case join over UNION ALL on both sides (Fig. 13(b)).
//
// Strategy: push the case join down through the anchor subtree
// (projections, filters, joins on the non-anchor side) until the anchor
// UNION ALL surfaces, then decompose per branch — each anchor branch joins
// only its matching augmenter branch (the branch-id conjunct folds away) —
// and eliminate every branch join as a simple ASJ. The rewrite is
// committed only if every branch eliminates, so a failed recognition
// leaves the original plan untouched (Fig. 14(a) behaviour).

/// If the plan is a pass-through projection stack over a UNION ALL,
/// returns the union and the mapping output-name -> union-column position.
std::shared_ptr<const UnionAllOp> PeelToUnion(
    const PlanRef& plan, std::map<std::string, size_t>* out_to_position) {
  if (plan->kind() == OpKind::kUnionAll) {
    auto u = std::static_pointer_cast<const UnionAllOp>(plan);
    for (size_t p = 0; p < u->output_names().size(); ++p) {
      (*out_to_position)[u->output_names()[p]] = p;
    }
    return u;
  }
  if (plan->kind() == OpKind::kProject) {
    const auto& project = static_cast<const ProjectOp&>(*plan);
    std::map<std::string, size_t> child_map;
    std::shared_ptr<const UnionAllOp> u =
        PeelToUnion(plan->child(0), &child_map);
    if (!u) return nullptr;
    for (const ProjectOp::Item& item : project.items()) {
      if (item.expr->kind() != ExprKind::kColumnRef) return nullptr;
      auto it = child_map.find(
          static_cast<const ColumnRefExpr&>(*item.expr).name());
      if (it == child_map.end()) return nullptr;
      (*out_to_position)[item.name] = it->second;
    }
    return u;
  }
  return nullptr;
}

/// Decomposes the case join at an anchor UNION ALL: each anchor branch is
/// joined with its matching augmenter branch and eliminated via
/// TrySimpleAsj. Returns the rebuilt union (anchor columns + augmenter
/// columns appended) or nullptr.
PlanRef DecomposeAtUnion(const std::shared_ptr<const UnionAllOp>& anchor,
                         const std::shared_ptr<const UnionAllOp>& aug,
                         JoinType join_type, const ExprRef& condition,
                         const std::vector<std::string>& aug_names,
                         const OptimizerConfig& config) {
  const DerivationConfig& dcfg = config.derivation;
  if (anchor->NumChildren() != aug->NumChildren()) return nullptr;

  // Extract and index the augmenter branches by base table.
  std::map<std::string, size_t> aug_by_table;
  for (size_t j = 0; j < aug->NumChildren(); ++j) {
    std::optional<SimpleRelation> rel = ExtractSimpleRelation(aug->child(j));
    if (!rel.has_value()) return nullptr;
    std::string table = ToLower(rel->scan->table_name());
    if (!aug_by_table.emplace(table, j).second) return nullptr;  // ambiguous
  }

  std::vector<PlanRef> branch_plans;
  for (size_t i = 0; i < anchor->NumChildren(); ++i) {
    const PlanRef& anchor_child = anchor->child(i);
    RelProps anchor_cp = DeriveProps(anchor_child, dcfg);
    std::string branch_table;
    for (const auto& [name, origin] : anchor_cp.origins) {
      if (!origin.null_extended) {
        branch_table = origin.table;
        break;
      }
    }
    auto match = aug_by_table.find(branch_table);
    if (match == aug_by_table.end()) return nullptr;
    const PlanRef& aug_child = aug->child(match->second);

    // Positional renames: anchor union names -> anchor child names,
    // augmenter internal names -> augmenter child names.
    std::map<std::string, ExprRef> rename;
    std::vector<std::string> anchor_child_names = anchor_child->OutputNames();
    for (size_t p = 0; p < anchor->output_names().size(); ++p) {
      rename[anchor->output_names()[p]] = Col(anchor_child_names[p]);
    }
    std::vector<std::string> aug_child_names = aug_child->OutputNames();
    for (size_t p = 0; p < aug_names.size(); ++p) {
      rename[aug_names[p]] = Col(aug_child_names[p]);
    }
    ExprRef branch_cond = RemapColumns(
        condition, [&](const std::string& name) -> ExprRef {
          auto it = rename.find(name);
          return it == rename.end() ? nullptr : it->second;
        });

    // Drop branch-id conjuncts: both sides pinned to the same constant
    // fold away; contradictory constants mean the table pairing is wrong.
    RelProps aug_cp = DeriveProps(aug_child, dcfg);
    auto find_const = [&](const std::string& name) -> const Value* {
      auto it1 = anchor_cp.constants.find(name);
      if (it1 != anchor_cp.constants.end()) return &it1->second;
      auto it2 = aug_cp.constants.find(name);
      if (it2 != aug_cp.constants.end()) return &it2->second;
      return nullptr;
    };
    std::vector<ExprRef> kept;
    for (const ExprRef& conjunct : SplitConjuncts(branch_cond)) {
      std::optional<ColumnPair> pair = MatchColumnEqColumn(conjunct);
      if (pair.has_value()) {
        const Value* lv = find_const(pair->left);
        const Value* rv = find_const(pair->right);
        if (lv != nullptr && rv != nullptr) {
          if (lv->Equals(*rv)) continue;
          return nullptr;
        }
      }
      kept.push_back(conjunct);
    }
    auto branch_join = std::make_shared<JoinOp>(
        anchor_child, aug_child, join_type, AndAll(std::move(kept)),
        DeclaredCardinality::kNone, /*is_case_join=*/false);
    PlanRef eliminated = TrySimpleAsj(branch_join, config);
    if (!eliminated) return nullptr;
    branch_plans.push_back(std::move(eliminated));
  }

  std::vector<std::string> names = anchor->output_names();
  names.insert(names.end(), aug_names.begin(), aug_names.end());
  return std::make_shared<UnionAllOp>(std::move(branch_plans),
                                      std::move(names),
                                      anchor->branch_id_column(),
                                      anchor->logical_table());
}

/// Pushes the case join down the anchor subtree toward its UNION ALL.
/// On success returns a plan whose outputs are the anchor's output names
/// followed by aug_names. `depth_budget` limits how deep the push may go —
/// 0 models fragile recognition without explicit intent (Fig. 14(a)).
PlanRef PushCaseJoin(const PlanRef& anchor,
                     const std::shared_ptr<const UnionAllOp>& aug,
                     JoinType join_type, const ExprRef& condition,
                     const std::vector<std::string>& aug_names,
                     int depth_budget, const OptimizerConfig& config) {
  if (anchor->kind() == OpKind::kUnionAll) {
    return DecomposeAtUnion(
        std::static_pointer_cast<const UnionAllOp>(anchor), aug, join_type,
        condition, aug_names, config);
  }
  if (depth_budget <= 0) return nullptr;

  switch (anchor->kind()) {
    case OpKind::kFilter: {
      // A filter on the anchor commutes with the augmentation join.
      PlanRef inner =
          PushCaseJoin(anchor->child(0), aug, join_type, condition,
                       aug_names, depth_budget - 1, config);
      if (!inner) return nullptr;
      const auto& filter = static_cast<const FilterOp&>(*anchor);
      return std::make_shared<FilterOp>(std::move(inner),
                                        filter.predicate());
    }
    case OpKind::kProject: {
      const auto& project = static_cast<const ProjectOp&>(*anchor);
      std::map<std::string, ExprRef> defs;
      for (const ProjectOp::Item& item : project.items()) {
        defs[item.name] = item.expr;
      }
      ExprRef remapped =
          RemapColumns(condition, [&](const std::string& name) -> ExprRef {
            auto it = defs.find(name);
            return it == defs.end() ? nullptr : it->second;
          });
      PlanRef inner =
          PushCaseJoin(anchor->child(0), aug, join_type, remapped, aug_names,
                       depth_budget - 1, config);
      if (!inner) return nullptr;
      std::vector<ProjectOp::Item> items = project.items();
      for (const std::string& an : aug_names) {
        items.push_back({Col(an), an});
      }
      return std::make_shared<ProjectOp>(std::move(inner), std::move(items));
    }
    case OpKind::kJoin: {
      const auto& inner_join = static_cast<const JoinOp&>(*anchor);
      std::vector<std::string> left_names =
          inner_join.left()->OutputNames();
      // All anchor-side condition references must come from the join's
      // left input for the push to be valid.
      std::vector<std::string> cond_refs;
      CollectColumnRefs(condition, &cond_refs);
      std::set<std::string> left_set(left_names.begin(), left_names.end());
      std::set<std::string> aug_set(aug_names.begin(), aug_names.end());
      for (const std::string& ref : cond_refs) {
        if (aug_set.count(ref) > 0) continue;
        if (left_set.count(ref) == 0) return nullptr;
      }
      PlanRef pushed =
          PushCaseJoin(inner_join.left(), aug, join_type, condition,
                       aug_names, depth_budget - 1, config);
      if (!pushed) return nullptr;
      PlanRef rebuilt = std::make_shared<JoinOp>(
          std::move(pushed), inner_join.right(), inner_join.join_type(),
          inner_join.condition(), inner_join.declared_cardinality(),
          inner_join.is_case_join());
      // Restore column order: anchor outputs first, augmenter columns last.
      std::vector<ProjectOp::Item> items;
      for (const std::string& name : anchor->OutputNames()) {
        items.push_back({Col(name), name});
      }
      for (const std::string& an : aug_names) {
        items.push_back({Col(an), an});
      }
      return std::make_shared<ProjectOp>(std::move(rebuilt),
                                         std::move(items));
    }
    default:
      return nullptr;
  }
}

PlanRef TryCaseJoinAsj(const std::shared_ptr<const JoinOp>& join,
                       const OptimizerConfig& config) {
  if (!config.case_join) return nullptr;

  // The augmenter must be a UNION ALL, possibly under a pass-through
  // projection (the binder's alias rename).
  std::map<std::string, size_t> right_to_position;
  std::shared_ptr<const UnionAllOp> aug =
      PeelToUnion(join->right(), &right_to_position);
  if (!aug) return nullptr;

  // Without the explicit case-join intent, recognition is deliberately
  // fragile (paper §6.3 / Fig. 14(a)): the anchor union must be the direct
  // left child and the augmenter branches bare scans.
  bool robust = join->is_case_join();
  if (!robust) {
    for (const PlanRef& child : aug->children()) {
      if (child->kind() != OpKind::kScan) return nullptr;
    }
  }
  int depth_budget = robust ? 64 : 0;

  // Rename the augmenter columns to collision-free internal names.
  std::vector<std::string> aug_names;
  for (size_t p = 0; p < aug->output_names().size(); ++p) {
    aug_names.push_back(StrFormat(
        "__caug%llu.%s", static_cast<unsigned long long>(join->id()),
        aug->output_names()[p].c_str()));
  }
  auto renamed_aug = std::make_shared<UnionAllOp>(
      std::vector<PlanRef>(aug->children().begin(), aug->children().end()),
      aug_names, aug->branch_id_column(), aug->logical_table());

  // Remap augmenter-side condition references onto the internal names.
  std::vector<std::string> right_names = join->right()->OutputNames();
  ExprRef condition =
      RemapColumns(join->condition(), [&](const std::string& name) -> ExprRef {
        auto it = right_to_position.find(name);
        if (it == right_to_position.end()) return nullptr;
        return Col(aug_names[it->second]);
      });

  PlanRef core = PushCaseJoin(join->left(), renamed_aug, join->join_type(),
                              condition, aug_names, depth_budget, config);
  if (!core) return nullptr;

  // Restore the join's exact output naming.
  std::vector<ProjectOp::Item> items;
  for (const std::string& name : join->left()->OutputNames()) {
    items.push_back({Col(name), name});
  }
  for (const std::string& rn : right_names) {
    items.push_back({Col(aug_names[right_to_position.at(rn)]), rn});
  }
  return std::make_shared<ProjectOp>(std::move(core), std::move(items));
}

}  // namespace

PlanRef PassAsjElimination(const PlanRef& plan, const OptimizerConfig& config,
                           bool* changed) {
  if (!config.asj_elimination) return plan;
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (node->kind() != OpKind::kJoin) return nullptr;
    auto join = std::static_pointer_cast<const JoinOp>(node);
    PlanRef result = TrySimpleAsj(join, config);
    if (!result) result = TryCaseJoinAsj(join, config);
    if (result) {
      *changed = true;
      return result;
    }
    return nullptr;
  });
}

}  // namespace vdm
