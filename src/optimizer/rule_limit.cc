// Limit pushdown (paper §4.4, Fig. 6): a LIMIT above a purely augmenting
// join applies to the anchor side, because the join neither filters nor
// duplicates anchor rows (and the executor preserves anchor order through
// the left-outer hash join). The limit also commutes with projections, so
// a single application sinks it through the whole Project/AJ stack that a
// VDM view produces.
#include "optimizer/optimizer.h"

namespace vdm {

namespace {

/// True if a limit of the given size already sits on the sink spine
/// (descending through projections and join anchors) of this subtree —
/// the idempotence check for union-all limit distribution.
bool SpineHasLimit(const PlanRef& plan, int64_t limit) {
  const LogicalOp* node = plan.get();
  while (true) {
    switch (node->kind()) {
      case OpKind::kLimit: {
        const auto& l = static_cast<const LimitOp&>(*node);
        return l.limit() == limit && l.offset() == 0;
      }
      case OpKind::kProject:
        node = node->child(0).get();
        break;
      case OpKind::kJoin:
        node = static_cast<const JoinOp&>(*node).left().get();
        break;
      default:
        return false;
    }
  }
}

/// Sinks a LIMIT as deep as projections and augmentation joins allow.
/// Returns the new subtree; sets *descended when it moved at least once.
PlanRef SinkLimit(int64_t limit, int64_t offset, const PlanRef& child,
                  const OptimizerConfig& config, bool* descended) {
  if (child->kind() == OpKind::kProject) {
    const auto& project = static_cast<const ProjectOp&>(*child);
    *descended = true;
    bool ignored = false;
    return std::make_shared<ProjectOp>(
        SinkLimit(limit, offset, child->child(0), config, &ignored),
        project.items());
  }
  if (child->kind() == OpKind::kUnionAll) {
    // LIMIT distributes over UNION ALL: each branch needs at most
    // limit+offset rows; the outer limit still applies to the concatenation.
    const auto& u = static_cast<const UnionAllOp&>(*child);
    int64_t branch_limit = limit + offset;
    bool all_limited = true;
    for (const PlanRef& uc : child->children()) {
      if (!SpineHasLimit(uc, branch_limit)) {
        all_limited = false;
        break;
      }
    }
    if (!all_limited) {
      *descended = true;
      std::vector<PlanRef> new_children;
      for (const PlanRef& uc : child->children()) {
        bool ignored = false;
        new_children.push_back(
            SinkLimit(branch_limit, 0, uc, config, &ignored));
      }
      PlanRef new_union = std::make_shared<UnionAllOp>(
          std::move(new_children), u.output_names(), u.branch_id_column(),
          u.logical_table());
      return std::make_shared<LimitOp>(std::move(new_union), limit, offset);
    }
  }
  if (child->kind() == OpKind::kJoin) {
    const auto& join = static_cast<const JoinOp&>(*child);
    RelProps left_props = DeriveProps(join.left(), config.derivation);
    RelProps right_props = DeriveProps(join.right(), config.derivation);
    JoinAnalysis analysis =
        AnalyzeJoin(join, left_props, right_props, config.derivation);
    if (analysis.purely_augmenting) {
      *descended = true;
      bool ignored = false;
      return std::make_shared<JoinOp>(
          SinkLimit(limit, offset, join.left(), config, &ignored),
          join.right(), join.join_type(), join.condition(),
          join.declared_cardinality(), join.is_case_join());
    }
  }
  return std::make_shared<LimitOp>(child, limit, offset);
}

}  // namespace

PlanRef AnnotateJoinLimitHints(const PlanRef& plan) {
  // Top-down: a LIMIT's row budget (offset + limit) applies to everything
  // on the order-preserving spine below it — projections pass rows 1:1,
  // UNION ALL children each contribute a prefix, and a join's output is
  // truncated to the budget by the LimitOp above. Joins on that spine get
  // the budget as an executor hint (the probe loop stops early).
  std::function<PlanRef(const PlanRef&, int64_t)> annotate =
      [&](const PlanRef& node, int64_t budget) -> PlanRef {
    int64_t child_budget = -1;
    switch (node->kind()) {
      case OpKind::kLimit: {
        const auto& limit = static_cast<const LimitOp&>(*node);
        child_budget = limit.offset() + limit.limit();
        if (budget >= 0 && budget < child_budget) child_budget = budget;
        break;
      }
      case OpKind::kProject:
      case OpKind::kUnionAll:
        child_budget = budget;
        break;
      default:
        break;  // other operators reorder, filter, or consume all rows
    }
    bool changed = false;
    std::vector<PlanRef> new_children;
    new_children.reserve(node->NumChildren());
    for (const PlanRef& child : node->children()) {
      PlanRef rewritten = annotate(child, child_budget);
      if (rewritten != child) changed = true;
      new_children.push_back(std::move(rewritten));
    }
    PlanRef result =
        changed ? node->WithChildren(std::move(new_children)) : node;
    if (result->kind() == OpKind::kJoin && budget >= 0) {
      const auto& join = static_cast<const JoinOp&>(*result);
      if (join.limit_hint() < 0 || budget < join.limit_hint()) {
        result = join.WithLimitHint(budget);
      }
    }
    return result;
  };
  return annotate(plan, -1);
}

PlanRef PassLimitPushdown(const PlanRef& plan, const OptimizerConfig& config,
                          bool* changed) {
  if (!config.limit_pushdown_over_aj) return plan;
  return TransformPlan(plan, [&](const PlanRef& node) -> PlanRef {
    if (node->kind() != OpKind::kLimit) return nullptr;
    const auto& limit = static_cast<const LimitOp&>(*node);
    bool descended = false;
    PlanRef sunk = SinkLimit(limit.limit(), limit.offset(), node->child(0),
                             config, &descended);
    if (!descended) return nullptr;
    *changed = true;
    return sunk;
  });
}

}  // namespace vdm
