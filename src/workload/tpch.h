// Scaled-down deterministic TPC-H data generator (paper Fig. 5 context).
//
// The paper's seven UAJ micro-queries run on the TPC-H schema with primary
// keys defined and optional foreign keys omitted (§4.3). A sizing of
// scale=1 produces ~15k orders / ~60k lineitems — enough to make join
// elimination measurable on a laptop while keeping test runtimes low.
#ifndef VDMQO_WORKLOAD_TPCH_H_
#define VDMQO_WORKLOAD_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace vdm {

struct TpchOptions {
  /// Multiplies the base row counts (base: 1500 customers, 15000 orders,
  /// ~60000 lineitems, 2000 parts, 100 suppliers).
  double scale = 1.0;
  uint64_t seed = 42;
  /// Also declare the benchmark's optional foreign keys (off per §4.3;
  /// turned on to exercise AJ 1a FK-based elimination).
  bool with_foreign_keys = false;
};

/// Creates the eight TPC-H tables (with primary keys) in the database.
Status CreateTpchSchema(Database* db, const TpchOptions& options = {});

/// Generates and loads deterministic data, then merges deltas.
Status LoadTpchData(Database* db, const TpchOptions& options = {});

/// The paper's seven UAJ micro-queries (Fig. 5).
enum class UajQuery {
  kUaj1,   // AJ 2a-1: LOJ on the augmenter's primary key
  kUaj2,   // AJ 2a-2: LOJ on a GROUP BY key
  kUaj3,   // AJ 2a-3: LOJ on a constant-pinned composite key
  kUaj1a,  // UAJ 1 + non-duplicating join inside the augmenter
  kUaj2a,  // UAJ 2 + non-duplicating join inside the augmenter
  kUaj3a,  // UAJ 3 + non-duplicating join inside the augmenter
  kUaj1b,  // UAJ 1 + ORDER BY / LIMIT on the augmenter
};

/// SQL text of a UAJ micro-query.
std::string UajQuerySql(UajQuery query);
std::string UajQueryName(UajQuery query);
std::vector<UajQuery> AllUajQueries();

/// The paper's Fig. 6 paging query (limit on augmentation join).
std::string PagingQuerySql(int64_t limit, int64_t offset);

/// The paper's Fig. 10 ASJ micro-queries over TPC-H.
enum class AsjQuery {
  kFig10a,  // bare self-join on key
  kFig10b,  // anchor is a subquery (joins/projections above the scan)
  kFig10c,  // selection on the augmenter, subsumed by the anchor
};
std::string AsjQuerySql(AsjQuery query);
std::string AsjQueryName(AsjQuery query);
std::vector<AsjQuery> AllAsjQueries();

/// Fig. 12 UNION ALL + UAJ micro-queries.
enum class UnionUajQuery {
  kFig12a,  // disjoint subsets of one table under the union
  kFig12b,  // branch-id union (draft/active style)
};
std::string UnionUajQuerySql(UnionUajQuery query);
std::string UnionUajQueryName(UnionUajQuery query);
std::vector<UnionUajQuery> AllUnionUajQueries();

}  // namespace vdm

#endif  // VDMQO_WORKLOAD_TPCH_H_
