// Synthetic S/4HANA-like financial schema (paper §3).
//
// Centered on ACDOCA, the "universal journal" line-item table, with the
// company (T001) and ledger tables forming the 3-way core of the
// JournalEntryItemBrowser interface view, the classic master-data
// dimensions (KNA1 customers, LFA1 suppliers, SKA1 G/L accounts, CSKS cost
// centers, ...), and a family of generic dimension tables that stand in
// for the long tail of augmentation joins the real VDM performs.
#ifndef VDMQO_WORKLOAD_S4_H_
#define VDMQO_WORKLOAD_S4_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/database.h"

namespace vdm {

struct S4Options {
  /// Journal line items in ACDOCA.
  int64_t acdoca_rows = 50000;
  /// Rows per master-data dimension table.
  int64_t dimension_rows = 500;
  /// Number of generic dimension tables (dim01..dimNN) created. The
  /// JournalEntryItemBrowser stack (vdm/jeib.h) uses 39 of them.
  int generic_dimensions = 40;
  uint64_t seed = 7;
};

/// Creates all tables of the synthetic S/4 schema.
Status CreateS4Schema(Database* db, const S4Options& options = {});

/// Loads deterministic data and merges deltas.
Status LoadS4Data(Database* db, const S4Options& options = {});

/// Name of the k-th generic dimension table ("dim01", ...).
std::string GenericDimName(int k);

}  // namespace vdm

#endif  // VDMQO_WORKLOAD_S4_H_
