#include "workload/s4.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace vdm {

namespace {

constexpr int64_t kCompanies = 20;
constexpr int64_t kLedgers = 4;

Status Exec(Database* db, const std::string& sql) {
  Result<Chunk> result = db->Execute(sql);
  if (!result.ok()) return result.status();
  return Status::OK();
}

}  // namespace

std::string GenericDimName(int k) { return StrFormat("dim%02d", k); }

Status CreateS4Schema(Database* db, const S4Options& options) {
  // ACDOCA: the universal journal, line-item grain.
  VDM_RETURN_NOT_OK(Exec(db,
      "create table acdoca ("
      "  rldnr varchar(2) not null,"      // ledger
      "  rbukrs varchar(4) not null,"     // company code
      "  gjahr int not null,"             // fiscal year
      "  belnr int not null,"             // document number
      "  docln int not null,"             // document line
      "  racct int not null,"             // G/L account
      "  kunnr int,"                      // customer (nullable)
      "  lifnr int,"                      // supplier (nullable)
      "  kostl int,"                      // cost center
      "  prctr int,"                      // profit center
      "  land1 int,"                      // country key
      "  budat date,"                     // posting date
      "  hsl decimal(15,2),"              // amount in local currency
      "  wsl decimal(15,2),"              // amount in transaction currency
      "  kursf decimal(9,5),"             // exchange rate
      "  drcrk varchar(1),"               // debit/credit flag
      "  primary key (rldnr, rbukrs, gjahr, belnr, docln))"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table t001 ("                // companies
      "  bukrs varchar(4) primary key,"
      "  butxt varchar(30) not null,"
      "  land1 int not null,"
      "  waers varchar(3) not null)"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table fins_ledger ("
      "  rldnr varchar(2) primary key,"
      "  name varchar(30) not null,"
      "  is_leading bool)"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table kna1 ("                // customers
      "  kunnr int primary key,"
      "  name1 varchar(35) not null,"
      "  land1 int not null,"
      "  ktokd varchar(4))"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table lfa1 ("                // suppliers
      "  lifnr int primary key,"
      "  name1 varchar(35) not null,"
      "  land1 int not null,"
      "  ktokk varchar(4))"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table ska1 ("                // G/L accounts
      "  saknr int primary key,"
      "  ktopl varchar(4) not null,"
      "  txt50 varchar(50))"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table csks ("                // cost centers
      "  kostl int primary key,"
      "  ktext varchar(40),"
      "  verak varchar(20))"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table cepc ("                // profit centers
      "  prctr int primary key,"
      "  ltext varchar(40))"));

  VDM_RETURN_NOT_OK(Exec(db,
      "create table t005 ("                // countries
      "  land1 int primary key,"
      "  landx varchar(30) not null,"
      "  waers varchar(3))"));

  for (int k = 1; k <= options.generic_dimensions; ++k) {
    VDM_RETURN_NOT_OK(Exec(db, StrFormat(
        "create table %s ("
        "  dkey int primary key,"
        "  dname varchar(30) not null,"
        "  dattr varchar(20),"
        "  dnum decimal(10,2))",
        GenericDimName(k).c_str())));
  }
  return Status::OK();
}

Status LoadS4Data(Database* db, const S4Options& options) {
  Rng rng(options.seed);
  std::vector<std::vector<Value>> rows;

  for (int64_t i = 1; i <= kCompanies; ++i) {
    rows.push_back({Value::String(StrFormat("C%03lld",
                                            static_cast<long long>(i))),
                    Value::String("Company " + std::to_string(i)),
                    Value::Int64(rng.Uniform(1, 64)),
                    Value::String(i % 3 == 0 ? "USD" : "EUR")});
  }
  VDM_RETURN_NOT_OK(db->Insert("t001", rows));

  rows.clear();
  for (int64_t i = 0; i < kLedgers; ++i) {
    rows.push_back({Value::String(StrFormat("%lldL",
                                            static_cast<long long>(i))),
                    Value::String("Ledger " + std::to_string(i)),
                    Value::Bool(i == 0)});
  }
  VDM_RETURN_NOT_OK(db->Insert("fins_ledger", rows));

  const int64_t dim_rows = options.dimension_rows;
  rows.clear();
  for (int64_t i = 1; i <= dim_rows; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("Customer " + std::to_string(i)),
                    Value::Int64(rng.Uniform(1, 64)),
                    Value::String("KD01")});
  }
  VDM_RETURN_NOT_OK(db->Insert("kna1", rows));

  rows.clear();
  for (int64_t i = 1; i <= dim_rows; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("Supplier " + std::to_string(i)),
                    Value::Int64(rng.Uniform(1, 64)),
                    Value::String("KK01")});
  }
  VDM_RETURN_NOT_OK(db->Insert("lfa1", rows));

  rows.clear();
  for (int64_t i = 1; i <= dim_rows; ++i) {
    rows.push_back({Value::Int64(i), Value::String("CHART"),
                    Value::String("Account " + std::to_string(i))});
  }
  VDM_RETURN_NOT_OK(db->Insert("ska1", rows));

  rows.clear();
  for (int64_t i = 1; i <= dim_rows; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("CostCenter " + std::to_string(i)),
                    Value::String("Resp " + std::to_string(i % 17))});
  }
  VDM_RETURN_NOT_OK(db->Insert("csks", rows));

  rows.clear();
  for (int64_t i = 1; i <= dim_rows; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("ProfitCenter " + std::to_string(i))});
  }
  VDM_RETURN_NOT_OK(db->Insert("cepc", rows));

  rows.clear();
  for (int64_t i = 1; i <= 64; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("Country " + std::to_string(i)),
                    Value::String(i % 2 == 0 ? "EUR" : "USD")});
  }
  VDM_RETURN_NOT_OK(db->Insert("t005", rows));

  for (int k = 1; k <= options.generic_dimensions; ++k) {
    rows.clear();
    for (int64_t i = 1; i <= dim_rows; ++i) {
      rows.push_back({Value::Int64(i),
                      Value::String(StrFormat("D%02d-%lld", k,
                                              static_cast<long long>(i))),
                      Value::String(rng.NextString(6)),
                      Value::Decimal(rng.Uniform(0, 100000), 2)});
    }
    VDM_RETURN_NOT_OK(db->Insert(GenericDimName(k), rows));
  }

  // ACDOCA journal lines.
  rows.clear();
  rows.reserve(static_cast<size_t>(options.acdoca_rows));
  int64_t belnr = 1;
  int64_t docln = 1;
  for (int64_t i = 0; i < options.acdoca_rows; ++i) {
    if (docln > rng.Uniform(2, 8)) {
      ++belnr;
      docln = 1;
    }
    int64_t amount = rng.Uniform(-5000000, 5000000);
    rows.push_back({
        Value::String(StrFormat("%lldL",
                                static_cast<long long>(rng.Uniform(0, 3)))),
        Value::String(StrFormat(
            "C%03lld", static_cast<long long>(rng.Uniform(1, kCompanies)))),
        Value::Int64(rng.Uniform(2020, 2025)),
        Value::Int64(belnr),
        Value::Int64(docln),
        Value::Int64(rng.Uniform(1, dim_rows)),
        rng.Bernoulli(0.6) ? Value::Int64(rng.Uniform(1, dim_rows))
                           : Value::Null(),
        rng.Bernoulli(0.4) ? Value::Int64(rng.Uniform(1, dim_rows))
                           : Value::Null(),
        Value::Int64(rng.Uniform(1, dim_rows)),
        Value::Int64(rng.Uniform(1, dim_rows)),
        Value::Int64(rng.Uniform(1, 64)),
        Value::Date(rng.Uniform(18263, 20089)),  // 2020..2024
        Value::Decimal(amount, 2),
        Value::Decimal(amount * 100 / rng.Uniform(80, 120), 2),
        Value::Decimal(rng.Uniform(80000, 120000), 5),
        Value::String(amount >= 0 ? "S" : "H"),
    });
    ++docln;
  }
  VDM_RETURN_NOT_OK(db->Insert("acdoca", rows));

  db->MergeAllDeltas();
  return Status::OK();
}

}  // namespace vdm
