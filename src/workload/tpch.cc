#include "workload/tpch.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace vdm {

namespace {

const char* kSchemaSql[] = {
    "create table region ("
    "  r_regionkey int primary key,"
    "  r_name varchar(25) not null)",

    "create table nation ("
    "  n_nationkey int primary key,"
    "  n_name varchar(25) not null,"
    "  n_regionkey int not null)",

    "create table supplier ("
    "  s_suppkey int primary key,"
    "  s_name varchar(25) not null,"
    "  s_nationkey int not null,"
    "  s_acctbal decimal(12,2))",

    "create table customer ("
    "  c_custkey int primary key,"
    "  c_name varchar(25) not null,"
    "  c_nationkey int not null,"
    "  c_acctbal decimal(12,2),"
    "  c_mktsegment varchar(10))",

    "create table part ("
    "  p_partkey int primary key,"
    "  p_name varchar(55) not null,"
    "  p_brand varchar(10),"
    "  p_retailprice decimal(12,2))",

    "create table partsupp ("
    "  ps_partkey int not null,"
    "  ps_suppkey int not null,"
    "  ps_availqty int,"
    "  ps_supplycost decimal(12,2),"
    "  primary key (ps_partkey, ps_suppkey))",

    "create table orders ("
    "  o_orderkey int primary key,"
    "  o_custkey int not null,"
    "  o_orderstatus varchar(1),"
    "  o_totalprice decimal(12,2),"
    "  o_orderdate date)",

    "create table lineitem ("
    "  l_orderkey int not null,"
    "  l_linenumber int not null,"
    "  l_partkey int not null,"
    "  l_suppkey int not null,"
    "  l_quantity int,"
    "  l_extendedprice decimal(12,2),"
    "  l_discount decimal(4,2),"
    "  l_tax decimal(4,2),"
    "  l_shipdate date,"
    "  primary key (l_orderkey, l_linenumber))",

    // Draft/active pair for the Fig. 11(b)/12(b) patterns.
    "create table orders_active ("
    "  o_orderkey int primary key,"
    "  o_custkey int not null,"
    "  o_totalprice decimal(12,2))",

    "create table orders_draft ("
    "  o_orderkey int primary key,"
    "  o_custkey int not null,"
    "  o_totalprice decimal(12,2))",
};

const char* kForeignKeySql[] = {
    // Re-create orders/lineitem with foreign keys when requested.
    "create table orders ("
    "  o_orderkey int primary key,"
    "  o_custkey int not null,"
    "  o_orderstatus varchar(1),"
    "  o_totalprice decimal(12,2),"
    "  o_orderdate date,"
    "  foreign key (o_custkey) references customer (c_custkey))",

    "create table lineitem ("
    "  l_orderkey int not null,"
    "  l_linenumber int not null,"
    "  l_partkey int not null,"
    "  l_suppkey int not null,"
    "  l_quantity int,"
    "  l_extendedprice decimal(12,2),"
    "  l_discount decimal(4,2),"
    "  l_tax decimal(4,2),"
    "  l_shipdate date,"
    "  primary key (l_orderkey, l_linenumber),"
    "  foreign key (l_orderkey) references orders (o_orderkey),"
    "  foreign key (l_partkey) references part (p_partkey),"
    "  foreign key (l_suppkey) references supplier (s_suppkey))",
};

constexpr const char* kStatuses[] = {"O", "F", "P"};
constexpr const char* kSegments[] = {"AUTO", "BUILDING", "MACHINERY",
                                     "FURNITURE", "HOUSEHOLD"};

}  // namespace

Status CreateTpchSchema(Database* db, const TpchOptions& options) {
  for (const char* sql : kSchemaSql) {
    bool is_orders_like =
        options.with_foreign_keys &&
        (std::string(sql).find("create table orders (") == 0 ||
         std::string(sql).find("create table lineitem (") == 0);
    if (is_orders_like) continue;
    Result<Chunk> result = db->Execute(sql);
    if (!result.ok()) return result.status();
  }
  if (options.with_foreign_keys) {
    for (const char* sql : kForeignKeySql) {
      Result<Chunk> result = db->Execute(sql);
      if (!result.ok()) return result.status();
    }
  }
  return Status::OK();
}

Status LoadTpchData(Database* db, const TpchOptions& options) {
  Rng rng(options.seed);
  auto scaled = [&](int64_t base) {
    return static_cast<int64_t>(std::llround(base * options.scale));
  };
  const int64_t n_region = 5;
  const int64_t n_nation = 25;
  const int64_t n_supplier = std::max<int64_t>(scaled(100), 1);
  const int64_t n_customer = std::max<int64_t>(scaled(1500), 1);
  const int64_t n_part = std::max<int64_t>(scaled(2000), 1);
  const int64_t n_orders = std::max<int64_t>(scaled(15000), 1);

  std::vector<std::vector<Value>> rows;
  for (int64_t i = 0; i < n_region; ++i) {
    rows.push_back({Value::Int64(i), Value::String("REGION_" +
                                                   std::to_string(i))});
  }
  VDM_RETURN_NOT_OK(db->Insert("region", rows));

  rows.clear();
  for (int64_t i = 0; i < n_nation; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("NATION_" + std::to_string(i)),
                    Value::Int64(i % n_region)});
  }
  VDM_RETURN_NOT_OK(db->Insert("nation", rows));

  rows.clear();
  for (int64_t i = 1; i <= n_supplier; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("Supplier#" + std::to_string(i)),
                    Value::Int64(rng.Uniform(0, n_nation - 1)),
                    Value::Decimal(rng.Uniform(-99999, 999999), 2)});
  }
  VDM_RETURN_NOT_OK(db->Insert("supplier", rows));

  rows.clear();
  for (int64_t i = 1; i <= n_customer; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("Customer#" + std::to_string(i)),
                    Value::Int64(rng.Uniform(0, n_nation - 1)),
                    Value::Decimal(rng.Uniform(-99999, 999999), 2),
                    Value::String(kSegments[rng.Uniform(0, 4)])});
  }
  VDM_RETURN_NOT_OK(db->Insert("customer", rows));

  rows.clear();
  for (int64_t i = 1; i <= n_part; ++i) {
    rows.push_back({Value::Int64(i),
                    Value::String("Part " + rng.NextString(12)),
                    Value::String("Brand#" +
                                  std::to_string(rng.Uniform(1, 5)) +
                                  std::to_string(rng.Uniform(1, 5))),
                    Value::Decimal(rng.Uniform(90000, 200000), 2)});
  }
  VDM_RETURN_NOT_OK(db->Insert("part", rows));

  rows.clear();
  for (int64_t p = 1; p <= n_part; ++p) {
    for (int64_t s = 0; s < 4; ++s) {
      int64_t suppkey = 1 + ((p + s * 7) % n_supplier);
      rows.push_back({Value::Int64(p), Value::Int64(suppkey),
                      Value::Int64(rng.Uniform(1, 9999)),
                      Value::Decimal(rng.Uniform(100, 100000), 2)});
    }
  }
  VDM_RETURN_NOT_OK(db->Insert("partsupp", rows));

  rows.clear();
  std::vector<std::vector<Value>> line_rows;
  for (int64_t o = 1; o <= n_orders; ++o) {
    int64_t custkey = rng.Uniform(1, n_customer);
    int64_t n_lines = rng.Uniform(1, 7);
    int64_t total = 0;
    int64_t orderdate = rng.Uniform(8766, 12784);  // 1994..2004 in days
    for (int64_t l = 1; l <= n_lines; ++l) {
      int64_t partkey = rng.Uniform(1, n_part);
      int64_t suppkey = 1 + ((partkey + l * 7) % n_supplier);
      int64_t qty = rng.Uniform(1, 50);
      int64_t price = rng.Uniform(100, 10000000);
      total += price;
      line_rows.push_back({Value::Int64(o), Value::Int64(l),
                           Value::Int64(partkey), Value::Int64(suppkey),
                           Value::Int64(qty), Value::Decimal(price, 2),
                           Value::Decimal(rng.Uniform(0, 10), 2),
                           Value::Decimal(rng.Uniform(0, 8), 2),
                           Value::Date(orderdate + rng.Uniform(1, 120))});
    }
    rows.push_back({Value::Int64(o), Value::Int64(custkey),
                    Value::String(kStatuses[rng.Uniform(0, 2)]),
                    Value::Decimal(total, 2), Value::Date(orderdate)});
  }
  VDM_RETURN_NOT_OK(db->Insert("orders", rows));
  VDM_RETURN_NOT_OK(db->Insert("lineitem", line_rows));

  // Draft/active: ~95% of a separate order population is active.
  rows.clear();
  std::vector<std::vector<Value>> draft_rows;
  for (int64_t o = 1; o <= n_orders; ++o) {
    std::vector<Value> row{Value::Int64(o),
                           Value::Int64(rng.Uniform(1, n_customer)),
                           Value::Decimal(rng.Uniform(100, 10000000), 2)};
    if (rng.Bernoulli(0.95)) {
      rows.push_back(std::move(row));
    } else {
      draft_rows.push_back(std::move(row));
    }
  }
  VDM_RETURN_NOT_OK(db->Insert("orders_active", rows));
  VDM_RETURN_NOT_OK(db->Insert("orders_draft", draft_rows));

  db->MergeAllDeltas();
  return Status::OK();
}

std::string UajQuerySql(UajQuery query) {
  switch (query) {
    case UajQuery::kUaj1:
      return "select o.o_orderkey from orders o "
             "left join customer c on o.o_custkey = c.c_custkey";
    case UajQuery::kUaj2:
      return "select o.o_orderkey from orders o left join "
             "(select l_orderkey, sum(l_quantity) as qty from lineitem "
             " group by l_orderkey) t "
             "on o.o_orderkey = t.l_orderkey";
    case UajQuery::kUaj3:
      return "select o.o_orderkey from orders o left join "
             "(select l_orderkey, l_extendedprice from lineitem "
             " where l_linenumber = 1) t "
             "on o.o_orderkey = t.l_orderkey";
    case UajQuery::kUaj1a:
      return "select o.o_orderkey from orders o left join "
             "(select c_custkey, n_name from customer "
             " join nation on c_nationkey = n_nationkey) t "
             "on o.o_custkey = t.c_custkey";
    case UajQuery::kUaj2a:
      return "select o.o_orderkey from orders o left join "
             "(select l_orderkey, sum(l_quantity) as qty from lineitem "
             " join part on l_partkey = p_partkey "
             " group by l_orderkey) t "
             "on o.o_orderkey = t.l_orderkey";
    case UajQuery::kUaj3a:
      return "select o.o_orderkey from orders o left join "
             "(select l_orderkey, p_name from lineitem "
             " join part on l_partkey = p_partkey "
             " where l_linenumber = 1) t "
             "on o.o_orderkey = t.l_orderkey";
    case UajQuery::kUaj1b:
      return "select o.o_orderkey from orders o left join "
             "(select c_custkey, c_name from customer "
             " order by c_acctbal limit 100) t "
             "on o.o_custkey = t.c_custkey";
  }
  return "";
}

std::string UajQueryName(UajQuery query) {
  switch (query) {
    case UajQuery::kUaj1:
      return "UAJ 1";
    case UajQuery::kUaj2:
      return "UAJ 2";
    case UajQuery::kUaj3:
      return "UAJ 3";
    case UajQuery::kUaj1a:
      return "UAJ 1a";
    case UajQuery::kUaj2a:
      return "UAJ 2a";
    case UajQuery::kUaj3a:
      return "UAJ 3a";
    case UajQuery::kUaj1b:
      return "UAJ 1b";
  }
  return "?";
}

std::vector<UajQuery> AllUajQueries() {
  return {UajQuery::kUaj1,  UajQuery::kUaj2,  UajQuery::kUaj3,
          UajQuery::kUaj1a, UajQuery::kUaj2a, UajQuery::kUaj3a,
          UajQuery::kUaj1b};
}

std::string PagingQuerySql(int64_t limit, int64_t offset) {
  return StrFormat(
      "select o.o_orderkey, o.o_totalprice, c.c_name "
      "from orders o left join customer c on o.o_custkey = c.c_custkey "
      "limit %lld offset %lld",
      static_cast<long long>(limit), static_cast<long long>(offset));
}

std::string AsjQuerySql(AsjQuery query) {
  switch (query) {
    case AsjQuery::kFig10a:
      return "select o.o_orderkey, t.o_totalprice from orders o "
             "left join orders t on o.o_orderkey = t.o_orderkey";
    case AsjQuery::kFig10b:
      return "select v.k, v.c_name, t.o_totalprice from "
             "(select o_orderkey as k, c_name from orders "
             " join customer on o_custkey = c_custkey) v "
             "left join orders t on v.k = t.o_orderkey";
    case AsjQuery::kFig10c:
      return "select v.k, t.o_totalprice from "
             "(select o_orderkey as k from orders "
             " where o_orderstatus = 'O') v "
             "left join (select o_orderkey, o_totalprice from orders "
             " where o_orderstatus = 'O') t "
             "on v.k = t.o_orderkey";
  }
  return "";
}

std::string AsjQueryName(AsjQuery query) {
  switch (query) {
    case AsjQuery::kFig10a:
      return "Fig. 10(a)";
    case AsjQuery::kFig10b:
      return "Fig. 10(b)";
    case AsjQuery::kFig10c:
      return "Fig. 10(c)";
  }
  return "?";
}

std::vector<AsjQuery> AllAsjQueries() {
  return {AsjQuery::kFig10a, AsjQuery::kFig10b, AsjQuery::kFig10c};
}

std::string UnionUajQuerySql(UnionUajQuery query) {
  switch (query) {
    case UnionUajQuery::kFig12a:
      return "select o.o_orderkey from orders o left join "
             "(select c_custkey, c_name from customer where c_nationkey = 1 "
             " union all "
             " select c_custkey, c_name from customer where c_nationkey = 2"
             ") t on o.o_custkey = t.c_custkey";
    case UnionUajQuery::kFig12b:
      return "select o.o_orderkey from orders o left join "
             "(select o_orderkey as k, 1 as src, o_totalprice "
             " from orders_active "
             " union all "
             " select o_orderkey as k, 2 as src, o_totalprice "
             " from orders_draft"
             ") t on o.o_orderkey = t.k and t.src = 1";
  }
  return "";
}

std::string UnionUajQueryName(UnionUajQuery query) {
  switch (query) {
    case UnionUajQuery::kFig12a:
      return "Fig. 12(a)";
    case UnionUajQuery::kFig12b:
      return "Fig. 12(b)";
  }
  return "?";
}

std::vector<UnionUajQuery> AllUnionUajQueries() {
  return {UnionUajQuery::kFig12a, UnionUajQuery::kFig12b};
}

}  // namespace vdm
