#include "sql/parser.h"

#include <algorithm>

#include "common/string_util.h"
#include "sql/lexer.h"
#include "types/date_util.h"
#include "types/value.h"

namespace vdm {

namespace {

class Parser {
 public:
  Parser(std::string sql, std::vector<Token> tokens)
      : sql_(std::move(sql)), tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatementTop() {
    VDM_ASSIGN_OR_RETURN(Statement stmt, ParseOneStatement());
    ConsumeSymbol(";");
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<ExprRef> ParseExpressionTop() {
    VDM_ASSIGN_OR_RETURN(ExprRef expr, ParseExpr());
    if (!AtEnd()) {
      return Error<ExprRef>("unexpected trailing input in expression");
    }
    return expr;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool PeekKeyword(const char* keyword, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(t.text, keyword);
  }
  bool ConsumeKeyword(const char* keyword) {
    if (PeekKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* keyword) {
    if (!ConsumeKeyword(keyword)) {
      return Error(std::string("expected keyword ") + keyword).status();
    }
    return Status::OK();
  }
  bool PeekSymbol(const char* symbol, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kSymbol && t.text == symbol;
  }
  bool ConsumeSymbol(const char* symbol) {
    if (PeekSymbol(symbol)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* symbol) {
    if (!ConsumeSymbol(symbol)) {
      return Error(std::string("expected '") + symbol + "'").status();
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected identifier").status();
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  template <typename T = Statement>
  Result<T> Error(const std::string& message) const {
    size_t offset = Peek().offset;
    size_t line = 1;
    for (size_t i = 0; i < offset && i < sql_.size(); ++i) {
      if (sql_[i] == '\n') ++line;
    }
    return Status::ParseError(StrFormat("%s at line %zu (near '%s')",
                                        message.c_str(), line,
                                        Peek().text.c_str()));
  }

  // --- statements ----------------------------------------------------------

  Result<Statement> ParseOneStatement() {
    if (PeekKeyword("create")) return ParseCreate();
    if (PeekKeyword("insert")) return ParseInsert();
    if (PeekKeyword("update")) return ParseUpdate();
    if (PeekKeyword("delete")) return ParseDelete();
    if (PeekKeyword("begin") || PeekKeyword("commit") ||
        PeekKeyword("rollback") || PeekKeyword("abort")) {
      return ParseTxnControl();
    }
    if (PeekKeyword("select") || PeekSymbol("(")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kSelect;
      VDM_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
      stmt.select = std::make_shared<SelectStmt>(std::move(select));
      return stmt;
    }
    return Error("expected SELECT, INSERT, UPDATE, DELETE, or CREATE");
  }

  Result<Statement> ParseTxnControl() {
    Statement stmt;
    if (ConsumeKeyword("begin")) {
      ConsumeKeyword("transaction");  // optional noise word
      stmt.kind = Statement::Kind::kBegin;
      return stmt;
    }
    if (ConsumeKeyword("commit")) {
      stmt.kind = Statement::Kind::kCommit;
      return stmt;
    }
    if (ConsumeKeyword("rollback") || ConsumeKeyword("abort")) {
      stmt.kind = Statement::Kind::kRollback;
      return stmt;
    }
    return Error("expected BEGIN, COMMIT, or ROLLBACK");
  }

  Result<Statement> ParseUpdate() {
    VDM_RETURN_NOT_OK(ExpectKeyword("update"));
    auto update = std::make_shared<UpdateStmt>();
    VDM_ASSIGN_OR_RETURN(update->table, ExpectIdentifier());
    VDM_RETURN_NOT_OK(ExpectKeyword("set"));
    do {
      VDM_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
      VDM_RETURN_NOT_OK(ExpectSymbol("="));
      VDM_ASSIGN_OR_RETURN(ExprRef value, ParseExpr());
      update->sets.emplace_back(std::move(column), std::move(value));
    } while (ConsumeSymbol(","));
    if (ConsumeKeyword("where")) {
      VDM_ASSIGN_OR_RETURN(update->where, ParseExpr());
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kUpdate;
    stmt.update = std::move(update);
    return stmt;
  }

  Result<Statement> ParseDelete() {
    VDM_RETURN_NOT_OK(ExpectKeyword("delete"));
    VDM_RETURN_NOT_OK(ExpectKeyword("from"));
    auto del = std::make_shared<DeleteStmt>();
    VDM_ASSIGN_OR_RETURN(del->table, ExpectIdentifier());
    if (ConsumeKeyword("where")) {
      VDM_ASSIGN_OR_RETURN(del->where, ParseExpr());
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kDelete;
    stmt.del = std::move(del);
    return stmt;
  }

  Result<Statement> ParseInsert() {
    VDM_RETURN_NOT_OK(ExpectKeyword("insert"));
    VDM_RETURN_NOT_OK(ExpectKeyword("into"));
    auto insert = std::make_shared<InsertStmt>();
    VDM_ASSIGN_OR_RETURN(insert->table, ExpectIdentifier());
    if (PeekSymbol("(")) {
      VDM_ASSIGN_OR_RETURN(insert->columns, ParseColumnNameList());
    }
    VDM_RETURN_NOT_OK(ExpectKeyword("values"));
    do {
      VDM_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprRef> row;
      do {
        VDM_ASSIGN_OR_RETURN(ExprRef value, ParseExpr());
        row.push_back(std::move(value));
      } while (ConsumeSymbol(","));
      VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      insert->rows.push_back(std::move(row));
    } while (ConsumeSymbol(","));
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    stmt.insert = std::move(insert);
    return stmt;
  }

  Result<Statement> ParseCreate() {
    VDM_RETURN_NOT_OK(ExpectKeyword("create"));
    bool or_replace = false;
    if (ConsumeKeyword("or")) {
      VDM_RETURN_NOT_OK(ExpectKeyword("replace"));
      or_replace = true;
    }
    if (ConsumeKeyword("table")) {
      if (or_replace) return Error("CREATE OR REPLACE TABLE not supported");
      return ParseCreateTable();
    }
    if (ConsumeKeyword("view")) return ParseCreateView(or_replace);
    return Error("expected TABLE or VIEW after CREATE");
  }

  Result<DataType> ParseType() {
    VDM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    std::string lower = ToLower(name);
    if (lower == "int" || lower == "integer" || lower == "bigint") {
      return DataType::Int64();
    }
    if (lower == "double" || lower == "float" || lower == "real") {
      return DataType::Double();
    }
    if (lower == "bool" || lower == "boolean") return DataType::Bool();
    if (lower == "date") return DataType::Date();
    if (lower == "varchar" || lower == "text" || lower == "string" ||
        lower == "char" || lower == "nvarchar") {
      if (ConsumeSymbol("(")) {
        if (Peek().kind != TokenKind::kInteger) {
          return Error<DataType>("expected length");
        }
        Advance();
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return DataType::String();
    }
    if (lower == "decimal" || lower == "numeric") {
      uint8_t scale = 0;
      if (ConsumeSymbol("(")) {
        if (Peek().kind != TokenKind::kInteger) {
          return Error<DataType>("expected precision");
        }
        Advance();
        if (ConsumeSymbol(",")) {
          if (Peek().kind != TokenKind::kInteger) {
            return Error<DataType>("expected scale");
          }
          scale = static_cast<uint8_t>(std::stoll(Peek().text));
          Advance();
        }
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      }
      return DataType::Decimal(scale);
    }
    return Error<DataType>("unknown type " + name);
  }

  Result<std::vector<std::string>> ParseColumnNameList() {
    VDM_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<std::string> columns;
    do {
      VDM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
      columns.push_back(std::move(name));
    } while (ConsumeSymbol(","));
    VDM_RETURN_NOT_OK(ExpectSymbol(")"));
    return columns;
  }

  Result<Statement> ParseCreateTable() {
    VDM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    TableSchema schema(name);
    VDM_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<std::string> pk;
    struct PendingUnique {
      std::vector<std::string> columns;
      bool enforced;
    };
    std::vector<PendingUnique> uniques;
    std::vector<ForeignKeyDef> fks;
    do {
      if (PeekKeyword("primary")) {
        Advance();
        VDM_RETURN_NOT_OK(ExpectKeyword("key"));
        VDM_ASSIGN_OR_RETURN(pk, ParseColumnNameList());
        continue;
      }
      if (PeekKeyword("unique")) {
        Advance();
        PendingUnique u;
        VDM_ASSIGN_OR_RETURN(u.columns, ParseColumnNameList());
        u.enforced = true;
        if (ConsumeKeyword("not")) {
          VDM_RETURN_NOT_OK(ExpectKeyword("enforced"));
          u.enforced = false;
        }
        uniques.push_back(std::move(u));
        continue;
      }
      if (PeekKeyword("foreign")) {
        Advance();
        VDM_RETURN_NOT_OK(ExpectKeyword("key"));
        ForeignKeyDef fk;
        VDM_ASSIGN_OR_RETURN(fk.columns, ParseColumnNameList());
        VDM_RETURN_NOT_OK(ExpectKeyword("references"));
        VDM_ASSIGN_OR_RETURN(fk.referenced_table, ExpectIdentifier());
        VDM_ASSIGN_OR_RETURN(fk.referenced_columns, ParseColumnNameList());
        fks.push_back(std::move(fk));
        continue;
      }
      // Column definition.
      VDM_ASSIGN_OR_RETURN(std::string column_name, ExpectIdentifier());
      VDM_ASSIGN_OR_RETURN(DataType type, ParseType());
      bool nullable = true;
      bool inline_pk = false;
      bool inline_unique = false;
      while (true) {
        if (ConsumeKeyword("not")) {
          VDM_RETURN_NOT_OK(ExpectKeyword("null"));
          nullable = false;
          continue;
        }
        if (PeekKeyword("primary")) {
          Advance();
          VDM_RETURN_NOT_OK(ExpectKeyword("key"));
          inline_pk = true;
          continue;
        }
        if (ConsumeKeyword("unique")) {
          inline_unique = true;
          continue;
        }
        break;
      }
      schema.AddColumn(column_name, type, nullable);
      if (inline_pk) pk = {column_name};
      if (inline_unique) uniques.push_back({{column_name}, true});
    } while (ConsumeSymbol(","));
    VDM_RETURN_NOT_OK(ExpectSymbol(")"));
    if (!pk.empty()) schema.SetPrimaryKey(std::move(pk));
    for (PendingUnique& u : uniques) {
      if (u.enforced) {
        schema.AddUniqueKey(std::move(u.columns));
      } else {
        schema.AddDeclaredUniqueKey(std::move(u.columns));
      }
    }
    for (ForeignKeyDef& fk : fks) {
      schema.AddForeignKey(std::move(fk.columns),
                           std::move(fk.referenced_table),
                           std::move(fk.referenced_columns));
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::make_shared<CreateTableStmt>();
    stmt.create_table->schema = std::move(schema);
    return stmt;
  }

  Result<Statement> ParseCreateView(bool or_replace) {
    VDM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    VDM_RETURN_NOT_OK(ExpectKeyword("as"));
    size_t select_start = Peek().offset;
    VDM_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
    size_t select_end = Peek().offset;

    auto view = std::make_shared<CreateViewStmt>();
    view->name = std::move(name);
    view->or_replace = or_replace;
    view->select = std::make_shared<SelectStmt>(std::move(select));
    view->select_sql =
        sql_.substr(select_start, select_end - select_start);

    while (ConsumeKeyword("with")) {
      if (ConsumeKeyword("expression")) {
        VDM_RETURN_NOT_OK(ExpectKeyword("macros"));
        VDM_RETURN_NOT_OK(ExpectSymbol("("));
        do {
          size_t body_start = Peek().offset;
          VDM_ASSIGN_OR_RETURN(ExprRef body, ParseExpr());
          size_t body_end = Peek().offset;
          (void)body;  // validated for syntax; stored as text
          VDM_RETURN_NOT_OK(ExpectKeyword("as"));
          VDM_ASSIGN_OR_RETURN(std::string macro_name, ExpectIdentifier());
          ExpressionMacro macro;
          macro.name = std::move(macro_name);
          macro.body_sql = sql_.substr(body_start, body_end - body_start);
          view->macros.push_back(std::move(macro));
        } while (ConsumeSymbol(","));
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
        continue;
      }
      if (ConsumeKeyword("associations")) {
        // with associations (<name> to <target> on <cond>, ...)
        VDM_RETURN_NOT_OK(ExpectSymbol("("));
        do {
          AssociationDef assoc;
          VDM_ASSIGN_OR_RETURN(assoc.name, ExpectIdentifier());
          VDM_RETURN_NOT_OK(ExpectKeyword("to"));
          VDM_ASSIGN_OR_RETURN(assoc.target, ExpectIdentifier());
          VDM_RETURN_NOT_OK(ExpectKeyword("on"));
          size_t cond_start = Peek().offset;
          VDM_ASSIGN_OR_RETURN(ExprRef cond, ParseExpr());
          size_t cond_end = Peek().offset;
          (void)cond;  // validated for syntax; stored as text
          assoc.condition_sql =
              sql_.substr(cond_start, cond_end - cond_start);
          view->associations.push_back(std::move(assoc));
        } while (ConsumeSymbol(","));
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
        continue;
      }
      return Error("expected EXPRESSION MACROS or ASSOCIATIONS after WITH");
    }

    Statement stmt;
    stmt.kind = Statement::Kind::kCreateView;
    stmt.create_view = std::move(view);
    return stmt;
  }

  // --- SELECT --------------------------------------------------------------

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    VDM_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
    stmt.cores.push_back(std::move(core));
    while (PeekKeyword("union")) {
      Advance();
      VDM_RETURN_NOT_OK(ExpectKeyword("all"));
      VDM_ASSIGN_OR_RETURN(SelectCore next, ParseSelectCore());
      stmt.cores.push_back(std::move(next));
    }
    if (ConsumeKeyword("order")) {
      VDM_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        OrderItem item;
        VDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("desc")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("asc");
        }
        stmt.order_by.push_back(std::move(item));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error<SelectStmt>("expected integer after LIMIT");
      }
      stmt.limit = std::stoll(Peek().text);
      Advance();
      if (ConsumeKeyword("offset")) {
        if (Peek().kind != TokenKind::kInteger) {
          return Error<SelectStmt>("expected integer after OFFSET");
        }
        stmt.offset = std::stoll(Peek().text);
        Advance();
      }
    }
    return stmt;
  }

  Result<SelectCore> ParseSelectCore() {
    // Parenthesized core: "( select ... )" — allowed as a UNION ALL child.
    if (ConsumeSymbol("(")) {
      VDM_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
      VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      return core;
    }
    SelectCore core;
    VDM_RETURN_NOT_OK(ExpectKeyword("select"));
    core.distinct = ConsumeKeyword("distinct");
    do {
      SelectItem item;
      if (PeekSymbol("*")) {
        Advance();
        item.star = true;
        core.items.push_back(std::move(item));
        continue;
      }
      VDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("as")) {
        VDM_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !IsClauseKeyword(Peek().text)) {
        item.alias = Peek().text;
        Advance();
      }
      core.items.push_back(std::move(item));
    } while (ConsumeSymbol(","));

    if (ConsumeKeyword("from")) {
      core.has_from = true;
      VDM_ASSIGN_OR_RETURN(core.from, ParseTableRef());
      while (true) {
        std::optional<JoinClause> join;
        VDM_ASSIGN_OR_RETURN(join, TryParseJoin());
        if (!join.has_value()) break;
        core.joins.push_back(std::move(*join));
      }
    }
    if (ConsumeKeyword("where")) {
      VDM_ASSIGN_OR_RETURN(core.where, ParseExpr());
    }
    if (ConsumeKeyword("group")) {
      VDM_RETURN_NOT_OK(ExpectKeyword("by"));
      do {
        VDM_ASSIGN_OR_RETURN(ExprRef expr, ParseExpr());
        core.group_by.push_back(std::move(expr));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeKeyword("having")) {
      VDM_ASSIGN_OR_RETURN(core.having, ParseExpr());
    }
    return core;
  }

  static bool IsClauseKeyword(const std::string& word) {
    static const char* kKeywords[] = {
        "from",  "where", "group", "having", "order", "limit",
        "union", "join",  "left",  "inner",  "on",    "as",
        "offset", "with", "many",  "one",    "case",  "cross"};
    for (const char* kw : kKeywords) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (ConsumeSymbol("(")) {
      ref.kind = TableRef::Kind::kSubquery;
      VDM_ASSIGN_OR_RETURN(SelectStmt sub, ParseSelect());
      ref.subquery = std::make_shared<SelectStmt>(std::move(sub));
      VDM_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      VDM_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
    }
    if (ConsumeKeyword("as")) {
      VDM_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !IsClauseKeyword(Peek().text)) {
      ref.alias = Peek().text;
      Advance();
    }
    if (ref.kind == TableRef::Kind::kSubquery && ref.alias.empty()) {
      return Error<TableRef>("subquery in FROM requires an alias");
    }
    return ref;
  }

  /// Parses an optional join clause:
  ///   [LEFT [OUTER]] [MANY TO [EXACT] ONE | ONE TO ONE] [CASE] JOIN ... ON e
  Result<std::optional<JoinClause>> TryParseJoin() {
    JoinClause join;
    size_t start = pos_;
    bool saw_any = false;
    if (ConsumeKeyword("left")) {
      ConsumeKeyword("outer");
      join.join_type = JoinType::kLeftOuter;
      saw_any = true;
    } else if (ConsumeKeyword("inner")) {
      join.join_type = JoinType::kInner;
      saw_any = true;
    }
    if (PeekKeyword("many") || PeekKeyword("one")) {
      bool one_to_one = PeekKeyword("one");
      Advance();  // many | one
      if (!ConsumeKeyword("to")) {
        pos_ = start;
        return std::optional<JoinClause>{};
      }
      bool exact = ConsumeKeyword("exact");
      VDM_RETURN_NOT_OK(ExpectKeyword("one"));
      // "many to one" declares 0..1 matches; "many to exact one" and
      // "one to one" declare 1..1 (§7.3).
      join.cardinality = (exact || one_to_one)
                             ? DeclaredCardinality::kExactOne
                             : DeclaredCardinality::kAtMostOne;
      saw_any = true;
    }
    if (PeekKeyword("case") && PeekKeyword("join", 1)) {
      Advance();
      join.case_join = true;
      saw_any = true;
    }
    if (!PeekKeyword("join")) {
      if (saw_any) {
        pos_ = start;
      }
      return std::optional<JoinClause>{};
    }
    Advance();  // join
    VDM_ASSIGN_OR_RETURN(join.ref, ParseTableRef());
    VDM_RETURN_NOT_OK(ExpectKeyword("on"));
    VDM_ASSIGN_OR_RETURN(join.condition, ParseExpr());
    return std::optional<JoinClause>(std::move(join));
  }

  // --- expressions ---------------------------------------------------------

  Result<ExprRef> ParseExpr() { return ParseOr(); }

  Result<ExprRef> ParseOr() {
    VDM_ASSIGN_OR_RETURN(ExprRef left, ParseAnd());
    while (ConsumeKeyword("or")) {
      VDM_ASSIGN_OR_RETURN(ExprRef right, ParseAnd());
      left = Bin(BinaryOpKind::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprRef> ParseAnd() {
    VDM_ASSIGN_OR_RETURN(ExprRef left, ParseNot());
    while (PeekKeyword("and")) {
      Advance();
      VDM_ASSIGN_OR_RETURN(ExprRef right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprRef> ParseNot() {
    if (ConsumeKeyword("not")) {
      VDM_ASSIGN_OR_RETURN(ExprRef operand, ParseNot());
      return Not(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprRef> ParseComparison() {
    VDM_ASSIGN_OR_RETURN(ExprRef left, ParseAdditive());
    if (PeekKeyword("is")) {
      Advance();
      bool negated = ConsumeKeyword("not");
      VDM_RETURN_NOT_OK(ExpectKeyword("null"));
      return ExprRef(std::make_shared<IsNullExpr>(std::move(left), negated));
    }
    struct OpMap {
      const char* symbol;
      BinaryOpKind op;
    };
    static const OpMap kOps[] = {
        {"=", BinaryOpKind::kEq},        {"<>", BinaryOpKind::kNotEq},
        {"!=", BinaryOpKind::kNotEq},    {"<=", BinaryOpKind::kLessEq},
        {">=", BinaryOpKind::kGreaterEq}, {"<", BinaryOpKind::kLess},
        {">", BinaryOpKind::kGreater},
    };
    for (const OpMap& entry : kOps) {
      if (PeekSymbol(entry.symbol)) {
        Advance();
        VDM_ASSIGN_OR_RETURN(ExprRef right, ParseAdditive());
        return Bin(entry.op, std::move(left), std::move(right));
      }
    }
    // x [NOT] LIKE pattern desugars to [NOT] like(x, pattern); the %/_
    // wildcard semantics live in EvalFunction (and thus cover the
    // reference interpreter too).
    {
      bool negated = false;
      if (PeekKeyword("not")) {
        const size_t save = pos_;
        Advance();
        if (PeekKeyword("like")) {
          negated = true;
        } else {
          pos_ = save;
        }
      }
      if (PeekKeyword("like")) {
        Advance();
        VDM_ASSIGN_OR_RETURN(ExprRef pattern, ParseAdditive());
        ExprRef call = Func("like", {std::move(left), std::move(pattern)});
        return negated ? Not(std::move(call)) : std::move(call);
      }
    }
    if (PeekKeyword("between")) {
      Advance();
      VDM_ASSIGN_OR_RETURN(ExprRef low, ParseAdditive());
      VDM_RETURN_NOT_OK(ExpectKeyword("and"));
      VDM_ASSIGN_OR_RETURN(ExprRef high, ParseAdditive());
      return And(Bin(BinaryOpKind::kGreaterEq, left, std::move(low)),
                 Bin(BinaryOpKind::kLessEq, left, std::move(high)));
    }
    if (PeekKeyword("in")) {
      Advance();
      VDM_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprRef> options;
      do {
        VDM_ASSIGN_OR_RETURN(ExprRef option, ParseExpr());
        options.push_back(std::move(option));
      } while (ConsumeSymbol(","));
      VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      ExprRef result;
      for (ExprRef& option : options) {
        ExprRef eq = Eq(left, std::move(option));
        result = result ? Bin(BinaryOpKind::kOr, std::move(result),
                              std::move(eq))
                        : std::move(eq);
      }
      return result;
    }
    return left;
  }

  Result<ExprRef> ParseAdditive() {
    VDM_ASSIGN_OR_RETURN(ExprRef left, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      BinaryOpKind op =
          PeekSymbol("+") ? BinaryOpKind::kAdd : BinaryOpKind::kSub;
      Advance();
      VDM_ASSIGN_OR_RETURN(ExprRef right, ParseMultiplicative());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprRef> ParseMultiplicative() {
    VDM_ASSIGN_OR_RETURN(ExprRef left, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      BinaryOpKind op =
          PeekSymbol("*") ? BinaryOpKind::kMul : BinaryOpKind::kDiv;
      Advance();
      VDM_ASSIGN_OR_RETURN(ExprRef right, ParseUnary());
      left = Bin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprRef> ParseUnary() {
    if (ConsumeSymbol("-")) {
      VDM_ASSIGN_OR_RETURN(ExprRef operand, ParseUnary());
      return ExprRef(std::make_shared<UnaryExpr>(UnaryOpKind::kNegate,
                                                 std::move(operand)));
    }
    return ParsePrimary();
  }

  Result<ExprRef> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kInteger) {
      int64_t v = std::stoll(t.text);
      Advance();
      return LitInt(v);
    }
    if (t.kind == TokenKind::kDecimal) {
      // Parse as an exact decimal literal: scale = fractional digits.
      size_t dot = t.text.find('.');
      std::string digits = t.text.substr(0, dot) + t.text.substr(dot + 1);
      uint8_t scale = static_cast<uint8_t>(t.text.size() - dot - 1);
      int64_t unscaled = std::stoll(digits);
      Advance();
      return Lit(Value::Decimal(unscaled, scale));
    }
    if (t.kind == TokenKind::kString) {
      std::string v = t.text;
      Advance();
      return LitStr(std::move(v));
    }
    if (t.kind == TokenKind::kParam) {
      // "<slot>:<typecode>" with typecode i | s | d<scale> (see
      // sql/parameterize.cc, which manufactures these tokens).
      size_t colon = t.text.find(':');
      if (colon == std::string::npos || colon + 1 >= t.text.size()) {
        return Error<ExprRef>("malformed parameter token");
      }
      int slot = static_cast<int>(std::stoll(t.text.substr(0, colon)));
      char code = t.text[colon + 1];
      DataType type;
      if (code == 'i') {
        type = DataType::Int64();
      } else if (code == 's') {
        type = DataType::String();
      } else if (code == 'd') {
        type = DataType::Decimal(static_cast<uint8_t>(
            std::stoll(t.text.substr(colon + 2))));
      } else {
        return Error<ExprRef>("malformed parameter token");
      }
      Advance();
      return ExprRef(std::make_shared<ParamExpr>(slot, type));
    }
    if (ConsumeSymbol("(")) {
      VDM_ASSIGN_OR_RETURN(ExprRef inner, ParseExpr());
      VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind != TokenKind::kIdentifier) {
      return Error<ExprRef>("expected expression");
    }
    // Clause keywords are reserved in expression position; otherwise
    // "select from t" would silently parse a column named "from".
    static const char* kReserved[] = {"from",  "where", "group",
                                      "having", "order", "limit",
                                      "union", "join",  "on"};
    for (const char* word : kReserved) {
      if (EqualsIgnoreCase(t.text, word)) {
        return Error<ExprRef>("expected expression");
      }
    }
    // CASE WHEN ... THEN ... [ELSE ...] END
    if (EqualsIgnoreCase(t.text, "case") && !PeekKeyword("join", 1)) {
      Advance();
      std::vector<ExprRef> children;
      while (ConsumeKeyword("when")) {
        VDM_ASSIGN_OR_RETURN(ExprRef when, ParseExpr());
        VDM_RETURN_NOT_OK(ExpectKeyword("then"));
        VDM_ASSIGN_OR_RETURN(ExprRef then, ParseExpr());
        children.push_back(std::move(when));
        children.push_back(std::move(then));
      }
      ExprRef else_expr = Lit(Value::Null());
      if (ConsumeKeyword("else")) {
        VDM_ASSIGN_OR_RETURN(else_expr, ParseExpr());
      }
      VDM_RETURN_NOT_OK(ExpectKeyword("end"));
      children.push_back(std::move(else_expr));
      return ExprRef(std::make_shared<CaseExpr>(std::move(children)));
    }
    if (EqualsIgnoreCase(t.text, "null")) {
      Advance();
      return Lit(Value::Null());
    }
    // DATE 'YYYY-MM-DD' literal.
    if (EqualsIgnoreCase(t.text, "date") &&
        Peek(1).kind == TokenKind::kString) {
      Advance();
      std::optional<int64_t> days = ParseDate(Peek().text);
      if (!days.has_value()) {
        return Error<ExprRef>("malformed date literal '" + Peek().text +
                              "'");
      }
      Advance();
      return Lit(Value::Date(*days));
    }
    if (EqualsIgnoreCase(t.text, "true")) {
      Advance();
      return LitBool(true);
    }
    if (EqualsIgnoreCase(t.text, "false")) {
      Advance();
      return LitBool(false);
    }

    std::string name = t.text;
    Advance();
    // Function call?
    if (PeekSymbol("(")) {
      Advance();
      std::string lower = ToLower(name);
      // Aggregates.
      if (lower == "count" || lower == "sum" || lower == "min" ||
          lower == "max" || lower == "avg") {
        if (lower == "count" && ConsumeSymbol("*")) {
          VDM_RETURN_NOT_OK(ExpectSymbol(")"));
          return CountStar();
        }
        bool distinct = ConsumeKeyword("distinct");
        VDM_ASSIGN_OR_RETURN(ExprRef arg, ParseExpr());
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
        AggKind kind = lower == "count"  ? AggKind::kCount
                       : lower == "sum"  ? AggKind::kSum
                       : lower == "min"  ? AggKind::kMin
                       : lower == "max"  ? AggKind::kMax
                                         : AggKind::kAvg;
        return ExprRef(std::make_shared<AggregateExpr>(kind, std::move(arg),
                                                       distinct));
      }
      if (lower == "allow_precision_loss") {
        VDM_ASSIGN_OR_RETURN(ExprRef arg, ParseExpr());
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
        // Mark every aggregate inside as precision-loss-tolerant (§7.1).
        return TransformExpr(arg, [](const ExprRef& node) -> ExprRef {
          if (node->kind() != ExprKind::kAggregate) return nullptr;
          const auto& agg = static_cast<const AggregateExpr&>(*node);
          if (agg.allow_precision_loss()) return nullptr;
          return std::make_shared<AggregateExpr>(
              agg.agg(), agg.has_arg() ? agg.arg() : nullptr, agg.distinct(),
              /*allow_precision_loss=*/true);
        });
      }
      if (lower == "expression_macro") {
        VDM_ASSIGN_OR_RETURN(std::string macro_name, ExpectIdentifier());
        VDM_RETURN_NOT_OK(ExpectSymbol(")"));
        return ExprRef(std::make_shared<MacroRefExpr>(std::move(macro_name)));
      }
      std::vector<ExprRef> args;
      if (!PeekSymbol(")")) {
        do {
          VDM_ASSIGN_OR_RETURN(ExprRef arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (ConsumeSymbol(","));
      }
      VDM_RETURN_NOT_OK(ExpectSymbol(")"));
      return Func(lower, std::move(args));
    }
    // Qualified column reference; additional segments form a CDS path
    // expression (alias.association.column, §2.3).
    while (ConsumeSymbol(".")) {
      VDM_ASSIGN_OR_RETURN(std::string segment, ExpectIdentifier());
      name += "." + segment;
    }
    return Col(std::move(name));
  }

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  VDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(sql, std::move(tokens));
  return parser.ParseStatementTop();
}

Result<Statement> ParseTokenStream(std::string sql,
                                   std::vector<Token> tokens) {
  Parser parser(std::move(sql), std::move(tokens));
  return parser.ParseStatementTop();
}

Result<ExprRef> ParseExpression(const std::string& sql) {
  VDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(sql, std::move(tokens));
  return parser.ParseExpressionTop();
}

}  // namespace vdm
