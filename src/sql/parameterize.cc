#include "sql/parameterize.h"

#include <vector>

#include "common/string_util.h"

namespace vdm {

namespace {

bool IsLiteralToken(const Token& t) {
  return t.kind == TokenKind::kInteger || t.kind == TokenKind::kDecimal ||
         t.kind == TokenKind::kString;
}

/// Non-equality comparison operators. `=` is deliberately absent: an
/// equality literal can act as a pinned constant (UAJ 3 / AJ 2a-3) or a
/// union branch discriminator, so it must stay visible to the optimizer.
bool IsRangeComparison(const Token& t) {
  return t.kind == TokenKind::kSymbol &&
         (t.text == "<" || t.text == ">" || t.text == "<=" ||
          t.text == ">=" || t.text == "<>" || t.text == "!=");
}

/// Words that can directly precede '(' without forming a function call.
bool IsBareKeyword(const std::string& text) {
  static const char* kWords[] = {
      "select", "from",  "where", "group", "by",    "having", "order",
      "limit",  "offset", "union", "all",   "join",  "on",     "and",
      "or",     "not",   "case",  "when",  "then",  "else",   "end",
      "in",     "as",    "distinct"};
  for (const char* w : kWords) {
    if (EqualsIgnoreCase(text, w)) return true;
  }
  return false;
}

enum class Clause {
  kSelectList,
  kFrom,
  kOn,
  kWhere,
  kGroupBy,
  kHaving,
  kOrderBy,
  kLimit,
};

enum class ParenKind { kPlain, kFunction, kSubquery };

struct SelectCtx {
  Clause clause = Clause::kSelectList;
  int case_depth = 0;
};

/// Renders one output token into the normalized key text.
void AppendKeyToken(const Token& t, std::string* key) {
  if (!key->empty()) key->push_back(' ');
  if (t.kind == TokenKind::kParam) {
    key->push_back('?');
    key->append(t.text);
    return;
  }
  if (t.kind == TokenKind::kString) {
    key->push_back('\'');
    for (char c : t.text) {
      if (c == '\'') key->push_back('\'');
      key->push_back(c);
    }
    key->push_back('\'');
    return;
  }
  key->append(t.text);
}

/// Parses a kInteger/kDecimal/kString token into (value, type, typecode).
void LiteralTokenValue(const Token& t, Value* value, DataType* type,
                       std::string* typecode) {
  if (t.kind == TokenKind::kInteger) {
    *value = Value::Int64(std::stoll(t.text));
    *type = DataType::Int64();
    *typecode = "i";
    return;
  }
  if (t.kind == TokenKind::kDecimal) {
    size_t dot = t.text.find('.');
    std::string digits = t.text.substr(0, dot) + t.text.substr(dot + 1);
    uint8_t scale = static_cast<uint8_t>(t.text.size() - dot - 1);
    *value = Value::Decimal(std::stoll(digits), scale);
    *type = DataType::Decimal(scale);
    *typecode = "d" + std::to_string(scale);
    return;
  }
  *value = Value::String(t.text);
  *type = DataType::String();
  *typecode = "s";
}

}  // namespace

Result<ParameterizedStatement> ParameterizeStatement(const std::string& sql) {
  ParameterizedStatement out;
  VDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  if (tokens.empty() || tokens[0].kind == TokenKind::kEnd) return out;
  // Only SELECT statements are cacheable; DDL/INSERT bypass the cache.
  bool starts_select = tokens[0].kind == TokenKind::kIdentifier &&
                       EqualsIgnoreCase(tokens[0].text, "select");
  bool starts_paren =
      tokens[0].kind == TokenKind::kSymbol && tokens[0].text == "(";
  if (!starts_select && !starts_paren) return out;

  std::vector<SelectCtx> selects;
  std::vector<ParenKind> parens;
  int func_depth = 0;
  bool collision = false;

  auto emit = [&](const Token& t) {
    AppendKeyToken(t, &out.key);
    out.tokens.push_back(t);
  };

  const size_t n = tokens.size();  // includes the trailing kEnd
  auto at = [&](size_t idx) -> const Token& {
    return tokens[idx < n ? idx : n - 1];
  };

  for (size_t i = 0; i < n; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kEnd) {
      out.tokens.push_back(t);
      break;
    }

    if (t.kind == TokenKind::kSymbol && t.text == "(") {
      ParenKind kind = ParenKind::kPlain;
      if (at(i + 1).kind == TokenKind::kIdentifier &&
          EqualsIgnoreCase(at(i + 1).text, "select")) {
        kind = ParenKind::kSubquery;
        selects.push_back(SelectCtx{});
      } else if (i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier &&
                 !IsBareKeyword(tokens[i - 1].text)) {
        kind = ParenKind::kFunction;
        ++func_depth;
      }
      parens.push_back(kind);
      emit(t);
      continue;
    }
    if (t.kind == TokenKind::kSymbol && t.text == ")") {
      if (!parens.empty()) {
        if (parens.back() == ParenKind::kSubquery && !selects.empty()) {
          selects.pop_back();
        }
        if (parens.back() == ParenKind::kFunction && func_depth > 0) {
          --func_depth;
        }
        parens.pop_back();
      }
      emit(t);
      continue;
    }

    if (t.kind == TokenKind::kIdentifier) {
      // DATE 'yyyy-mm-dd': the string feeds the date constructor — keep
      // both tokens inline.
      if (EqualsIgnoreCase(t.text, "date") &&
          at(i + 1).kind == TokenKind::kString) {
        emit(t);
        emit(tokens[i + 1]);
        ++i;
        continue;
      }
      if (!selects.empty()) {
        SelectCtx& ctx = selects.back();
        if (EqualsIgnoreCase(t.text, "case") &&
            !(at(i + 1).kind == TokenKind::kIdentifier &&
              EqualsIgnoreCase(at(i + 1).text, "join"))) {
          ++ctx.case_depth;
        } else if (EqualsIgnoreCase(t.text, "end") && ctx.case_depth > 0) {
          --ctx.case_depth;
        } else if (EqualsIgnoreCase(t.text, "from")) {
          ctx.clause = Clause::kFrom;
        } else if (EqualsIgnoreCase(t.text, "join")) {
          ctx.clause = Clause::kFrom;
        } else if (EqualsIgnoreCase(t.text, "on")) {
          ctx.clause = Clause::kOn;
        } else if (EqualsIgnoreCase(t.text, "where")) {
          ctx.clause = Clause::kWhere;
        } else if (EqualsIgnoreCase(t.text, "group")) {
          ctx.clause = Clause::kGroupBy;
        } else if (EqualsIgnoreCase(t.text, "having")) {
          ctx.clause = Clause::kHaving;
        } else if (EqualsIgnoreCase(t.text, "order")) {
          ctx.clause = Clause::kOrderBy;
        } else if (EqualsIgnoreCase(t.text, "union")) {
          ctx.clause = Clause::kFrom;
        } else if (EqualsIgnoreCase(t.text, "select")) {
          // Next UNION ALL core at the same level.
          ctx.clause = Clause::kSelectList;
        }
      } else if (EqualsIgnoreCase(t.text, "select")) {
        selects.push_back(SelectCtx{});
      }

      // Top-level LIMIT n [OFFSET m] → sentinels; real values rebound on
      // every cache hit.
      if (parens.empty() && EqualsIgnoreCase(t.text, "limit") &&
          at(i + 1).kind == TokenKind::kInteger) {
        if (!selects.empty()) selects.back().clause = Clause::kLimit;
        out.has_limit = true;
        out.limit = std::stoll(tokens[i + 1].text);
        emit(t);
        Token sentinel = tokens[i + 1];
        sentinel.text = std::to_string(kLimitSentinel);
        out.tokens.push_back(sentinel);
        out.key += " ?L";
        ++i;
        continue;
      }
      if (parens.empty() && out.has_limit &&
          EqualsIgnoreCase(t.text, "offset") &&
          at(i + 1).kind == TokenKind::kInteger) {
        out.has_offset = true;
        out.offset = std::stoll(tokens[i + 1].text);
        emit(t);
        Token sentinel = tokens[i + 1];
        sentinel.text = std::to_string(kOffsetSentinel);
        out.tokens.push_back(sentinel);
        out.key += " ?O";
        ++i;
        continue;
      }

      emit(t);
      continue;
    }

    if (IsLiteralToken(t)) {
      bool eligible = selects.size() == 1 && parens.size() <= 1 &&
                      func_depth == 0 && selects.back().case_depth == 0 &&
                      (selects.back().clause == Clause::kWhere ||
                       selects.back().clause == Clause::kHaving);
      if (eligible) {
        bool rhs_of_cmp = i >= 1 && IsRangeComparison(tokens[i - 1]) &&
                          !(i >= 2 && IsLiteralToken(tokens[i - 2]));
        bool lhs_of_cmp =
            IsRangeComparison(at(i + 1)) && !IsLiteralToken(at(i + 2));
        eligible = rhs_of_cmp || lhs_of_cmp;
      }
      if (eligible) {
        Value value;
        DataType type;
        std::string typecode;
        LiteralTokenValue(t, &value, &type, &typecode);
        Token param;
        param.kind = TokenKind::kParam;
        param.offset = t.offset;
        param.text =
            std::to_string(out.params.size()) + ":" + typecode;
        emit(param);
        out.params.push_back(std::move(value));
        out.param_types.push_back(type);
        continue;
      }
      // Kept inline. An inline integer that collides with a sentinel
      // combination would make limit rebinding ambiguous — bypass the
      // cache for this statement.
      if (t.kind == TokenKind::kInteger) {
        int64_t v = std::stoll(t.text);
        if (v == kLimitSentinel || v == kOffsetSentinel ||
            v == kLimitSentinel + kOffsetSentinel) {
          collision = true;
        }
      }
      emit(t);
      continue;
    }

    emit(t);
  }

  out.cacheable = !collision;
  return out;
}

}  // namespace vdm
