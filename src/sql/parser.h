// Recursive-descent SQL parser for the engine's dialect:
//   SELECT [DISTINCT] items FROM refs joins [WHERE] [GROUP BY] [HAVING]
//   ... UNION ALL ... [ORDER BY] [LIMIT n [OFFSET m]]
//   CREATE TABLE name (cols, PRIMARY KEY.., UNIQUE.. [NOT ENFORCED],
//                      FOREIGN KEY .. REFERENCES ..)
//   CREATE [OR REPLACE] VIEW name AS select
//       [WITH EXPRESSION MACROS (expr AS name, ...)]
//
// Paper-specific extensions:
//   * join cardinality (§7.3):  LEFT [OUTER] MANY TO [EXACT] ONE JOIN
//   * case join (§6.3):         [LEFT [OUTER]] CASE JOIN
//   * ALLOW_PRECISION_LOSS(aggregate_expr)   (§7.1)
//   * EXPRESSION_MACRO(name)                 (§7.2)
#ifndef VDMQO_SQL_PARSER_H_
#define VDMQO_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace vdm {

/// Parses a single SQL statement (trailing ';' optional).
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a pre-tokenized statement. Used by the plan cache's statement
/// parameterization, which rewrites the token stream (literal → kParam
/// slot) before parsing; kParam tokens become ParamExpr nodes. `sql` is
/// only used for error messages.
Result<Statement> ParseTokenStream(std::string sql,
                                   std::vector<Token> tokens);

/// Parses a standalone scalar expression (used for DAC filters and macro
/// bodies).
Result<ExprRef> ParseExpression(const std::string& sql);

}  // namespace vdm

#endif  // VDMQO_SQL_PARSER_H_
