// Statement parameterization for the plan cache (engine/plan_cache.h).
//
// Enterprise VDM workloads are repetitive: generated statements arrive
// over and over differing only in literals — most visibly the §4.4 paging
// queries that differ only in OFFSET. ParameterizeStatement lifts such
// literals out of the token stream into an ordered parameter vector and
// produces a normalized cache key, so repeats share one optimized plan.
//
// Parameterization policy (see DESIGN.md §9). A literal is lifted only
// when it cannot feed a profile-dependent rewrite:
//  * top-level WHERE/HAVING literals that are one side of a non-equality
//    comparison (<, <=, >, >=, <>, !=) whose other side is not a literal;
//  * the top-level LIMIT and OFFSET integers (replaced by sentinels the
//    optimizer plans with; the real values are rebound on every hit, and
//    JoinOp::limit_hint is re-derived so early-exit stays correct).
// Everything else stays inline: equality literals (constant pinning,
// UAJ 3 / AJ 2a-3), subquery literals (branch discriminators, predicate
// subsumption), ON-clause / select-list / function-argument / CASE /
// GROUP BY / ORDER BY literals, DATE literals, and literal-vs-literal
// comparisons (constant folding, AJ 2b empty-augmenter detection).
#ifndef VDMQO_SQL_PARAMETERIZE_H_
#define VDMQO_SQL_PARAMETERIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/lexer.h"
#include "types/value.h"

namespace vdm {

/// Sentinel LIMIT/OFFSET values the optimizer plans with. Chosen large
/// and distinctive; a statement (or inlined view) whose own literal
/// limits collide with a sentinel combination is simply not cached.
inline constexpr int64_t kLimitSentinel = 1000003;
inline constexpr int64_t kOffsetSentinel = 1000033;

struct ParameterizedStatement {
  /// Normalized cache-key text: tokens joined by single spaces, lifted
  /// literals rendered as "?<slot>:<typecode>", LIMIT/OFFSET as ?L / ?O.
  /// Identical for all literal-variants of one generated statement.
  std::string key;
  /// Rewritten token stream for ParseTokenStream: lifted literals are
  /// kParam tokens, LIMIT/OFFSET integers carry the sentinel values.
  std::vector<Token> tokens;
  /// The literal values of *this* statement, in slot order.
  std::vector<Value> params;
  std::vector<DataType> param_types;
  bool has_limit = false;
  bool has_offset = false;
  int64_t limit = -1;
  int64_t offset = 0;
  /// False when the statement must bypass the cache entirely (not a
  /// SELECT, or its inline literals collide with the limit sentinels).
  bool cacheable = false;
};

/// Tokenizes and parameterizes one statement. Lexer failures surface as
/// a Status; statements that merely should not be cached come back OK
/// with cacheable == false.
Result<ParameterizedStatement> ParameterizeStatement(const std::string& sql);

}  // namespace vdm

#endif  // VDMQO_SQL_PARAMETERIZE_H_
