// SQL abstract syntax. Expressions reuse the engine's Expr tree with
// unresolved (possibly qualified) column names; the binder resolves them.
#ifndef VDMQO_SQL_AST_H_
#define VDMQO_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "expr/expr.h"
#include "plan/logical_plan.h"

namespace vdm {

struct SelectStmt;

struct SelectItem {
  ExprRef expr;        // null when star
  std::string alias;   // empty = derive from expression
  bool star = false;   // SELECT *
};

struct TableRef {
  enum class Kind { kNamed, kSubquery } kind = Kind::kNamed;
  std::string name;    // table or view name (kNamed)
  std::string alias;   // empty = use name
  std::shared_ptr<SelectStmt> subquery;  // kSubquery
};

struct JoinClause {
  JoinType join_type = JoinType::kInner;
  DeclaredCardinality cardinality = DeclaredCardinality::kNone;
  bool case_join = false;
  TableRef ref;
  ExprRef condition;  // null = CROSS-like TRUE condition
};

struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  bool has_from = false;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprRef where;                  // may be null
  std::vector<ExprRef> group_by;  // empty = no grouping
  ExprRef having;                 // may be null
};

struct OrderItem {
  ExprRef expr;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectCore> cores;  // >1 = UNION ALL chain
  std::vector<OrderItem> order_by;
  int64_t limit = -1;   // -1 = none
  int64_t offset = 0;
};

struct CreateTableStmt {
  TableSchema schema;
};

struct CreateViewStmt {
  std::string name;
  std::shared_ptr<SelectStmt> select;
  std::string select_sql;  // original text of the defining query
  std::vector<ExpressionMacro> macros;
  std::vector<AssociationDef> associations;
  bool or_replace = false;
};

struct InsertStmt {
  std::string table;
  /// Explicit target columns; empty = schema order.
  std::vector<std::string> columns;
  /// One expression list per row; expressions must be constant.
  std::vector<std::vector<ExprRef>> rows;
};

struct UpdateStmt {
  std::string table;
  /// SET column = expr assignments, applied simultaneously (every RHS is
  /// evaluated against the pre-update row).
  std::vector<std::pair<std::string, ExprRef>> sets;
  ExprRef where;  // may be null = all rows
};

struct DeleteStmt {
  std::string table;
  ExprRef where;  // may be null = all rows
};

struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateView,
    kInsert,
    kUpdate,
    kDelete,
    // Transaction control; carry no payload.
    kBegin,
    kCommit,
    kRollback,
  } kind;
  std::shared_ptr<SelectStmt> select;
  std::shared_ptr<CreateTableStmt> create_table;
  std::shared_ptr<CreateViewStmt> create_view;
  std::shared_ptr<InsertStmt> insert;
  std::shared_ptr<UpdateStmt> update;
  std::shared_ptr<DeleteStmt> del;
};

}  // namespace vdm

#endif  // VDMQO_SQL_AST_H_
