// The binder: resolves an AST against the catalog and produces a logical
// plan. This is where the paper's VDM machinery happens:
//  * views are inlined on every reference (nested views unfold into one
//    plan, the raw form of Fig. 3),
//  * data-access-control filters attached to a view are injected on top of
//    the inlined plan (§3),
//  * expression macros are expanded at the aggregation site (§7.2),
//  * scans qualify output columns with their alias, keeping self-joins
//    (the ASJ pattern) unambiguous.
#ifndef VDMQO_SQL_BINDER_H_
#define VDMQO_SQL_BINDER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace vdm {

class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  /// Binds a SELECT statement to a logical plan. Output column names are
  /// the select-list names.
  Result<PlanRef> BindSelect(const SelectStmt& stmt);

  /// Parses and binds a SELECT in one step.
  Result<PlanRef> BindSql(const std::string& sql);

 private:
  struct Scope;

  /// Binds one select core. When `order_by` is non-null and the core is a
  /// simple (non-grouped, non-distinct) select, the sort is applied inside
  /// — which allows ordering by columns that are not projected — and
  /// *order_handled is set.
  Result<PlanRef> BindCore(const SelectCore& core,
                           std::vector<std::string>* output_names,
                           const std::vector<OrderItem>* order_by = nullptr,
                           bool* order_handled = nullptr);
  struct BoundRef {
    PlanRef plan;
    std::string alias;
    std::vector<std::string> output_names;  // alias-qualified
    const ViewDef* view = nullptr;          // macro source, if a view
  };
  Result<BoundRef> BindTableRef(const TableRef& ref);
  Result<ExprRef> BindExpr(const ExprRef& expr, const Scope& scope);

  /// Resolves a CDS path expression "alias.assoc[.assoc...].column" by
  /// injecting the associations' LEFT OUTER joins into *plan and extending
  /// *scope (paper §2.3). Unknown segments are left for normal resolution
  /// to report.
  Status ResolvePathRef(const std::string& ref, Scope* scope, PlanRef* plan);

  const Catalog* catalog_;
  int view_depth_ = 0;
};

}  // namespace vdm

#endif  // VDMQO_SQL_BINDER_H_
