#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace vdm {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_' || sql[i] == '$')) {
        ++i;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = sql.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool has_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (!has_dot && sql[i] == '.' && i + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(sql[i + 1]))))) {
        if (sql[i] == '.') has_dot = true;
        ++i;
      }
      token.kind = has_dot ? TokenKind::kDecimal : TokenKind::kInteger;
      token.text = sql.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu",
                      token.offset));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char operators.
    static const char* kTwoChar[] = {"<>", "<=", ">=", "!=", "||"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && i + 1 < n && sql[i + 1] == op[1]) {
        token.kind = TokenKind::kSymbol;
        token.text = op;
        tokens.push_back(std::move(token));
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingle = "()+-*/=<>,.;";
    if (kSingle.find(c) != std::string::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace vdm
