// SQL tokenizer. Keywords are not reserved at the lexer level: the parser
// matches identifiers case-insensitively, which keeps the keyword set
// extensible (MANY TO ONE, CASE JOIN, EXPRESSION MACROS, ...).
#ifndef VDMQO_SQL_LEXER_H_
#define VDMQO_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace vdm {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kDecimal,   // numeric literal with a fractional part
  kString,    // 'quoted'
  kSymbol,    // punctuation / operators
  kParam,     // parameter slot; text = "<slot>:<typecode>", produced by
              // statement parameterization (sql/parameterize.h), never by
              // the lexer itself
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (original case) / literal text / symbol
  size_t offset = 0;  // byte offset in the input (for error messages)
};

/// Tokenizes SQL text. Comments (-- to end of line) are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace vdm

#endif  // VDMQO_SQL_LEXER_H_
