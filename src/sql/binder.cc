#include "sql/binder.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "sql/parser.h"

namespace vdm {

namespace {

constexpr int kMaxViewDepth = 64;

/// Unqualified part of a (possibly qualified) column name.
std::string BareName(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

/// Replaces subtrees equal to a group expression with a reference to the
/// group output — but does not descend into aggregate arguments, which are
/// evaluated against the aggregation input.
ExprRef ReplaceGroupRefs(
    const ExprRef& expr,
    const std::vector<std::pair<ExprRef, std::string>>& groups) {
  for (const auto& [group_expr, name] : groups) {
    if (expr->Equals(*group_expr)) return Col(name);
  }
  if (expr->kind() == ExprKind::kAggregate) return expr;
  std::vector<ExprRef> children;
  bool changed = false;
  for (const ExprRef& child : expr->children()) {
    ExprRef replaced = ReplaceGroupRefs(child, groups);
    changed |= (replaced != child);
    children.push_back(std::move(replaced));
  }
  return changed ? expr->WithChildren(std::move(children)) : expr;
}

/// True when an expression outside aggregate arguments references columns
/// other than group outputs — used to reject select items that are neither
/// grouped nor aggregated.
bool HasBareColumnRefs(const ExprRef& expr,
                       const std::set<std::string>& group_names) {
  if (expr->kind() == ExprKind::kAggregate) return false;
  if (expr->kind() == ExprKind::kColumnRef) {
    return group_names.count(
               static_cast<const ColumnRefExpr&>(*expr).name()) == 0;
  }
  for (const ExprRef& child : expr->children()) {
    if (HasBareColumnRefs(child, group_names)) return true;
  }
  return false;
}

}  // namespace

struct Binder::Scope {
  // Resolution map: qualified and bare names -> output name. The empty
  // string marks an ambiguous bare name.
  std::map<std::string, std::string> names;
  std::vector<std::string> ordered_outputs;
  std::vector<const ViewDef*> views;
  // Alias (lower-cased) -> view definition, for association resolution
  // ("alias.assoc.column" path expressions).
  std::map<std::string, const ViewDef*> view_of_alias;
  // For ORDER BY scopes over already-projected outputs: a qualified
  // reference like "o.o_orderkey" may fall back to its bare name.
  bool allow_bare_fallback = false;

  void AddOutput(const std::string& qualified) {
    ordered_outputs.push_back(qualified);
    names[ToLower(qualified)] = qualified;
    std::string bare = ToLower(BareName(qualified));
    auto [it, inserted] = names.emplace(bare, qualified);
    if (!inserted && it->second != qualified) it->second = "";  // ambiguous
  }

  Result<std::string> Resolve(const std::string& name) const {
    auto it = names.find(ToLower(name));
    if (it == names.end() && allow_bare_fallback) {
      it = names.find(ToLower(BareName(name)));
    }
    if (it == names.end()) {
      return Status::BindError("unknown column: " + name);
    }
    if (it->second.empty()) {
      return Status::BindError("ambiguous column: " + name);
    }
    return it->second;
  }
};

Result<PlanRef> Binder::BindSql(const std::string& sql) {
  VDM_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::BindError("expected a SELECT statement");
  }
  return BindSelect(*stmt.select);
}

Result<PlanRef> Binder::BindSelect(const SelectStmt& stmt) {
  std::vector<std::string> output_names;
  bool order_handled = false;
  const std::vector<OrderItem>* core_order =
      (stmt.cores.size() == 1 && !stmt.order_by.empty()) ? &stmt.order_by
                                                         : nullptr;
  VDM_ASSIGN_OR_RETURN(
      PlanRef plan,
      BindCore(stmt.cores[0], &output_names, core_order, &order_handled));

  if (stmt.cores.size() > 1) {
    std::vector<PlanRef> children{plan};
    for (size_t i = 1; i < stmt.cores.size(); ++i) {
      std::vector<std::string> child_names;
      VDM_ASSIGN_OR_RETURN(PlanRef child,
                           BindCore(stmt.cores[i], &child_names));
      if (child_names.size() != output_names.size()) {
        return Status::BindError("UNION ALL children differ in arity");
      }
      children.push_back(std::move(child));
    }
    plan = std::make_shared<UnionAllOp>(std::move(children), output_names);
  }

  if (!stmt.order_by.empty() && !order_handled) {
    // ORDER BY resolves against the output columns; qualified references
    // fall back to their bare name ("o.k" -> output "k").
    Scope scope;
    scope.allow_bare_fallback = true;
    for (const std::string& name : output_names) scope.AddOutput(name);
    std::vector<SortOp::SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      VDM_ASSIGN_OR_RETURN(ExprRef bound, BindExpr(item.expr, scope));
      keys.push_back({std::move(bound), item.ascending});
    }
    plan = std::make_shared<SortOp>(std::move(plan), std::move(keys));
  }
  if (stmt.limit >= 0) {
    plan = std::make_shared<LimitOp>(std::move(plan), stmt.limit,
                                     stmt.offset);
  }
  return plan;
}

Result<Binder::BoundRef> Binder::BindTableRef(const TableRef& ref) {
  BoundRef out;
  if (ref.kind == TableRef::Kind::kSubquery) {
    out.alias = ref.alias;
    VDM_ASSIGN_OR_RETURN(PlanRef sub, BindSelect(*ref.subquery));
    // Alias-qualify the subquery's outputs.
    std::vector<ProjectOp::Item> items;
    for (const std::string& name : sub->OutputNames()) {
      std::string qualified = out.alias + "." + BareName(name);
      items.push_back({Col(name), qualified});
      out.output_names.push_back(std::move(qualified));
    }
    out.plan = std::make_shared<ProjectOp>(std::move(sub), std::move(items));
    return out;
  }

  out.alias = ref.alias.empty() ? ref.name : ref.alias;

  if (const TableSchema* schema = catalog_->FindTable(ref.name)) {
    auto scan = std::make_shared<ScanOp>(*schema, out.alias,
                                         std::vector<size_t>{});
    out.output_names = scan->OutputNames();
    out.plan = std::move(scan);
    return out;
  }

  const ViewDef* view = catalog_->FindView(ref.name);
  if (view == nullptr) {
    return Status::NotFound("unknown table or view: " + ref.name);
  }
  PlanRef view_plan_override;
  if (!view->materialized_table.empty()) {
    // Static cached view (§3): read the snapshot instead of inlining.
    const TableSchema* snapshot =
        catalog_->FindTable(view->materialized_table);
    if (snapshot == nullptr) {
      return Status::Internal("missing snapshot table for view " +
                              view->name);
    }
    auto scan = std::make_shared<ScanOp>(*snapshot, out.alias,
                                         std::vector<size_t>{});
    // Rename scan outputs to the view's bare column names so the DAC
    // filter and alias projection below work unchanged.
    std::vector<ProjectOp::Item> items;
    for (size_t c = 0; c < snapshot->NumColumns(); ++c) {
      items.push_back(
          {Col(scan->QualifiedName(c)), snapshot->column(c).name});
    }
    view_plan_override =
        std::make_shared<ProjectOp>(std::move(scan), std::move(items));
  }
  if (++view_depth_ > kMaxViewDepth) {
    --view_depth_;
    return Status::BindError("view nesting too deep (cycle?): " + ref.name);
  }
  PlanRef view_plan;
  if (view_plan_override) {
    view_plan = view_plan_override;
  } else if (view->bound_plan) {
    view_plan = view->bound_plan;
  } else {
    Result<PlanRef> bound = BindSql(view->sql);
    if (!bound.ok()) {
      --view_depth_;
      return Status(bound.status().code(),
                    "in view " + view->name + ": " + bound.status().message());
    }
    view_plan = std::move(bound).value();
  }
  --view_depth_;

  // Inject the record-wise data access control filter (§3).
  if (!view->dac_filter_sql.empty()) {
    VDM_ASSIGN_OR_RETURN(ExprRef dac, ParseExpression(view->dac_filter_sql));
    Scope view_scope;
    for (const std::string& name : view_plan->OutputNames()) {
      view_scope.AddOutput(name);
    }
    VDM_ASSIGN_OR_RETURN(ExprRef bound_dac, BindExpr(dac, view_scope));
    view_plan = std::make_shared<FilterOp>(std::move(view_plan),
                                           std::move(bound_dac));
  }

  // Alias-qualify the view's outputs.
  std::vector<ProjectOp::Item> items;
  for (const std::string& name : view_plan->OutputNames()) {
    std::string qualified = out.alias + "." + BareName(name);
    items.push_back({Col(name), qualified});
    out.output_names.push_back(std::move(qualified));
  }
  out.plan =
      std::make_shared<ProjectOp>(std::move(view_plan), std::move(items));
  out.view = view;
  return out;
}

Result<ExprRef> Binder::BindExpr(const ExprRef& expr, const Scope& scope) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const std::string& name =
          static_cast<const ColumnRefExpr&>(*expr).name();
      VDM_ASSIGN_OR_RETURN(std::string resolved, scope.Resolve(name));
      return Col(std::move(resolved));
    }
    case ExprKind::kMacroRef: {
      const std::string& name =
          static_cast<const MacroRefExpr&>(*expr).name();
      for (const ViewDef* view : scope.views) {
        if (view == nullptr) continue;
        const ExpressionMacro* macro = view->FindMacro(name);
        if (macro != nullptr) {
          VDM_ASSIGN_OR_RETURN(ExprRef body,
                               ParseExpression(macro->body_sql));
          return BindExpr(body, scope);
        }
      }
      return Status::BindError("unknown expression macro: " + name);
    }
    default: {
      std::vector<ExprRef> children;
      bool changed = false;
      for (const ExprRef& child : expr->children()) {
        VDM_ASSIGN_OR_RETURN(ExprRef bound, BindExpr(child, scope));
        changed |= (bound != child);
        children.push_back(std::move(bound));
      }
      return changed ? expr->WithChildren(std::move(children)) : expr;
    }
  }
}

Status Binder::ResolvePathRef(const std::string& ref, Scope* scope,
                              PlanRef* plan) {
  std::vector<std::string> segments = Split(ref, '.');
  if (segments.size() < 3) return Status::OK();
  std::string current = ToLower(segments[0]);
  // Walk association segments; the last segment is the column.
  for (size_t i = 1; i + 1 < segments.size(); ++i) {
    std::string next_alias = current + "." + ToLower(segments[i]);
    if (scope->view_of_alias.count(next_alias) > 0) {
      current = next_alias;  // already injected
      continue;
    }
    auto view_it = scope->view_of_alias.find(current);
    if (view_it == scope->view_of_alias.end() ||
        view_it->second == nullptr) {
      return Status::OK();  // not an association path; resolved normally
    }
    const AssociationDef* assoc =
        view_it->second->FindAssociation(segments[i]);
    if (assoc == nullptr) {
      return Status::BindError("view " + view_it->second->name +
                               " has no association '" + segments[i] + "'");
    }
    // Bind the association target under the path alias.
    TableRef target_ref;
    target_ref.kind = TableRef::Kind::kNamed;
    target_ref.name = assoc->target;
    target_ref.alias = next_alias;
    VDM_ASSIGN_OR_RETURN(BoundRef target, BindTableRef(target_ref));
    // Bind the ON condition: target columns are "<assoc>.<col>", source
    // columns are the view instance's bare output names.
    Scope cond_scope;
    std::string assoc_prefix = ToLower(assoc->name) + ".";
    for (const std::string& qualified : target.output_names) {
      cond_scope.names[assoc_prefix + ToLower(BareName(qualified))] =
          qualified;
    }
    std::string source_prefix = current + ".";
    for (const std::string& qualified : scope->ordered_outputs) {
      if (ToLower(qualified).rfind(source_prefix, 0) == 0 &&
          std::count(qualified.begin(), qualified.end(), '.') ==
              std::count(source_prefix.begin(), source_prefix.end(), '.')) {
        cond_scope.names.emplace(
            ToLower(qualified.substr(source_prefix.size())), qualified);
      }
    }
    VDM_ASSIGN_OR_RETURN(ExprRef condition,
                         ParseExpression(assoc->condition_sql));
    Result<ExprRef> bound = BindExpr(condition, cond_scope);
    if (!bound.ok()) {
      return Status(bound.status().code(),
                    "in association " + assoc->name + " of view " +
                        view_it->second->name + ": " +
                        bound.status().message());
    }
    // Associations are to-one (CDS default [0..1]): a declared
    // many-to-one LEFT OUTER join (§7.3 semantics).
    *plan = std::make_shared<JoinOp>(*plan, target.plan,
                                     JoinType::kLeftOuter,
                                     std::move(bound).value(),
                                     DeclaredCardinality::kAtMostOne);
    for (const std::string& qualified : target.output_names) {
      scope->AddOutput(qualified);
    }
    scope->view_of_alias[next_alias] = target.view;
    current = next_alias;
  }
  return Status::OK();
}

Result<PlanRef> Binder::BindCore(const SelectCore& core,
                                 std::vector<std::string>* output_names,
                                 const std::vector<OrderItem>* order_by,
                                 bool* order_handled) {
  Scope scope;
  PlanRef plan;

  if (core.has_from) {
    VDM_ASSIGN_OR_RETURN(BoundRef base, BindTableRef(core.from));
    plan = base.plan;
    for (const std::string& name : base.output_names) scope.AddOutput(name);
    scope.views.push_back(base.view);
    scope.view_of_alias[ToLower(base.alias)] = base.view;

    for (const JoinClause& join : core.joins) {
      VDM_ASSIGN_OR_RETURN(BoundRef right, BindTableRef(join.ref));
      for (const std::string& name : right.output_names) {
        scope.AddOutput(name);
      }
      scope.views.push_back(right.view);
      scope.view_of_alias[ToLower(right.alias)] = right.view;
      ExprRef condition = join.condition ? join.condition : LitBool(true);
      VDM_ASSIGN_OR_RETURN(ExprRef bound_cond, BindExpr(condition, scope));
      plan = std::make_shared<JoinOp>(plan, right.plan, join.join_type,
                                      std::move(bound_cond),
                                      join.cardinality, join.case_join);
    }

    // CDS path expressions (§2.3): "alias.assoc.column" references inject
    // the association's many-to-one LEFT OUTER join on demand.
    std::vector<std::string> path_refs;
    auto collect = [&](const ExprRef& expr) {
      if (!expr) return;
      std::vector<std::string> refs;
      CollectColumnRefs(expr, &refs);
      for (std::string& ref : refs) {
        if (std::count(ref.begin(), ref.end(), '.') >= 2) {
          path_refs.push_back(std::move(ref));
        }
      }
    };
    for (const SelectItem& item : core.items) collect(item.expr);
    collect(core.where);
    for (const ExprRef& g : core.group_by) collect(g);
    collect(core.having);
    if (order_by != nullptr) {
      for (const OrderItem& item : *order_by) collect(item.expr);
    }
    for (const std::string& ref : path_refs) {
      VDM_RETURN_NOT_OK(ResolvePathRef(ref, &scope, &plan));
    }
  } else {
    return Status::BindError("SELECT without FROM is not supported");
  }

  if (core.where) {
    VDM_ASSIGN_OR_RETURN(ExprRef where, BindExpr(core.where, scope));
    plan = std::make_shared<FilterOp>(std::move(plan), std::move(where));
  }

  // Expand the select list (star expansion + binding).
  struct BoundItem {
    ExprRef expr;
    std::string name;
  };
  std::vector<BoundItem> items;
  std::set<std::string> used_names;
  auto unique_name = [&used_names](std::string base) {
    std::string name = base;
    int suffix = 1;
    while (used_names.count(name) > 0) {
      name = base + "_" + std::to_string(suffix++);
    }
    used_names.insert(name);
    return name;
  };
  // Count bare-name collisions for star expansion.
  std::map<std::string, int> bare_counts;
  for (const std::string& qualified : scope.ordered_outputs) {
    ++bare_counts[ToLower(BareName(qualified))];
  }
  for (const SelectItem& item : core.items) {
    if (item.star) {
      for (const std::string& qualified : scope.ordered_outputs) {
        std::string bare = BareName(qualified);
        std::string name =
            bare_counts[ToLower(bare)] > 1 ? qualified : bare;
        items.push_back({Col(qualified), unique_name(name)});
      }
      continue;
    }
    VDM_ASSIGN_OR_RETURN(ExprRef bound, BindExpr(item.expr, scope));
    std::string name = item.alias;
    if (name.empty()) {
      if (item.expr->kind() == ExprKind::kColumnRef) {
        name = BareName(
            static_cast<const ColumnRefExpr&>(*item.expr).name());
      } else {
        name = bound->ToString();
      }
    }
    items.push_back({std::move(bound), unique_name(name)});
  }

  bool has_aggregates = false;
  for (const BoundItem& item : items) {
    if (ContainsAggregate(item.expr)) has_aggregates = true;
  }

  if (!core.group_by.empty() || has_aggregates || core.having) {
    // Build grouped aggregation.
    std::vector<std::pair<ExprRef, std::string>> groups;
    std::vector<AggregateOp::GroupItem> group_items;
    for (const ExprRef& g : core.group_by) {
      VDM_ASSIGN_OR_RETURN(ExprRef bound, BindExpr(g, scope));
      std::string name =
          bound->kind() == ExprKind::kColumnRef
              ? static_cast<const ColumnRefExpr&>(*bound).name()
              : bound->ToString();
      groups.emplace_back(bound, name);
      group_items.push_back({bound, name});
    }
    std::set<std::string> group_names;
    for (const auto& [expr, name] : groups) group_names.insert(name);
    std::vector<AggregateOp::AggItem> agg_items;
    for (const BoundItem& item : items) {
      ExprRef rewritten = ReplaceGroupRefs(item.expr, groups);
      if (!ContainsAggregate(rewritten) &&
          HasBareColumnRefs(rewritten, group_names)) {
        return Status::BindError("column " + item.expr->ToString() +
                                 " must appear in GROUP BY or an aggregate");
      }
      agg_items.push_back({std::move(rewritten), item.name});
    }
    bool has_having = static_cast<bool>(core.having);
    if (has_having) {
      VDM_ASSIGN_OR_RETURN(ExprRef having, BindExpr(core.having, scope));
      ExprRef rewritten = ReplaceGroupRefs(having, groups);
      agg_items.push_back({std::move(rewritten), "__having"});
    }
    plan = std::make_shared<AggregateOp>(std::move(plan),
                                         std::move(group_items),
                                         std::move(agg_items));
    if (has_having) {
      plan = std::make_shared<FilterOp>(
          std::move(plan), Eq(Col("__having"), LitBool(true)));
    }
    // Final projection: the select items in order (drops group columns
    // and the hidden having column).
    std::vector<ProjectOp::Item> final_items;
    for (const BoundItem& item : items) {
      final_items.push_back({Col(item.name), item.name});
    }
    plan = std::make_shared<ProjectOp>(std::move(plan),
                                       std::move(final_items));
  } else if (order_by != nullptr && !core.distinct) {
    // Simple select with an ORDER BY that may reference non-projected
    // columns: sort before the projection, binding the keys in the full
    // FROM scope.
    std::vector<SortOp::SortKey> keys;
    bool bound_all = true;
    for (const OrderItem& item : *order_by) {
      Result<ExprRef> bound = BindExpr(item.expr, scope);
      if (!bound.ok()) {
        bound_all = false;
        break;
      }
      keys.push_back({std::move(bound).value(), item.ascending});
    }
    if (bound_all) {
      plan = std::make_shared<SortOp>(std::move(plan), std::move(keys));
      if (order_handled != nullptr) *order_handled = true;
    }
    std::vector<ProjectOp::Item> project_items;
    for (const BoundItem& item : items) {
      project_items.push_back({item.expr, item.name});
    }
    plan = std::make_shared<ProjectOp>(std::move(plan),
                                       std::move(project_items));
  } else {
    std::vector<ProjectOp::Item> project_items;
    for (const BoundItem& item : items) {
      project_items.push_back({item.expr, item.name});
    }
    plan = std::make_shared<ProjectOp>(std::move(plan),
                                       std::move(project_items));
  }

  if (core.distinct) {
    plan = std::make_shared<DistinctOp>(std::move(plan));
  }

  output_names->clear();
  for (const std::string& name : plan->OutputNames()) {
    output_names->push_back(name);
  }
  return plan;
}

}  // namespace vdm
