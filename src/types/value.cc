#include "types/value.h"

#include <functional>

#include "common/string_util.h"
#include "types/date_util.h"

namespace vdm {

double Value::ToDouble() const {
  if (is_null_) return 0.0;
  switch (type_.id) {
    case TypeId::kBool:
    case TypeId::kInt64:
    case TypeId::kDate:
      return static_cast<double>(int_);
    case TypeId::kDouble:
      return double_;
    case TypeId::kDecimal:
      return static_cast<double>(int_) /
             static_cast<double>(DecimalPow10(type_.scale));
    case TypeId::kString:
      return 0.0;
  }
  return 0.0;
}

bool Value::Equals(const Value& other) const {
  if (is_null_ || other.is_null_) return false;
  if (type_.id == TypeId::kString || other.type_.id == TypeId::kString) {
    return type_.id == other.type_.id && string_ == other.string_;
  }
  if (type_ == other.type_) {
    if (type_.id == TypeId::kDouble) return double_ == other.double_;
    return int_ == other.int_;
  }
  // Mixed numeric comparison via double.
  return ToDouble() == other.ToDouble();
}

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  if (type_.id == TypeId::kString && other.type_.id == TypeId::kString) {
    return string_.compare(other.string_) < 0
               ? -1
               : (string_ == other.string_ ? 0 : 1);
  }
  if (type_ == other.type_ && type_.id != TypeId::kDouble) {
    return int_ < other.int_ ? -1 : (int_ == other.int_ ? 0 : 1);
  }
  double a = ToDouble();
  double b = other.ToDouble();
  return a < b ? -1 : (a == b ? 0 : 1);
}

size_t Value::Hash() const {
  if (is_null_) return 0x9E3779B9u;
  switch (type_.id) {
    case TypeId::kString:
      return std::hash<std::string>{}(string_);
    case TypeId::kDouble:
      return std::hash<double>{}(double_);
    default:
      return std::hash<int64_t>{}(int_) ^
             (static_cast<size_t>(type_.id) << 1);
  }
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_.id) {
    case TypeId::kBool:
      return int_ ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int_);
    case TypeId::kDouble:
      return StrFormat("%g", double_);
    case TypeId::kDecimal: {
      int64_t p = DecimalPow10(type_.scale);
      int64_t whole = int_ / p;
      int64_t frac = int_ % p;
      if (frac < 0) frac = -frac;
      if (type_.scale == 0) return std::to_string(whole);
      std::string fracs = std::to_string(frac);
      fracs.insert(0, type_.scale - fracs.size(), '0');
      std::string sign = (int_ < 0 && whole == 0) ? "-" : "";
      return sign + std::to_string(whole) + "." + fracs;
    }
    case TypeId::kString:
      return string_;
    case TypeId::kDate:
      return FormatDate(int_);
  }
  return "?";
}

}  // namespace vdm
