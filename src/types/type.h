// Logical data types of the engine.
//
// The engine supports the types that the paper's workloads need: booleans,
// 64-bit integers, doubles, fixed-point decimals (the paper's §7.1 rounding
// discussion requires exact decimal semantics), strings, and dates.
#ifndef VDMQO_TYPES_TYPE_H_
#define VDMQO_TYPES_TYPE_H_

#include <cstdint>
#include <string>

namespace vdm {

enum class TypeId : uint8_t {
  kBool = 0,
  kInt64,
  kDouble,
  kDecimal,  // fixed-point: int64 unscaled value + scale
  kString,
  kDate,  // days since 1970-01-01, stored as int64
};

/// A logical type: a TypeId plus, for decimals, the scale (digits after the
/// decimal point). Precision is not enforced; scale drives arithmetic.
struct DataType {
  TypeId id = TypeId::kInt64;
  uint8_t scale = 0;  // meaningful for kDecimal only

  DataType() = default;
  explicit DataType(TypeId type_id, uint8_t decimal_scale = 0)
      : id(type_id), scale(decimal_scale) {}

  static DataType Bool() { return DataType(TypeId::kBool); }
  static DataType Int64() { return DataType(TypeId::kInt64); }
  static DataType Double() { return DataType(TypeId::kDouble); }
  static DataType Decimal(uint8_t scale) {
    return DataType(TypeId::kDecimal, scale);
  }
  static DataType String() { return DataType(TypeId::kString); }
  static DataType Date() { return DataType(TypeId::kDate); }

  bool operator==(const DataType& other) const {
    return id == other.id && (id != TypeId::kDecimal || scale == other.scale);
  }
  bool operator!=(const DataType& other) const { return !(*this == other); }

  /// True for types whose physical representation is an int64
  /// (bool, int64, decimal, date).
  bool IsIntegerBacked() const {
    return id == TypeId::kBool || id == TypeId::kInt64 ||
           id == TypeId::kDecimal || id == TypeId::kDate;
  }
  bool IsNumeric() const {
    return id == TypeId::kInt64 || id == TypeId::kDouble ||
           id == TypeId::kDecimal;
  }

  std::string ToString() const;
};

/// Power of ten for decimal scaling; scale must be <= 18.
int64_t DecimalPow10(uint8_t scale);

}  // namespace vdm

#endif  // VDMQO_TYPES_TYPE_H_
