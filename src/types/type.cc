#include "types/type.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace vdm {

std::string DataType::ToString() const {
  switch (id) {
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDecimal:
      return StrFormat("DECIMAL(%d)", static_cast<int>(scale));
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int64_t DecimalPow10(uint8_t scale) {
  VDM_CHECK(scale <= 18);
  int64_t p = 1;
  for (uint8_t i = 0; i < scale; ++i) p *= 10;
  return p;
}

}  // namespace vdm
