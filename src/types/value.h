// Null-aware scalar value. Used for literals, constant folding, row access
// in tests, and grouping keys. Columnar execution does not go through Value
// in hot loops; it operates on ColumnData vectors directly.
#ifndef VDMQO_TYPES_VALUE_H_
#define VDMQO_TYPES_VALUE_H_

#include <cstdint>
#include <string>

#include "types/type.h"

namespace vdm {

class Value {
 public:
  /// Default-constructed Value is NULL (untyped).
  Value() : is_null_(true), type_(DataType::Int64()) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value out(DataType::Bool());
    out.int_ = v ? 1 : 0;
    return out;
  }
  static Value Int64(int64_t v) {
    Value out(DataType::Int64());
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out(DataType::Double());
    out.double_ = v;
    return out;
  }
  /// Decimal from an unscaled integer, e.g. Decimal(1319, 2) == 13.19.
  static Value Decimal(int64_t unscaled, uint8_t scale) {
    Value out(DataType::Decimal(scale));
    out.int_ = unscaled;
    return out;
  }
  static Value String(std::string v) {
    Value out(DataType::String());
    out.string_ = std::move(v);
    return out;
  }
  static Value Date(int64_t days_since_epoch) {
    Value out(DataType::Date());
    out.int_ = days_since_epoch;
    return out;
  }

  bool is_null() const { return is_null_; }
  const DataType& type() const { return type_; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt64() const { return int_; }
  double AsDouble() const { return double_; }
  int64_t AsUnscaled() const { return int_; }
  const std::string& AsString() const { return string_; }

  /// Numeric view as double regardless of backing type (decimal is scaled
  /// down). Null yields 0.0; callers should check is_null() first.
  double ToDouble() const;

  /// SQL-style equality of non-null values; NULL never equals anything.
  bool Equals(const Value& other) const;

  /// Total ordering for sorting: NULLs first, then by value. Comparable
  /// numeric types are compared numerically; strings lexicographically.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Hash consistent with Equals (numeric types hash via double when mixed).
  size_t Hash() const;

  std::string ToString() const;

  bool operator==(const Value& other) const {
    if (is_null_ && other.is_null_) return true;
    if (is_null_ != other.is_null_) return false;
    return Equals(other);
  }

 private:
  explicit Value(DataType type) : is_null_(false), type_(type) {}

  bool is_null_;
  DataType type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace vdm

#endif  // VDMQO_TYPES_VALUE_H_
