// Civil-calendar conversions for the DATE type (days since 1970-01-01),
// using Howard Hinnant's days-from-civil algorithms.
#ifndef VDMQO_TYPES_DATE_UTIL_H_
#define VDMQO_TYPES_DATE_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>

namespace vdm {

struct CivilDate {
  int64_t year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31
};

CivilDate CivilFromDays(int64_t days_since_epoch);
int64_t DaysFromCivil(const CivilDate& date);

/// Renders as ISO "YYYY-MM-DD".
std::string FormatDate(int64_t days_since_epoch);

/// Parses ISO "YYYY-MM-DD"; returns nullopt on malformed input.
std::optional<int64_t> ParseDate(const std::string& text);

}  // namespace vdm

#endif  // VDMQO_TYPES_DATE_UTIL_H_
