#include "types/column.h"

#include <algorithm>

#include "common/string_util.h"

namespace vdm {

void ColumnData::Reserve(size_t n) {
  if (type_.id == TypeId::kString) {
    strings_.reserve(n);
  } else if (type_.id == TypeId::kDouble) {
    doubles_.reserve(n);
  } else {
    ints_.reserve(n);
  }
}

void ColumnData::AppendNull() {
  EnsureValidity();
  InvalidateDict();
  if (type_.id == TypeId::kString) {
    strings_.emplace_back();
  } else if (type_.id == TypeId::kDouble) {
    doubles_.push_back(0.0);
  } else {
    ints_.push_back(0);
  }
  validity_.push_back(0);
  ++size_;
}

void ColumnData::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_.id) {
    case TypeId::kBool:
      AppendInt(v.AsBool() ? 1 : 0);
      break;
    case TypeId::kInt64:
    case TypeId::kDate:
      AppendInt(v.AsInt64());
      break;
    case TypeId::kDecimal:
      if (v.type().id == TypeId::kDecimal) {
        VDM_DCHECK(v.type().scale == type_.scale);
        AppendInt(v.AsUnscaled());
      } else {
        // Promote integers to this decimal's scale.
        AppendInt(v.AsInt64() * DecimalPow10(type_.scale));
      }
      break;
    case TypeId::kDouble:
      AppendDouble(v.ToDouble());
      break;
    case TypeId::kString:
      AppendString(v.AsString());
      break;
  }
}

Value ColumnData::GetValue(size_t i) const {
  VDM_DCHECK(i < size_);
  if (IsNull(i)) return Value::Null();
  switch (type_.id) {
    case TypeId::kBool:
      return Value::Bool(ints_[i] != 0);
    case TypeId::kInt64:
      return Value::Int64(ints_[i]);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kDecimal:
      return Value::Decimal(ints_[i], type_.scale);
    case TypeId::kString:
      return Value::String(StringAt(i));
    case TypeId::kDate:
      return Value::Date(ints_[i]);
  }
  return Value::Null();
}

void ColumnData::AppendFrom(const ColumnData& other, size_t i) {
  VDM_DCHECK(type_.id == other.type_.id);
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  if (type_.id == TypeId::kString) {
    AppendString(other.StringAt(i));
  } else if (type_.id == TypeId::kDouble) {
    AppendDouble(other.doubles_[i]);
  } else {
    AppendInt(other.ints_[i]);
  }
}

ColumnData ColumnData::Gather(const std::vector<size_t>& row_indexes) const {
  ColumnData out(type_);
  const size_t m = row_indexes.size();
  // NULL rows (including kInvalidIndex) leave the zero-initialized value
  // slot in place, exactly as the append path would.
  auto mark_null = [&](size_t i) {
    if (out.validity_.empty()) out.validity_.assign(m, 1);
    out.validity_[i] = 0;
  };
  if (type_.id == TypeId::kString && lazy_) {
    // Lazy columns gather codes only; the strings stay in the dictionary.
    for (size_t i = 0; i < m; ++i) {
      size_t idx = row_indexes[i];
      if (idx == kInvalidIndex || IsNull(idx)) mark_null(i);
    }
    out.size_ = m;
    std::vector<int32_t> codes;
    codes.reserve(m);
    for (size_t idx : row_indexes) {
      codes.push_back(idx == kInvalidIndex ? -1 : dict_codes_[idx]);
    }
    out.SetDictionary(dict_, std::move(codes));
    out.lazy_ = true;
    return out;
  }
  if (type_.id == TypeId::kString) {
    out.strings_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      size_t idx = row_indexes[i];
      if (idx == kInvalidIndex || IsNull(idx)) {
        mark_null(i);
      } else {
        out.strings_[i] = strings_[idx];
      }
    }
  } else if (type_.id == TypeId::kDouble) {
    out.doubles_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      size_t idx = row_indexes[i];
      if (idx == kInvalidIndex || IsNull(idx)) {
        mark_null(i);
      } else {
        out.doubles_[i] = doubles_[idx];
      }
    }
  } else {
    out.ints_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      size_t idx = row_indexes[i];
      if (idx == kInvalidIndex || IsNull(idx)) {
        mark_null(i);
      } else {
        out.ints_[i] = ints_[idx];
      }
    }
  }
  out.size_ = m;
  if (dict_ != nullptr) {
    std::vector<int32_t> codes;
    codes.reserve(m);
    for (size_t idx : row_indexes) {
      codes.push_back(idx == kInvalidIndex ? -1 : dict_codes_[idx]);
    }
    out.SetDictionary(dict_, std::move(codes));
  }
  return out;
}

ColumnData ColumnData::GatherSelection(const SelectionVector& selection) const {
  ColumnData out(type_);
  const size_t m = selection.size();
  auto mark_null = [&](size_t i) {
    if (out.validity_.empty()) out.validity_.assign(m, 1);
    out.validity_[i] = 0;
  };
  if (type_.id == TypeId::kString && lazy_) {
    for (size_t i = 0; i < m; ++i) {
      if (IsNull(selection[i])) mark_null(i);
    }
    out.size_ = m;
    std::vector<int32_t> codes;
    codes.reserve(m);
    for (uint32_t idx : selection) codes.push_back(dict_codes_[idx]);
    out.SetDictionary(dict_, std::move(codes));
    out.lazy_ = true;
    return out;
  }
  if (type_.id == TypeId::kString) {
    out.strings_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      uint32_t idx = selection[i];
      if (IsNull(idx)) {
        mark_null(i);
      } else {
        out.strings_[i] = strings_[idx];
      }
    }
  } else if (type_.id == TypeId::kDouble) {
    out.doubles_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      uint32_t idx = selection[i];
      if (IsNull(idx)) {
        mark_null(i);
      } else {
        out.doubles_[i] = doubles_[idx];
      }
    }
  } else {
    out.ints_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      uint32_t idx = selection[i];
      if (IsNull(idx)) {
        mark_null(i);
      } else {
        out.ints_[i] = ints_[idx];
      }
    }
  }
  out.size_ = m;
  if (dict_ != nullptr) {
    std::vector<int32_t> codes;
    codes.reserve(m);
    for (uint32_t idx : selection) codes.push_back(dict_codes_[idx]);
    out.SetDictionary(dict_, std::move(codes));
  }
  return out;
}

void ColumnData::AppendColumn(ColumnData&& other) {
  VDM_DCHECK(type_.id == other.type_.id);
  if (size_ == 0) {
    // Wholesale adoption keeps other's representation (including lazy);
    // this column's declared type (e.g. decimal scale) wins.
    const DataType t = type_;
    const DataType ot = other.type_;
    *this = std::move(other);
    type_ = t;
    other = ColumnData(ot);
    return;
  }
  // Mixed lazy/eager pieces (or different dictionaries) decode first;
  // morsels of one storage scan share a dictionary and stay lazy.
  const bool both_lazy = lazy_ && other.lazy_ && dict_ == other.dict_;
  if (!both_lazy) {
    EnsureDecoded();
    other.EnsureDecoded();
  }
  // Dictionary annotation survives concatenation only when every piece
  // shares the same dictionary (morsels of one storage scan do).
  bool keep_dict =
      other.dict_ != nullptr && (size_ == 0 || dict_ == other.dict_);
  std::vector<int32_t> merged_codes;
  if (keep_dict) {
    merged_codes = std::move(dict_codes_);
    merged_codes.insert(merged_codes.end(), other.dict_codes_.begin(),
                        other.dict_codes_.end());
  }
  if (!validity_.empty() || other.HasNulls()) {
    EnsureValidity();
    if (other.validity_.empty()) {
      validity_.insert(validity_.end(), other.size_, 1);
    } else {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
    }
  }
  if (type_.id == TypeId::kString) {
    strings_.insert(strings_.end(),
                    std::make_move_iterator(other.strings_.begin()),
                    std::make_move_iterator(other.strings_.end()));
  } else if (type_.id == TypeId::kDouble) {
    doubles_.insert(doubles_.end(), other.doubles_.begin(),
                    other.doubles_.end());
  } else {
    ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
  }
  size_ += other.size_;
  if (keep_dict) {
    dict_ = other.dict_;
    dict_codes_ = std::move(merged_codes);
  } else {
    InvalidateDict();
  }
  other = ColumnData(other.type_);
}

ColumnData ColumnData::LazyStrings(
    DataType type, std::shared_ptr<const std::vector<std::string>> dict,
    std::vector<int32_t> codes) {
  VDM_DCHECK(type.id == TypeId::kString);
  VDM_DCHECK(dict != nullptr);
  ColumnData out(type);
  out.size_ = codes.size();
  bool any_null = false;
  for (int32_t c : codes) {
    if (c < 0) {
      any_null = true;
      break;
    }
  }
  if (any_null) {
    out.validity_.resize(codes.size());
    for (size_t i = 0; i < codes.size(); ++i) {
      out.validity_[i] = codes[i] >= 0 ? 1 : 0;
    }
  }
  out.dict_ = std::move(dict);
  out.dict_codes_ = std::move(codes);
  out.lazy_ = true;
  return out;
}

size_t ColumnData::EnsureDecoded() {
  if (!lazy_) return 0;
  strings_.resize(size_);
  const std::vector<std::string>& d = *dict_;
  for (size_t i = 0; i < size_; ++i) {
    const int32_t c = dict_codes_[i];
    if (c >= 0) strings_[i] = d[static_cast<size_t>(c)];
  }
  lazy_ = false;
  return size_;
}

ColumnData ColumnData::TakeInts(DataType type, std::vector<int64_t> vals,
                                std::vector<uint8_t> validity) {
  VDM_DCHECK(type.IsIntegerBacked());
  VDM_DCHECK(validity.empty() || validity.size() == vals.size());
  ColumnData out(type);
  out.size_ = vals.size();
  out.ints_ = std::move(vals);
  out.validity_ = std::move(validity);
  return out;
}

ColumnData ColumnData::TakeDoubles(DataType type, std::vector<double> vals,
                                   std::vector<uint8_t> validity) {
  VDM_DCHECK(type.id == TypeId::kDouble);
  VDM_DCHECK(validity.empty() || validity.size() == vals.size());
  ColumnData out(type);
  out.size_ = vals.size();
  out.doubles_ = std::move(vals);
  out.validity_ = std::move(validity);
  return out;
}

const std::string& ColumnData::EmptyStringSlot() {
  static const std::string kEmpty;
  return kEmpty;
}

ColumnData ColumnData::Nulls(DataType type, size_t n) {
  ColumnData out(type);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.AppendNull();
  return out;
}

int Chunk::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Chunk::ToString(size_t max_rows) const {
  std::vector<size_t> widths(names.size());
  size_t rows = std::min(NumRows(), max_rows);
  std::vector<std::vector<std::string>> cells(rows);
  for (size_t c = 0; c < names.size(); ++c) widths[c] = names[c].size();
  for (size_t r = 0; r < rows; ++r) {
    cells[r].resize(names.size());
    for (size_t c = 0; c < names.size(); ++c) {
      cells[r][c] = columns[c].GetValue(r).ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < names.size(); ++c) {
    out += names[c];
    out.append(widths[c] - names[c].size() + 2, ' ');
  }
  out += "\n";
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < names.size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += "\n";
  }
  if (NumRows() > rows) {
    out += StrFormat("... (%zu rows total)\n", NumRows());
  }
  return out;
}

}  // namespace vdm
